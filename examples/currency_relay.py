"""Fig. 3 walkthrough: relay native currency across blockchains.

client1 locks 700 units on the Burrow chain toward the Ethereum chain;
client2 completes the move with a Merkle proof, mints a provably-backed
pegged token on Ethereum, later burns it, moves the escrow home and
redeems the original native units.

Run:  python examples/currency_relay.py
"""

from repro.api import (
    CallPayload,
    Chain,
    ChainRegistry,
    DeployPayload,
    KeyPair,
    Move1Payload,
    Move2Payload,
    burrow_params,
    connect_chains,
    ethereum_params,
    sign_transaction,
)
from repro.core.relay import CurrencyRelay


def run_tx(chain, keypair, payload, clock):
    tx = sign_transaction(keypair, payload)
    chain.submit(tx)
    clock[0] += 5.0
    chain.produce_block(clock[0])
    receipt = chain.receipts[tx.tx_id]
    assert receipt.success, receipt.error
    return receipt


def complete_move(source, target, mover, contract, inclusion, clock):
    while source.height < source.proof_ready_height(inclusion):
        clock[0] += 5.0
        source.produce_block(clock[0])
    bundle = source.prove_contract_at(contract, inclusion)
    return run_tx(target, mover, Move2Payload(bundle=bundle), clock)


def main() -> None:
    client1 = KeyPair.from_name("client1")
    client2 = KeyPair.from_name("client2")
    clock = [0.0]

    registry = ChainRegistry()
    burrow = Chain(burrow_params(1), registry)
    ethereum = Chain(ethereum_params(2), registry)
    connect_chains([burrow, ethereum])
    burrow.fund({client1.address: 1_000})

    # The relay factory contract c of Fig. 3 lives on the source chain.
    relay = run_tx(burrow, client1, DeployPayload(code_hash=CurrencyRelay.CODE_HASH), clock).return_value

    # Tcreate: client1 locks 700 units toward Ethereum for client2.
    receipt = run_tx(
        burrow, client1, CallPayload(relay, "create", (2, client2.address), value=700), clock
    )
    escrow = receipt.return_value
    print(f"escrow {escrow} created holding {burrow.balance_of(escrow)} units, "
          f"born locked (L_c = {burrow.location_of(escrow)})")

    # Tmove2: client2 proves the lock and recreates the escrow on Ethereum.
    complete_move(burrow, ethereum, client2, escrow, receipt.block_height, clock)

    # Tmint: pegged tokens backed by the locked source currency.
    minted = run_tx(ethereum, client2, CallPayload(escrow, "mint"), clock).return_value
    print(f"client2 minted {minted} pegged units on chain 2 "
          f"(backed by {minted} locked units on chain 1)")

    # Going home: burn the peg, move back, redeem the native units.
    run_tx(ethereum, client2, CallPayload(escrow, "burn"), clock)
    move1 = run_tx(ethereum, client2, Move1Payload(contract=escrow, target_chain=1), clock)
    complete_move(ethereum, burrow, client2, escrow, move1.block_height, clock)
    before = burrow.balance_of(client2.address)
    redeemed = run_tx(burrow, client2, CallPayload(escrow, "redeem"), clock).return_value
    after = burrow.balance_of(client2.address)
    print(f"client2 redeemed {redeemed} native units on chain 1 "
          f"(balance {before} -> {after})")
    assert after - before == 700


if __name__ == "__main__":
    main()
