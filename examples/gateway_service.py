"""A chain served like a service: a gateway fleet, priority classes,
weighted-fair admission, subscriptions and typed errors.

The serving tier is the paper's runtime made operable — clients do not
call ``chain.submit`` or ``produce_block``; they hand signed
transactions to a replicated front door that routes each client to a
pinned replica, batches admissions into the mempool under one shared
budget, bounds its queues per priority class, rate-limits each client,
and answers overload with a machine-readable
:class:`~repro.api.ShedByClass` naming the class and client actually
dropped.  This example drives all of those behaviours on one small
chain:

* a bulk burst past the queue bound is shed with ``queue_full`` — and
  every victim is bulk-class, because a move admitted mid-burst evicts
  bulk instead of waiting behind it,
* a rate-limited client sees ``rate_limited`` once its bucket drains,
* an idempotent retry returns the *original* outcome, not a double
  spend,
* a subscription streams a contract's events instead of polling,
* and everything that was admitted confirms as usual.

Run:  python examples/gateway_service.py
"""

from repro import api


def main() -> None:
    node = api.Node(
        [api.burrow_params(1, max_block_txs=8)],
        seed=7,
        verify_signatures=False,
    )
    fleet = api.GatewayFleet(
        node,
        replicas=2,
        limits=api.GatewayLimits(
            max_queue_depth=16,
            batch_size=8,
            mempool_headroom=1,
            rate_limit=2.0,   # sustained per-client tx/s
            rate_burst=24,    # burst allowance before the bucket bites
        ),
    )
    transport = api.InProcessTransport(fleet)
    alice = api.Client(transport, name="alice")
    bob = api.Client(transport, name="bob")
    node.chain(1).fund({alice.address: 10_000, bob.address: 10_000})
    fleet.start()

    # 1. A burst far past the queue bound: the token bucket lets 24
    #    through, alice's replica's bounded queue takes 16 of those,
    #    and everything else is shed immediately with a machine-
    #    readable reason code — memory stays bounded no matter how
    #    hard one client pushes.  Transfers classify as "bulk".
    handles = [alice.transfer(bob.address, 1) for _ in range(60)]
    shed = [h for h in handles if h.done and not h.ok]
    codes = {h.error.code for h in shed}
    print(f"burst of {len(handles)}: {len(handles) - len(shed)} admitted, "
          f"{len(shed)} shed with {sorted(codes)}")
    assert codes == {"queue_full", "rate_limited"}, codes
    classes = {h.error.shed_class for h in shed if isinstance(h.error, api.ShedByClass)}
    print(f"every queue shed names its victim class: {sorted(classes)}")
    assert classes == {"bulk"}, classes

    # 2. Typed errors are catchable as a hierarchy: everything the
    #    fleet sheds under pressure is an Overloaded.
    try:
        shed[0].result()
    except api.Overloaded as exc:
        print(f"shed requests raise Overloaded(code={exc.code!r}) — "
              "clients back off instead of crashing")

    # 3. A request re-tagged as "view" class flushes ahead of the
    #    queued bulk backlog (strict priority across classes).
    probe = bob.transfer(alice.address, 1, priority="view")
    probe.wait()
    print("view-class probe confirmed while the bulk backlog was queued")

    # 4. Idempotent retry: same (client, key) returns the original
    #    outcome even though the transaction was only executed once.
    node.run_for(30.0)  # let the burst drain out of the queue first
    first = bob.transfer(alice.address, 250, key="invoice-42")
    receipt = first.wait()
    retry = bob.transfer(alice.address, 250, key="invoice-42")
    assert retry.wait().tx_id == receipt.tx_id
    print(f"retry of invoice-42 deduplicated: both handles resolved to "
          f"tx {receipt.tx_id[:12]}… (sent once)")

    # 5. The admitted work drains and confirms once the burst passes.
    node.run_for(120.0)
    confirmed = sum(1 for h in handles if h.ok)
    print(f"admitted transfers confirmed: {confirmed}, "
          f"fleet queue now {fleet.queue_depth(1)}, "
          f"peak per replica {fleet.peak_queue_depth[1]} (bound 16)")


if __name__ == "__main__":
    main()
