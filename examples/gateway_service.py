"""A chain served like a service: gateway, backpressure, typed errors.

The request gateway is the paper's runtime made operable — clients do
not call ``chain.submit`` or ``produce_block``; they hand signed
transactions to a front door that batches admissions into the mempool,
bounds its queues, rate-limits each client, and answers overload with
a machine-readable :class:`~repro.api.Overloaded` error instead of
growing without bound.  This example drives all of those behaviours on
one small chain:

* a burst past the queue bound is shed with ``queue_full``,
* a rate-limited client sees ``rate_limited`` once its bucket drains,
* an idempotent retry returns the *original* outcome, not a double
  spend,
* and everything that was admitted confirms as usual.

Run:  python examples/gateway_service.py
"""

from repro import api


def main() -> None:
    node = api.Node(
        [api.burrow_params(1, max_block_txs=8)],
        seed=7,
        verify_signatures=False,
    )
    gateway = api.Gateway(
        node,
        api.GatewayLimits(
            max_queue_depth=16,
            batch_size=8,
            mempool_headroom=1,
            rate_limit=2.0,   # sustained per-client tx/s
            rate_burst=24,    # burst allowance before the bucket bites
        ),
    )
    transport = api.InProcessTransport(gateway)
    alice = api.Client(transport, name="alice")
    bob = api.Client(transport, name="bob")
    node.chain(1).fund({alice.address: 10_000, bob.address: 10_000})
    gateway.start()

    # 1. A burst far past the queue bound: the token bucket lets 24
    #    through, the bounded queue takes 16 of those, and everything
    #    else is shed immediately with a machine-readable reason code —
    #    memory stays bounded no matter how hard one client pushes.
    handles = [alice.transfer(bob.address, 1) for _ in range(60)]
    shed = [h for h in handles if h.done and not h.ok]
    codes = {h.error.code for h in shed}
    print(f"burst of {len(handles)}: {len(handles) - len(shed)} admitted, "
          f"{len(shed)} shed with {sorted(codes)}")
    assert codes == {"queue_full", "rate_limited"}, codes

    # 2. Typed errors are catchable as a hierarchy: everything the
    #    gateway sheds under pressure is an Overloaded.
    try:
        shed[0].result()
    except api.Overloaded as exc:
        print(f"shed requests raise Overloaded(code={exc.code!r}) — "
              "clients back off instead of crashing")

    # 3. Idempotent retry: same (client, key) returns the original
    #    outcome even though the transaction was only executed once.
    node.run_for(30.0)  # let the burst drain out of the queue first
    first = bob.transfer(alice.address, 250, key="invoice-42")
    receipt = bob.wait(first)
    retry = bob.transfer(alice.address, 250, key="invoice-42")
    assert bob.wait(retry).tx_id == receipt.tx_id
    print(f"retry of invoice-42 deduplicated: both handles resolved to "
          f"tx {receipt.tx_id[:12]}… (sent once)")

    # 4. The admitted work drains and confirms once the burst passes.
    node.run_for(120.0)
    confirmed = sum(1 for h in handles if h.ok)
    print(f"admitted transfers confirmed: {confirmed}, "
          f"queue now {gateway.queue_depth(1)}, "
          f"peak was {gateway.peak_queue_depth[1]} (bound 16)")


if __name__ == "__main__":
    main()
