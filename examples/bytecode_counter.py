"""A raw bytecode contract that moves itself between chains.

The deepest view of the Move protocol: no Solidity-like layer at all.
The contract below is hand-written assembly; its ``move`` entry point
checks the caller against the stored owner and executes the paper's new
``OP_MOVE`` opcode itself.  The standard Move2 proof then recreates the
bytecode and storage on the other chain, where the same code keeps
running.

Run:  python examples/bytecode_counter.py
"""

from repro.api import (
    Chain,
    ChainRegistry,
    KeyPair,
    Move2Payload,
    burrow_params,
    connect_chains,
    ethereum_params,
    sign_transaction,
)
from repro.chain.tx import BytecodeCallPayload, DeployBytecodePayload
from repro.vm.assembler import assemble, disassemble

# slot 0 = count, slot 1 = owner.
# calldata word 0: 1=increment, 2=read, 3=move(word 1 = target), 4=claim.
SOURCE = """
    PUSH1 0
    CALLDATALOAD
    DUP1
    PUSH1 1
    EQ
    PUSH @inc
    JUMPI
    DUP1
    PUSH1 2
    EQ
    PUSH @read
    JUMPI
    DUP1
    PUSH1 3
    EQ
    PUSH @move
    JUMPI
    DUP1
    PUSH1 4
    EQ
    PUSH @init
    JUMPI
    PUSH1 0
    PUSH1 0
    REVERT

    inc:
    PUSH1 0
    SLOAD
    PUSH1 1
    ADD
    PUSH1 0
    SSTORE
    STOP

    read:
    PUSH1 0
    SLOAD
    PUSH1 0
    MSTORE
    PUSH1 32
    PUSH1 0
    RETURN

    init:
    PUSH1 1
    SLOAD
    ISZERO
    PUSH @doinit
    JUMPI
    PUSH1 0
    PUSH1 0
    REVERT
    doinit:
    CALLER
    PUSH1 1
    SSTORE
    STOP

    move:
    PUSH1 1
    SLOAD
    CALLER
    EQ
    PUSH @domove
    JUMPI
    PUSH1 0
    PUSH1 0
    REVERT
    domove:
    PUSH1 32
    CALLDATALOAD
    MOVE
    STOP
"""


def call_data(selector, arg=None):
    data = selector.to_bytes(32, "big")
    if arg is not None:
        data += arg.to_bytes(32, "big")
    return data


def run_tx(chain, keypair, payload, clock):
    tx = sign_transaction(keypair, payload)
    chain.submit(tx)
    clock[0] += 5.0
    chain.produce_block(clock[0])
    receipt = chain.receipts[tx.tx_id]
    assert receipt.success, receipt.error
    return receipt


def main() -> None:
    code = assemble(SOURCE)
    print(f"assembled {len(code)} bytes of bytecode; first instructions:")
    for offset, text in disassemble(code)[:6]:
        print(f"  {offset:04x}  {text}")

    alice = KeyPair.from_name("alice")
    clock = [0.0]
    registry = ChainRegistry()
    burrow = Chain(burrow_params(1), registry)
    ethereum = Chain(ethereum_params(2), registry)
    connect_chains([burrow, ethereum])

    counter = run_tx(burrow, alice, DeployBytecodePayload(code=code), clock).return_value
    run_tx(burrow, alice, BytecodeCallPayload(counter, call_data(4)), clock)  # claim
    run_tx(burrow, alice, BytecodeCallPayload(counter, call_data(1)), clock)
    run_tx(burrow, alice, BytecodeCallPayload(counter, call_data(1)), clock)
    count = run_tx(burrow, alice, BytecodeCallPayload(counter, call_data(2)), clock).return_value
    print(f"\ndeployed at {counter}, incremented twice: count = "
          f"{int.from_bytes(count, 'big')}")

    # The contract moves ITSELF: its own code runs OP_MOVE.
    moved = run_tx(burrow, alice, BytecodeCallPayload(counter, call_data(3, 2)), clock)
    print(f"contract executed OP_MOVE toward chain 2 "
          f"(locked on chain 1: {burrow.state.is_locked(counter)})")

    inclusion = moved.block_height
    while burrow.height < burrow.proof_ready_height(inclusion):
        clock[0] += 5.0
        burrow.produce_block(clock[0])
    bundle = burrow.prove_contract_at(counter, inclusion)
    run_tx(ethereum, alice, Move2Payload(bundle=bundle), clock)

    run_tx(ethereum, alice, BytecodeCallPayload(counter, call_data(1)), clock)
    count = run_tx(ethereum, alice, BytecodeCallPayload(counter, call_data(2)), clock).return_value
    print(f"recreated on chain 2 and incremented again: count = "
          f"{int.from_bytes(count, 'big')}")


if __name__ == "__main__":
    main()
