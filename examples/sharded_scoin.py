"""Sharded SCoin under live consensus: the Section VII-B experiment.

Four Tendermint shards (10 validators each, WAN latencies from 14 AWS
regions), 30 closed-loop token-transfer clients per shard, 10 % of
operations cross-shard (the client moves its own account to the target
shard, then transfers).  Prints throughput, latency split and the
cross-shard mix — a desk-sized version of the paper's Fig. 6/7 runs.

Run:  python examples/sharded_scoin.py
"""

from repro.api import ShardedCluster
from repro.metrics.cdf import percentile
from repro.workload.clients import ScoinWorkload


def main() -> None:
    cluster = ShardedCluster(num_shards=4, seed=42)
    workload = ScoinWorkload(
        cluster, clients_per_shard=30, cross_rate=0.10, seed=7
    )
    print("setting up: token deployment, account creation, hash placement...")
    report = workload.run(duration=400.0, warmup=50.0)

    print(f"\n4 shards x 30 clients, 10% cross-shard, {report.duration:.0f}s measured")
    print(f"  completed operations : {report.ops_completed}")
    print(f"  aggregate throughput : {report.ops_per_second:.1f} ops/s")
    print(f"  observed cross-shard : {report.observed_cross_rate * 100:.1f}%")
    print(f"  conflicts            : {report.failures} (oracle mode)")
    for kind in sorted(report.latency.kinds()):
        samples = report.latency.samples(kind)
        print(
            f"  {kind:13s} latency: mean {report.latency.mean(kind):5.1f}s  "
            f"p50 {percentile(samples, 0.5):5.1f}s  p99 {percentile(samples, 0.99):5.1f}s  "
            f"({len(samples)} ops)"
        )
    print("\ncross-shard ops take ~5 block times (Move1 + 2-block proof wait")
    print("+ Move2 + transfer); single-shard ops take ~1 — the paper's split.")


if __name__ == "__main__":
    main()
