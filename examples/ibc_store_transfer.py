"""Inter-blockchain state transfer with live consensus (Section VIII).

Moves a Store-10 contract from the Ethereum-flavoured chain (PoW, 15 s
blocks, p = 6) to the Burrow-flavoured chain (Tendermint, 5 s blocks,
two-block proof wait) and back, printing the per-phase latency and gas
that Figs. 8 and 9 report.  Watch the six-block Ethereum confirmation
wait dominate the Ethereum→Burrow direction.

Run:  python examples/ibc_store_transfer.py
"""

from repro.ibc.costs import gas_to_mgas, gas_to_usd
from repro.ibc.scenarios import BURROW_ID, ETHEREUM_ID, IBCExperiment


def describe(direction: str, phases) -> None:
    total_gas = sum(phases.gas.values())
    print(f"\n{direction}:")
    print(f"  move1        : {phases.move1_time:6.1f} s")
    print(f"  wait + proof : {phases.wait_proof_time:6.1f} s")
    print(f"  move2        : {phases.move2_time:6.1f} s")
    print(f"  total        : {phases.total_time:6.1f} s")
    print(f"  gas          : {gas_to_mgas(total_gas):.2f} Mgas "
          f"(~${gas_to_usd(total_gas):.2f} at the paper's Dec-2019 rates)")
    for bucket in ("move1", "create", "move2"):
        if bucket in phases.gas:
            print(f"    {bucket:7s}: {phases.gas[bucket]:>9,} gas")


def main() -> None:
    print("Ethereum -> Burrow (the slow direction: p = 6 PoW confirmations)")
    experiment = IBCExperiment(seed=4)
    phases = experiment.run_app("store10", ETHEREUM_ID, BURROW_ID)
    describe("Store 10: Ethereum -> Burrow", phases)

    print("\nBurrow -> Ethereum (fast proofs, expensive code recreation)")
    experiment = IBCExperiment(seed=4)
    phases = experiment.run_app("store10", BURROW_ID, ETHEREUM_ID)
    describe("Store 10: Burrow -> Ethereum", phases)


if __name__ == "__main__":
    main()
