"""Replay a synthetic CryptoKitties trace on a sharded deployment.

Generates a dependency-consistent workload (promo mints, siring
approvals, breeding, ownership transfers), builds the Fig. 4 dependency
DAG, and replays it on two Tendermint shards with the paper's
250-outstanding-transaction window.  Cats are hash-partitioned; breeding
cats on different shards triggers real Move1/Move2 migrations.

Run:  python examples/kitties_replay.py
"""

from repro.api import ShardedCluster
from repro.metrics.report import format_series
from repro.traces.cryptokitties import TraceConfig, generate_trace
from repro.traces.dag import DependencyDAG
from repro.traces.replay import KittiesReplayer


def main() -> None:
    config = TraceConfig(n_ops=1_500, n_promo=250, n_users=120, seed=3)
    trace = generate_trace(config)
    dag = DependencyDAG(trace)
    print(f"trace: {len(trace)} operations, DAG depth {dag.depth()}, "
          f"{dag.ready_count()} initially parallel leaves")

    cluster = ShardedCluster(num_shards=2, seed=8, max_block_txs=130)
    replayer = KittiesReplayer(cluster, trace=trace, outstanding_limit=250)
    report = replayer.run(max_time=50_000)

    print(f"\nreplayed on 2 shards in {report.finished_at:.0f} simulated seconds")
    print(f"  committed transactions : {report.txs_committed} "
          f"(every one succeeded: {report.failed_txs} failures)")
    print(f"  average throughput     : {report.avg_throughput():.1f} tx/s")
    print(f"  cross-shard operations : {report.cross_shard_ops} "
          f"({report.cross_rate * 100:.2f}% — paper band: 5.86-7.93%)")
    print("\naggregated throughput over time:")
    print(format_series(
        report.throughput.series(bucket=30.0, end=report.finished_at),
        x_label="time (s)", y_label="tx/s", width=40,
    ))


if __name__ == "__main__":
    main()
