"""Quickstart: move a smart contract between two blockchains.

Everything goes through the stable :mod:`repro.api` facade — the way
an application would use the reproduction.  A :class:`~repro.api.Node`
owns a Burrow-flavoured chain (Tendermint-style, 5 s blocks) and an
Ethereum-flavoured chain (PoW-style, 15 s blocks) plus the header
relays between them; a :class:`~repro.api.Gateway` fronts the node
with bounded admission; a :class:`~repro.api.Client` signs, submits
and awaits futures.  One `client.move(...)` call drives the full Move
protocol (Move1 → proof wait → Move2) and resolves a
:class:`~repro.api.MoveHandle` when the contract is live on the other
chain.

Run:  python examples/quickstart.py
"""

from repro import api


@api.register_contract
class GuestBook(api.MovableContract):
    """A movable contract: owner-gated moves come from MovableContract."""

    entries = api.MapSlot(int, bytes)

    @api.external
    def write(self, index: int, message: bytes) -> None:
        self.entries[index] = message

    @api.view
    def read(self, index: int) -> bytes:
        return self.entries[index]


def main() -> None:
    # A node serving two chains that have agreed on Move-protocol
    # parameters and relay each other's headers, fronted by a gateway.
    node = api.Node([api.burrow_params(1), api.ethereum_params(2)])
    gateway = api.Gateway(node)
    alice = api.Client(api.InProcessTransport(gateway), name="alice")
    gateway.start()

    # 1. Deploy and use the contract on the Burrow chain.
    receipt = alice.wait(alice.deploy(GuestBook, chain=1))
    book = receipt.return_value
    alice.wait(alice.call(book, "write", 1, b"hello from burrow", chain=1))
    print(f"deployed GuestBook at {book} on chain 1")

    # 2. One call runs the whole protocol; the handle reports the stage.
    handle = alice.move(book, source_chain=1, target_chain=2)
    node.run_until(lambda: handle.stage != "move1")
    print(f"Move1 included at Burrow height {node.chain(1).height}; "
          "contract now locked there")

    # 3. The gateway waits out the confirmation depth, builds the Merkle
    #    proof bundle, and submits Move2 on the target chain.
    phases = alice.wait(handle)
    assert phases.success, phases.error
    print(f"proof waited {phases.wait_proof_time:.0f} s "
          "(root published and p-confirmed at the source)")
    print(f"Move2 executed on chain 2 ({phases.gas.get('move2', 0):,} gas)")

    # 4. The state moved; the source copy is locked but readable.
    assert alice.view(book, "read", 1, chain=2) == b"hello from burrow"
    alice.wait(alice.call(book, "write", 2, b"hello from ethereum", chain=2))
    print("state verified on the target chain; new writes accepted there")
    assert node.chain(1).state.is_locked(book)
    print(f"source copy: locked (L_c = {node.chain(1).location_of(book)}), "
          f"reads still work: {alice.view(book, 'read', 1, chain=1)!r}")


if __name__ == "__main__":
    main()
