"""Quickstart: move a smart contract between two blockchains.

Builds a Burrow-flavoured chain (Tendermint-style, 5 s blocks) and an
Ethereum-flavoured chain (PoW-style, 15 s blocks) in one simulator,
deploys a movable key/value contract, exercises the full Move protocol
(Move1 → proof wait → Move2), and shows that the contract's state
migrated intact while the source copy is locked.

Run:  python examples/quickstart.py
"""

from repro.chain.chain import Chain
from repro.chain.params import burrow_params, ethereum_params
from repro.chain.tx import CallPayload, DeployPayload, Move1Payload, Move2Payload, sign_transaction
from repro.core.registry import ChainRegistry
from repro.crypto.keys import KeyPair
from repro.ibc.headers import connect_chains
from repro.lang.movable import MovableContract
from repro.runtime import MapSlot, external, register_contract, view


@register_contract
class GuestBook(MovableContract):
    """A movable contract: owner-gated moves come from MovableContract."""

    entries = MapSlot(int, bytes)

    @external
    def write(self, index: int, message: bytes) -> None:
        self.entries[index] = message

    @view
    def read(self, index: int) -> bytes:
        return self.entries[index]


def run_tx(chain, keypair, payload, clock):
    """Submit a transaction and produce the next block manually."""
    tx = sign_transaction(keypair, payload)
    chain.submit(tx)
    clock[0] += 5.0
    chain.produce_block(clock[0])
    receipt = chain.receipts[tx.tx_id]
    assert receipt.success, receipt.error
    return receipt


def main() -> None:
    alice = KeyPair.from_name("alice")
    clock = [0.0]

    # Two chains that have agreed on Move-protocol parameters and relay
    # each other's headers (each runs a light client of the other).
    registry = ChainRegistry()
    burrow = Chain(burrow_params(1), registry)
    ethereum = Chain(ethereum_params(2), registry)
    connect_chains([burrow, ethereum])

    # 1. Deploy and use the contract on the Burrow chain.
    receipt = run_tx(burrow, alice, DeployPayload(code_hash=GuestBook.CODE_HASH), clock)
    book = receipt.return_value
    run_tx(burrow, alice, CallPayload(book, "write", (1, b"hello from burrow")), clock)
    print(f"deployed GuestBook at {book} on chain {burrow.chain_id}")

    # 2. Move1: lock it toward the Ethereum chain.
    receipt = run_tx(burrow, alice, Move1Payload(contract=book, target_chain=2), clock)
    inclusion = receipt.block_height
    print(f"Move1 included at Burrow height {inclusion}; contract now locked there")

    # 3. Wait until the Move1 block is provable (root published and
    #    p-confirmed), then extract the Merkle proof bundle.
    while burrow.height < burrow.proof_ready_height(inclusion):
        clock[0] += 5.0
        burrow.produce_block(clock[0])
    bundle = burrow.prove_contract_at(book, inclusion)
    print(f"proof bundle: {len(bundle.storage)} storage slots, "
          f"{bundle.size_bytes()} bytes, proves root at source height {bundle.proof_height}")

    # 4. Move2 on the Ethereum chain recreates the contract.
    run_tx(ethereum, alice, Move2Payload(bundle=bundle), clock)
    print(f"Move2 executed on chain {ethereum.chain_id}")

    # 5. The state moved; the source copy is locked but readable.
    assert ethereum.view(book, "read", 1) == b"hello from burrow"
    run_tx(ethereum, alice, CallPayload(book, "write", (2, b"hello from ethereum")), clock)
    print("state verified on the target chain; new writes accepted there")
    assert burrow.state.is_locked(book)
    print(f"source copy: locked (L_c = {burrow.location_of(book)}), reads still work: "
          f"{burrow.view(book, 'read', 1)!r}")


if __name__ == "__main__":
    main()
