"""Atomic cross-chain currency swap built on the Move primitive (§IX).

Alice on chain 1 swaps 500 of chain-1 currency against 800 of chain-2
currency from Bob — no trusted third party, no way for either side to
keep both amounts.  The escrow is a movable contract: born locked
toward Bob's chain, filled there (paying Alice instantly), then moved
home by Bob to claim the escrowed amount.

Run:  python examples/atomic_swap.py
"""

from repro.api import (
    CallPayload,
    Chain,
    ChainRegistry,
    DeployPayload,
    KeyPair,
    Move1Payload,
    Move2Payload,
    burrow_params,
    connect_chains,
    ethereum_params,
    sign_transaction,
)
from repro.core.swap import SwapFactory


def run_tx(chain, keypair, payload, clock):
    tx = sign_transaction(keypair, payload)
    chain.submit(tx)
    clock[0] += 5.0
    chain.produce_block(clock[0])
    receipt = chain.receipts[tx.tx_id]
    assert receipt.success, receipt.error
    return receipt


def ship(source, target, mover, contract, inclusion, clock):
    while source.height < source.proof_ready_height(inclusion):
        clock[0] += 5.0
        source.produce_block(clock[0])
    bundle = source.prove_contract_at(contract, inclusion)
    return run_tx(target, mover, Move2Payload(bundle=bundle), clock)


def main() -> None:
    alice = KeyPair.from_name("alice")
    bob = KeyPair.from_name("bob")
    clock = [0.0]

    registry = ChainRegistry()
    chain1 = Chain(burrow_params(1), registry)
    chain2 = Chain(ethereum_params(2), registry)
    connect_chains([chain1, chain2])
    chain1.fund({alice.address: 1_000})
    chain2.fund({bob.address: 1_000})
    print("Alice: 1000 on chain 1   |   Bob: 1000 on chain 2")

    factory = run_tx(chain1, alice, DeployPayload(code_hash=SwapFactory.CODE_HASH), clock).return_value
    receipt = run_tx(
        chain1, alice,
        CallPayload(factory, "open", (2, bob.address, 800, 100_000), value=500),
        clock,
    )
    escrow = receipt.return_value
    print(f"Alice opened swap escrow {escrow}: 500(chain1) for 800(chain2), "
          f"born locked toward chain 2")

    ship(chain1, chain2, bob, escrow, receipt.block_height, clock)
    fill = run_tx(chain2, bob, CallPayload(escrow, "fill", value=800), clock)
    print(f"Bob filled on chain 2: Alice instantly received "
          f"{chain2.balance_of(alice.address)} there")

    move1 = run_tx(chain2, bob, Move1Payload(contract=escrow, target_chain=1), clock)
    ship(chain2, chain1, bob, escrow, move1.block_height, clock)
    run_tx(chain1, bob, CallPayload(escrow, "claim"), clock)
    print(f"Bob moved the escrow home and claimed "
          f"{chain1.balance_of(bob.address)} on chain 1")

    print("\nfinal balances:")
    print(f"  chain 1: Alice {chain1.balance_of(alice.address)}, "
          f"Bob {chain1.balance_of(bob.address)}")
    print(f"  chain 2: Alice {chain2.balance_of(alice.address)}, "
          f"Bob {chain2.balance_of(bob.address)}")
    assert chain1.balance_of(bob.address) == 500
    assert chain2.balance_of(alice.address) == 800


if __name__ == "__main__":
    main()
