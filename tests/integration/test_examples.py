"""Regression net: every shipped example must run to completion.

Examples are executed in-process (fast, importable) with their module
namespace isolated, asserting on the key lines of their output.
"""

import io
import pathlib
import runpy
from contextlib import redirect_stdout

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parents[2] / "examples"


def run_example(name: str) -> str:
    buffer = io.StringIO()
    with redirect_stdout(buffer):
        runpy.run_path(str(EXAMPLES_DIR / name), run_name="__main__")
    return buffer.getvalue()


def test_examples_directory_is_complete():
    names = {path.name for path in EXAMPLES_DIR.glob("*.py")}
    assert "quickstart.py" in names
    assert len(names) >= 6  # quickstart + >=5 scenario examples


def test_quickstart():
    out = run_example("quickstart.py")
    assert "Move1 included" in out
    assert "Move2 executed" in out
    assert "locked" in out


def test_currency_relay():
    out = run_example("currency_relay.py")
    assert "minted 700 pegged units" in out
    assert "redeemed 700 native units" in out


def test_atomic_swap():
    out = run_example("atomic_swap.py")
    assert "Alice instantly received 800" in out
    assert "claimed 500" in out


def test_bytecode_counter():
    out = run_example("bytecode_counter.py")
    assert "count = 2" in out
    assert "count = 3" in out
    assert "OP_MOVE" in out


@pytest.mark.slow
def test_sharded_scoin():
    out = run_example("sharded_scoin.py")
    assert "aggregate throughput" in out
    assert "cross-shard" in out


@pytest.mark.slow
def test_kitties_replay():
    out = run_example("kitties_replay.py")
    assert "0 failures" in out
    assert "cross-shard operations" in out


def test_gateway_service():
    out = run_example("gateway_service.py")
    assert "shed with ['queue_full', 'rate_limited']" in out
    assert "Overloaded" in out
    assert "deduplicated" in out


def test_ibc_store_transfer():
    out = run_example("ibc_store_transfer.py")
    assert "wait + proof" in out
    assert "Mgas" in out
