"""A cat is sold at an auction on another chain.

Composition test: the clock auction (repro.apps.auction) + the Move
protocol.  The seller's cat lives on the Burrow chain; the auction house
runs on the Ethereum chain — the cat is moved, escrowed, auctioned, and
the buyer takes delivery, all with real value flows.
"""

import pytest

from repro.apps.auction import ClockAuction
from repro.apps.kitties import KittyRegistry
from repro.chain.tx import CallPayload, DeployPayload
from tests.helpers import (
    ALICE,
    BOB,
    CAROL,
    ManualClock,
    full_move,
    make_chain_pair,
    produce,
    run_tx,
)


def test_cross_chain_cat_sale():
    burrow, ethereum = make_chain_pair()
    clock = ManualClock()
    ethereum.fund({CAROL.address: 10_000})

    # Cat minted on Burrow, owned by Bob.
    registry = run_tx(
        burrow, clock, ALICE, DeployPayload(code_hash=KittyRegistry.CODE_HASH)
    ).return_value
    cat = run_tx(
        burrow, clock, ALICE, CallPayload(registry, "create_promo_kitty", (BOB.address,))
    ).return_value

    # Auction house on Ethereum.
    auction = run_tx(
        ethereum, clock, ALICE, DeployPayload(code_hash=ClockAuction.CODE_HASH)
    ).return_value

    # Bob moves his cat to the auction's chain and escrows it.
    assert full_move(burrow, ethereum, clock, BOB, cat).success
    assert run_tx(ethereum, clock, BOB, CallPayload(cat, "transfer_ownership", (auction,))).success
    assert run_tx(
        ethereum, clock, BOB,
        CallPayload(auction, "create_auction", (cat, 2_000, 500, 60)),
    ).success

    # The clock descends (5 s blocks advance contract time)...
    start_price = ethereum.view(auction, "current_price", cat)
    produce(ethereum, clock, 4)
    later_price = ethereum.view(auction, "current_price", cat)
    assert later_price < start_price

    # ...Carol buys; Bob is paid on the auction's chain.
    bob_before = ethereum.balance_of(BOB.address)
    receipt = run_tx(ethereum, clock, CAROL, CallPayload(auction, "bid", (cat,), value=2_000))
    assert receipt.success, receipt.error
    assert ethereum.view(cat, "get_owner") == CAROL.address
    paid = ethereum.balance_of(BOB.address) - bob_before
    assert 500 <= paid <= 2_000
    assert ethereum.balance_of(CAROL.address) == 10_000 - paid

    # Carol takes her purchase home to Burrow.
    assert full_move(ethereum, burrow, clock, CAROL, cat).success
    assert burrow.view(cat, "get_owner") == CAROL.address
    assert burrow.location_of(cat) == burrow.chain_id


def test_interface_conformance():
    """SCoin/SAccount implement every STokenI/AccountI method, and the
    paper-named Solidity functions map to documented analogues."""
    from repro.apps.scoin import SAccount, SCoin
    from repro.lang.interfaces import AccountI, STokenI

    for name in ("total_supply", "new_account", "new_account_for"):
        assert callable(getattr(STokenI, name))
        assert callable(getattr(SCoin, name)), f"SCoin missing {name}"
    for name in (
        "token_balance", "allowance", "transfer_tokens",
        "approve", "transfer_from", "debit",
    ):
        assert callable(getattr(AccountI, name))
        assert callable(getattr(SAccount, name)), f"SAccount missing {name}"
    # Movability hooks from the paper's Listing 2.
    assert callable(getattr(SAccount, "move_to"))
    assert callable(getattr(SAccount, "move_finish"))
