"""Integration tests for the experiment harnesses (scaled-down).

These exercise the exact code paths the Fig. 5/6/7 benchmarks run, with
small populations so the suite stays fast.
"""

import pytest

from repro.sharding.cluster import ShardedCluster
from repro.traces.cryptokitties import TraceConfig, generate_trace
from repro.traces.replay import KittiesReplayer
from repro.workload.clients import ScoinWorkload


@pytest.fixture(scope="module")
def scoin_report():
    cluster = ShardedCluster(num_shards=2, seed=11)
    workload = ScoinWorkload(cluster, clients_per_shard=12, cross_rate=0.2, seed=3)
    return workload.run(duration=400.0, warmup=40.0)


def test_scoin_workload_completes_ops(scoin_report):
    assert scoin_report.ops_completed > 100
    assert scoin_report.failures == 0  # oracle mode never conflicts


def test_scoin_workload_cross_rate_near_configured(scoin_report):
    assert abs(scoin_report.observed_cross_rate - 0.2) < 0.08


def test_scoin_latency_split(scoin_report):
    single = scoin_report.latency.mean("single-shard")
    cross = scoin_report.latency.mean("cross-shard")
    # Single-shard ~ one block; cross-shard ~ five blocks (Section VII-B).
    assert 4.0 < single < 10.0
    assert 20.0 < cross < 45.0
    assert cross > 3 * single


def test_scoin_single_shard_cluster_has_no_cross_ops():
    cluster = ShardedCluster(num_shards=1, seed=12)
    workload = ScoinWorkload(cluster, clients_per_shard=10, cross_rate=0.3, seed=4)
    report = workload.run(duration=150.0)
    assert report.cross_shard_ops == 0
    assert report.ops_completed > 50


def test_scoin_retry_mode_reports_retries():
    # The paper's operating point: 10 % cross-shard keeps accounts
    # available often enough that most operations succeed, while
    # conflicts still occur and are retried (Section VII-B.1).
    cluster = ShardedCluster(num_shards=2, seed=13)
    workload = ScoinWorkload(
        cluster, clients_per_shard=12, cross_rate=0.1, retry_mode=True, seed=5
    )
    report = workload.run(duration=800.0, warmup=40.0)
    assert report.ops_completed > 40
    hist = report.retry_histogram()
    assert hist.get(0, 0) > 0
    # Conflicts exist and some ops retried (Section VII-B.1).
    assert report.failures > 0
    assert sum(count for retries, count in hist.items() if retries >= 1) > 0


@pytest.fixture(scope="module")
def replay_report():
    trace = generate_trace(TraceConfig(n_ops=500, n_promo=120, n_users=60, seed=21))
    cluster = ShardedCluster(num_shards=2, seed=14, max_block_txs=130)
    replayer = KittiesReplayer(cluster, trace=trace, outstanding_limit=100)
    return replayer.run(max_time=30_000)


def test_replay_drains_the_dag(replay_report):
    assert replay_report.finished_at is not None
    assert replay_report.ops_completed == replay_report.trace_ops


def test_replay_has_no_failed_txs(replay_report):
    # "every transaction from the original contract must succeed in our
    # implementation" (Section VII-A).
    assert replay_report.failed_txs == 0


def test_replay_counts_cross_shard_breeds(replay_report):
    assert replay_report.cross_shard_ops > 0
    assert 0.0 < replay_report.cross_rate < 0.35


def test_replay_throughput_series_nonzero(replay_report):
    series = replay_report.throughput.series(bucket=20.0)
    assert any(rate > 0 for _t, rate in series)


def test_replay_single_shard_never_cross():
    trace = generate_trace(TraceConfig(n_ops=200, n_promo=50, n_users=30, seed=22))
    cluster = ShardedCluster(num_shards=1, seed=15)
    replayer = KittiesReplayer(cluster, trace=trace, outstanding_limit=100)
    report = replayer.run(max_time=30_000)
    assert report.finished_at is not None
    assert report.cross_shard_ops == 0
    assert report.failed_txs == 0
