"""Integration tests: the Move protocol end to end (Algorithm 1).

Covers the paper's core claims: consistent migration between a
Tendermint/Burrow-flavoured and a PoW/Ethereum-flavoured chain, the
lock semantics, confirmation-depth gating, replay prevention (Fig. 2),
third-party completion of dangling moves, and round trips.
"""

import pytest

from repro.chain.tx import CallPayload, Move1Payload, Move2Payload, sign_transaction
from repro.errors import ProofError
from tests.helpers import (
    ALICE,
    BOB,
    CAROL,
    ManualClock,
    StoreContract,
    deploy_store,
    full_move,
    make_chain_pair,
    produce,
    run_tx,
)


@pytest.fixture
def setup():
    burrow, ethereum = make_chain_pair()
    clock = ManualClock()
    addr = deploy_store(burrow, clock, ALICE)
    receipt = run_tx(burrow, clock, ALICE, CallPayload(addr, "put", (1, 100)))
    assert receipt.success
    return burrow, ethereum, clock, addr


def test_full_move_burrow_to_ethereum(setup):
    burrow, ethereum, clock, addr = setup
    receipt = full_move(burrow, ethereum, clock, ALICE, addr)
    assert receipt.success, receipt.error
    # Active on Ethereum with identical state.
    assert ethereum.location_of(addr) == ethereum.chain_id
    assert ethereum.view(addr, "get_value", 1) == 100
    # Locked on Burrow: L_c names the target chain.
    assert burrow.location_of(addr) == ethereum.chain_id
    assert burrow.state.is_locked(addr)


def test_locked_contract_rejects_writes_allows_reads(setup):
    burrow, ethereum, clock, addr = setup
    receipt = run_tx(
        burrow, clock, ALICE, Move1Payload(contract=addr, target_chain=ethereum.chain_id)
    )
    assert receipt.success
    write = run_tx(burrow, clock, ALICE, CallPayload(addr, "put", (2, 5)))
    assert not write.success
    assert "ContractLocked" in write.error
    # Reads of the locked state remain possible (Section III-B).
    assert burrow.view(addr, "get_value", 1) == 100


def test_move_requires_owner(setup):
    burrow, ethereum, clock, addr = setup
    receipt = run_tx(
        burrow, clock, BOB, Move1Payload(contract=addr, target_chain=ethereum.chain_id)
    )
    assert not receipt.success
    assert "only the owner" in receipt.error
    assert not burrow.state.is_locked(addr)


def test_move2_rejected_before_confirmation_depth(setup):
    burrow, ethereum, clock, addr = setup
    receipt1 = run_tx(
        burrow, clock, ALICE, Move1Payload(contract=addr, target_chain=ethereum.chain_id)
    )
    inclusion = receipt1.block_height
    # Only one extra block: header with the root exists (lag=1) but is
    # not yet p=2 confirmed.
    produce(burrow, clock, 1)
    bundle = burrow.prove_contract_at(addr, inclusion)
    receipt2 = run_tx(ethereum, clock, ALICE, Move2Payload(bundle=bundle))
    assert not receipt2.success
    assert "UnknownRootError" in receipt2.error
    # After enough confirmations the same bundle is accepted.
    while burrow.height < burrow.proof_ready_height(inclusion):
        produce(burrow, clock)
    receipt3 = run_tx(ethereum, clock, ALICE, Move2Payload(bundle=bundle))
    assert receipt3.success, receipt3.error


def test_move2_to_wrong_chain_rejected(setup):
    burrow, ethereum, clock, addr = setup
    receipt1 = run_tx(
        burrow, clock, ALICE, Move1Payload(contract=addr, target_chain=ethereum.chain_id)
    )
    inclusion = receipt1.block_height
    while burrow.height < burrow.proof_ready_height(inclusion):
        produce(burrow, clock)
    bundle = burrow.prove_contract_at(addr, inclusion)
    # Submit the Move2 at the *source* chain: L_c != B (Alg. 1 line 5).
    receipt = run_tx(burrow, clock, ALICE, Move2Payload(bundle=bundle))
    assert not receipt.success
    assert "MoveError" in receipt.error


def test_anyone_can_complete_a_dangling_move(setup):
    # The client that issued Move1 crashes; a third party finishes the
    # move with the public proof (Section III-B).
    burrow, ethereum, clock, addr = setup
    receipt1 = run_tx(
        burrow, clock, ALICE, Move1Payload(contract=addr, target_chain=ethereum.chain_id)
    )
    inclusion = receipt1.block_height
    while burrow.height < burrow.proof_ready_height(inclusion):
        produce(burrow, clock)
    bundle = burrow.prove_contract_at(addr, inclusion)
    receipt = run_tx(ethereum, clock, CAROL, Move2Payload(bundle=bundle))
    assert receipt.success, receipt.error
    assert ethereum.view(addr, "get_value", 1) == 100


def test_replay_attack_rejected(setup):
    # Fig. 2: move B1 -> B2, back to B1, then replay the first Move2.
    burrow, ethereum, clock, addr = setup

    receipt1 = run_tx(
        burrow, clock, ALICE, Move1Payload(contract=addr, target_chain=ethereum.chain_id)
    )
    inclusion = receipt1.block_height
    while burrow.height < burrow.proof_ready_height(inclusion):
        produce(burrow, clock)
    first_bundle = burrow.prove_contract_at(addr, inclusion)
    assert run_tx(ethereum, clock, ALICE, Move2Payload(bundle=first_bundle)).success

    # Mutate on Ethereum, then move back to Burrow.
    assert run_tx(ethereum, clock, ALICE, CallPayload(addr, "put", (1, 999))).success
    back = full_move(ethereum, burrow, clock, ALICE, addr)
    assert back.success, back.error
    assert burrow.view(addr, "get_value", 1) == 999

    # Replaying the original Move2 on Ethereum must fail: its proven
    # move nonce is stale.
    replay = run_tx(ethereum, clock, BOB, Move2Payload(bundle=first_bundle))
    assert not replay.success
    assert "ReplayError" in replay.error
    # And the same bundle twice on the same chain also fails.
    # (covered by the same nonce rule)


def test_round_trip_preserves_state_and_unlocks(setup):
    burrow, ethereum, clock, addr = setup
    assert full_move(burrow, ethereum, clock, ALICE, addr).success
    assert run_tx(ethereum, clock, ALICE, CallPayload(addr, "put", (2, 7))).success
    assert full_move(ethereum, burrow, clock, ALICE, addr).success
    # Unlocked and fully functional again at the origin.
    assert not burrow.state.is_locked(addr)
    assert burrow.view(addr, "get_value", 1) == 100
    assert burrow.view(addr, "get_value", 2) == 7
    assert run_tx(burrow, clock, ALICE, CallPayload(addr, "put", (3, 1))).success


def test_contract_balance_moves_with_it(setup):
    burrow, ethereum, clock, addr = setup
    burrow.fund({ALICE.address: 1_000})
    # Give the contract native currency via a transfer payload.
    from repro.chain.tx import TransferPayload

    assert run_tx(burrow, clock, ALICE, TransferPayload(to=addr, amount=250)).success
    assert burrow.balance_of(addr) == 250
    receipt = full_move(burrow, ethereum, clock, ALICE, addr)
    assert receipt.success, receipt.error
    assert ethereum.balance_of(addr) == 250


def test_tampered_bundle_rejected(setup):
    import dataclasses

    burrow, ethereum, clock, addr = setup
    receipt1 = run_tx(
        burrow, clock, ALICE, Move1Payload(contract=addr, target_chain=ethereum.chain_id)
    )
    inclusion = receipt1.block_height
    while burrow.height < burrow.proof_ready_height(inclusion):
        produce(burrow, clock)
    bundle = burrow.prove_contract_at(addr, inclusion)
    # Inflate the proven balance: VP must fail.
    forged = dataclasses.replace(bundle, balance=10_000_000)
    receipt = run_tx(ethereum, clock, BOB, Move2Payload(bundle=forged))
    assert not receipt.success
    assert "ProofError" in receipt.error or "UnknownRootError" in receipt.error


def test_proof_of_unlocked_contract_changes_fails(setup):
    # prove_contract_at refuses when live state drifted from the
    # historical root (only locked contracts are safely provable).
    burrow, ethereum, clock, addr = setup
    height = burrow.height
    assert run_tx(burrow, clock, ALICE, CallPayload(addr, "put", (1, 101))).success
    produce(burrow, clock, 3)
    with pytest.raises(ProofError):
        burrow.prove_contract_at(addr, height)


def test_move1_to_self_rejected(setup):
    burrow, _ethereum, clock, addr = setup
    receipt = run_tx(
        burrow, clock, ALICE, Move1Payload(contract=addr, target_chain=burrow.chain_id)
    )
    assert not receipt.success


def test_double_move1_rejected(setup):
    burrow, ethereum, clock, addr = setup
    assert run_tx(
        burrow, clock, ALICE, Move1Payload(contract=addr, target_chain=ethereum.chain_id)
    ).success
    again = run_tx(
        burrow, clock, ALICE, Move1Payload(contract=addr, target_chain=ethereum.chain_id)
    )
    assert not again.success
    assert "not active here" in again.error
