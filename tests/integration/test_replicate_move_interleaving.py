"""Replication interleaved with the Move protocol, end to end.

The dangerous window is a move *in flight*: between Move1 (the source
locks and publishes) and Move2 (the target unlocks), the contract has
no active copy anywhere — and its mirrors are replaying state that is
about to be superseded on another chain.  The protocol's answer is
availability, not staleness: mirrors tombstone the moment Move1
commits, readers get the typed :class:`ReplicaUnavailable`, and once
Move2 lands the manager re-homes every mirror under the new source
chain and full-resyncs them from verified proofs.

The last section drives the rebalancer's replicate-vs-move arm through
the same machinery: a read-dominated hot contract draws a
``"replicate"`` decision, and :func:`replication_actuator` turns it
into a LIVE mirror without moving the active copy.
"""

import pytest

from repro.chain.chain import Chain
from repro.chain.params import burrow_params
from repro.chain.tx import Move1Payload
from repro.core.registry import ChainRegistry
from repro.errors import ReplicaUnavailable, UnknownChainError
from repro.ibc.headers import connect_chains
from repro.rebalance import RebalancePolicy, replication_actuator
from repro.rebalance.signals import ShardLoad, ShardLoadView
from repro.replicate.manager import ReplicationManager
from repro.replicate.mirror import LIVE, SYNCING, TOMBSTONED
from repro.telemetry import Telemetry
from tests.helpers import (
    ALICE,
    CallPayload,
    ManualClock,
    deploy_store,
    full_move,
    produce,
    run_tx,
)


class _Host:
    """The slice of a Node a ReplicationManager needs, over manually
    driven chains (same shim idea the chaos harness uses)."""

    def __init__(self, chains, clock):
        self.chains = {chain.chain_id: chain for chain in chains}
        self.sim = clock  # .now is all the manager reads
        self.telemetry = Telemetry.disabled()

    def chain(self, chain_id):
        try:
            return self.chains[chain_id]
        except KeyError:
            raise UnknownChainError(f"unserved chain {chain_id}") from None


def _world():
    """Three meshed burrow chains, a store on 1, a manager over all."""
    registry = ChainRegistry()
    chains = [Chain(burrow_params(i), registry) for i in (1, 2, 3)]
    connect_chains(chains)
    clock = ManualClock()
    one, two, three = chains
    address = deploy_store(one, clock, ALICE)
    run_tx(one, clock, ALICE, CallPayload(address, "put", (1, 42)))
    manager = ReplicationManager(_Host(chains, clock))
    manager.start()
    return one, two, three, clock, address, manager


def _go_live(manager, address, chain_id, source, clock):
    produce(source, clock, 3)
    mirror = manager.mirror(address, chain_id)
    assert mirror is not None and mirror.available, manager.status(address)
    return mirror


def test_move1_makes_the_mirror_unavailable_not_stale():
    one, two, three, clock, address, manager = _world()
    manager.replicate(address, 1, [2])
    mirror = _go_live(manager, address, 2, one, clock)
    assert manager.read(address, "get_value", 1, prefer_chain=2) == 42

    receipt = run_tx(
        one, clock, ALICE, Move1Payload(contract=address, target_chain=3)
    )
    assert receipt.success, receipt.error

    # The Move1 header reached the target; the relay tombstoned the
    # mirror in the same breath — before any client could read state
    # that is about to be superseded on chain 3.
    assert mirror.status == TOMBSTONED
    assert mirror.moved_to == 3
    assert not two.state.is_mirror(address)
    with pytest.raises(ReplicaUnavailable, match="tombstoned"):
        manager.read(address, "get_value", 1, prefer_chain=2, fallback=False)
    # Mid-move there is no active copy *anywhere*: even with fallback
    # the reader gets the typed error, never the locked source state.
    with pytest.raises(ReplicaUnavailable, match="no active copy"):
        manager.read(address, "get_value", 1, prefer_chain=2)


def test_move2_rehomes_mirrors_under_the_new_source():
    one, two, three, clock, address, manager = _world()
    manager.replicate(address, 1, [2])
    _go_live(manager, address, 2, one, clock)

    receipt = full_move(one, three, clock, ALICE, address)
    assert receipt.success, receipt.error

    # Move2 landed on chain 3: the manager re-homed the placement —
    # same targets, new source — and registered a fresh mirror.
    assert manager.rehomes == 1
    assert manager.source_of(address) == 3
    fresh = manager.mirror(address, 2)
    assert fresh is not None and fresh.status == SYNCING
    # Until it resyncs, reads fall back to the new active copy...
    assert manager.read(address, "get_value", 1, prefer_chain=2) == 42
    # ...and once chain 3 confirms, the mirror serves again, now fed
    # by the new source chain's proofs.
    _go_live(manager, address, 2, three, clock)
    run_tx(three, clock, ALICE, CallPayload(address, "put", (2, 7)))
    produce(three, clock, 3)
    assert fresh.status == LIVE
    assert two.view(address, "get_value", 2) == 7


def test_move2_onto_the_mirror_host_retires_the_mirror():
    one, two, three, clock, address, manager = _world()
    manager.replicate(address, 1, [2])
    _go_live(manager, address, 2, one, clock)

    receipt = full_move(one, two, clock, ALICE, address)
    assert receipt.success, receipt.error

    # The active copy now lives where the mirror did: the mirror
    # retires (re-homing skips the source chain itself) and reads on
    # chain 2 are primary reads.
    assert manager.source_of(address) == 2
    assert manager.mirrors(address) == {}
    assert not two.state.is_mirror(address)
    assert manager.read(address, "get_value", 1, prefer_chain=2) == 42
    # Writes work on chain 2 again — it is no longer read-only there.
    receipt = run_tx(two, clock, ALICE, CallPayload(address, "put", (3, 9)))
    assert receipt.success, receipt.error


# ----------------------------------------------------------------------
# The rebalancer's replicate-vs-move arm, actuated end to end
# ----------------------------------------------------------------------


def _skewed_view(address, read_rate):
    """Shard 0 hot with one hot contract; shard 1 cool and empty."""
    shards = {
        0: ShardLoad(0, {"utilization": 0.9}, 0.9),
        1: ShardLoad(1, {"utilization": 0.1}, 0.1),
    }
    return ShardLoadView(
        0.0,
        shards,
        {address: 1.0},
        {address: 0},
        contract_read_rate={address: read_rate},
    )


def test_read_dominated_contract_is_replicated_not_moved():
    one, two, three, clock, address, manager = _world()
    policy = RebalancePolicy(
        contract_cooldown=0.0, shard_cooldown=0.0, replicate_read_ratio=0.5
    )
    decisions = policy.decide(_skewed_view(address, read_rate=2.0), now=0.0)
    assert len(decisions) == 1
    decision = decisions[0]
    assert decision.action == "replicate"
    assert decision.source_shard == 0 and decision.target_shard == 1

    outcomes = []
    actuator = replication_actuator(manager)  # shard i -> chain i + 1
    actuator(decision, outcomes.append)
    assert outcomes == [True]

    # The decision became a real mirror: active copy stayed on chain 1,
    # reads fan out to chain 2 once the relay confirms.
    assert manager.source_of(address) == 1
    mirror = _go_live(manager, address, 2, one, clock)
    assert manager.read(address, "get_value", 1, prefer_chain=2) == 42
    assert one.location_of(address) == 1  # never moved


def test_write_dominated_contract_still_moves():
    _one, _two, _three, _clock, address, manager = _world()
    policy = RebalancePolicy(
        contract_cooldown=0.0, shard_cooldown=0.0, replicate_read_ratio=0.5
    )
    # Reads are negligible next to the hotness score: the classic arm.
    decisions = policy.decide(_skewed_view(address, read_rate=0.1), now=0.0)
    assert len(decisions) == 1
    assert decisions[0].action == "move"
    # Without a wired mover the actuator reports failure (and the
    # policy's cooldown throttles the retry) instead of replicating.
    outcomes = []
    replication_actuator(manager)(decisions[0], outcomes.append)
    assert outcomes == [False]
    assert manager.mirrors(address) == {}
