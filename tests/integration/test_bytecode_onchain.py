"""Raw bytecode contracts on-chain, moving between chains via OP_MOVE.

The deepest version of assumption (b): the same bytecode runs on both
chain flavours, the contract's own code executes ``OP_MOVE`` (no
Solidity-level hook involved), and the standard Move2 proof recreates
code + storage on the target chain.
"""

import pytest

from repro.chain.tx import BytecodeCallPayload, DeployBytecodePayload, Move2Payload
from repro.vm.assembler import assemble
from tests.helpers import ALICE, BOB, ManualClock, make_chain_pair, produce, run_tx

# A movable counter: storage slot 0 = count, slot 1 = owner.
# calldata word 0 selects: 1=increment, 2=read, 3=move(word 1 = target
# chain, owner only), 4=claim ownership (once).
COUNTER_SOURCE = """
    PUSH1 0
    CALLDATALOAD
    DUP1
    PUSH1 1
    EQ
    PUSH @inc
    JUMPI
    DUP1
    PUSH1 2
    EQ
    PUSH @read
    JUMPI
    DUP1
    PUSH1 3
    EQ
    PUSH @move
    JUMPI
    DUP1
    PUSH1 4
    EQ
    PUSH @init
    JUMPI
    PUSH1 0
    PUSH1 0
    REVERT

    inc:
    PUSH1 0
    SLOAD
    PUSH1 1
    ADD
    PUSH1 0
    SSTORE
    STOP

    read:
    PUSH1 0
    SLOAD
    PUSH1 0
    MSTORE
    PUSH1 32
    PUSH1 0
    RETURN

    init:
    PUSH1 1
    SLOAD
    ISZERO
    PUSH @doinit
    JUMPI
    PUSH1 0
    PUSH1 0
    REVERT
    doinit:
    CALLER
    PUSH1 1
    SSTORE
    STOP

    move:
    PUSH1 1
    SLOAD
    CALLER
    EQ
    PUSH @domove
    JUMPI
    PUSH1 0
    PUSH1 0
    REVERT
    domove:
    PUSH1 32
    CALLDATALOAD
    MOVE
    STOP
"""

COUNTER_CODE = assemble(COUNTER_SOURCE)


def selector(n, arg=None):
    data = n.to_bytes(32, "big")
    if arg is not None:
        data += arg.to_bytes(32, "big")
    return data


@pytest.fixture
def world():
    burrow, ethereum = make_chain_pair()
    clock = ManualClock()
    receipt = run_tx(burrow, clock, ALICE, DeployBytecodePayload(code=COUNTER_CODE))
    assert receipt.success, receipt.error
    counter = receipt.return_value
    assert run_tx(burrow, clock, ALICE, BytecodeCallPayload(counter, selector(4))).success
    return burrow, ethereum, clock, counter


def read_count(chain, clock, counter):
    receipt = run_tx(chain, clock, BOB, BytecodeCallPayload(counter, selector(2)))
    assert receipt.success, receipt.error
    return int.from_bytes(receipt.return_value, "big")


def test_bytecode_deploy_and_call(world):
    burrow, _ethereum, clock, counter = world
    assert run_tx(burrow, clock, ALICE, BytecodeCallPayload(counter, selector(1))).success
    assert run_tx(burrow, clock, BOB, BytecodeCallPayload(counter, selector(1))).success
    assert read_count(burrow, clock, counter) == 2


def test_unknown_selector_reverts(world):
    burrow, _ethereum, clock, counter = world
    receipt = run_tx(burrow, clock, ALICE, BytecodeCallPayload(counter, selector(9)))
    assert not receipt.success


def test_ownership_claim_only_once(world):
    burrow, _ethereum, clock, counter = world
    receipt = run_tx(burrow, clock, BOB, BytecodeCallPayload(counter, selector(4)))
    assert not receipt.success  # ALICE claimed in the fixture


def test_only_owner_triggers_op_move(world):
    burrow, ethereum, clock, counter = world
    refused = run_tx(
        burrow, clock, BOB, BytecodeCallPayload(counter, selector(3, ethereum.chain_id))
    )
    assert not refused.success
    assert not burrow.state.is_locked(counter)


def test_full_bytecode_move_roundtrip(world):
    burrow, ethereum, clock, counter = world
    run_tx(burrow, clock, ALICE, BytecodeCallPayload(counter, selector(1)))
    run_tx(burrow, clock, ALICE, BytecodeCallPayload(counter, selector(1)))

    # The contract moves ITSELF: a plain call whose code runs OP_MOVE.
    moved = run_tx(
        burrow, clock, ALICE, BytecodeCallPayload(counter, selector(3, ethereum.chain_id))
    )
    assert moved.success, moved.error
    assert burrow.state.is_locked(counter)
    # Locked: every bytecode call aborts at the source now.
    refused = run_tx(burrow, clock, BOB, BytecodeCallPayload(counter, selector(2)))
    assert not refused.success
    assert "ContractLocked" in refused.error

    # Standard Move2 with the standard proof bundle.
    inclusion = moved.block_height
    while burrow.height < burrow.proof_ready_height(inclusion):
        produce(burrow, clock)
    bundle = burrow.prove_contract_at(counter, inclusion)
    receipt = run_tx(ethereum, clock, BOB, Move2Payload(bundle=bundle))
    assert receipt.success, receipt.error

    # Same bytecode, same state, other chain — and it keeps working.
    assert read_count(ethereum, clock, counter) == 2
    assert run_tx(ethereum, clock, ALICE, BytecodeCallPayload(counter, selector(1))).success
    assert read_count(ethereum, clock, counter) == 3
    # Owner survives the move: BOB still cannot move it.
    refused = run_tx(
        ethereum, clock, BOB, BytecodeCallPayload(counter, selector(3, burrow.chain_id))
    )
    assert not refused.success


def test_move1_transaction_rejected_for_bytecode_contracts(world):
    from repro.chain.tx import Move1Payload

    burrow, ethereum, clock, counter = world
    receipt = run_tx(
        burrow, clock, ALICE, Move1Payload(contract=counter, target_chain=ethereum.chain_id)
    )
    assert not receipt.success
    assert "OP_MOVE" in receipt.error


def test_bytecode_deploy_charges_code_deposit():
    burrow, ethereum = make_chain_pair()
    clock = ManualClock()
    receipt_b = run_tx(burrow, clock, ALICE, DeployBytecodePayload(code=COUNTER_CODE))
    receipt_e = run_tx(ethereum, clock, ALICE, DeployBytecodePayload(code=COUNTER_CODE))
    # Burrow: no per-byte deposit; Ethereum: 200/byte.
    assert receipt_e.gas_used - receipt_b.gas_used == 200 * len(COUNTER_CODE)


def test_create2_style_bytecode_address():
    from repro.crypto.hashing import keccak
    from repro.crypto.keys import create2_address

    burrow, _ethereum = make_chain_pair()
    clock = ManualClock()
    receipt = run_tx(
        burrow, clock, ALICE, DeployBytecodePayload(code=COUNTER_CODE, salt=9)
    )
    assert receipt.return_value == create2_address(
        burrow.chain_id, ALICE.address, 9, keccak(COUNTER_CODE)
    )
