"""Move protocol vs. PoW reorgs (the paper's p-confirmation argument).

The source chain is Ethereum-flavoured (p = 6); the target observes it
through a fork-aware light client.  ``FaultInjector.reorg(chain, d)``
shows the target a competing branch whose deepest orphaned block had
``d`` confirmations:

* a Move1 still below ``p`` confirmations can be reorged out — the
  Move2 carrying its (now stale) proof must abort, and only a proof
  against the branch that finally sticks goes through;
* a Move1 buried ``p`` deep survives every absorbable reorg
  (``d <= p-1``) and its Move2 succeeds;
* a reorg at ``d >= p`` replaces a header peers were entitled to trust
  — the store must *detect* it (``deep_reorgs``), never absorb it.
"""

import pytest

from tests.helpers import ALICE, ManualClock, StoreContract, produce, run_tx
from repro.chain.chain import Chain
from repro.chain.params import burrow_params, ethereum_params
from repro.chain.tx import DeployPayload, Move1Payload, Move2Payload
from repro.core.registry import ChainRegistry
from repro.errors import FaultPlanError
from repro.faults import FaultInjector
from repro.ibc.headers import HeaderRelay
from repro.net.sim import Simulator

P = 6  # ethereum_params confirmation depth


def make_world():
    """PoW source (chain 1) + BFT target (chain 2) observing it
    fork-aware, with an injector aimed at the pair."""
    registry = ChainRegistry()
    source = Chain(ethereum_params(1), registry, verify_signatures=False)
    target = Chain(burrow_params(2), registry, verify_signatures=False)
    HeaderRelay(source, [target], fork_aware=True)
    injector = FaultInjector(
        Simulator(seed=77), chains={1: source, 2: target}, seed=77
    )
    clock = ManualClock()
    receipt = run_tx(
        source, clock, ALICE, DeployPayload(code_hash=StoreContract.CODE_HASH)
    )
    assert receipt.success, receipt.error
    return source, target, injector, clock, receipt.return_value


def store_of(target: Chain):
    return target.light_client.store_for(1)


def submit_move1(source, clock, contract):
    receipt = run_tx(
        source, clock, ALICE, Move1Payload(contract=contract, target_chain=2)
    )
    assert receipt.success, receipt.error
    return receipt.block_height


def test_unconfirmed_move1_reorged_out_aborts_move2():
    source, target, injector, clock, contract = make_world()
    inclusion = submit_move1(source, clock, contract)
    produce(source, clock, count=3)  # 3 confirmations: below p
    bundle = source.prove_contract_at(contract, inclusion)

    # The branch orphans everything up to depth 4 — Move1 included.
    injector.reorg(1, depth=4)
    store = store_of(target)
    assert store.reorgs == 1
    assert store.deep_reorgs == 0
    assert not store.is_canonical(source.blocks[inclusion].header)

    receipt = run_tx(target, clock, ALICE, Move2Payload(bundle=bundle))
    assert not receipt.success
    assert "root" in receipt.error.lower()  # VS rejected the stale proof
    assert target.state.contract(contract) is None  # nothing recreated

    # The honest chain outgrows the attacker branch; once the Move1
    # block is canonical again and p-deep, the same proof validates.
    while not store.is_canonical(source.blocks[inclusion].header) or not (
        store.is_confirmed(inclusion)
    ):
        produce(source, clock)
    receipt = run_tx(target, clock, ALICE, Move2Payload(bundle=bundle))
    assert receipt.success, receipt.error
    assert target.state.contract(contract).location == target.chain_id


def test_confirmed_move1_survives_absorbable_reorg():
    source, target, injector, clock, contract = make_world()
    inclusion = submit_move1(source, clock, contract)
    produce(source, clock, count=P)  # buried p deep: confirmed
    bundle = source.prove_contract_at(contract, inclusion)

    # The deepest absorbable reorg (d = p-1) forks exactly at the Move1
    # block; the block itself stays canonical.
    injector.reorg(1, depth=P - 1)
    store = store_of(target)
    assert store.reorgs == 1
    assert store.deep_reorgs == 0
    assert store.is_canonical(source.blocks[inclusion].header)

    receipt = run_tx(target, clock, ALICE, Move2Payload(bundle=bundle))
    assert receipt.success, receipt.error
    assert target.state.contract(contract).location == target.chain_id


def test_p_deep_reorg_is_detected_not_absorbed():
    source, target, injector, clock, contract = make_world()
    produce(source, clock, count=P + 2)
    store = store_of(target)
    confirmed_height = store.head_height - P
    assert store.is_confirmed(confirmed_height)
    trusted_before = store.trusted_state_root(confirmed_height)
    assert trusted_before is not None

    injector.reorg(1, depth=P)
    assert store.reorgs == 1
    assert store.deep_reorgs == 1  # a trusted header was replaced
    # The once-trusted root no longer validates.
    assert store.trusted_state_root(confirmed_height) != trusted_before


def test_reorg_depth_validation():
    source, _target, injector, clock, _contract = make_world()
    with pytest.raises(FaultPlanError):
        injector.reorg(1, depth=source.height + 5)
    with pytest.raises(FaultPlanError):
        injector.reorg(1, depth=0)
