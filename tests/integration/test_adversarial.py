"""Adversarial / failure-injection scenarios for the Move protocol.

Beyond the happy path: forged state on a chain the light client never
confirmed, proofs targeting the wrong heights, gas exhaustion inside
Move2, duplicate Move2 races in one block, and the trust boundary of
the header relay.
"""

import dataclasses

import pytest

from repro.chain.chain import Chain
from repro.chain.params import burrow_params
from repro.chain.tx import CallPayload, Move1Payload, Move2Payload, sign_transaction
from repro.core.registry import ChainRegistry
from repro.ibc.headers import connect_chains
from tests.helpers import (
    ALICE,
    BOB,
    ManualClock,
    StoreContract,
    deploy_store,
    make_chain_pair,
    produce,
    run_tx,
)


def prepare_move(burrow, ethereum, clock):
    addr = deploy_store(burrow, clock, ALICE)
    run_tx(burrow, clock, ALICE, CallPayload(addr, "put", (1, 100)))
    receipt = run_tx(
        burrow, clock, ALICE, Move1Payload(contract=addr, target_chain=ethereum.chain_id)
    )
    inclusion = receipt.block_height
    while burrow.height < burrow.proof_ready_height(inclusion):
        produce(burrow, clock)
    return addr, inclusion


def test_proof_from_unconfirmed_fork_chain_rejected():
    # An attacker runs a private fork of the source chain (same chain
    # id, richer state) and presents a perfectly self-consistent proof
    # from it.  The honest target's light client only saw the honest
    # chain's headers, so VS fails.
    registry = ChainRegistry()
    honest_params = burrow_params(1)
    honest = Chain(honest_params, registry)
    target = Chain(burrow_params(2), registry)
    connect_chains([honest, target])

    fork_registry = ChainRegistry()
    fork = Chain(burrow_params(1), fork_registry)  # same chain id!
    clock = ManualClock()

    # Honest chain: just produce some blocks so the target tracks it.
    produce(honest, clock, 6)

    # Fork: full, valid-looking move of a contract the honest chain
    # never had.
    addr = deploy_store(fork, clock, ALICE)
    run_tx(fork, clock, ALICE, CallPayload(addr, "put", (1, 999_999)))
    receipt = run_tx(fork, clock, ALICE, Move1Payload(contract=addr, target_chain=2))
    while fork.height < fork.proof_ready_height(receipt.block_height):
        produce(fork, clock)
    forged_bundle = fork.prove_contract_at(addr, receipt.block_height)

    # Self-consistent — but the target never confirmed that root.
    result = run_tx(target, clock, BOB, Move2Payload(bundle=forged_bundle))
    assert not result.success
    assert "UnknownRootError" in result.error
    assert target.state.contract(addr) is None


def test_bundle_with_mismatched_proof_height_rejected():
    burrow, ethereum, = make_chain_pair()
    clock = ManualClock()
    addr, inclusion = prepare_move(burrow, ethereum, clock)
    bundle = burrow.prove_contract_at(addr, inclusion)
    # Claim the proof belongs to a different (also confirmed) height:
    # the root stored in that header differs, so VS fails.
    lied = dataclasses.replace(bundle, proof_height=bundle.proof_height - 1)
    result = run_tx(ethereum, clock, BOB, Move2Payload(bundle=lied))
    assert not result.success


def test_bundle_storage_tampering_rejected():
    burrow, ethereum = make_chain_pair()
    clock = ManualClock()
    addr, inclusion = prepare_move(burrow, ethereum, clock)
    bundle = burrow.prove_contract_at(addr, inclusion)
    tampered_storage = dict(bundle.storage)
    some_key = next(iter(tampered_storage))
    tampered_storage[some_key] = b"\xff" * 32
    forged = dataclasses.replace(bundle, storage=tampered_storage)
    result = run_tx(ethereum, clock, BOB, Move2Payload(bundle=forged))
    assert not result.success
    assert "ProofError" in result.error


def test_bundle_code_substitution_rejected():
    # Swapping in different (registered) code of the same length must
    # fail: the code hash is committed in the account leaf.
    from repro.apps.store import StateStore

    burrow, ethereum = make_chain_pair()
    clock = ManualClock()
    addr, inclusion = prepare_move(burrow, ethereum, clock)
    bundle = burrow.prove_contract_at(addr, inclusion)
    forged = dataclasses.replace(bundle, code=StateStore.CODE)
    result = run_tx(ethereum, clock, BOB, Move2Payload(bundle=forged))
    assert not result.success


def test_move_nonce_inflation_rejected():
    # Claiming a higher nonce (to pre-poison future replays) breaks VP
    # because the nonce is part of the committed leaf.
    burrow, ethereum = make_chain_pair()
    clock = ManualClock()
    addr, inclusion = prepare_move(burrow, ethereum, clock)
    bundle = burrow.prove_contract_at(addr, inclusion)
    forged = dataclasses.replace(bundle, move_nonce=bundle.move_nonce + 10)
    result = run_tx(ethereum, clock, BOB, Move2Payload(bundle=forged))
    assert not result.success


def test_out_of_gas_move2_leaves_target_untouched():
    burrow, ethereum = make_chain_pair()
    clock = ManualClock()
    addr, inclusion = prepare_move(burrow, ethereum, clock)
    bundle = burrow.prove_contract_at(addr, inclusion)
    ethereum.executor.tx_gas_limit = 40_000  # not enough for recreation
    try:
        result = run_tx(ethereum, clock, BOB, Move2Payload(bundle=bundle))
        assert not result.success
        assert "OutOfGas" in result.error
        assert ethereum.state.contract(addr) is None
    finally:
        ethereum.executor.tx_gas_limit = 50_000_000
    # With normal gas the same bundle still works (no poisoning).
    retry = run_tx(ethereum, clock, BOB, Move2Payload(bundle=bundle))
    assert retry.success, retry.error


def test_duplicate_move2_in_same_block_second_aborts():
    burrow, ethereum = make_chain_pair()
    clock = ManualClock()
    addr, inclusion = prepare_move(burrow, ethereum, clock)
    bundle = burrow.prove_contract_at(addr, inclusion)
    tx1 = sign_transaction(ALICE, Move2Payload(bundle=bundle))
    tx2 = sign_transaction(BOB, Move2Payload(bundle=bundle))
    ethereum.submit(tx1)
    ethereum.submit(tx2)
    produce(ethereum, clock)
    r1 = ethereum.receipts[tx1.tx_id]
    r2 = ethereum.receipts[tx2.tx_id]
    assert r1.success, r1.error
    assert not r2.success
    assert "ReplayError" in r2.error
    # State is the single recreated contract.
    assert ethereum.view(addr, "get_value", 1) == 100


def test_header_relay_is_the_trust_boundary():
    # The light client trusts whatever headers it is fed (in the real
    # systems, header validity is enforced by verifying the source
    # chain's consensus).  Demonstrate the boundary: headers of an
    # unobserved chain are refused outright.
    from repro.chain.block import GENESIS_PARENT, BlockHeader
    from repro.errors import StateError

    chain = Chain(burrow_params(5))
    rogue = BlockHeader(
        chain_id=99, height=0, parent_hash=GENESIS_PARENT,
        state_root=b"\x00" * 32, txs_root=b"\x00" * 32, timestamp=0.0,
    )
    with pytest.raises(StateError):
        chain.ingest_header(rogue)


def test_move1_reverting_hook_leaves_no_partial_lock():
    # The custom moveTo guard reverts *after* reading state: the whole
    # Move1 must unwind, leaving the contract active and its move nonce
    # untouched.
    burrow, ethereum = make_chain_pair()
    clock = ManualClock()
    addr = deploy_store(burrow, clock, ALICE)
    before_nonce = burrow.state.contract(addr).move_nonce
    refused = run_tx(
        burrow, clock, BOB,  # not the owner -> hook reverts
        Move1Payload(contract=addr, target_chain=ethereum.chain_id),
    )
    assert not refused.success
    record = burrow.state.contract(addr)
    assert record.location == burrow.chain_id
    assert record.move_nonce == before_nonce
    # Still fully usable.
    assert run_tx(burrow, clock, ALICE, CallPayload(addr, "put", (9, 9))).success
