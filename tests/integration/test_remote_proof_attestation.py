"""The generic Merkle-proof attestation path (§V-A's "more generic
method") end to end.

Two SAccounts of a Burrow-chain SCoin move to the Ethereum chain and
transfer tokens there by *proving* sibling origin against the parent
chain's p-confirmed headers — no CREATE2 recomputation involved.
"""

import dataclasses

import pytest

from repro.apps.scoin import SAccount, SCoin
from repro.chain.tx import CallPayload, DeployPayload
from repro.core.proofs import RemoteStateProof
from repro.errors import ProofError
from tests.helpers import (
    ALICE,
    BOB,
    CAROL,
    ManualClock,
    full_move,
    make_chain_pair,
    produce,
    run_tx,
)


@pytest.fixture
def proved_world():
    burrow, ethereum = make_chain_pair()
    clock = ManualClock()
    token = run_tx(burrow, clock, ALICE, DeployPayload(code_hash=SCoin.CODE_HASH)).return_value
    acc_a, salt_a = run_tx(burrow, clock, ALICE, CallPayload(token, "new_account")).return_value
    acc_b, salt_b = run_tx(burrow, clock, BOB, CallPayload(token, "new_account")).return_value
    run_tx(burrow, clock, ALICE, CallPayload(token, "mint_to", (acc_a, 100)))
    assert full_move(burrow, ethereum, clock, ALICE, acc_a).success
    assert full_move(burrow, ethereum, clock, BOB, acc_b).success

    # Build membership proofs of the parent's accounts map at a height
    # the Ethereum chain's light client has p-confirmed.
    height = burrow.height
    produce(burrow, clock, burrow.params.confirmation_depth + burrow.params.state_root_lag)
    proof_a = burrow.prove_storage_entry(token, SCoin.account_map_key(salt_a), height)
    proof_b = burrow.prove_storage_entry(token, SCoin.account_map_key(salt_b), height)
    return burrow, ethereum, clock, token, (acc_a, salt_a, proof_a), (acc_b, salt_b, proof_b)


def test_proof_attested_transfer(proved_world):
    _burrow, ethereum, clock, _token, a, b = proved_world
    acc_a, salt_a, proof_a = a
    acc_b, salt_b, proof_b = b
    receipt = run_tx(
        ethereum, clock, ALICE,
        CallPayload(
            acc_a, "transfer_tokens_with_proofs",
            (acc_b, 40, salt_b, proof_b, salt_a, proof_a),
        ),
    )
    assert receipt.success, receipt.error
    assert ethereum.view(acc_a, "token_balance") == 60
    assert ethereum.view(acc_b, "token_balance") == 40


def test_forged_account_fails_proof_attestation(proved_world):
    # A hand-deployed SAccount cannot present a valid membership proof
    # (it is not in the parent's accounts map).
    _burrow, ethereum, clock, _token, a, b = proved_world
    acc_a, salt_a, proof_a = a
    _acc_b, salt_b, proof_b = b
    forged = run_tx(
        ethereum, clock, CAROL,
        DeployPayload(code_hash=SAccount.CODE_HASH, args=(CAROL.address, salt_b)),
    ).return_value
    receipt = run_tx(
        ethereum, clock, ALICE,
        CallPayload(
            acc_a, "transfer_tokens_with_proofs",
            (forged, 40, salt_b, proof_b, salt_a, proof_a),
        ),
    )
    assert not receipt.success
    assert "different account" in receipt.error


def test_tampered_remote_proof_rejected(proved_world):
    _burrow, ethereum, clock, _token, a, b = proved_world
    acc_a, salt_a, proof_a = a
    acc_b, salt_b, proof_b = b
    # Claim the proof is for a different (higher) height: VS fails.
    lied = dataclasses.replace(proof_b, height=proof_b.height + 1)
    receipt = run_tx(
        ethereum, clock, ALICE,
        CallPayload(
            acc_a, "transfer_tokens_with_proofs",
            (acc_b, 40, salt_b, lied, salt_a, proof_a),
        ),
    )
    assert not receipt.success
    assert "remote proof rejected" in receipt.error


def test_wrong_salt_rejected(proved_world):
    _burrow, ethereum, clock, _token, a, b = proved_world
    acc_a, salt_a, proof_a = a
    acc_b, salt_b, proof_b = b
    receipt = run_tx(
        ethereum, clock, ALICE,
        CallPayload(
            acc_a, "transfer_tokens_with_proofs",
            (acc_b, 40, salt_b + 7, proof_b, salt_a, proof_a),
        ),
    )
    assert not receipt.success
    assert "different salt" in receipt.error


def test_prove_storage_entry_validates_inputs():
    burrow, _ethereum = make_chain_pair()
    clock = ManualClock()
    token = run_tx(burrow, clock, ALICE, DeployPayload(code_hash=SCoin.CODE_HASH)).return_value
    with pytest.raises(ProofError, match="no storage entry"):
        burrow.prove_storage_entry(token, b"\x00" * 32, burrow.height)
    from repro.crypto.keys import KeyPair

    with pytest.raises(ProofError, match="no contract"):
        burrow.prove_storage_entry(
            KeyPair.from_name("ghost").address, b"\x00" * 32, burrow.height
        )


def test_remote_proof_verifies_directly_with_light_client(proved_world):
    burrow, ethereum, _clock, token, a, _b = proved_world
    _acc_a, _salt_a, proof_a = a
    assert proof_a.verify(ethereum.light_client)
    # The source chain's own light client does not track itself.
    assert not proof_a.verify(burrow.light_client)