"""Integration: the paper's applications moving across chains.

SCoin cross-chain token transfer (Section V-A / VIII), ScalableKitties
cross-chain breeding (Section V-B / VIII), Store-N state transfer, and
the Fig. 3 currency relay.
"""

import pytest

from repro.apps.kitties import Kitty, KittyRegistry
from repro.apps.scoin import SAccount, SCoin
from repro.apps.store import StateStore
from repro.chain.tx import CallPayload, DeployPayload, Move2Payload
from repro.core.relay import CurrencyRelay, RelayedFunds
from tests.helpers import (
    ALICE,
    BOB,
    CAROL,
    ManualClock,
    full_move,
    make_chain_pair,
    produce,
    run_tx,
)


@pytest.fixture
def pair():
    burrow, ethereum = make_chain_pair()
    burrow.fund({ALICE.address: 100_000, BOB.address: 100_000})
    ethereum.fund({ALICE.address: 100_000, BOB.address: 100_000})
    return burrow, ethereum, ManualClock()


def test_scoin_cross_chain_transfer(pair):
    # The Section VIII SCoin scenario: move Alice's account to the
    # other chain, then transfer tokens to an account living there.
    burrow, ethereum, clock = pair
    token = run_tx(burrow, clock, ALICE, DeployPayload(code_hash=SCoin.CODE_HASH)).return_value
    acc_a, _ = run_tx(burrow, clock, ALICE, CallPayload(token, "new_account")).return_value
    acc_b, _ = run_tx(burrow, clock, BOB, CallPayload(token, "new_account")).return_value
    run_tx(burrow, clock, ALICE, CallPayload(token, "mint_to", (acc_a, 100)))
    run_tx(burrow, clock, ALICE, CallPayload(token, "mint_to", (acc_b, 50)))

    # Bob's account moves to Ethereum first.
    assert full_move(burrow, ethereum, clock, BOB, acc_b).success
    # A same-chain transfer on Burrow now fails: the target moved away.
    refused = run_tx(burrow, clock, ALICE, CallPayload(acc_a, "transfer_tokens", (acc_b, 10)))
    assert not refused.success
    # Alice moves her account to Ethereum and transfers there.
    assert full_move(burrow, ethereum, clock, ALICE, acc_a).success
    receipt = run_tx(ethereum, clock, ALICE, CallPayload(acc_a, "transfer_tokens", (acc_b, 10)))
    assert receipt.success, receipt.error
    assert ethereum.view(acc_a, "token_balance") == 90
    assert ethereum.view(acc_b, "token_balance") == 60
    # Global conservation across chains (active copies only).
    assert ethereum.view(acc_a, "token_balance") + ethereum.view(acc_b, "token_balance") == 150


def test_kitties_cross_chain_breeding(pair):
    # Section VIII's ScalableKitties scenario: move a cat, breed it
    # with a resident cat, give birth on the target chain.
    burrow, ethereum, clock = pair
    registry_b = run_tx(burrow, clock, ALICE, DeployPayload(code_hash=KittyRegistry.CODE_HASH)).return_value
    registry_e = run_tx(ethereum, clock, ALICE, DeployPayload(code_hash=KittyRegistry.CODE_HASH)).return_value
    travelling = run_tx(
        burrow, clock, ALICE, CallPayload(registry_b, "create_promo_kitty", (BOB.address,))
    ).return_value
    resident = run_tx(
        ethereum, clock, ALICE, CallPayload(registry_e, "create_promo_kitty", (BOB.address,))
    ).return_value

    # Breeding across chains is impossible directly:
    refused = run_tx(ethereum, clock, BOB, CallPayload(resident, "breed_with", (travelling,)))
    assert not refused.success

    assert full_move(burrow, ethereum, clock, BOB, travelling).success
    assert run_tx(ethereum, clock, BOB, CallPayload(resident, "breed_with", (travelling,))).success
    receipt = run_tx(ethereum, clock, BOB, CallPayload(resident, "give_birth"))
    assert receipt.success, receipt.error
    child = receipt.return_value
    assert ethereum.view(child, "get_owner") == BOB.address
    assert ethereum.view(child, "lineage")[3] == 1  # generation 1


@pytest.mark.parametrize("n", [1, 10, 100])
def test_store_n_state_transfer(pair, n):
    burrow, ethereum, clock = pair
    store = run_tx(
        burrow, clock, ALICE, DeployPayload(code_hash=StateStore.CODE_HASH, args=(n,))
    ).return_value
    expected = [burrow.view(store, "value_at", i) for i in range(n)]
    receipt = full_move(burrow, ethereum, clock, ALICE, store)
    assert receipt.success, receipt.error
    for i in range(n):
        assert ethereum.view(store, "value_at", i) == expected[i]
    # Move2 gas grows with the slot count (Fig. 9's shape).
    assert receipt.gas_used >= n * 20_000


def test_currency_relay_fig3(pair):
    # Fig. 3: lock e on B1, mint pegged tokens on B2, burn, return, redeem.
    burrow, ethereum, clock = pair
    relay = run_tx(burrow, clock, ALICE, DeployPayload(code_hash=CurrencyRelay.CODE_HASH)).return_value
    e = 700
    receipt = run_tx(
        burrow, clock, ALICE,
        CallPayload(relay, "create", (ethereum.chain_id, BOB.address), value=e),
    )
    assert receipt.success, receipt.error
    escrow = receipt.return_value
    # Born locked at the source: no mutation possible on Burrow.
    assert burrow.state.is_locked(escrow)
    assert burrow.balance_of(escrow) == e

    # Anyone completes the move with the proof (client2 in Fig. 3).
    inclusion = receipt.block_height
    while burrow.height < burrow.proof_ready_height(inclusion):
        produce(burrow, clock)
    bundle = burrow.prove_contract_at(escrow, inclusion)
    move2 = run_tx(ethereum, clock, BOB, Move2Payload(bundle=bundle))
    assert move2.success, move2.error

    # Tmint: Bob mints the pegged representation on Ethereum.
    mint = run_tx(ethereum, clock, BOB, CallPayload(escrow, "mint"))
    assert mint.success, mint.error
    assert ethereum.view(escrow, "minted_amount") == e
    # Cannot mint twice, cannot move home with live tokens.
    assert not run_tx(ethereum, clock, BOB, CallPayload(escrow, "mint")).success
    from repro.chain.tx import Move1Payload

    stuck = run_tx(
        ethereum, clock, BOB, Move1Payload(contract=escrow, target_chain=burrow.chain_id)
    )
    assert not stuck.success

    # Burn, move home, redeem the native currency.
    assert run_tx(ethereum, clock, BOB, CallPayload(escrow, "burn")).success
    assert full_move(ethereum, burrow, clock, BOB, escrow).success
    bob_before = burrow.balance_of(BOB.address)
    redeem = run_tx(burrow, clock, BOB, CallPayload(escrow, "redeem"))
    assert redeem.success, redeem.error
    assert burrow.balance_of(BOB.address) == bob_before + e


def test_relay_redeem_only_at_home(pair):
    burrow, ethereum, clock = pair
    relay = run_tx(burrow, clock, ALICE, DeployPayload(code_hash=CurrencyRelay.CODE_HASH)).return_value
    receipt = run_tx(
        burrow, clock, ALICE,
        CallPayload(relay, "create", (ethereum.chain_id, BOB.address), value=100),
    )
    escrow = receipt.return_value
    inclusion = receipt.block_height
    while burrow.height < burrow.proof_ready_height(inclusion):
        produce(burrow, clock)
    bundle = burrow.prove_contract_at(escrow, inclusion)
    assert run_tx(ethereum, clock, BOB, Move2Payload(bundle=bundle)).success
    refused = run_tx(ethereum, clock, BOB, CallPayload(escrow, "redeem"))
    assert not refused.success
    assert "only at home" in refused.error
