"""Moves across more than two chains.

Nothing in the protocol is pairwise: with a full header mesh, any chain
verifies any other's proofs.  A contract tours three chains; the
locator follows its forwarding trail; replay protection holds across
the whole itinerary.
"""

import pytest

from repro.chain.chain import Chain
from repro.chain.params import burrow_params, ethereum_params
from repro.chain.tx import CallPayload, Move1Payload, Move2Payload
from repro.core.locator import ContractLocator
from repro.core.registry import ChainRegistry
from repro.ibc.headers import connect_chains
from tests.helpers import ALICE, BOB, ManualClock, StoreContract, deploy_store, produce, run_tx


@pytest.fixture
def trio():
    registry = ChainRegistry()
    chains = [
        Chain(burrow_params(1), registry),
        Chain(ethereum_params(2), registry),
        Chain(burrow_params(3, name="burrow-3"), registry),
    ]
    connect_chains(chains)
    return chains, ManualClock()


def hop(source, target, clock, mover, contract):
    receipt = run_tx(
        source, clock, mover, Move1Payload(contract=contract, target_chain=target.chain_id)
    )
    assert receipt.success, receipt.error
    inclusion = receipt.block_height
    while source.height < source.proof_ready_height(inclusion):
        produce(source, clock)
    bundle = source.prove_contract_at(contract, inclusion)
    result = run_tx(target, clock, mover, Move2Payload(bundle=bundle))
    assert result.success, result.error
    return bundle


def test_contract_tours_three_chains(trio):
    chains, clock = trio
    c1, c2, c3 = chains
    addr = deploy_store(c1, clock, ALICE)
    run_tx(c1, clock, ALICE, CallPayload(addr, "put", (1, 11)))

    hop(c1, c2, clock, ALICE, addr)
    assert run_tx(c2, clock, ALICE, CallPayload(addr, "put", (2, 22))).success

    hop(c2, c3, clock, ALICE, addr)
    assert c3.view(addr, "get_value", 1) == 11
    assert c3.view(addr, "get_value", 2) == 22
    assert run_tx(c3, clock, ALICE, CallPayload(addr, "put", (3, 33))).success

    hop(c3, c1, clock, ALICE, addr)
    assert c1.view(addr, "get_value", 3) == 33
    assert not c1.state.is_locked(addr)
    # Itinerary of three completed moves.
    assert c1.state.contract(addr).move_nonce == 3


def test_locator_follows_multi_hop_trail(trio):
    chains, clock = trio
    c1, c2, c3 = chains
    addr = deploy_store(c1, clock, ALICE)
    hop(c1, c2, clock, ALICE, addr)
    hop(c2, c3, clock, ALICE, addr)

    locator = ContractLocator.over_chains(chains)
    # From the origin, the trail is 1 -> 2 -> 3.
    assert locator.locate(addr, start_chain=1) == 3
    assert locator.locate(addr, start_chain=2) == 3
    assert locator.locate(addr, start_chain=3) == 3


def test_replay_on_any_chain_of_the_itinerary_fails(trio):
    chains, clock = trio
    c1, c2, c3 = chains
    addr = deploy_store(c1, clock, ALICE)
    bundle_to_2 = hop(c1, c2, clock, ALICE, addr)
    bundle_to_3 = hop(c2, c3, clock, ALICE, addr)
    hop(c3, c1, clock, ALICE, addr)

    replay2 = run_tx(c2, clock, BOB, Move2Payload(bundle=bundle_to_2))
    assert not replay2.success
    assert "ReplayError" in replay2.error
    replay3 = run_tx(c3, clock, BOB, Move2Payload(bundle=bundle_to_3))
    assert not replay3.success
    assert "ReplayError" in replay3.error


def test_wrong_target_chain_in_mesh_rejected(trio):
    # Move1 names chain 3, but the bundle is submitted at chain 2.
    chains, clock = trio
    c1, c2, c3 = chains
    addr = deploy_store(c1, clock, ALICE)
    receipt = run_tx(c1, clock, ALICE, Move1Payload(contract=addr, target_chain=3))
    inclusion = receipt.block_height
    while c1.height < c1.proof_ready_height(inclusion):
        produce(c1, clock)
    bundle = c1.prove_contract_at(addr, inclusion)
    wrong = run_tx(c2, clock, ALICE, Move2Payload(bundle=bundle))
    assert not wrong.success
    assert "MoveError" in wrong.error
    # The intended chain still accepts it.
    right = run_tx(c3, clock, ALICE, Move2Payload(bundle=bundle))
    assert right.success, right.error
