"""End-to-end tracing: one trace per cross-chain move, spanning both
chains, deterministic across identically seeded runs.

These are the PR's acceptance properties:

* a move under live consensus yields **one trace** whose spans cover
  both the source and the target chain, with monotonically ordered
  simulated timestamps and the full Move2 verification event sequence;
* two chaos runs with the same ``FaultPlan`` seed export
  **byte-identical** span JSONL (the FoundationDB-style determinism
  promise extended to observability);
* disabled telemetry changes nothing about the run's results.
"""

import json

from repro.faults.chaos import run_chaos
from repro.ibc.scenarios import BURROW_ID, ETHEREUM_ID, IBCExperiment
from repro.telemetry import Telemetry
from repro.telemetry.exporters import registry_to_prometheus, spans_to_jsonl
from repro.telemetry.phases import trace_phases


def _traced_scoin(seed=7):
    telemetry = Telemetry.enabled()
    experiment = IBCExperiment(seed=seed, telemetry=telemetry)
    phases = experiment.run_app("scoin", BURROW_ID, ETHEREUM_ID)
    return telemetry, phases


def test_move_trace_spans_both_chains():
    telemetry, phases = _traced_scoin()
    spans = telemetry.tracer.finished_spans()
    traces = trace_phases(spans)
    # SCoin runs one setup move (the destination account) plus the
    # measured move; each yields exactly one trace.
    assert len(traces) == 2
    measured = traces[-1]
    trace_spans = [s for s in spans if s.trace_id == measured.trace_id]
    chains = {s.attrs["chain"] for s in trace_spans if "chain" in s.attrs}
    assert {BURROW_ID, ETHEREUM_ID} <= chains


def test_move_trace_timestamps_monotonic():
    telemetry, _phases = _traced_scoin()
    spans = telemetry.tracer.finished_spans()
    for trace in trace_phases(spans):
        trace_spans = sorted(
            (s for s in spans if s.trace_id == trace.trace_id),
            key=lambda s: (s.start, s.span_id),
        )
        for span in trace_spans:
            assert span.end_time >= span.start
        starts = [s.start for s in trace_spans]
        assert starts == sorted(starts)
        root = next(s for s in trace_spans if s.parent_id is None)
        for span in trace_spans:
            assert root.start <= span.start
            assert span.end_time <= root.end_time


def test_move_trace_event_sequence():
    telemetry, _phases = _traced_scoin()
    spans = telemetry.tracer.finished_spans()
    measured = trace_phases(spans)[-1]
    events = [
        (e.time, e.name)
        for s in sorted(
            (s for s in spans if s.trace_id == measured.trace_id),
            key=lambda s: (s.start, s.span_id),
        )
        for e in s.events
    ]
    # Stable sort on time only: events sharing a simulated timestamp
    # (e.g. the Move2 verification steps) keep their emission order.
    events.sort(key=lambda pair: pair[0])
    names = [name for _t, name in events]
    for required in (
        "mempool.admit",
        "move1.locked",
        "relay.forward",
        "lightclient.accept",
        "move2.vs_ok",
        "move2.vp_ok",
        "move2.nonce_ok",
        "move2.storage_replayed",
        "move2.move_finish",
    ):
        assert required in names, f"missing {required} in {names}"
    # Protocol order: lock before the header hop, VS before VP before
    # the replay-guard check before storage replay before moveFinish.
    assert names.index("move1.locked") < names.index("lightclient.accept")
    vs = names.index("move2.vs_ok")
    assert vs < names.index("move2.vp_ok") < names.index("move2.nonce_ok")
    assert names.index("move2.nonce_ok") < names.index("move2.storage_replayed")
    assert names.index("move2.storage_replayed") < names.index("move2.move_finish")


def test_phase_durations_match_bridge_bookkeeping():
    telemetry, phases = _traced_scoin()
    measured = trace_phases(telemetry.tracer.finished_spans())[-1]
    assert abs(measured.phase("move1") - phases.move1_time) < 1e-6
    assert (
        abs(
            measured.phase("confirm.wait")
            + measured.phase("proof.build")
            - phases.wait_proof_time
        )
        < 1e-6
    )
    assert abs(measured.phase("move2") - phases.move2_time) < 1e-6
    assert abs(measured.phase("complete") - phases.complete_time) < 1e-6
    assert abs(measured.total - phases.total_time) < 1e-6


def _chaos_export(seed, duration=150.0):
    telemetry = Telemetry.enabled()
    report = run_chaos(seed, duration=duration, workload="scoin", telemetry=telemetry)
    jsonl = spans_to_jsonl(telemetry.tracer.finished_spans())
    prom = registry_to_prometheus(telemetry.metrics)
    return jsonl, prom, report


def test_chaos_trace_export_deterministic():
    """Two runs, same seed, same process: byte-identical exports."""
    jsonl_a, prom_a, report_a = _chaos_export(42)
    jsonl_b, prom_b, report_b = _chaos_export(42)
    assert jsonl_a == jsonl_b
    assert prom_a == prom_b
    assert report_a.moves_completed == report_b.moves_completed
    assert report_a.injected == report_b.injected
    # The export is real: it holds complete move traces.
    assert jsonl_a
    roots = [
        json.loads(line)
        for line in jsonl_a.splitlines()
        if json.loads(line)["parent"] is None
    ]
    assert roots and all(r["name"] == "move" for r in roots)


def test_chaos_faults_tagged_on_traces():
    jsonl, _prom, report = _chaos_export(42)
    assert sum(report.injected.values()) > 0
    fault_events = [
        event
        for line in jsonl.splitlines()
        for event in json.loads(line)["events"]
        if event["name"] == "fault.injected"
    ]
    assert fault_events, "plan faults should tag overlapping move traces"
    assert all("kind" in e["attrs"] for e in fault_events)


def test_disabled_telemetry_is_inert():
    """A chaos run with default (disabled) telemetry matches a traced
    run's report — instrumentation must not perturb the simulation."""
    untraced = run_chaos(9, duration=120.0, workload="scoin")
    telemetry = Telemetry.enabled()
    traced = run_chaos(9, duration=120.0, workload="scoin", telemetry=telemetry)
    assert untraced.moves_completed == traced.moves_completed
    assert untraced.blocks == traced.blocks
    assert untraced.injected == traced.injected
    assert telemetry.tracer.finished_spans()  # and the traced run recorded
