"""Integration tests: atomic cross-chain currency swap (§IX extension).

Safety claims under test: the happy path swaps exactly e1 against e2;
neither party can take both amounts; an unfilled offer refunds after
the deadline; the griefing paths (maker yanking an open offer early,
strangers filling/claiming) all abort.
"""

import pytest

from repro.chain.tx import CallPayload, DeployPayload, Move1Payload, Move2Payload
from repro.core.swap import SwapFactory
from tests.helpers import (
    ALICE,
    BOB,
    CAROL,
    ManualClock,
    full_move,
    make_chain_pair,
    produce,
    run_tx,
)

E1 = 500  # maker's offer (chain-1 native)
E2 = 800  # taker's ask price (chain-2 native)


@pytest.fixture
def swap_world():
    burrow, ethereum = make_chain_pair()
    clock = ManualClock()
    burrow.fund({ALICE.address: 1_000})
    ethereum.fund({BOB.address: 1_000})
    factory = run_tx(
        burrow, clock, ALICE, DeployPayload(code_hash=SwapFactory.CODE_HASH)
    ).return_value
    receipt = run_tx(
        burrow, clock, ALICE,
        CallPayload(factory, "open", (ethereum.chain_id, BOB.address, E2, 10_000), value=E1),
    )
    escrow = receipt.return_value
    return burrow, ethereum, clock, escrow, receipt.block_height


def ship(source, target, clock, mover, escrow, inclusion):
    while source.height < source.proof_ready_height(inclusion):
        produce(source, clock)
    bundle = source.prove_contract_at(escrow, inclusion)
    return run_tx(target, clock, mover, Move2Payload(bundle=bundle))


def test_happy_path_swaps_both_ways(swap_world):
    burrow, ethereum, clock, escrow, inclusion = swap_world
    # Escrow is born locked on chain 1, holding E1.
    assert burrow.state.is_locked(escrow)
    assert burrow.balance_of(escrow) == E1
    assert burrow.balance_of(ALICE.address) == 1_000 - E1

    assert ship(burrow, ethereum, clock, BOB, escrow, inclusion).success
    # Bob fills on chain 2: Alice is paid E2 immediately.
    fill = run_tx(ethereum, clock, BOB, CallPayload(escrow, "fill", value=E2))
    assert fill.success, fill.error
    assert ethereum.balance_of(ALICE.address) == E2
    assert ethereum.balance_of(BOB.address) == 1_000 - E2

    # Bob brings the escrow home and claims E1.
    assert full_move(ethereum, burrow, clock, BOB, escrow).success
    claim = run_tx(burrow, clock, BOB, CallPayload(escrow, "claim"))
    assert claim.success, claim.error
    assert burrow.balance_of(BOB.address) == E1
    # Conservation on both chains (escrow drained).
    assert burrow.balance_of(escrow) == 0


def test_overpayment_refunded_on_fill(swap_world):
    burrow, ethereum, clock, escrow, inclusion = swap_world
    ship(burrow, ethereum, clock, BOB, escrow, inclusion)
    assert run_tx(ethereum, clock, BOB, CallPayload(escrow, "fill", value=E2 + 50)).success
    assert ethereum.balance_of(BOB.address) == 1_000 - E2
    assert ethereum.balance_of(ALICE.address) == E2


def test_stranger_cannot_fill_or_claim(swap_world):
    burrow, ethereum, clock, escrow, inclusion = swap_world
    ethereum.fund({CAROL.address: 2_000})
    ship(burrow, ethereum, clock, BOB, escrow, inclusion)
    refused = run_tx(ethereum, clock, CAROL, CallPayload(escrow, "fill", value=E2))
    assert not refused.success
    assert "designated taker" in refused.error
    # Bob fills; Carol cannot claim at home.
    run_tx(ethereum, clock, BOB, CallPayload(escrow, "fill", value=E2))
    assert full_move(ethereum, burrow, clock, BOB, escrow).success
    refused = run_tx(burrow, clock, CAROL, CallPayload(escrow, "claim"))
    assert not refused.success


def test_underpayment_rejected(swap_world):
    burrow, ethereum, clock, escrow, inclusion = swap_world
    ship(burrow, ethereum, clock, BOB, escrow, inclusion)
    refused = run_tx(ethereum, clock, BOB, CallPayload(escrow, "fill", value=E2 - 1))
    assert not refused.success
    assert "ask not met" in refused.error


def test_maker_cannot_yank_open_offer_before_deadline(swap_world):
    burrow, ethereum, clock, escrow, inclusion = swap_world
    ship(burrow, ethereum, clock, BOB, escrow, inclusion)
    refused = run_tx(
        ethereum, clock, ALICE, Move1Payload(contract=escrow, target_chain=burrow.chain_id)
    )
    assert not refused.success
    assert "deadline" in refused.error


def test_refund_after_deadline():
    burrow, ethereum = make_chain_pair()
    clock = ManualClock()
    burrow.fund({ALICE.address: 1_000})
    factory = run_tx(
        burrow, clock, ALICE, DeployPayload(code_hash=SwapFactory.CODE_HASH)
    ).return_value
    receipt = run_tx(
        burrow, clock, ALICE,
        CallPayload(factory, "open", (ethereum.chain_id, BOB.address, E2, 60), value=E1),
    )
    escrow = receipt.return_value
    assert ship(burrow, ethereum, clock, BOB, escrow, receipt.block_height).success
    # Too early to refund-move.
    early = run_tx(
        ethereum, clock, ALICE, Move1Payload(contract=escrow, target_chain=burrow.chain_id)
    )
    assert not early.success
    # Pass the deadline (timestamps advance 5 s per block).
    produce(ethereum, clock, 12)
    move1 = run_tx(
        ethereum, clock, ALICE, Move1Payload(contract=escrow, target_chain=burrow.chain_id)
    )
    assert move1.success, move1.error
    assert ship(ethereum, burrow, clock, ALICE, escrow, move1.block_height).success
    refund = run_tx(burrow, clock, ALICE, CallPayload(escrow, "refund"))
    assert refund.success, refund.error
    assert burrow.balance_of(ALICE.address) == 1_000


def test_expired_offer_cannot_be_filled():
    burrow, ethereum = make_chain_pair()
    clock = ManualClock()
    burrow.fund({ALICE.address: 1_000})
    ethereum.fund({BOB.address: 1_000})
    factory = run_tx(
        burrow, clock, ALICE, DeployPayload(code_hash=SwapFactory.CODE_HASH)
    ).return_value
    receipt = run_tx(
        burrow, clock, ALICE,
        CallPayload(factory, "open", (ethereum.chain_id, BOB.address, E2, 40), value=E1),
    )
    escrow = receipt.return_value
    assert ship(burrow, ethereum, clock, BOB, escrow, receipt.block_height).success
    produce(ethereum, clock, 10)  # sail past the deadline
    refused = run_tx(ethereum, clock, BOB, CallPayload(escrow, "fill", value=E2))
    assert not refused.success
    assert "expired" in refused.error


def test_fill_only_on_away_chain(swap_world):
    burrow, _ethereum, clock, escrow, _inclusion = swap_world
    # Still locked on chain 1: any call aborts with ContractLocked; the
    # state machine also rejects home-chain fills once it returns.
    refused = run_tx(burrow, clock, BOB, CallPayload(escrow, "fill", value=E2))
    assert not refused.success
