"""Shared fixtures/utilities for chain-level and protocol tests."""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.chain.chain import Chain
from repro.chain.params import burrow_params, ethereum_params
from repro.chain.tx import (
    CallPayload,
    DeployPayload,
    Move1Payload,
    Move2Payload,
    sign_transaction,
)
from repro.core.registry import ChainRegistry
from repro.crypto.keys import KeyPair
from repro.ibc.headers import connect_chains
from repro.lang.movable import MovableContract
from repro.runtime import MapSlot, external, register_contract, view

ALICE = KeyPair.from_name("alice")
BOB = KeyPair.from_name("bob")
CAROL = KeyPair.from_name("carol")


@register_contract
class StoreContract(MovableContract):
    """A movable key/value store used across protocol tests."""

    values = MapSlot(int, int)

    @external
    def put(self, key: int, value: int) -> None:
        self.values[key] = value

    @view
    def get_value(self, key: int) -> int:
        return self.values[key]


def make_chain_pair(verify_signatures: bool = True) -> Tuple[Chain, Chain]:
    """A Burrow-flavoured chain (id 1) and an Ethereum-flavoured chain
    (id 2), fully meshed with instant header relays."""
    registry = ChainRegistry()
    burrow = Chain(burrow_params(1), registry, verify_signatures=verify_signatures)
    ethereum = Chain(ethereum_params(2), registry, verify_signatures=verify_signatures)
    connect_chains([burrow, ethereum])
    return burrow, ethereum


class ManualClock:
    """Monotonic timestamps for manual block production."""

    def __init__(self, step: float = 5.0):
        self.now = 0.0
        self.step = step

    def tick(self) -> float:
        self.now += self.step
        return self.now


def produce(chain: Chain, clock: ManualClock, count: int = 1) -> None:
    """Produce ``count`` blocks with advancing timestamps."""
    for _ in range(count):
        chain.produce_block(clock.tick())


def run_tx(chain: Chain, clock: ManualClock, keypair: KeyPair, payload) -> "Receipt":
    """Submit, include in the next block, and return the receipt."""
    tx = sign_transaction(keypair, payload)
    chain.submit(tx)
    produce(chain, clock)
    return chain.receipts[tx.tx_id]


def deploy_store(chain: Chain, clock: ManualClock, owner: KeyPair):
    """Deploy a StoreContract owned by ``owner``; returns its address."""
    receipt = run_tx(chain, clock, owner, DeployPayload(code_hash=StoreContract.CODE_HASH))
    assert receipt.success, receipt.error
    return receipt.return_value


def full_move(
    source: Chain,
    target: Chain,
    clock: ManualClock,
    mover: KeyPair,
    contract,
) -> "Receipt":
    """Drive a complete Move1 → wait → Move2 with manual blocks."""
    receipt1 = run_tx(
        source, clock, mover, Move1Payload(contract=contract, target_chain=target.chain_id)
    )
    assert receipt1.success, receipt1.error
    inclusion = receipt1.block_height
    while source.height < source.proof_ready_height(inclusion):
        produce(source, clock)
    bundle = source.prove_contract_at(contract, inclusion)
    return run_tx(target, clock, mover, Move2Payload(bundle=bundle))
