"""The paper's OP_MOVE at the raw bytecode level.

Listing 1 expressed as bytecode: a contract whose storage slot 0 holds
the owner; the move routine checks CALLER against the owner and only
then executes MOVE — the exact semantics Algorithm 1 line 2-3 describe,
one level below the Solidity-like runtime.
"""

import pytest

from repro.vm.assembler import assemble
from repro.vm.gas import ETHEREUM_SCHEDULE, GasMeter
from repro.vm.machine import Machine, MemoryContext

OWNER = 0xA11CE
INTRUDER = 0xBAD

# storage slot 0: owner address; calldata-free design: the target chain
# id is embedded as an immediate (a per-deployment constant here).
MOVE_GUARDED = """
    ; require(owner == caller)
    PUSH1 0
    SLOAD
    CALLER
    EQ
    PUSH @authorized
    JUMPI
    PUSH1 0
    PUSH1 0
    REVERT
    authorized:
    ; OP_MOVE(target = 7)
    PUSH1 7
    MOVE
    STOP
"""


@pytest.fixture
def machine():
    return Machine(ETHEREUM_SCHEDULE)


def make_context(caller):
    ctx = MemoryContext(caller=caller, chain_id=1)
    ctx.storage[0] = OWNER
    return ctx


def test_owner_can_move(machine):
    ctx = make_context(OWNER)
    result = machine.execute(assemble(MOVE_GUARDED), ctx)
    assert result.success, result.error
    assert ctx.location() == 7


def test_intruder_cannot_move(machine):
    ctx = make_context(INTRUDER)
    result = machine.execute(assemble(MOVE_GUARDED), ctx)
    assert not result.success
    assert ctx.location() == 1  # L_c untouched


def test_guarded_move_gas_accounting(machine):
    # Exact charge on the happy path:
    # PUSH(3) SLOAD(200) CALLER(2) EQ(3) PUSH(3) JUMPI(10)
    # JUMPDEST(1) PUSH(3) MOVE(5000)
    sch = ETHEREUM_SCHEDULE
    meter = GasMeter(schedule=sch)
    machine.execute(assemble(MOVE_GUARDED), make_context(OWNER), meter)
    expected = (
        sch.verylow + sch.sload + sch.base + sch.verylow + sch.verylow
        + sch.high + sch.jumpdest + sch.verylow + sch.move_op
    )
    assert meter.used == expected


LOCATION_PROBE = """
    LOCATION
    PUSH1 0
    MSTORE
    MOVENONCE
    PUSH1 32
    MSTORE
    PUSH1 64
    PUSH1 0
    RETURN
"""


def test_location_and_nonce_probes(machine):
    ctx = make_context(OWNER)
    ctx._move_nonce = 5
    result = machine.execute(assemble(LOCATION_PROBE), ctx)
    assert result.success
    location = int.from_bytes(result.return_data[:32], "big")
    nonce = int.from_bytes(result.return_data[32:], "big")
    assert location == 1
    assert nonce == 5
    # After a move, LOCATION reports the target.
    machine.execute(assemble(MOVE_GUARDED), ctx)
    result = machine.execute(assemble(LOCATION_PROBE), ctx)
    assert int.from_bytes(result.return_data[:32], "big") == 7


def test_moved_flag_survives_subsequent_bytecode_runs(machine):
    ctx = make_context(OWNER)
    machine.execute(assemble(MOVE_GUARDED), ctx)
    # The execution *environment* (not the VM) is responsible for
    # aborting mutations once L_c points away; at the VM level the
    # context simply keeps reporting the new location.
    assert ctx.location() == 7
