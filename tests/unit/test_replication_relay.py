"""Units for the relay sync pump and the node-level manager.

The relay half runs over a real chain pair with manual block
production (so every sync step is explicit); the manager half runs
over a real :class:`~repro.node.Node` on the simulated clock (so read
routing and the read-rate signal see the same surfaces production
code does).
"""

import pytest

from repro.chain.block import BlockHeader
from repro.chain.chain import Chain
from repro.chain.params import burrow_params, ethereum_params
from repro.chain.tx import sign_transaction
from repro.core.registry import ChainRegistry
from repro.crypto.hashing import keccak
from repro.errors import ReplicaUnavailable, StateError
from repro.ibc.headers import connect_chains
from repro.node import Node
from repro.replicate.mirror import HALTED, LIVE, SYNCING, TOMBSTONED
from repro.replicate.relay import ReplicationRelay
from tests.helpers import (
    ALICE,
    CallPayload,
    DeployPayload,
    ManualClock,
    StoreContract,
    deploy_store,
    produce,
    run_tx,
)

# ----------------------------------------------------------------------
# Relay: one source→target sync pump over manual blocks
# ----------------------------------------------------------------------


def _relay_setup(fork_aware: bool = False):
    """Burrow source (1), Ethereum-trie target (2, burrow timings so
    the staleness bound stays 2), one replicated StoreContract."""
    registry = ChainRegistry()
    source = Chain(burrow_params(1), registry)
    target = Chain(burrow_params(2), registry)
    connect_chains([source, target], fork_aware=fork_aware)
    clock = ManualClock()
    address = deploy_store(source, clock, ALICE)
    receipt = run_tx(source, clock, ALICE, CallPayload(address, "put", (1, 42)))
    assert receipt.success, receipt.error
    relay = ReplicationRelay(source, target)
    relay.start()
    mirror = relay.add_contract(address)
    return source, target, clock, address, relay, mirror


def test_mirror_syncs_to_live_and_serves_the_committed_value():
    source, target, clock, address, relay, mirror = _relay_setup()
    # Not enough confirmation headroom yet: unavailable, not wrong.
    assert mirror.status == SYNCING
    assert not mirror.available
    produce(source, clock, 3)  # headers flow instantly; relay syncs
    assert mirror.status == LIVE
    assert mirror.full_syncs == 1
    assert relay.updates >= 1
    assert target.state.is_mirror(address)
    assert target.view(address, "get_value", 1) == 42


def test_incremental_syncs_ship_deltas_not_full_images():
    source, target, clock, address, relay, mirror = _relay_setup()
    produce(source, clock, 3)
    applied_after_first = mirror.updates_applied
    receipt = run_tx(source, clock, ALICE, CallPayload(address, "put", (2, 7)))
    assert receipt.success
    produce(source, clock, 3)
    assert mirror.updates_applied > applied_after_first
    assert mirror.full_syncs == 1  # everything after bootstrap is a delta
    assert target.view(address, "get_value", 2) == 7


def test_staleness_stays_within_the_bound_once_live():
    source, target, clock, address, relay, mirror = _relay_setup()
    produce(source, clock, 3)
    bound = mirror.staleness_bound
    assert bound == (
        source.params.confirmation_depth + source.params.state_root_lag
    )
    for round_no in range(5):
        run_tx(source, clock, ALICE, CallPayload(address, "put", (round_no, round_no)))
        assert mirror.status == LIVE
        assert mirror.staleness(source.height) <= bound


def test_remove_contract_wipes_the_replica():
    source, target, clock, address, relay, mirror = _relay_setup()
    produce(source, clock, 3)
    assert target.state.is_mirror(address)
    relay.remove_contract(address)
    assert mirror.status == TOMBSTONED
    assert mirror.reason == "dropped"
    assert mirror.image == {}
    assert not target.state.is_mirror(address)
    assert address not in relay.mirrors
    relay.remove_contract(address)  # idempotent


def _forged_header(parent: BlockHeader, tag: str) -> BlockHeader:
    return BlockHeader(
        chain_id=parent.chain_id,
        height=parent.height + 1,
        parent_hash=parent.hash(),
        state_root=keccak(f"forged-{tag}".encode()),
        txs_root=keccak(b"txs"),
        timestamp=float(parent.height + 1),
        proposer="forger",
    )


def test_reorg_halts_the_mirror_and_a_canonical_branch_revives_it():
    source, target, clock, address, relay, mirror = _relay_setup(fork_aware=True)
    produce(source, clock, 3)
    assert mirror.status == LIVE
    store = target.light_client.store_for(source.chain_id)
    applied = mirror.applied_header

    # Forge a longer competing branch that orphans the applied header.
    parent = store.header_at(applied.height - 1)
    for offset in range(store.head_height - applied.height + 3):
        forged = _forged_header(parent, str(offset))
        store.add_header(forged)
        parent = forged
    relay.sync_all()

    # Halted, and the orphaned storage is gone from the target state:
    # a reader gets a typed error, never data from the losing branch.
    assert mirror.status == HALTED
    assert relay.halts == 1
    assert mirror.image == {}
    assert mirror.synced_height == -1
    assert not target.state.is_mirror(address)

    # The honest chain keeps producing; once its branch outgrows the
    # forged one, canonical flips back and the relay full-resyncs.
    produce(source, clock, 8)
    assert mirror.status == LIVE
    assert mirror.full_syncs == 2  # recovery is a fresh bootstrap
    assert target.view(address, "get_value", 1) == 42


def test_source_move1_tombstones_the_mirror_immediately():
    source, target, clock, address, relay, mirror = _relay_setup()
    produce(source, clock, 3)
    assert mirror.status == LIVE
    from repro.chain.tx import Move1Payload

    receipt = run_tx(
        source, clock, ALICE, Move1Payload(contract=address, target_chain=2)
    )
    assert receipt.success, receipt.error
    assert mirror.status == TOMBSTONED
    assert "moved" in mirror.reason
    assert mirror.moved_to == 2
    assert relay.tombstones == 1
    assert not target.state.is_mirror(address)


# ----------------------------------------------------------------------
# Manager: placement, routing and the read-rate signal on a Node
# ----------------------------------------------------------------------


def _node_setup():
    node = Node(
        [burrow_params(1), burrow_params(2), burrow_params(3)], seed=7
    )
    manager = node.attach_replication()
    node.start()
    address = _run_tx_on(node, 1, DeployPayload(code_hash=StoreContract.CODE_HASH))
    _run_tx_on(node, 1, CallPayload(address, "put", (1, 42)))
    return node, manager, address


def _run_tx_on(node, chain_id, payload):
    tx = sign_transaction(ALICE, payload)
    assert node.submit(chain_id, tx)
    ok = node.run_until(
        lambda: node.receipt(chain_id, tx.tx_id) is not None,
        max_time=node.now + 120.0,
    )
    assert ok, "transaction never committed"
    receipt = node.receipt(chain_id, tx.tx_id)
    assert receipt.success, receipt.error
    return receipt.return_value


def test_manager_routes_primary_replica_and_fallback_reads():
    node, manager, address = _node_setup()
    manager.replicate(address, 1, [2])
    ok = node.run_until(
        lambda: manager.mirror(address, 2) is not None
        and manager.mirror(address, 2).available,
        max_time=node.now + 120.0,
    )
    assert ok, manager.status(address)

    # Active copy on the preferred chain.
    assert manager.read(address, "get_value", 1, prefer_chain=1) == 42
    # LIVE replica on the preferred chain.
    assert manager.read(address, "get_value", 1, prefer_chain=2) == 42
    # No replica on chain 3: fallback reaches the active copy...
    assert manager.read(address, "get_value", 1, prefer_chain=3) == 42
    # ...and without fallback the miss is a typed error.
    with pytest.raises(ReplicaUnavailable, match="no replica"):
        manager.read(address, "get_value", 1, prefer_chain=3, fallback=False)
    assert manager.status(address) == {2: LIVE}
    assert manager.source_of(address) == 1


def test_manager_rejects_bad_placements():
    node, manager, address = _node_setup()
    with pytest.raises(StateError, match="own chain"):
        manager.replicate(address, 1, [1])
    with pytest.raises(StateError, match="no contract"):
        manager.replicate(b"\x00" * 20, 2, [3])


def test_manager_drop_retires_every_mirror():
    node, manager, address = _node_setup()
    manager.replicate(address, 1, [2, 3])
    node.run_until(
        lambda: all(m.available for m in manager.mirrors(address).values()),
        max_time=node.now + 120.0,
    )
    assert set(manager.status(address)) == {2, 3}
    manager.drop(address)
    assert manager.mirrors(address) == {}
    assert manager.source_of(address) is None
    assert not node.chain(2).state.is_mirror(address)
    assert not node.chain(3).state.is_mirror(address)


def test_read_rate_signal_windows_and_decays():
    node, manager, address = _node_setup()
    manager.replicate(address, 1, [2])
    node.run_until(
        lambda: manager.mirror(address, 2) is not None
        and manager.mirror(address, 2).available,
        max_time=node.now + 120.0,
    )
    for _ in range(20):
        manager.read(address, "get_value", 1, prefer_chain=2)
    assert manager.read_rate(address) == pytest.approx(2.0)  # 20 / 10 s window
    assert manager.read_rates()[address] == pytest.approx(2.0)
    assert manager.reads_by_contract[address] == 20
    # The window slides: with no further reads the signal decays to 0.
    node.run_for(30.0)
    assert manager.read_rate(address) == 0.0
