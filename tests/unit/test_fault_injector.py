"""Unit tests for the fault-injection primitives and invariant checker.

Covers the delivery-fault hook (drop/duplicate/delay), refcounted
partition/heal symmetry, crash/restart rejoin, plan validation, and —
the standing mutation test — that the :class:`InvariantChecker` catches
states only a broken runtime could produce (a replayed Move2, a nonce
regression, conjured tokens, a write that dodged commitment).
"""

import pytest

from tests.helpers import (
    ALICE,
    BOB,
    ManualClock,
    deploy_store,
    full_move,
    make_chain_pair,
    produce,
    run_tx,
)
from repro.chain.chain import Chain
from repro.chain.params import burrow_params
from repro.chain.tx import TransferPayload, sign_transaction
from repro.consensus.tendermint import TendermintEngine
from repro.errors import FaultPlanError, InvariantViolation
from repro.faults import FaultEvent, FaultInjector, FaultPlan, InvariantChecker
from repro.net.latency import LatencyModel
from repro.net.sim import Simulator
from repro.net.transport import Network


def make_net(seed=1):
    sim = Simulator(seed=seed)
    net = Network(sim)
    return sim, net


def attach_pair(net, inbox):
    net.attach("a", "us-east-1", lambda src, msg: inbox.append(("a", msg)))
    net.attach("b", "eu-west-1", lambda src, msg: inbox.append(("b", msg)))


# ----------------------------------------------------------------------
# Transport fault hook
# ----------------------------------------------------------------------


def test_drop_window_drops_then_expires():
    sim, net = make_net()
    inbox = []
    attach_pair(net, inbox)
    injector = FaultInjector(sim, network=net, seed=7)
    injector.apply(
        FaultPlan(seed=7, duration=60.0, events=(
            FaultEvent(0.0, "drop", duration=10.0, magnitude=1.0),
        ))
    )
    sim.schedule(1.0, lambda: net.send("a", "b", "lost"))
    sim.schedule(20.0, lambda: net.send("a", "b", "kept"))
    sim.run(until=40.0)
    assert [m for _, m in inbox] == ["kept"]
    assert net.messages_dropped == 1
    assert injector.injected["msg_dropped"] == 1


def test_duplicate_window_duplicates_delivery():
    sim, net = make_net()
    inbox = []
    attach_pair(net, inbox)
    injector = FaultInjector(sim, network=net, seed=3)
    injector.apply(
        FaultPlan(seed=3, duration=60.0, events=(
            FaultEvent(0.0, "duplicate", duration=10.0, magnitude=1.0),
        ))
    )
    sim.schedule(1.0, lambda: net.send("a", "b", "ping"))
    sim.run(until=40.0)
    assert [m for _, m in inbox] == ["ping", "ping"]
    assert net.messages_duplicated == 1


def test_delay_window_defers_but_delivers():
    sim, net = make_net()
    inbox = []
    arrivals = []
    net.attach("a", "us-east-1", lambda src, msg: None)
    net.attach("b", "eu-west-1", lambda src, msg: arrivals.append(sim.now))
    injector = FaultInjector(sim, network=net, seed=5)
    injector.apply(
        FaultPlan(seed=5, duration=60.0, events=(
            FaultEvent(0.0, "delay", duration=10.0, magnitude=20.0),
        ))
    )
    sim.schedule(1.0, lambda: net.send("a", "b", "slow"))
    sim.run(until=60.0)
    assert len(arrivals) == 1  # delayed, not lost or duplicated
    del inbox


# ----------------------------------------------------------------------
# Partition / heal
# ----------------------------------------------------------------------


def test_partition_heal_is_symmetric():
    """After the isolation window ends, traffic flows both ways again."""
    sim, net = make_net()
    inbox = []
    attach_pair(net, inbox)
    injector = FaultInjector(sim, network=net, seed=1)
    injector.isolate("b", duration=10.0)
    sim.schedule(1.0, lambda: net.send("a", "b", "cut-ab"))
    sim.schedule(1.0, lambda: net.send("b", "a", "cut-ba"))
    sim.schedule(20.0, lambda: net.send("a", "b", "open-ab"))
    sim.schedule(20.0, lambda: net.send("b", "a", "open-ba"))
    sim.run(until=40.0)
    assert sorted(m for _, m in inbox) == ["open-ab", "open-ba"]


def test_overlapping_isolations_compose():
    """The partition heals only after the *last* window ends."""
    sim, net = make_net()
    inbox = []
    attach_pair(net, inbox)
    injector = FaultInjector(sim, network=net, seed=1)
    injector.isolate("b", duration=10.0)
    sim.schedule(5.0, lambda: injector.isolate("b", 10.0))
    sim.schedule(12.0, lambda: net.send("a", "b", "still-cut"))
    sim.schedule(20.0, lambda: net.send("a", "b", "healed"))
    sim.run(until=40.0)
    assert [m for _, m in inbox] == ["healed"]


# ----------------------------------------------------------------------
# Duplicate delivery is idempotent at the mempool / receipt layer
# ----------------------------------------------------------------------


def test_duplicate_submit_is_idempotent_before_and_after_inclusion():
    chain = Chain(burrow_params(1), verify_signatures=False)
    chain.fund({ALICE.address: 100})
    clock = ManualClock()
    tx = sign_transaction(ALICE, TransferPayload(to=BOB.address, amount=5))
    assert chain.submit(tx) is True
    # Gossip duplicate while still pending: deduplicated by the mempool.
    assert chain.submit(tx) is False
    produce(chain, clock)
    assert chain.balance_of(BOB.address) == 5
    # Gossip duplicate arriving after execution: rejected by the
    # receipt guard, so the transfer cannot run twice.
    assert chain.submit(tx) is False
    produce(chain, clock)
    assert chain.balance_of(BOB.address) == 5


def test_consensus_survives_duplicate_storm():
    """Blocks stay monotonic when every vote is duplicated."""
    sim = Simulator(seed=11)
    net = Network(sim)
    chain = Chain(burrow_params(1, validator_count=4), verify_signatures=False)
    regions = LatencyModel().assign_regions(4, sim.rng)
    engine = TendermintEngine(sim, net, chain, regions)
    injector = FaultInjector(sim, network=net, seed=11)
    injector.apply(
        FaultPlan(seed=11, duration=120.0, events=(
            FaultEvent(0.0, "duplicate", duration=120.0, magnitude=1.0),
        ))
    )
    engine.start()
    sim.run(until=120.0)
    heights = [b.height for b in chain.blocks]
    assert heights == sorted(set(heights))
    assert chain.height >= 10


# ----------------------------------------------------------------------
# Crash / restart
# ----------------------------------------------------------------------


def test_crashed_validator_restart_rejoins_without_forking():
    sim = Simulator(seed=9)
    net = Network(sim)
    chain = Chain(burrow_params(1, validator_count=4), verify_signatures=False)
    regions = LatencyModel().assign_regions(4, sim.rng)
    engine = TendermintEngine(sim, net, chain, regions)
    injector = FaultInjector(sim, network=net, engines={1: engine}, seed=9)
    injector.apply(
        FaultPlan(seed=9, duration=200.0, events=(
            FaultEvent(20.0, "crash", chain=1, target=engine.validators[0], duration=60.0),
        ))
    )
    engine.start()
    sim.run(until=90.0)
    assert engine.validators[0] not in engine.crashed  # recovery fired
    mid = chain.height
    sim.run(until=200.0)
    assert chain.height > mid  # the restarted validator did not wedge it
    heights = [b.height for b in chain.blocks]
    assert heights == sorted(set(heights))  # rejoined without forking
    chain.verify_chain()


# ----------------------------------------------------------------------
# Plan validation
# ----------------------------------------------------------------------


def test_unknown_fault_kind_rejected():
    with pytest.raises(FaultPlanError):
        FaultEvent(0.0, "meteor")


def test_plan_events_sorted_and_fingerprint_stable():
    plan = FaultPlan(seed=1, duration=10.0, events=(
        FaultEvent(5.0, "drop", duration=1.0),
        FaultEvent(2.0, "delay", duration=1.0, magnitude=0.5),
    ))
    assert [e.time for e in plan.events] == [2.0, 5.0]
    same = FaultPlan(seed=1, duration=10.0, events=tuple(reversed(plan.events)))
    assert plan.encode() == same.encode()


def test_from_seed_crash_events_never_overlap_per_chain():
    plan = FaultPlan.from_seed(1234, duration=600.0, intensity=2.0)
    busy = {}
    for event in plan.events:
        if event.kind in ("crash", "stall_proposer"):
            assert event.time >= busy.get(event.chain, 0.0)
            busy[event.chain] = event.time + event.duration


def test_injector_rejects_unknown_targets():
    sim, net = make_net()
    injector = FaultInjector(sim, network=net, seed=1)
    injector.apply(
        FaultPlan(seed=1, duration=10.0, events=(
            FaultEvent(1.0, "crash", chain=9, target="ghost", duration=1.0),
        ))
    )
    with pytest.raises(FaultPlanError):
        sim.run(until=5.0)


# ----------------------------------------------------------------------
# Invariant checker: the standing mutation tests.  Each test manufactures
# a state only a broken runtime could reach and asserts the checker trips
# — the "deliberately broken nonce check" must never pass silently.
# ----------------------------------------------------------------------


def moved_pair():
    burrow, ethereum = make_chain_pair(verify_signatures=False)
    clock = ManualClock()
    store = deploy_store(burrow, clock, ALICE)
    receipt = full_move(burrow, ethereum, clock, ALICE, store)
    assert receipt.success, receipt.error
    checker = InvariantChecker([burrow, ethereum])
    checker.check_all()  # healthy after a legitimate move
    return burrow, ethereum, clock, store, checker


def test_replayed_move2_state_violates_single_mutability():
    burrow, ethereum, clock, store, checker = moved_pair()
    # A replayed Move2 would re-activate the source relic: fake it.
    relic = burrow.state.contract(store)
    relic.location = burrow.chain_id
    with pytest.raises(InvariantViolation, match="I1-single-mutability"):
        checker.check_all()


def test_nonce_regression_detected():
    burrow, ethereum, clock, store, checker = moved_pair()
    active = ethereum.state.contract(store)
    active.move_nonce -= 1
    with pytest.raises(InvariantViolation, match="I2-nonce-monotonic"):
        checker.check_all()


def test_stale_active_copy_detected():
    burrow, ethereum, clock, store, checker = moved_pair()
    # An active copy whose nonce trails a relic's is a replayed bundle,
    # even where per-chain history alone looks monotonic.
    fresh = InvariantChecker([burrow, ethereum])
    relic = burrow.state.contract(store)
    relic.move_nonce = ethereum.state.contract(store).move_nonce + 1
    with pytest.raises(InvariantViolation, match="I2-nonce-monotonic"):
        fresh.check_all()


def test_conjured_tokens_violate_supply():
    from repro.apps.scoin import SAccount, SCoin
    from repro.chain.tx import CallPayload, DeployPayload

    burrow, _ethereum = make_chain_pair(verify_signatures=False)
    clock = ManualClock()
    receipt = run_tx(burrow, clock, ALICE, DeployPayload(code_hash=SCoin.CODE_HASH))
    token = receipt.return_value
    receipt = run_tx(burrow, clock, ALICE, CallPayload(token, "new_account_for", (ALICE.address,)))
    account, _salt = receipt.return_value
    receipt = run_tx(burrow, clock, ALICE, CallPayload(token, "mint_to", (account, 50)))
    assert receipt.success, receipt.error

    checker = InvariantChecker([burrow], expected_token_supply=50)
    checker.check_all()
    # Conjure tokens out of thin air, bypassing the runtime entirely.
    record = burrow.state.contract(account)
    record.storage[SAccount.token_count.key] = (51).to_bytes(32, "big")
    with pytest.raises(InvariantViolation, match="I3-token-supply"):
        InvariantChecker([burrow], expected_token_supply=50).check_all()


def test_write_dodging_commitment_detected():
    burrow, ethereum, clock, store, checker = moved_pair()
    record = ethereum.state.contract(store)
    # Mutate a slot without marking it dirty: the committed leaf no
    # longer matches the live record.
    record.storage[b"\x01" * 32] = b"\x02"
    with pytest.raises(InvariantViolation, match="I4-commitment"):
        checker.check_all()


def test_checker_attach_detach_roundtrip():
    burrow, ethereum = make_chain_pair(verify_signatures=False)
    clock = ManualClock()
    checker = InvariantChecker([burrow, ethereum])
    checker.attach()
    produce(burrow, clock, count=3)
    assert checker.checks_run == 3
    checker.detach()
    produce(burrow, clock)
    assert checker.checks_run == 3
