"""Unit tests for the latency model and message transport."""

import random

import pytest

from repro.errors import SimulationError
from repro.net.latency import REGIONS, LatencyModel
from repro.net.sim import Simulator
from repro.net.transport import Network


def test_fourteen_regions():
    assert len(REGIONS) == 14


def test_latency_symmetric_and_positive():
    model = LatencyModel()
    for src in model.region_names:
        for dst in model.region_names:
            lat = model.base_latency(src, dst)
            assert lat > 0
            assert lat == model.base_latency(dst, src)


def test_intra_region_is_fast_wan_is_slow():
    model = LatencyModel()
    assert model.base_latency("us-east-1", "us-east-1") < 0.005
    transatlantic = model.base_latency("us-east-1", "eu-west-1")
    assert 0.020 < transatlantic < 0.060
    transpacific = model.base_latency("us-east-1", "ap-southeast-2")
    assert transpacific > transatlantic


def test_jitter_varies_but_stays_near_base():
    model = LatencyModel()
    rng = random.Random(1)
    base = model.base_latency("us-east-1", "eu-west-1")
    samples = [model.sample("us-east-1", "eu-west-1", rng) for _ in range(200)]
    assert len(set(samples)) > 100
    for s in samples:
        assert 0.5 * base < s < 2.0 * base


def test_assign_regions_uses_known_names():
    model = LatencyModel()
    assigned = model.assign_regions(30, random.Random(3))
    assert len(assigned) == 30
    assert set(assigned) <= set(model.region_names)


def _pair(sim):
    net = Network(sim)
    inbox_a, inbox_b = [], []
    net.attach("a", "us-east-1", lambda src, msg: inbox_a.append((src, msg)))
    net.attach("b", "eu-west-1", lambda src, msg: inbox_b.append((src, msg)))
    return net, inbox_a, inbox_b


def test_send_delivers_after_latency():
    sim = Simulator(seed=1)
    net, _, inbox_b = _pair(sim)
    net.send("a", "b", "hello")
    assert inbox_b == []
    sim.run()
    assert inbox_b == [("a", "hello")]
    assert sim.now > 0.02  # at least the transatlantic base latency ballpark


def test_unknown_sender_raises_unknown_destination_drops():
    sim = Simulator(seed=1)
    net, _, inbox_b = _pair(sim)
    with pytest.raises(SimulationError):
        net.send("ghost", "b", "x")
    net.send("a", "ghost", "x")  # silently dropped
    sim.run()
    assert inbox_b == []


def test_detach_drops_in_flight():
    sim = Simulator(seed=1)
    net, _, inbox_b = _pair(sim)
    net.send("a", "b", "x")
    net.detach("b")
    sim.run()
    assert inbox_b == []


def test_broadcast_skips_self():
    sim = Simulator(seed=1)
    net = Network(sim)
    inboxes = {name: [] for name in "abc"}
    for name in "abc":
        net.attach(name, "us-east-1", lambda src, msg, n=name: inboxes[n].append(msg))
    net.broadcast("a", ["a", "b", "c"], "blk")
    sim.run()
    assert inboxes["a"] == []
    assert inboxes["b"] == ["blk"]
    assert inboxes["c"] == ["blk"]


def test_double_attach_rejected():
    sim = Simulator()
    net = Network(sim)
    net.attach("a", "us-east-1", lambda s, m: None)
    with pytest.raises(SimulationError):
        net.attach("a", "us-east-1", lambda s, m: None)


def test_message_counters():
    sim = Simulator(seed=1)
    net, _, _ = _pair(sim)
    net.send("a", "b", "x", size_bytes=100)
    net.send("a", "b", "y", size_bytes=50)
    assert net.messages_sent == 2
    assert net.bytes_sent == 150
