"""Unit tests for ScalableKitties (single chain)."""

import pytest

from repro.apps.genes import GENE_COUNT, mix_genes, promo_genes
from repro.apps.kitties import Kitty, KittyRegistry
from repro.chain.chain import Chain
from repro.chain.params import burrow_params
from repro.chain.tx import CallPayload, DeployPayload
from tests.helpers import ALICE, BOB, CAROL, ManualClock, run_tx


@pytest.fixture
def kitty_world():
    chain = Chain(burrow_params(1))
    clock = ManualClock()
    receipt = run_tx(chain, clock, ALICE, DeployPayload(code_hash=KittyRegistry.CODE_HASH))
    assert receipt.success, receipt.error
    return chain, clock, receipt.return_value


def promo(chain, clock, registry, owner_kp, to):
    receipt = run_tx(
        chain, clock, owner_kp, CallPayload(registry, "create_promo_kitty", (to,))
    )
    assert receipt.success, receipt.error
    return receipt.return_value


def test_gene_mixing_is_deterministic():
    a, b = promo_genes(1), promo_genes(2)
    assert mix_genes(a, b, 7) == mix_genes(a, b, 7)
    assert mix_genes(a, b, 7) != mix_genes(a, b, 8)
    assert 0 <= mix_genes(a, b, 7) < (1 << 256)


def test_child_genes_come_from_parents_mostly():
    a, b = promo_genes(1), promo_genes(2)
    child = mix_genes(a, b, 3)
    inherited = 0
    for i in range(GENE_COUNT):
        gene = (child >> (i * 4)) & 0xF
        if gene in ((a >> (i * 4)) & 0xF, (b >> (i * 4)) & 0xF):
            inherited += 1
    assert inherited >= GENE_COUNT * 3 // 4  # mutations are rare


def test_promo_creation_owner_only(kitty_world):
    chain, clock, registry = kitty_world
    cat = promo(chain, clock, registry, ALICE, BOB.address)
    assert chain.view(cat, "get_owner") == BOB.address
    assert chain.view(registry, "total_kitties") == 1
    refused = run_tx(
        chain, clock, BOB, CallPayload(registry, "create_promo_kitty", (BOB.address,))
    )
    assert not refused.success


def test_breeding_produces_next_generation(kitty_world):
    chain, clock, registry = kitty_world
    matron = promo(chain, clock, registry, ALICE, BOB.address)
    sire = promo(chain, clock, registry, ALICE, BOB.address)
    assert run_tx(chain, clock, BOB, CallPayload(matron, "breed_with", (sire,))).success
    assert chain.view(matron, "is_pregnant")
    receipt = run_tx(chain, clock, BOB, CallPayload(matron, "give_birth"))
    assert receipt.success, receipt.error
    child = receipt.return_value
    assert chain.view(child, "get_owner") == BOB.address
    _, matron_id, sire_id, generation = chain.view(child, "lineage")
    assert generation == 1
    assert matron_id == chain.view(matron, "lineage")[0]
    assert sire_id == chain.view(sire, "lineage")[0]
    assert not chain.view(matron, "is_pregnant")


def test_breeding_needs_siring_approval_across_owners(kitty_world):
    chain, clock, registry = kitty_world
    matron = promo(chain, clock, registry, ALICE, BOB.address)
    sire = promo(chain, clock, registry, ALICE, CAROL.address)
    refused = run_tx(chain, clock, BOB, CallPayload(matron, "breed_with", (sire,)))
    assert not refused.success
    assert "siring not approved" in refused.error
    # Carol approves Bob's use of her cat as sire.
    assert run_tx(chain, clock, CAROL, CallPayload(sire, "approve_siring", (BOB.address,))).success
    assert run_tx(chain, clock, BOB, CallPayload(matron, "breed_with", (sire,))).success
    # Approval is consumed: breeding again needs a fresh approval.
    run_tx(chain, clock, BOB, CallPayload(matron, "give_birth"))
    again = run_tx(chain, clock, BOB, CallPayload(matron, "breed_with", (sire,)))
    assert not again.success


def test_sibling_cats_cannot_mate(kitty_world):
    chain, clock, registry = kitty_world
    matron = promo(chain, clock, registry, ALICE, BOB.address)
    sire = promo(chain, clock, registry, ALICE, BOB.address)
    # Produce two siblings.
    run_tx(chain, clock, BOB, CallPayload(matron, "breed_with", (sire,)))
    c1 = run_tx(chain, clock, BOB, CallPayload(matron, "give_birth")).return_value
    run_tx(chain, clock, BOB, CallPayload(matron, "breed_with", (sire,)))
    c2 = run_tx(chain, clock, BOB, CallPayload(matron, "give_birth")).return_value
    refused = run_tx(chain, clock, BOB, CallPayload(c1, "breed_with", (c2,)))
    assert not refused.success
    assert "sibling" in refused.error


def test_cat_cannot_breed_with_itself(kitty_world):
    chain, clock, registry = kitty_world
    cat = promo(chain, clock, registry, ALICE, BOB.address)
    refused = run_tx(chain, clock, BOB, CallPayload(cat, "breed_with", (cat,)))
    assert not refused.success


def test_cannot_breed_while_pregnant(kitty_world):
    chain, clock, registry = kitty_world
    matron = promo(chain, clock, registry, ALICE, BOB.address)
    s1 = promo(chain, clock, registry, ALICE, BOB.address)
    s2 = promo(chain, clock, registry, ALICE, BOB.address)
    assert run_tx(chain, clock, BOB, CallPayload(matron, "breed_with", (s1,))).success
    refused = run_tx(chain, clock, BOB, CallPayload(matron, "breed_with", (s2,)))
    assert not refused.success
    assert "already pregnant" in refused.error


def test_transfer_ownership_clears_siring(kitty_world):
    chain, clock, registry = kitty_world
    cat = promo(chain, clock, registry, ALICE, BOB.address)
    run_tx(chain, clock, BOB, CallPayload(cat, "approve_siring", (CAROL.address,)))
    assert run_tx(chain, clock, BOB, CallPayload(cat, "transfer_ownership", (CAROL.address,))).success
    assert chain.view(cat, "get_owner") == CAROL.address
    refused = run_tx(chain, clock, BOB, CallPayload(cat, "transfer_ownership", (BOB.address,)))
    assert not refused.success


def test_give_birth_requires_pregnancy(kitty_world):
    chain, clock, registry = kitty_world
    cat = promo(chain, clock, registry, ALICE, BOB.address)
    refused = run_tx(chain, clock, BOB, CallPayload(cat, "give_birth"))
    assert not refused.success


def test_breeding_cooldown_subclass(kitty_world):
    # CryptoKitties-style cooldown: a matron rests after giving birth.
    from repro.apps.kitties import Kitty
    from repro.runtime.registry import register_contract

    chain, clock, registry = kitty_world

    @register_contract
    class SlowKitty(Kitty):
        """A cat with a 60-second breeding cooldown."""

        BREED_COOLDOWN = 60.0

    from repro.chain.tx import DeployPayload

    matron = run_tx(
        chain, clock, ALICE,
        DeployPayload(code_hash=SlowKitty.CODE_HASH,
                      args=(BOB.address, 901, 7, 0, 0, 0, registry)),
    ).return_value
    sire = run_tx(
        chain, clock, ALICE,
        DeployPayload(code_hash=SlowKitty.CODE_HASH,
                      args=(BOB.address, 902, 8, 0, 0, 0, registry)),
    ).return_value
    assert run_tx(chain, clock, BOB, CallPayload(matron, "breed_with", (sire,))).success
    assert run_tx(chain, clock, BOB, CallPayload(matron, "give_birth")).success
    # Immediately breeding again hits the cooldown...
    refused = run_tx(chain, clock, BOB, CallPayload(matron, "breed_with", (sire,)))
    assert not refused.success
    assert "cooldown" in refused.error
    # ...which elapses with block time (5 s per block).
    from tests.helpers import produce

    produce(chain, clock, 13)
    assert run_tx(chain, clock, BOB, CallPayload(matron, "breed_with", (sire,))).success
