"""Unit tests for the typed health probes: each probe's healthy /
unhealthy judgement against hand-built system states."""

from types import SimpleNamespace

from repro.crypto.keys import Address
from repro.health.probes import (
    ChainLivenessProbe,
    ConflictRateProbe,
    GatewayQueueProbe,
    MempoolDepthProbe,
    RebalancerProbe,
    RelayLagProbe,
    ReplicaStalenessProbe,
)
from repro.replicate.mirror import HALTED, LIVE, SYNCING, TOMBSTONED
from repro.telemetry import MetricsRegistry


def _chain(chain_id, height=0, block_interval=5.0, max_block_txs=100, mempool=()):
    return SimpleNamespace(
        chain_id=chain_id,
        height=height,
        params=SimpleNamespace(
            block_interval=block_interval, max_block_txs=max_block_txs
        ),
        mempool=list(mempool),
    )


# ----------------------------------------------------------------------
# Chain liveness
# ----------------------------------------------------------------------


class TestChainLiveness:
    def test_advancing_chain_is_healthy(self):
        chain = _chain(1, height=0)
        probe = ChainLivenessProbe({1: chain})
        (sample,) = probe.sample(0.0)
        assert sample.target == "chain:1"
        assert sample.healthy
        chain.height = 1
        (sample,) = probe.sample(5.0)
        assert sample.healthy and sample.value == 0.0

    def test_stall_beyond_budget_is_unhealthy(self):
        chain = _chain(1, height=3, block_interval=5.0)
        probe = ChainLivenessProbe({1: chain}, stall_factor=3.0)
        probe.sample(0.0)
        (sample,) = probe.sample(15.0)  # exactly at budget: still fine
        assert sample.healthy
        (sample,) = probe.sample(15.1)
        assert not sample.healthy
        assert sample.value == 15.1

    def test_budget_scales_with_block_interval(self):
        slow = _chain(3, height=1, block_interval=15.0)
        probe = ChainLivenessProbe({3: slow}, stall_factor=3.0)
        probe.sample(0.0)
        (sample,) = probe.sample(40.0)  # under 45 s: a PoW gap, not a stall
        assert sample.healthy

    def test_targets_sorted_by_chain_id(self):
        probe = ChainLivenessProbe({2: _chain(2), 1: _chain(1)})
        targets = [s.target for s in probe.sample(0.0)]
        assert targets == ["chain:1", "chain:2"]


# ----------------------------------------------------------------------
# Relay lag
# ----------------------------------------------------------------------


def _relay(source, targets, heads):
    observers = []
    for target in targets:
        target.light_client = SimpleNamespace(
            store_for=lambda sid, t=target: SimpleNamespace(
                head_height=heads[t.chain_id]
            )
        )
        observers.append(target)
    return SimpleNamespace(source=source, targets=observers)


class TestRelayLag:
    def test_prompt_observer_is_healthy(self):
        relay = _relay(_chain(1, height=10), [_chain(2)], {2: 9})
        (sample,) = RelayLagProbe([relay]).sample(0.0)
        assert sample.target == "relay:1->2"
        assert sample.healthy and sample.value == 1.0

    def test_lag_beyond_bound_is_unhealthy(self):
        relay = _relay(_chain(1, height=10), [_chain(2)], {2: 6})
        (sample,) = RelayLagProbe([relay], max_lag=3).sample(0.0)
        assert not sample.healthy
        assert sample.value == 4.0

    def test_observer_ahead_clamps_to_zero(self):
        # A fork-aware store can briefly sit above the source's height.
        relay = _relay(_chain(1, height=5), [_chain(2)], {2: 7})
        (sample,) = RelayLagProbe([relay]).sample(0.0)
        assert sample.healthy and sample.value == 0.0


# ----------------------------------------------------------------------
# Replica staleness
# ----------------------------------------------------------------------


def _mirror(status, staleness=0, bound=2):
    return SimpleNamespace(
        status=status,
        staleness_bound=bound,
        staleness=lambda height, s=staleness: s,
    )


def _manager(mirrors, source=None):
    source = source if source is not None else _chain(1, height=20)
    relay = SimpleNamespace(source=source, mirrors=mirrors)
    return SimpleNamespace(_relays={(1, 2): relay})


def _addr(byte):
    return Address(bytes([byte]) * 20)


class TestReplicaStaleness:
    def test_live_within_bound_is_healthy(self):
        manager = _manager({_addr(1): _mirror(LIVE, staleness=2, bound=2)})
        (sample,) = ReplicaStalenessProbe(manager).sample(0.0)
        assert sample.target.startswith("replica:1->2:")
        assert sample.healthy

    def test_live_beyond_bound_is_unhealthy(self):
        manager = _manager({_addr(1): _mirror(LIVE, staleness=3, bound=2)})
        (sample,) = ReplicaStalenessProbe(manager).sample(0.0)
        assert not sample.healthy
        assert sample.value == 3.0

    def test_tombstoned_reports_nothing(self):
        manager = _manager({_addr(1): _mirror(TOMBSTONED)})
        assert ReplicaStalenessProbe(manager).sample(0.0) == []

    def test_syncing_gets_grace_then_goes_unhealthy(self):
        mirrors = {_addr(1): _mirror(SYNCING, staleness=9)}
        probe = ReplicaStalenessProbe(_manager(mirrors), sync_grace=6.0)
        (sample,) = probe.sample(0.0)
        assert sample.healthy  # episode just started
        (sample,) = probe.sample(30.0)  # within 6 * 5s grace
        assert sample.healthy
        (sample,) = probe.sample(31.0)
        assert not sample.healthy

    def test_each_sync_episode_gets_fresh_grace(self):
        # syncing -> live -> syncing again (a re-homed mirror after a
        # move) must not inherit the first episode's elapsed clock
        mirrors = {_addr(1): _mirror(SYNCING, staleness=9)}
        probe = ReplicaStalenessProbe(_manager(mirrors), sync_grace=6.0)
        probe.sample(0.0)
        mirrors[_addr(1)] = _mirror(LIVE, staleness=1)
        probe.sample(40.0)
        mirrors[_addr(1)] = _mirror(SYNCING, staleness=9)
        (sample,) = probe.sample(45.0)
        assert sample.healthy
        (sample,) = probe.sample(80.0)
        assert not sample.healthy

    def test_halted_episode_times_out(self):
        mirrors = {_addr(1): _mirror(HALTED, staleness=12)}
        probe = ReplicaStalenessProbe(_manager(mirrors), sync_grace=6.0)
        probe.sample(0.0)
        (sample,) = probe.sample(50.0)
        assert not sample.healthy


# ----------------------------------------------------------------------
# Gateway queues and shed rate
# ----------------------------------------------------------------------


def _gateway(depths, bound=100, metrics=None):
    metrics = metrics if metrics is not None else MetricsRegistry()
    return SimpleNamespace(
        limits=SimpleNamespace(max_queue_depth=bound),
        node=SimpleNamespace(chains={c: None for c in depths}),
        queue_depth=lambda c: depths[c],
        telemetry=SimpleNamespace(metrics=metrics),
    )


class TestGatewayQueue:
    def test_shallow_queues_are_healthy(self):
        samples = GatewayQueueProbe(_gateway({1: 5, 2: 0})).sample(0.0)
        by_target = {s.target: s for s in samples}
        assert by_target["gateway:1"].healthy
        assert by_target["gateway:2"].healthy
        assert by_target["gateway:shed"].healthy

    def test_queue_near_bound_is_unhealthy(self):
        samples = GatewayQueueProbe(
            _gateway({1: 95}, bound=100), depth_threshold=0.9
        ).sample(0.0)
        assert not samples[0].healthy

    def test_classed_gateway_emits_per_class_samples(self):
        gateway = _gateway({1: 30}, bound=100)
        gateway.class_depths = lambda c: {"move": 0, "view": 5, "bulk": 25}
        samples = GatewayQueueProbe(gateway).sample(0.0)
        by_target = {s.target: s for s in samples}
        assert by_target["gateway:1:move"].value == 0.0
        assert by_target["gateway:1:bulk"].value == 0.25
        assert by_target["gateway:1:bulk"].healthy
        assert "5/100 queued in view" in by_target["gateway:1:view"].detail

    def test_move_class_backlog_trips_the_tight_threshold(self):
        # 30/100 queued moves is far under the 90% aggregate threshold
        # but means the priority plane is broken: moves flush first, so
        # any sustained move backlog is alarming.
        gateway = _gateway({1: 30}, bound=100)
        gateway.class_depths = lambda c: {"move": 30, "view": 0, "bulk": 0}
        samples = GatewayQueueProbe(gateway, move_threshold=0.25).sample(0.0)
        by_target = {s.target: s for s in samples}
        assert by_target["gateway:1"].healthy
        assert not by_target["gateway:1:move"].healthy

    def test_shed_rate_is_delta_based(self):
        metrics = MetricsRegistry()
        probe = GatewayQueueProbe(
            _gateway({1: 0}, metrics=metrics), shed_threshold=0.5
        )
        metrics.counter("gateway_requests_total").inc(10)
        metrics.counter("gateway_rejected_total").inc(8)
        shed = probe.sample(0.0)[-1]
        assert not shed.healthy and shed.value == 0.8
        # no new traffic since: the *delta* rate drops back to zero
        shed = probe.sample(5.0)[-1]
        assert shed.healthy and shed.value == 0.0


# ----------------------------------------------------------------------
# Mempool depth, executor conflicts, rebalancer
# ----------------------------------------------------------------------


class TestMempoolDepth:
    def test_backlog_beyond_blocks_worth_is_unhealthy(self):
        chain = _chain(1, max_block_txs=10, mempool=range(31))
        (sample,) = MempoolDepthProbe({1: chain}, max_blocks=3.0).sample(0.0)
        assert not sample.healthy
        assert sample.value == 31.0
        chain.mempool = list(range(30))
        (sample,) = MempoolDepthProbe({1: chain}, max_blocks=3.0).sample(0.0)
        assert sample.healthy


class TestConflictRate:
    def test_rate_is_delta_based(self):
        metrics = MetricsRegistry()
        probe = ConflictRateProbe(metrics, [1], max_rate=0.5)
        metrics.counter("executor_parallel_txs_speculated_total", chain=1).inc(10)
        metrics.counter("executor_parallel_txs_reexecuted_total", chain=1).inc(8)
        (sample,) = probe.sample(0.0)
        assert sample.target == "executor:1"
        assert not sample.healthy and sample.value == 0.8
        metrics.counter("executor_parallel_txs_speculated_total", chain=1).inc(10)
        (sample,) = probe.sample(5.0)
        assert sample.healthy and sample.value == 0.0

    def test_serial_chain_reads_zero(self):
        (sample,) = ConflictRateProbe(MetricsRegistry(), [1]).sample(0.0)
        assert sample.healthy and sample.value == 0.0


class TestRebalancer:
    def test_inflight_at_bound_is_unhealthy(self):
        policy = SimpleNamespace(inflight={"a": 1, "b": 2}, max_inflight=2)
        (sample,) = RebalancerProbe(SimpleNamespace(policy=policy)).sample(0.0)
        assert sample.target == "rebalancer"
        assert not sample.healthy
        policy.inflight = {"a": 1}
        (sample,) = RebalancerProbe(SimpleNamespace(policy=policy)).sample(0.0)
        assert sample.healthy
