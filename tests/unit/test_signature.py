"""Unit tests for both signer implementations."""

import pytest

from repro.crypto.hashing import keccak
from repro.crypto.signature import Ed25519Signer, SimulatedSigner


@pytest.fixture(params=[Ed25519Signer, SimulatedSigner], ids=["ed25519", "simulated"])
def signer(request):
    return request.param()


SEED = keccak(b"test-seed")
OTHER_SEED = keccak(b"other-seed")


def test_sign_verify_roundtrip(signer):
    public = signer.public_key(SEED)
    sig = signer.sign(SEED, b"hello")
    assert signer.verify(public, b"hello", sig)


def test_wrong_message_rejected(signer):
    public = signer.public_key(SEED)
    sig = signer.sign(SEED, b"hello")
    assert not signer.verify(public, b"goodbye", sig)


def test_wrong_key_rejected(signer):
    sig = signer.sign(SEED, b"hello")
    other_public = signer.public_key(OTHER_SEED)
    assert not signer.verify(other_public, b"hello", sig)


def test_tampered_signature_rejected(signer):
    public = signer.public_key(SEED)
    sig = bytearray(signer.sign(SEED, b"hello"))
    sig[0] ^= 0x01
    assert not signer.verify(public, b"hello", bytes(sig))


def test_public_key_deterministic(signer):
    assert signer.public_key(SEED) == signer.public_key(SEED)


def test_ed25519_known_vector():
    # RFC 8032 test vector 1 (empty message).
    seed = bytes.fromhex(
        "9d61b19deffd5a60ba844af492ec2cc44449c5697b326919703bac031cae7f60"
    )
    expected_public = bytes.fromhex(
        "d75a980182b10ab7d54bfed3c964073a0ee172f3daa62325af021a68f707511a"
    )
    expected_sig = bytes.fromhex(
        "e5564300c360ac729086e2cc806e828a84877f1eb8e5d974d873e06522490155"
        "5fb8821590a33bacc61e39701cf9b46bd25bf5f0595bbe24655141438e7a100b"
    )
    signer = Ed25519Signer()
    assert signer.public_key(seed) == expected_public
    assert signer.sign(seed, b"") == expected_sig
    assert signer.verify(expected_public, b"", expected_sig)


def test_ed25519_rejects_malformed_inputs():
    signer = Ed25519Signer()
    public = signer.public_key(SEED)
    assert not signer.verify(public, b"m", b"short")
    assert not signer.verify(b"short", b"m", b"\x00" * 64)
    # s >= group order
    bad = signer.sign(SEED, b"m")[:32] + (b"\xff" * 32)
    assert not signer.verify(public, b"m", bad)
