"""Golden test on the stable facade: ``repro.api.__all__``.

The facade is the compatibility contract — applications, examples and
the CLI import only from :mod:`repro.api`, so its surface may only
change deliberately.  The golden list below is that contract written
down: a failing diff here means a reviewed decision to grow the API
(add the name to the golden list too) or a breaking change (don't).
"""

from repro import api

# The contract.  Keep sorted; update only on purpose.
GOLDEN_SURFACE = sorted([
    # serving
    "Node",
    "Gateway",
    "GatewayLimits",
    "Client",
    "InProcessTransport",
    "SimNetTransport",
    "RequestHandle",
    "MoveHandle",
    # chains
    "Chain",
    "ChainParams",
    "burrow_params",
    "ethereum_params",
    "ChainRegistry",
    "HeaderRelay",
    "connect_chains",
    "IBCBridge",
    "MovePhases",
    "Simulator",
    "ShardedCluster",
    # transactions and identity
    "Transaction",
    "sign_transaction",
    "TransferPayload",
    "DeployPayload",
    "CallPayload",
    "Move1Payload",
    "Move2Payload",
    "KeyPair",
    "Address",
    # contract authoring
    "MovableContract",
    "AccountI",
    "STokenI",
    "register_contract",
    "external",
    "payable",
    "view",
    "Slot",
    "MapSlot",
    "require",
    # rebalancing control plane
    "SignalPlane",
    "ShardLoadView",
    "RebalancePolicy",
    "Rebalancer",
    # replication (read-only cross-chain mirrors)
    "ReplicationManager",
    "ReplicationRelay",
    "Mirror",
    # observation and adversity
    "Telemetry",
    "FaultPlan",
    "HealthMonitor",
    "SloSpec",
    "FlightRecorder",
    "default_slos",
    # errors
    "ReproError",
    "ConfigError",
    "TransactionAborted",
    "Revert",
    "OutOfGas",
    "ContractLocked",
    "MoveError",
    "ReplayError",
    "ProofError",
    "InvariantViolation",
    "GatewayError",
    "Overloaded",
    "QueueFull",
    "RateLimited",
    "RequestTimeout",
    "UnknownChainError",
    "InvalidRequest",
    "ReadOnlyReplicaError",
    "ReplicaUnavailable",
])


def test_api_surface_is_golden():
    assert sorted(api.__all__) == GOLDEN_SURFACE


def test_every_name_resolves():
    for name in api.__all__:
        assert getattr(api, name) is not None, name


def test_no_duplicates():
    assert len(api.__all__) == len(set(api.__all__))


def test_error_taxonomy_roots_at_reproerror():
    for name in api.__all__:
        obj = getattr(api, name)
        if isinstance(obj, type) and name.endswith(
            ("Error", "Aborted", "Violation", "Locked", "Overloaded")
        ):
            assert issubclass(obj, api.ReproError), name


def test_gateway_rejections_are_overloaded():
    # Clients catch one type to back off under pressure.
    assert issubclass(api.QueueFull, api.Overloaded)
    assert issubclass(api.RateLimited, api.Overloaded)
    assert issubclass(api.Overloaded, api.GatewayError)
