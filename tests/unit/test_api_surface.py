"""Golden test on the stable facade: ``repro.api.__all__``.

The facade is the compatibility contract — applications, examples and
the CLI import only from :mod:`repro.api`, so its surface may only
change deliberately.  The golden list below is that contract written
down: a failing diff here means a reviewed decision to grow the API
(add the name to the golden list too) or a breaking change (don't).

Since the fleet PR the facade is a package of documented sections
(``serving`` / ``chains`` / ``authoring`` / ``observation`` /
``errors``) re-exported flat; the section split and the deprecation
shim for retired names are part of the contract and tested here too.
"""

import warnings

import pytest

from repro import api

# The contract.  Keep sorted; update only on purpose.
GOLDEN_SURFACE = sorted([
    # serving
    "Node",
    "Gateway",
    "GatewayFleet",
    "GatewayLimits",
    "PriorityClass",
    "Client",
    "InProcessTransport",
    "SimNetTransport",
    "RequestHandle",
    "MoveHandle",
    "Subscription",
    # chains
    "Chain",
    "ChainParams",
    "burrow_params",
    "ethereum_params",
    "ChainRegistry",
    "HeaderRelay",
    "connect_chains",
    "IBCBridge",
    "MovePhases",
    "Simulator",
    "ShardedCluster",
    # transactions and identity
    "Transaction",
    "sign_transaction",
    "TransferPayload",
    "DeployPayload",
    "CallPayload",
    "Move1Payload",
    "Move2Payload",
    "KeyPair",
    "Address",
    # contract authoring
    "MovableContract",
    "AccountI",
    "STokenI",
    "register_contract",
    "external",
    "payable",
    "view",
    "Slot",
    "MapSlot",
    "require",
    # rebalancing control plane
    "SignalPlane",
    "ShardLoadView",
    "RebalancePolicy",
    "Rebalancer",
    # replication (read-only cross-chain mirrors)
    "ReplicationManager",
    "ReplicationRelay",
    "Mirror",
    # observation and adversity
    "Telemetry",
    "FaultPlan",
    "HealthMonitor",
    "SloSpec",
    "FlightRecorder",
    "default_slos",
    # errors
    "ReproError",
    "ConfigError",
    "TransactionAborted",
    "Revert",
    "OutOfGas",
    "ContractLocked",
    "MoveError",
    "ReplayError",
    "ProofError",
    "InvariantViolation",
    "GatewayError",
    "Overloaded",
    "ShedByClass",
    "RateLimited",
    "RequestTimeout",
    "UnknownChainError",
    "InvalidRequest",
    "ReadOnlyReplicaError",
    "ReplicaUnavailable",
])

#: the sectioned facade: every name lives in exactly one section module
SECTIONS = ("serving", "chains", "authoring", "observation", "errors")


def test_api_surface_is_golden():
    assert sorted(api.__all__) == GOLDEN_SURFACE


def test_every_name_resolves():
    for name in api.__all__:
        assert getattr(api, name) is not None, name


def test_no_duplicates():
    assert len(api.__all__) == len(set(api.__all__))


def test_sections_partition_the_surface():
    # Every public name belongs to exactly one documented section, and
    # the flat re-export is the very same object.
    seen = {}
    for section in SECTIONS:
        module = getattr(api, section)
        for name in module.__all__:
            assert name not in seen, f"{name} in both {seen.get(name)} and {section}"
            seen[name] = section
            assert getattr(api, name) is getattr(module, name), name
    assert sorted(seen) == GOLDEN_SURFACE


def test_error_taxonomy_roots_at_reproerror():
    for name in api.__all__:
        obj = getattr(api, name)
        if isinstance(obj, type) and name.endswith(
            ("Error", "Aborted", "Violation", "Locked", "Overloaded")
        ):
            assert issubclass(obj, api.ReproError), name


def test_gateway_rejections_are_overloaded():
    # Clients catch one type to back off under pressure.
    assert issubclass(api.ShedByClass, api.Overloaded)
    assert issubclass(api.RateLimited, api.Overloaded)
    assert issubclass(api.Overloaded, api.GatewayError)


def test_retired_names_alias_with_deprecation_warning():
    # One deprecation cycle: the old spelling imports, warns, and is
    # the replacement object (so isinstance/except clauses still work).
    with pytest.warns(DeprecationWarning, match="ShedByClass"):
        old = api.QueueFull
    assert old is api.ShedByClass
    # The wire code is unchanged — clients branching on error.code
    # ("queue_full") are unaffected by the rename.
    assert api.ShedByClass.code == "queue_full"
    with pytest.raises(AttributeError):
        api.NoSuchName


def test_deprecated_names_stay_out_of_all():
    assert "QueueFull" not in api.__all__


def test_shed_by_class_carries_attribution():
    error = api.ShedByClass(
        "shed", shed_class="bulk", shed_client="alice", chain_id=1
    )
    assert error.shed_class == "bulk"
    assert error.shed_client == "alice"
    assert error.chain_id == 1
    assert error.to_dict()["shed_class"] == "bulk"
    with warnings.catch_warnings():
        warnings.simplefilter("error")  # plain errors alias must not warn
        from repro.errors import QueueFull as internal_alias
    assert internal_alias is api.ShedByClass
