"""Unit coverage for the process-backend wave serialization
(:mod:`repro.parallel.frames`), the registration-time specialization
pass, and the pool lifecycle fixes.

The frames layer carries three invariants:

* **round-trip fidelity** — transactions, receipts (logs and gas
  included) and speculation frames survive encode/decode unchanged, so
  a worker-produced outcome commits exactly like a thread-produced one;
* **coverage honesty** — a worker-side read outside the shipped
  coverage snapshot raises :class:`SpeculationUnsupported` instead of
  inventing a value, so footprint under-approximation degrades to
  serial re-execution, never to divergence;
* **unshippable fallback** — payloads or results the primitive wire
  format cannot express return ``None`` outcomes and the parent runs
  those transactions at commit position.
"""

from __future__ import annotations

import multiprocessing
import pickle

import pytest

from repro.chain.chain import Chain
from repro.chain.params import burrow_params
from repro.chain.tx import (
    CallPayload,
    DEFAULT_SIGNER,
    DeployPayload,
    TransferPayload,
    sign_transaction,
)
from repro.crypto.hashing import keccak
from repro.crypto.keys import KeyPair
from repro.errors import SpeculationUnsupported
from repro.parallel import frames
from repro.parallel.executor import ParallelBlockExecutor
from repro.parallel.footprint import footprint_of
from repro.runtime.context import BlockEnv
from repro.runtime.contract import MapSlot
from repro.statedb.state import SpeculationFrame, WorldState

USERS = [KeyPair.from_name(f"frames-user-{i}") for i in range(6)]


def _tx(payload, user=None, nonce=0):
    return sign_transaction(user or USERS[0], payload, nonce=nonce)


# ----------------------------------------------------------------------
# Wire format round-trips
# ----------------------------------------------------------------------


class TestTransactionRoundTrip:
    def test_transfer_round_trips(self):
        tx = _tx(TransferPayload(to=USERS[1].address, amount=7), nonce=3)
        encoded = frames.encode_wave_tx(tx, want_verdict=False)
        decoded = frames._decode_tx(encoded)
        assert decoded.sender == tx.sender
        assert decoded.public_key == tx.public_key
        assert decoded.nonce == tx.nonce
        assert decoded.signature == tx.signature
        assert decoded.tx_id == tx.tx_id
        assert decoded.payload == tx.payload
        assert decoded.signing_bytes() == tx.signing_bytes()

    def test_call_with_mixed_args_round_trips(self):
        payload = CallPayload(
            target=USERS[1].address,
            method="transfer_tokens",
            args=(USERS[2].address, 5, "memo", b"\x01\x02", True, None),
            value=9,
        )
        tx = _tx(payload, nonce=4)
        decoded = frames._decode_tx(frames.encode_wave_tx(tx, want_verdict=False))
        assert decoded.payload == payload

    def test_deploy_payload_is_unshippable(self):
        tx = _tx(DeployPayload(code_hash=b"\x11" * 32), nonce=5)
        assert frames.encode_wave_tx(tx, want_verdict=False) is None

    def test_unshippable_argument_is_unshippable(self):
        # signable (canonical encoding sorts any dict) but outside the
        # primitive wire format (non-string dict keys)
        payload = CallPayload(
            target=USERS[1].address, method="m", args=({1: 2},)
        )
        tx = _tx(payload, nonce=6)
        assert frames.encode_wave_tx(tx, want_verdict=False) is None

    def test_verdict_ships_only_from_default_signer_memo(self):
        tx = _tx(TransferPayload(to=USERS[1].address, amount=1), nonce=7)
        # no memo yet: nothing to ship
        assert frames.encode_wave_tx(tx, want_verdict=True)[-1] is None
        assert tx.verify()  # seeds the DEFAULT_SIGNER-keyed memo
        encoded = frames.encode_wave_tx(tx, want_verdict=True)
        assert encoded[-1] is True
        # the decoded copy's memo makes verify() a cache hit
        decoded = frames._decode_tx(encoded)
        assert decoded._verify_cache[2] is DEFAULT_SIGNER
        assert decoded.verify() is True

    def test_bool_and_int_args_stay_distinct(self):
        for value in (True, 1, False, 0):
            decoded = frames._decode_value(frames._encode_value(value))
            assert decoded == value and type(decoded) is type(value)


class TestFrameRoundTrip:
    def test_ops_and_reads_rebuild_identically(self):
        frame = SpeculationFrame()
        a, b = USERS[0].address, USERS[1].address
        frame.add_balance(a, 10)
        frame.sub_balance(b, 4)
        frame.bump_nonce(a)
        frame.storage_set(b, b"\x22" * 32, b"payload")
        frame.reads.add(("b", a))
        frame.reads.add(("s", b, b"\x22" * 32))
        frame.reads.add(("code", b"\x33" * 32))

        receipt_like = _make_receipt()
        payload = frames._encode_outcome(receipt_like, frame)
        tx = _tx(TransferPayload(to=b, amount=1), nonce=8)
        receipt, rebuilt, _seconds = frames.decode_outcome((payload, 0.5), tx)
        assert rebuilt.reads == frame.reads
        assert rebuilt.writes == frame.writes
        assert rebuilt.ops == frame.ops
        assert rebuilt.balance_delta(a) == frame.balance_delta(a)
        assert rebuilt.storage_overlay(b, b"\x22" * 32) == b"payload"
        assert receipt.tx_id == tx.tx_id

    def test_receipt_logs_and_gas_round_trip(self):
        receipt = _make_receipt()
        payload = frames._encode_outcome(receipt, SpeculationFrame())
        tx = _tx(TransferPayload(to=USERS[1].address, amount=1), nonce=9)
        decoded, _frame, _s = frames.decode_outcome((payload, 0.0), tx)
        assert decoded.success == receipt.success
        assert decoded.gas_used == receipt.gas_used
        assert decoded.error == receipt.error
        assert decoded.return_value == receipt.return_value
        assert decoded.logs == receipt.logs
        assert decoded.gas_by_category == receipt.gas_by_category
        assert decoded.fee_paid == receipt.fee_paid

    def test_none_payload_means_unsupported(self):
        tx = _tx(TransferPayload(to=USERS[1].address, amount=1), nonce=10)
        receipt, frame, seconds = frames.decode_outcome((None, 0.25), tx)
        assert receipt is None and frame is None and seconds == 0.25


def _make_receipt():
    from repro.statedb.receipts import Receipt

    return Receipt(
        tx_id="ignored",
        success=True,
        gas_used=1234,
        return_value=(True, USERS[2].address, [1, 2], {"k": b"v"}),
        logs=[("Transfer", {"from": "a", "to": "b", "amount": 5})],
        gas_by_category={"execution": 1000, "log": 234},
        fee_paid=17,
    )


# ----------------------------------------------------------------------
# Coverage snapshots and the worker-side state
# ----------------------------------------------------------------------


class TestWaveState:
    def _snapshot_state(self):
        from repro.merkle.iavl import IAVLTree

        state = WorldState(1, IAVLTree)
        a, b = USERS[0].address, USERS[1].address
        state.fund = None  # not used; accounts created directly
        state.add_balance(a, 100)
        state.add_balance(b, 50)
        return state, a, b

    def test_covered_reads_see_prewave_values(self):
        state, a, b = self._snapshot_state()
        env = BlockEnv(chain_id=1, height=5, timestamp=9.0)
        tx = _tx(TransferPayload(to=b, amount=1), user=USERS[0], nonce=11)
        blob = frames.encode_snapshot(state, env, [footprint_of(tx)])
        wave_state = frames._WaveState(1, state.tree_factory, pickle.loads(blob))
        assert wave_state.balance_of(a) == 100
        assert wave_state.balance_of(b) == 50

    def test_uncovered_reads_raise(self):
        state, a, b = self._snapshot_state()
        env = BlockEnv(chain_id=1, height=5, timestamp=9.0)
        tx = _tx(TransferPayload(to=b, amount=1), user=USERS[0], nonce=12)
        blob = frames.encode_snapshot(state, env, [footprint_of(tx)])
        wave_state = frames._WaveState(1, state.tree_factory, pickle.loads(blob))
        outsider = USERS[3].address
        with pytest.raises(SpeculationUnsupported):
            wave_state.balance_of(outsider)
        with pytest.raises(SpeculationUnsupported):
            wave_state.contract(outsider)
        with pytest.raises(SpeculationUnsupported):
            wave_state.bump_nonce(a)
        with pytest.raises(SpeculationUnsupported):
            wave_state.has_code(b"\x00" * 32)

    def test_junk_footprint_entries_are_skipped_not_fatal(self):
        state, a, b = self._snapshot_state()
        env = BlockEnv(chain_id=1, height=5, timestamp=9.0)
        from repro.parallel.footprint import Footprint

        junk = Footprint(
            reads=frozenset({("b", a), ("b", "not-an-address"), ("weird",)}),
            writes=frozenset({("b", a)}),
        )
        blob = frames.encode_snapshot(state, env, [junk])
        wave_state = frames._WaveState(1, state.tree_factory, pickle.loads(blob))
        assert wave_state.balance_of(a) == 100

    def test_worker_light_client_aborts_speculation(self):
        sentinel = frames._WorkerLightClient()
        with pytest.raises(SpeculationUnsupported):
            sentinel.store_for


# ----------------------------------------------------------------------
# End-to-end: execute_wave_chunk in-process
# ----------------------------------------------------------------------


class TestExecuteWaveChunk:
    def test_chunk_matches_parent_execution(self):
        chain = Chain(
            burrow_params(1, executor_workers=2), verify_signatures=True
        )
        chain.fund({kp.address: 10**9 for kp in USERS})
        txs = [
            _tx(TransferPayload(to=USERS[i + 1].address, amount=5), USERS[i], nonce=20 + i)
            for i in range(3)
        ]
        env = BlockEnv(chain_id=1, height=1, timestamp=1.0)
        config_blob = frames.encode_config(chain.executor)
        snapshot_blob = frames.encode_snapshot(
            chain.state, env, [footprint_of(tx) for tx in txs]
        )
        encoded = [frames.encode_wave_tx(tx, want_verdict=False) for tx in txs]
        results = frames.execute_wave_chunk(
            config_blob, snapshot_blob, pickle.dumps(encoded)
        )
        assert len(results) == len(txs)
        for tx, element in zip(txs, results):
            receipt, frame, seconds = frames.decode_outcome(element, tx)
            assert receipt is not None and receipt.success
            assert frame.balance_delta(tx.payload.to) == 5
            assert seconds >= 0.0
        chain.close()

    def test_stale_registry_degrades_to_unsupported(self):
        chain = Chain(burrow_params(1, executor_workers=2), verify_signatures=False)
        chain.fund({USERS[0].address: 10**9})
        tx = _tx(TransferPayload(to=USERS[1].address, amount=1), nonce=30)
        env = BlockEnv(chain_id=1, height=1, timestamp=1.0)
        config_blob = frames.encode_config(chain.executor)
        snapshot_blob = frames.encode_snapshot(chain.state, env, [footprint_of(tx)])
        # Corrupt the shipped registered-hash set with a hash this
        # process's registry cannot know: the whole chunk must fall
        # back instead of executing against missing classes.
        snapshot = list(pickle.loads(snapshot_blob))
        snapshot[6] = frozenset({b"\xaa" * 32})
        results = frames.execute_wave_chunk(
            config_blob,
            pickle.dumps(tuple(snapshot)),
            pickle.dumps([frames.encode_wave_tx(tx, want_verdict=False)]),
        )
        assert results == [(None, 0.0)]
        chain.close()


# ----------------------------------------------------------------------
# Specialization pass
# ----------------------------------------------------------------------


class TestSpecialization:
    def test_dispatch_table_built_at_registration(self):
        from repro.apps.scoin import SAccount, SCoin

        for cls in (SAccount, SCoin):
            table = cls.__dict__["_RT_DISPATCH"]
            for name, (fn, is_view, is_payable) in table.items():
                assert getattr(fn, "_is_external", False)
                assert is_view == getattr(fn, "_is_view", False)
                assert is_payable == getattr(fn, "_is_payable", False)
        assert "transfer_tokens" in SAccount.__dict__["_RT_DISPATCH"]
        assert "init" not in SAccount.__dict__["_RT_DISPATCH"]

    def test_reregistration_rebuilds_the_table(self):
        from repro.runtime.contract import Contract, external
        from repro.runtime.registry import register_contract

        @register_contract
        class Widget(Contract):
            @external
            def ping(self) -> int:
                return 1

        first = Widget.__dict__["_RT_DISPATCH"]
        assert set(first) == {"ping"}

        # Redeploy scenario: the class is redefined (new methods) and
        # re-registered — the table must reflect the new shape, not the
        # stale one.
        @register_contract
        class Widget(Contract):  # noqa: F811
            @external
            def ping(self) -> int:
                return 2

            @external
            def pong(self) -> int:
                return 3

        assert set(Widget.__dict__["_RT_DISPATCH"]) == {"ping", "pong"}

    def test_mapslot_derived_key_matches_direct_derivation(self):
        slot = MapSlot(int, int)
        slot.__set_name__(None, "allowances")
        from repro.runtime.contract import encode_key

        key = USERS[0].address
        assert slot.derived_key(key) == keccak(slot.base, encode_key(key))
        # memoized path returns the same bytes
        assert slot.derived_key(key) == slot.derived_key(key)

    def test_mapslot_cache_keeps_bool_and_int_apart(self):
        slot = MapSlot(bool, int)
        slot.__set_name__(None, "flags")
        assert slot.derived_key(True) != slot.derived_key(1)
        assert slot.derived_key(False) != slot.derived_key(0)

    def test_mapslot_rename_invalidates_cache(self):
        slot = MapSlot(int, int)
        slot.__set_name__(None, "first")
        before = slot.derived_key(7)
        slot.__set_name__(None, "second")
        assert slot.derived_key(7) != before

    def test_footprint_memo_is_sound_for_repeated_payloads(self):
        tx1 = _tx(TransferPayload(to=USERS[1].address, amount=5), nonce=40)
        tx2 = _tx(TransferPayload(to=USERS[1].address, amount=5), nonce=41)
        assert footprint_of(tx1) == footprint_of(tx2)
        assert footprint_of(tx1, gas_price=1) != footprint_of(tx1, gas_price=0)


# ----------------------------------------------------------------------
# Pool lifecycle
# ----------------------------------------------------------------------


class TestPoolLifecycle:
    def test_chain_close_is_idempotent_and_restart_safe(self):
        chain = Chain(
            burrow_params(
                1, executor_workers=2, executor_backend="process"
            ),
            verify_signatures=True,
        )
        chain.fund({kp.address: 10**9 for kp in USERS})
        for i in range(4):
            chain.submit(
                _tx(TransferPayload(to=USERS[i + 1].address, amount=1), USERS[i], nonce=50 + i)
            )
        chain.produce_block(timestamp=1.0)
        chain.close()
        chain.close()  # idempotent
        assert not multiprocessing.active_children()
        # pools recreate lazily: the chain still produces blocks
        for i in range(4):
            chain.submit(
                _tx(TransferPayload(to=USERS[i + 1].address, amount=1), USERS[i], nonce=60 + i)
            )
        chain.produce_block(timestamp=2.0)
        chain.close()
        assert not multiprocessing.active_children()

    def test_executor_close_shuts_both_pools(self):
        chain = Chain(burrow_params(1, executor_workers=2), verify_signatures=False)
        executor = ParallelBlockExecutor(
            chain.executor, workers=2, chain_id=1, backend="process"
        )
        env = BlockEnv(chain_id=1, height=1, timestamp=1.0)
        chain.fund({kp.address: 10**9 for kp in USERS})
        txs = [
            _tx(TransferPayload(to=USERS[i + 1].address, amount=1), USERS[i], nonce=70 + i)
            for i in range(4)
        ]
        receipts, _report = executor.execute_block(txs, env)
        assert all(r.success for r in receipts)
        executor.close()
        assert executor._pool is None and executor._process_pool is None
        assert not multiprocessing.active_children()
        chain.close()

    def test_node_stop_releases_chain_pools(self):
        from repro.node.node import Node

        node = Node(
            burrow_params(1, executor_workers=2, executor_backend="process"),
            driver="timer",
        )
        node.start()
        chain = node.chains[1]
        chain.fund({kp.address: 10**9 for kp in USERS})
        for i in range(4):
            chain.submit(
                _tx(TransferPayload(to=USERS[i + 1].address, amount=1), USERS[i], nonce=80 + i)
            )
        chain.produce_block(timestamp=1.0)
        node.stop()
        assert not multiprocessing.active_children()
        # restart still works: pools come back lazily
        node.start()
        node.stop()

    def test_verifier_pool_async_prewarm_seeds_memo(self):
        from repro.parallel.pools import SignatureVerifierPool

        txs = [
            _tx(TransferPayload(to=USERS[1].address, amount=1), USERS[0], nonce=90 + i)
            for i in range(5)
        ]
        with SignatureVerifierPool(workers=2, use_processes=True) as pool:
            assert pool.submit_prewarm(txs) == 5
            assert pool.collect() == 5
        for tx in txs:
            cached = tx._verify_cache
            assert cached is not None and cached[3] is True
            assert tx.verify() is True  # cache hit, still correct
        assert not multiprocessing.active_children()
