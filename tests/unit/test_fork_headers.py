"""Fork handling in the light client — the reason p exists (§IV-A).

"Interoperability in permissionless systems is challenging mainly
because forks can occur ... which invalidates transactions that build
on the losing side of the fork."
"""

import pytest

from repro.chain.block import GENESIS_PARENT, BlockHeader
from repro.chain.lightclient import ForkAwareHeaderStore, LightClient
from repro.crypto.hashing import keccak
from repro.errors import StateError


def header(parent, height, tag):
    return BlockHeader(
        chain_id=1,
        height=height,
        parent_hash=parent.hash() if parent is not None else GENESIS_PARENT,
        state_root=keccak(f"root-{tag}".encode()),
        txs_root=keccak(b"txs"),
        timestamp=float(height),
        proposer=tag,
    )


@pytest.fixture
def store():
    return ForkAwareHeaderStore(chain_id=1, confirmation_depth=2)


def build_chain(store, length, tag, base=None):
    headers = []
    parent = base
    start = (base.height + 1) if base is not None else 0
    for height in range(start, start + length):
        h = header(parent, height, f"{tag}-{height}")
        store.add_header(h)
        headers.append(h)
        parent = h
    return headers


def test_linear_chain_trusts_confirmed_roots(store):
    headers = build_chain(store, 6, "main")
    assert store.trusted_state_root(3) == headers[3].state_root
    assert store.trusted_state_root(4) is None  # only 1 deep
    assert store.head_height == 5


def test_detached_header_rejected(store):
    build_chain(store, 3, "main")
    orphan_parent = header(None, 0, "elsewhere")
    detached = header(orphan_parent, 1, "detached")
    with pytest.raises(StateError, match="detached"):
        store.add_header(detached)


def test_short_fork_does_not_displace_first_seen(store):
    main = build_chain(store, 5, "main")
    # Competing block at height 4 (same parent as main[4]).
    rival = header(main[3], 4, "rival")
    store.add_header(rival)
    # Same height: first seen stays canonical.
    assert store.is_canonical(main[4])
    assert not store.is_canonical(rival)


def test_reorg_switches_canonical_chain_and_invalidates_roots(store):
    main = build_chain(store, 6, "main")
    # Fork from height 3: attacker/branch builds 4', 5', 6', 7'.
    branch = build_chain(store, 4, "branch", base=main[3])
    assert store.reorgs >= 1
    # The new branch is longer: its headers are canonical now.
    assert store.is_canonical(branch[-1])
    assert not store.is_canonical(main[5])
    assert not store.is_canonical(main[4])
    # A root from the orphaned side is no longer trusted, even though
    # it *was* 2-confirmed before the reorg.
    assert store.trusted_state_root(4) != main[4].state_root
    assert store.trusted_state_root(4) == branch[0].state_root
    # Common prefix stays trusted.
    assert store.trusted_state_root(2) == main[2].state_root


def test_orphaned_root_never_trusted_via_light_client():
    lc = LightClient()
    store = lc.observe(1, confirmation_depth=2, fork_aware=True)
    main = build_chain(store, 5, "main")
    branch = build_chain(store, 4, "branch", base=main[2])
    # VS for the orphaned block 3/4 roots fails; branch roots pass once
    # deep enough.
    assert not lc.valid_state_root(1, 3, main[3].state_root)
    assert not lc.valid_state_root(1, 4, main[4].state_root)
    assert lc.valid_state_root(1, 3, branch[0].state_root)


def test_deep_confirmation_rides_out_short_forks(store):
    # p = 2 protects against 1-block forks: any root that was p-deep
    # before a 1-block reorg remains canonical after it.
    main = build_chain(store, 6, "main")
    rival_tip = header(main[4], 5, "rival-tip")
    store.add_header(rival_tip)
    confirmed_before = [store.trusted_state_root(h) for h in range(4)]
    longer = header(rival_tip, 6, "rival-6")
    store.add_header(longer)  # 1-block reorg at the tip
    confirmed_after = [store.trusted_state_root(h) for h in range(4)]
    assert confirmed_before == confirmed_after
