"""Unit tests for transaction fees (gas_price > 0 chains)."""

import pytest

from repro.chain.chain import Chain
from repro.chain.executor import TransactionExecutor
from repro.chain.params import burrow_params
from repro.chain.tx import CallPayload, DeployPayload, TransferPayload, sign_transaction
from tests.helpers import ALICE, BOB, ManualClock, StoreContract, produce, run_tx

FEE_POOL = TransactionExecutor.FEE_POOL


@pytest.fixture
def paid_chain():
    chain = Chain(burrow_params(1, gas_price=2))
    chain.fund({ALICE.address: 10_000_000, BOB.address: 50_000})
    return chain, ManualClock()


def test_successful_tx_pays_fee(paid_chain):
    chain, clock = paid_chain
    before = chain.balance_of(ALICE.address)
    receipt = run_tx(chain, clock, ALICE, TransferPayload(to=BOB.address, amount=100))
    assert receipt.success
    assert receipt.fee_paid == receipt.gas_used * 2
    assert chain.balance_of(ALICE.address) == before - 100 - receipt.fee_paid
    assert chain.balance_of(FEE_POOL) == receipt.fee_paid


def test_failed_tx_still_pays_and_reverts_effects(paid_chain):
    chain, clock = paid_chain
    bob_before = chain.balance_of(BOB.address)
    receipt = run_tx(chain, clock, BOB, TransferPayload(to=ALICE.address, amount=10**9))
    assert not receipt.success
    assert receipt.fee_paid == receipt.gas_used * 2
    # The transfer reverted but the fee stuck.
    assert chain.balance_of(BOB.address) == bob_before - receipt.fee_paid


def test_fee_clamped_to_balance(paid_chain):
    chain, clock = paid_chain
    from repro.crypto.keys import KeyPair

    pauper = KeyPair.from_name("pauper")
    chain.fund({pauper.address: 100})
    receipt = run_tx(
        chain, clock, pauper, DeployPayload(code_hash=StoreContract.CODE_HASH)
    )
    # Deploy gas at price 2 far exceeds 100: everything is taken.
    assert receipt.fee_paid == 100
    assert chain.balance_of(pauper.address) == 0


def test_free_chain_charges_nothing():
    chain = Chain(burrow_params(1))  # default gas_price = 0
    chain.fund({ALICE.address: 1_000})
    clock = ManualClock()
    receipt = run_tx(chain, clock, ALICE, TransferPayload(to=BOB.address, amount=10))
    assert receipt.fee_paid == 0
    assert chain.balance_of(ALICE.address) == 990
    assert chain.balance_of(FEE_POOL) == 0


def test_fees_accumulate_across_txs(paid_chain):
    chain, clock = paid_chain
    total = 0
    for amount in (1, 2, 3):
        receipt = run_tx(chain, clock, ALICE, TransferPayload(to=BOB.address, amount=amount))
        total += receipt.fee_paid
    assert chain.balance_of(FEE_POOL) == total
    assert total == 3 * 21_000 * 2  # three plain transfers at tx_base


def test_fee_affects_state_root(paid_chain):
    chain, clock = paid_chain
    root_before = chain.state.committed_root
    run_tx(chain, clock, ALICE, TransferPayload(to=BOB.address, amount=1))
    assert chain.state.committed_root != root_before
