"""Unit tests for the hexary Merkle Patricia trie."""

import pytest

from repro.merkle.proof import verify_proof
from repro.merkle.trie import EMPTY_ROOT, MerklePatriciaTrie


def test_empty_root():
    assert MerklePatriciaTrie().root_hash == EMPTY_ROOT


def test_set_get_overwrite():
    trie = MerklePatriciaTrie()
    trie.set(b"dog", b"puppy")
    trie.set(b"doge", b"coin")
    trie.set(b"do", b"verb")
    assert trie.get(b"dog") == b"puppy"
    assert trie.get(b"doge") == b"coin"
    assert trie.get(b"do") == b"verb"
    assert trie.get(b"d") is None
    trie.set(b"dog", b"adult")
    assert trie.get(b"dog") == b"adult"


def test_prefix_keys_coexist():
    trie = MerklePatriciaTrie()
    trie.set(b"a", b"1")
    trie.set(b"ab", b"2")
    trie.set(b"abc", b"3")
    assert trie.get(b"a") == b"1"
    assert trie.get(b"ab") == b"2"
    assert trie.get(b"abc") == b"3"


def test_root_order_independent():
    import random

    keys = [f"key-{i}".encode() for i in range(60)]
    a, b = MerklePatriciaTrie(), MerklePatriciaTrie()
    for k in keys:
        a.set(k, k + b"!")
    shuffled = keys[:]
    random.Random(7).shuffle(shuffled)
    for k in shuffled:
        b.set(k, k + b"!")
    assert a.root_hash == b.root_hash


def test_delete_restores_previous_root():
    trie = MerklePatriciaTrie()
    trie.set(b"alpha", b"1")
    trie.set(b"beta", b"2")
    root_before = trie.root_hash
    trie.set(b"gamma", b"3")
    assert trie.delete(b"gamma")
    assert trie.root_hash == root_before
    assert not trie.delete(b"gamma")


def test_delete_collapses_branches():
    trie = MerklePatriciaTrie()
    trie.set(b"a", b"1")
    root_single = trie.root_hash
    trie.set(b"b", b"2")
    trie.set(b"c", b"3")
    assert trie.delete(b"b")
    assert trie.delete(b"c")
    assert trie.root_hash == root_single


def test_items_and_len():
    trie = MerklePatriciaTrie()
    entries = {f"k{i}".encode(): f"v{i}".encode() for i in range(20)}
    for k, v in entries.items():
        trie.set(k, v)
    assert dict(trie.items()) == entries
    assert len(trie) == 20


def test_proofs_verify_for_all_keys():
    trie = MerklePatriciaTrie()
    for i in range(50):
        trie.set(f"key-{i}".encode(), f"value-{i}".encode())
    for i in range(50):
        proof = trie.prove(f"key-{i}".encode())
        assert proof.value == f"value-{i}".encode()
        assert verify_proof(proof, trie.root_hash)


def test_proof_for_branch_terminating_key():
    trie = MerklePatriciaTrie()
    trie.set(b"a", b"1")
    trie.set(b"ab", b"2")  # b"a" terminates at a branch value slot
    proof = trie.prove(b"a")
    assert verify_proof(proof, trie.root_hash)


def test_proof_missing_key_raises():
    trie = MerklePatriciaTrie()
    trie.set(b"a", b"1")
    with pytest.raises(KeyError):
        trie.prove(b"zz")
    with pytest.raises(KeyError):
        MerklePatriciaTrie().prove(b"a")


def test_proof_stale_after_write():
    trie = MerklePatriciaTrie()
    for i in range(16):
        trie.set(f"k{i}".encode(), b"v")
    proof = trie.prove(b"k0")
    old_root = trie.root_hash
    trie.set(b"k7", b"changed")
    assert verify_proof(proof, old_root)
    assert not verify_proof(proof, trie.root_hash)


def test_fixed_width_keys_like_addresses():
    trie = MerklePatriciaTrie()
    keys = [bytes([i]) * 20 for i in range(40)]
    for k in keys:
        trie.set(k, b"account")
    for k in keys:
        assert verify_proof(trie.prove(k), trie.root_hash)


def test_snapshot_is_stable_and_forks():
    trie = MerklePatriciaTrie()
    for i in range(16):
        trie.set(f"k{i}".encode(), b"v")
    snap = trie.snapshot()
    frozen_root = trie.root_hash
    trie.set(b"k3", b"changed")
    assert snap.root_hash == frozen_root  # live writes don't leak in
    assert trie.root_hash != frozen_root
    assert snap.get(b"k3") == b"v"
    snap.set(b"k3", b"forked")  # writing the snapshot forks it
    assert trie.get(b"k3") == b"changed"


def test_history_independence_flag():
    assert MerklePatriciaTrie.history_independent is True
