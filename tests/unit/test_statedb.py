"""Unit tests for the journaled world state."""

import pytest

from repro.crypto.hashing import keccak
from repro.crypto.keys import KeyPair
from repro.errors import StateError
from repro.merkle.iavl import IAVLTree
from repro.merkle.proof import verify_proof
from repro.merkle.trie import MerklePatriciaTrie
from repro.statedb.state import WorldState, compute_storage_root

ALICE = KeyPair.from_name("alice").address
BOB = KeyPair.from_name("bob").address
CONTRACT = KeyPair.from_name("some-contract").address
CODE = b"class Fake: pass"
CODE_HASH = keccak(CODE)


@pytest.fixture(params=[IAVLTree, MerklePatriciaTrie], ids=["iavl", "trie"])
def state(request):
    return WorldState(chain_id=1, tree_factory=request.param)


def test_balances_and_transfers(state):
    state.add_balance(ALICE, 100)
    state.sub_balance(ALICE, 30)
    state.add_balance(BOB, 30)
    assert state.balance_of(ALICE) == 70
    assert state.balance_of(BOB) == 30


def test_insufficient_balance_rejected(state):
    with pytest.raises(StateError):
        state.sub_balance(ALICE, 1)


def test_nonce_bumps(state):
    assert state.bump_nonce(ALICE) == 1
    assert state.bump_nonce(ALICE) == 2


def test_contract_lifecycle(state):
    record = state.create_contract(CONTRACT, CODE_HASH, CODE)
    assert record.location == 1
    assert not state.is_locked(CONTRACT)
    state.storage_set(CONTRACT, b"k", b"v")
    assert state.storage_get(CONTRACT, b"k") == b"v"
    assert state.has_code(CODE_HASH)


def test_duplicate_contract_rejected(state):
    state.create_contract(CONTRACT, CODE_HASH, CODE)
    with pytest.raises(StateError):
        state.create_contract(CONTRACT, CODE_HASH, CODE)


def test_location_and_lock(state):
    state.create_contract(CONTRACT, CODE_HASH, CODE)
    state.set_location(CONTRACT, 2)
    assert state.is_locked(CONTRACT)
    assert state.require_contract(CONTRACT).location == 2


def test_move_nonce(state):
    state.create_contract(CONTRACT, CODE_HASH, CODE)
    assert state.bump_move_nonce(CONTRACT) == 1
    assert state.bump_move_nonce(CONTRACT) == 2


def test_revert_unwinds_everything(state):
    state.add_balance(ALICE, 100)
    snap = state.snapshot()
    state.sub_balance(ALICE, 50)
    state.add_balance(BOB, 50)
    state.create_contract(CONTRACT, CODE_HASH, CODE)
    state.storage_set(CONTRACT, b"k", b"v")
    state.set_location(CONTRACT, 9)
    state.revert(snap)
    assert state.balance_of(ALICE) == 100
    assert state.balance_of(BOB) == 0
    assert state.contract(CONTRACT) is None


def test_revert_restores_storage_values(state):
    state.create_contract(CONTRACT, CODE_HASH, CODE)
    state.storage_set(CONTRACT, b"k", b"old")
    snap = state.snapshot()
    state.storage_set(CONTRACT, b"k", b"new")
    state.storage_set(CONTRACT, b"k2", b"x")
    state.revert(snap)
    assert state.storage_get(CONTRACT, b"k") == b"old"
    assert state.storage_get(CONTRACT, b"k2") == b""


def test_nested_snapshots(state):
    state.add_balance(ALICE, 10)
    outer = state.snapshot()
    state.add_balance(ALICE, 10)
    inner = state.snapshot()
    state.add_balance(ALICE, 10)
    state.revert(inner)
    assert state.balance_of(ALICE) == 20
    state.revert(outer)
    assert state.balance_of(ALICE) == 10


def test_commit_changes_root(state):
    empty = state.commit()
    state.add_balance(ALICE, 5)
    root1 = state.commit()
    assert root1 != empty
    state.add_balance(ALICE, 5)
    root2 = state.commit()
    assert root2 != root1


def test_commit_is_idempotent_without_changes(state):
    state.add_balance(ALICE, 5)
    root = state.commit()
    assert state.commit() == root


def test_account_proof_verifies_against_committed_root(state):
    state.create_contract(CONTRACT, CODE_HASH, CODE)
    state.storage_set(CONTRACT, b"k", b"v")
    state.add_balance(ALICE, 3)
    root = state.commit()
    proof = state.prove_account(CONTRACT)
    assert verify_proof(proof, root)
    # and the proof is stale after further commits
    state.add_balance(ALICE, 1)
    new_root = state.commit()
    assert not verify_proof(proof, new_root) or root == new_root


def test_storage_root_is_canonical(state):
    state.create_contract(CONTRACT, CODE_HASH, CODE)
    state.storage_set(CONTRACT, b"b", b"2")
    state.storage_set(CONTRACT, b"a", b"1")
    direct = state.storage_root(CONTRACT)
    rebuilt = compute_storage_root(
        state._tree_factory, {b"a": b"1", b"b": b"2"}
    )
    assert direct == rebuilt


def test_incremental_commit_matches_canonical_rebuild(state):
    state.create_contract(CONTRACT, CODE_HASH, CODE)
    for i in range(20):
        state.storage_set(CONTRACT, b"k%02d" % i, b"v%02d" % i)
    state.commit()
    # Overwrite a few slots across several blocks: the live trie folds
    # only the dirty slots, yet the root must equal the sorted rebuild.
    for block in range(3):
        state.storage_set(CONTRACT, b"k05", b"b%02d" % block)
        state.storage_set(CONTRACT, b"k17", b"c%02d" % block)
        state.commit()
        expected = compute_storage_root(
            state.tree_factory, state.require_contract(CONTRACT).storage
        )
        assert state.committed_storage_root(CONTRACT) == expected


def test_load_storage_replaces_wholesale_and_reverts(state):
    state.create_contract(CONTRACT, CODE_HASH, CODE)
    state.storage_set(CONTRACT, b"old", b"1")
    state.commit()
    root_before = state.committed_storage_root(CONTRACT)
    snap = state.snapshot()
    state.load_storage(CONTRACT, {b"a": b"1", b"b": b"2", b"empty": b""})
    assert state.storage_get(CONTRACT, b"old") == b""
    assert state.storage_get(CONTRACT, b"a") == b"1"
    assert state.storage_get(CONTRACT, b"empty") == b""  # empty deletes
    state.revert(snap)
    assert state.storage_get(CONTRACT, b"old") == b"1"
    assert state.storage_get(CONTRACT, b"a") == b""
    assert state.commit() is not None
    assert state.committed_storage_root(CONTRACT) == root_before


def test_wipe_storage_commits_empty_root(state):
    state.create_contract(CONTRACT, CODE_HASH, CODE)
    state.storage_set(CONTRACT, b"k", b"v")
    state.commit()
    state.wipe_storage(CONTRACT)
    state.commit()
    assert state.committed_storage_root(CONTRACT) == compute_storage_root(
        state.tree_factory, {}
    )


def test_prove_storage_verifies_against_committed_root(state):
    state.create_contract(CONTRACT, CODE_HASH, CODE)
    state.storage_set(CONTRACT, b"k1", b"v1")
    state.storage_set(CONTRACT, b"k2", b"v2")
    state.commit()
    proof = state.prove_storage(CONTRACT, b"k1")
    assert proof.value == b"v1"
    assert verify_proof(proof, state.committed_storage_root(CONTRACT))
    with pytest.raises(KeyError):
        state.prove_storage(CONTRACT, b"missing")


def test_snapshot_tree_is_public_and_stable(state):
    state.add_balance(ALICE, 5)
    root = state.commit()
    snap = state.snapshot_tree()
    assert snap.root_hash == root
    state.add_balance(ALICE, 5)
    state.commit()
    assert snap.root_hash == root  # snapshot frozen as the live tree moves


def test_contract_leaf_commits_location_and_move_nonce(state):
    state.create_contract(CONTRACT, CODE_HASH, CODE)
    root_before = state.commit()
    state.set_location(CONTRACT, 7)
    root_moved = state.commit()
    assert root_moved != root_before
    state.bump_move_nonce(CONTRACT)
    assert state.commit() != root_moved
