"""Writes against read-only replicas fail typed, at every entry point.

Mirrors extend the paper's single-mutability invariant I1: exactly one
chain may mutate a contract.  A mutating call that targets a mirror
must therefore fail with the machine-readable
:class:`~repro.errors.ReadOnlyReplicaError` — whether it arrives
through the gateway front door (rejected at admission, before it can
occupy queue space) or straight through a chain's mempool (aborted
in-block by the runtime's lock check).  View calls pass everywhere:
serving reads is what replicas are for.
"""

import pytest

from repro.chain.chain import Chain
from repro.chain.params import burrow_params
from repro.chain.tx import (
    BytecodeCallPayload,
    Move1Payload,
    sign_transaction,
)
from repro.core.registry import ChainRegistry
from repro.errors import ReadOnlyReplicaError
from repro.gateway import Gateway
from repro.ibc.headers import connect_chains
from repro.node import Node
from repro.replicate.relay import ReplicationRelay
from tests.helpers import (
    ALICE,
    BOB,
    CallPayload,
    DeployPayload,
    ManualClock,
    StoreContract,
    deploy_store,
    produce,
    run_tx,
)


def _mirrored_pair():
    """A LIVE mirror of a StoreContract: source chain 1, replica on 2."""
    registry = ChainRegistry()
    source = Chain(burrow_params(1), registry)
    target = Chain(burrow_params(2), registry)
    connect_chains([source, target])
    clock = ManualClock()
    address = deploy_store(source, clock, ALICE)
    run_tx(source, clock, ALICE, CallPayload(address, "put", (1, 42)))
    relay = ReplicationRelay(source, target)
    relay.start()
    mirror = relay.add_contract(address)
    produce(source, clock, 3)
    assert mirror.available
    return source, target, clock, address


# ----------------------------------------------------------------------
# Direct chain submission: the runtime aborts the transaction in-block
# ----------------------------------------------------------------------


def test_direct_write_to_mirror_aborts_with_typed_receipt():
    source, target, clock, address = _mirrored_pair()
    receipt = run_tx(target, clock, BOB, CallPayload(address, "put", (9, 9)))
    assert not receipt.success
    assert receipt.error.startswith("ReadOnlyReplicaError:")
    # The failed write never leaked into the replica or the source.
    assert target.view(address, "get_value", 1) == 42
    assert source.view(address, "get_value", 1) == 42


def test_direct_view_on_mirror_still_serves():
    _source, target, _clock, address = _mirrored_pair()
    assert target.view(address, "get_value", 1) == 42


def test_direct_move1_of_a_mirror_aborts():
    _source, target, clock, address = _mirrored_pair()
    receipt = run_tx(
        target, clock, ALICE, Move1Payload(contract=address, target_chain=1)
    )
    assert not receipt.success
    # The executor's L_c ownership check fires first: a mirror is never
    # the active copy, so Move1 aborts before the replica-specific
    # branch is even consulted.  (The gateway pre-check still maps this
    # to ReadOnlyReplicaError at admission — covered below.)
    assert "not active here" in receipt.error
    assert target.state.is_mirror(address)
    assert target.view(address, "get_value", 1) == 42


# ----------------------------------------------------------------------
# Gateway admission: rejected at the front door, machine-readable
# ----------------------------------------------------------------------


def _gateway_setup():
    node = Node([burrow_params(1), burrow_params(2)], seed=11)
    node.chain(1).fund({ALICE.address: 10**9, BOB.address: 10**9})
    node.chain(2).fund({ALICE.address: 10**9, BOB.address: 10**9})
    manager = node.attach_replication()
    gateway = Gateway(node)
    gateway.start()

    def commit(chain_id, keypair, payload):
        handle = gateway.submit(sign_transaction(keypair, payload), chain_id)
        assert node.run_until(lambda: handle.done, max_time=node.now + 120.0)
        return handle.result()

    receipt = commit(1, ALICE, DeployPayload(code_hash=StoreContract.CODE_HASH))
    address = receipt.return_value
    commit(1, ALICE, CallPayload(address, "put", (1, 42)))
    manager.replicate(address, 1, [2])
    ok = node.run_until(
        lambda: manager.mirror(address, 2) is not None
        and manager.mirror(address, 2).available,
        max_time=node.now + 120.0,
    )
    assert ok, manager.status(address)
    return node, gateway, address


def test_gateway_rejects_mirror_write_with_reason_code():
    node, gateway, address = _gateway_setup()
    handle = gateway.submit(
        sign_transaction(BOB, CallPayload(address, "put", (2, 9))), 2
    )
    # Rejected at admission: resolved immediately, never queued.
    assert handle.done
    assert isinstance(handle.error, ReadOnlyReplicaError)
    assert handle.error.code == "read_only_replica"
    wire = handle.error.to_dict()
    assert wire["code"] == "read_only_replica"
    assert "read-only replica" in wire["message"]
    with pytest.raises(ReadOnlyReplicaError):
        handle.result()
    # The shed surfaced in the gateway's rejection metrics by reason.
    assert (
        gateway.telemetry.metrics.value(
            "gateway_rejected_total", reason="read_only_replica"
        )
        == 1
    )


def test_gateway_rejects_bytecode_and_move_writes_to_mirrors():
    node, gateway, address = _gateway_setup()
    bytecode = gateway.submit(
        sign_transaction(BOB, BytecodeCallPayload(target=address, calldata=b"x")), 2
    )
    move = gateway.submit(
        sign_transaction(ALICE, Move1Payload(contract=address, target_chain=1)), 2
    )
    for handle in (bytecode, move):
        assert handle.done
        assert isinstance(handle.error, ReadOnlyReplicaError)
        assert handle.error.code == "read_only_replica"


def test_gateway_passes_view_calls_and_nonmirror_writes():
    node, gateway, address = _gateway_setup()
    # Reads route through the replication manager to the LIVE replica.
    assert gateway.view(2, address, "get_value", 1) == 42
    # Writes against the active copy are untouched by the pre-check.
    handle = gateway.submit(
        sign_transaction(ALICE, CallPayload(address, "put", (3, 5))), 1
    )
    assert node.run_until(lambda: handle.done, max_time=node.now + 120.0)
    assert handle.result().success
    # The committed write propagates to the replica within the bound.
    ok = node.run_until(
        lambda: gateway.view(2, address, "get_value", 3) == 5,
        max_time=node.now + 120.0,
    )
    assert ok
