"""Unit tests for the assembler/disassembler."""

import pytest

from repro.errors import AssemblerError
from repro.vm.assembler import assemble, disassemble
from repro.vm.opcodes import Op


def test_simple_program():
    code = assemble("PUSH1 0x05\nPUSH1 3\nADD\nSTOP")
    assert code == bytes([0x60, 0x05, 0x60, 0x03, 0x01, 0x00])


def test_push_sizes():
    assert assemble("PUSH2 0xBEEF") == bytes([0x61, 0xBE, 0xEF])
    assert assemble("PUSH4 1") == bytes([0x63, 0, 0, 0, 1])


def test_push_overflow_rejected():
    with pytest.raises(AssemblerError):
        assemble("PUSH1 256")


def test_comments_and_blank_lines():
    code = assemble("; comment\n\nPUSH1 1 ; trailing\n# hash comment\nSTOP")
    assert code == bytes([0x60, 0x01, 0x00])


def test_labels_resolve_to_jumpdest():
    code = assemble("PUSH @end\nJUMP\nend:\nSTOP")
    # PUSH2 0x0004 JUMP JUMPDEST STOP
    assert code == bytes([0x61, 0x00, 0x04, 0x56, 0x5B, 0x00])


def test_forward_and_backward_labels():
    source = """
        start:
        PUSH @start
        POP
        PUSH @end
        JUMP
        end:
        STOP
    """
    code = assemble(source)
    assert code[0] == Op.JUMPDEST


def test_unknown_mnemonic():
    with pytest.raises(AssemblerError):
        assemble("FROBNICATE")


def test_unknown_label():
    with pytest.raises(AssemblerError):
        assemble("PUSH @nowhere\nJUMP")


def test_duplicate_label():
    with pytest.raises(AssemblerError):
        assemble("a:\na:\nSTOP")


def test_operand_arity_checked():
    with pytest.raises(AssemblerError):
        assemble("PUSH1")
    with pytest.raises(AssemblerError):
        assemble("ADD 5")


def test_move_mnemonic_assembles():
    assert assemble("MOVE") == bytes([Op.MOVE])


def test_disassemble_roundtrip():
    source = "PUSH1 0x2a\nPUSH1 0x07\nSSTORE\nMOVE\nSTOP"
    code = assemble(source)
    rows = disassemble(code)
    text = [t for _, t in rows]
    assert text == ["PUSH1 0x2a", "PUSH1 0x07", "SSTORE", "MOVE", "STOP"]


def test_disassemble_marks_invalid():
    rows = disassemble(bytes([0xEF]))
    assert "INVALID" in rows[0][1]
