"""Unit tests for the trace generator and dependency DAG."""

from collections import Counter

import pytest

from repro.traces.cryptokitties import TraceConfig, generate_trace, trace_owner_of
from repro.traces.dag import DependencyDAG
from repro.traces.events import APPROVE, BREED, PROMO, TRANSFER, TraceOp


CFG = TraceConfig(n_ops=400, n_promo=60, n_users=40, seed=9)


@pytest.fixture(scope="module")
def trace():
    return generate_trace(CFG)


def test_trace_is_deterministic(trace):
    again = generate_trace(CFG)
    assert [op.params for op in again] == [op.params for op in trace]


def test_trace_op_mix(trace):
    kinds = Counter(op.kind for op in trace)
    assert kinds[PROMO] >= CFG.n_promo
    assert kinds[BREED] > 0
    assert kinds[TRANSFER] > 0
    # every foreign-sire breed has a preceding approve
    assert kinds[APPROVE] <= kinds[BREED]


def test_unknown_kind_rejected():
    with pytest.raises(ValueError):
        TraceOp(op_id=0, kind="explode", objects=(1,))


def test_cats_created_before_use(trace):
    born = set()
    for op in trace:
        if op.kind == PROMO:
            born.add(op.params["cat"])
        elif op.kind == BREED:
            assert op.params["matron"] in born
            assert op.params["sire"] in born
            born.add(op.params["child"])
        elif op.kind == APPROVE:
            assert op.params["sire"] in born
        elif op.kind == TRANSFER:
            assert op.params["cat"] in born


def test_no_self_or_sibling_breeding(trace):
    parents = {}
    for op in trace:
        if op.kind == PROMO:
            parents[op.params["cat"]] = (0, 0)
        elif op.kind == BREED:
            m, s = op.params["matron"], op.params["sire"]
            assert m != s
            if parents[m] != (0, 0):
                assert parents[m] != parents[s], "sibling cats cannot mate"
            parents[op.params["child"]] = (m, s)


def test_trace_owner_of_tracks_transfers(trace):
    owners = trace_owner_of(trace)
    for op in trace:
        if op.kind == TRANSFER:
            pass  # exercised through final mapping below
    # spot check: the last op touching each cat decides its owner
    last = {}
    for op in trace:
        if op.kind == PROMO:
            last[op.params["cat"]] = op.params["owner"]
        elif op.kind == BREED:
            last[op.params["child"]] = op.params["owner"]
        elif op.kind == TRANSFER:
            last[op.params["cat"]] = op.params["new_owner"]
    assert owners == last


def test_dag_dependencies_respect_objects(trace):
    dag = DependencyDAG(trace)
    executed = set()
    last_toucher = {}
    order = []
    ready = dag.take_ready()
    while ready:
        op_id = ready.pop(0)
        op = dag.ops[op_id]
        for obj in op.objects:
            if obj in last_toucher:
                assert last_toucher[obj] in executed
        for obj in op.objects:
            last_toucher[obj] = op_id
        executed.add(op_id)
        order.append(op_id)
        ready.extend(dag.complete(op_id))
    assert dag.done
    assert len(order) == len(trace)


def test_dag_simple_diamond():
    # Fig. 4: Tx1, Tx2 parallel; Tx3 after Tx2; Tx4 after Tx1+Tx3.
    ops = [
        TraceOp(0, PROMO, (1,), {"cat": 1, "owner": 0}),       # Tx1 creates c1
        TraceOp(1, PROMO, (2,), {"cat": 2, "owner": 1}),       # Tx2 creates c2
        TraceOp(2, APPROVE, (2,), {"sire": 2, "matron_owner": 0}),  # Tx3
        TraceOp(3, BREED, (1, 2, 3), {"matron": 1, "sire": 2, "child": 3, "owner": 0}),  # Tx4
    ]
    dag = DependencyDAG(ops)
    assert sorted(dag.take_ready()) == [0, 1]
    assert dag.complete(0) == []      # Tx4 still blocked by Tx3
    assert dag.complete(1) == [2]     # Tx3 freed
    assert dag.complete(2) == [3]     # Tx4 freed
    dag.take_ready()
    assert dag.complete(3) == []
    assert dag.done


def test_dag_complete_guards():
    from repro.errors import StateError

    ops = [
        TraceOp(0, PROMO, (1,), {"cat": 1, "owner": 0}),
        TraceOp(1, TRANSFER, (1,), {"cat": 1, "new_owner": 1}),
    ]
    dag = DependencyDAG(ops)
    with pytest.raises(StateError):
        dag.complete(1)  # dependencies open
    dag.complete(0)
    with pytest.raises(StateError):
        dag.complete(0)  # twice


def test_dag_depth_of_chain_and_width(trace):
    dag = DependencyDAG(trace)
    depth = dag.depth()
    assert 1 <= depth < len(trace)
    # Pure chain: depth equals length.
    chain = [
        TraceOp(i, TRANSFER, (1,), {"cat": 1, "new_owner": i}) for i in range(5)
    ]
    chain.insert(0, TraceOp(99, PROMO, (1,), {"cat": 1, "owner": 0}))
    # renumber: op ids must be unique; rebuild properly
    chain = [
        TraceOp(0, PROMO, (1,), {"cat": 1, "owner": 0}),
        TraceOp(1, TRANSFER, (1,), {"cat": 1, "new_owner": 1}),
        TraceOp(2, TRANSFER, (1,), {"cat": 1, "new_owner": 2}),
    ]
    assert DependencyDAG(chain).depth() == 3


def test_larger_traces_have_more_ops():
    small = generate_trace(TraceConfig(n_ops=100, n_promo=20, n_users=10, seed=1))
    large = generate_trace(TraceConfig(n_ops=500, n_promo=20, n_users=10, seed=1))
    assert len(large) > len(small)
