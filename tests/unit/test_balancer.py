"""Unit tests for the decentralized load balancer (§IV-B / §X)."""

import pytest

from repro.chain.tx import TransferPayload, sign_transaction
from repro.core.locator import ContractLocator
from repro.crypto.keys import KeyPair
from repro.sharding.balancer import LoadBalancingPolicy, ShardLoadMonitor
from repro.sharding.cluster import ShardedCluster
from tests.helpers import ALICE, BOB, ManualClock, StoreContract, deploy_store, make_chain_pair, produce, run_tx


def loaded_cluster(tx_counts):
    """A cluster whose shards carry the given per-block tx loads."""
    cluster = ShardedCluster(num_shards=len(tx_counts), seed=3, max_block_txs=100)
    monitor = ShardLoadMonitor(cluster.shards, window_blocks=5)
    alice = KeyPair.from_name("load-alice")
    bob = KeyPair.from_name("load-bob")
    cluster.fund_all({alice.address: 10_000})
    clock = [0.0]
    for _round in range(5):
        clock[0] += 5.0
        for index, count in enumerate(tx_counts):
            for _ in range(count):
                cluster.shard(index).submit(
                    sign_transaction(alice, TransferPayload(to=bob.address, amount=1))
                )
            cluster.shard(index).produce_block(clock[0])
    return cluster, monitor


def test_monitor_reads_utilization_from_blocks():
    _cluster, monitor = loaded_cluster([90, 10, 0])
    assert monitor.utilization(0) == pytest.approx(0.9)
    assert monitor.utilization(1) == pytest.approx(0.1)
    assert monitor.utilization(2) == 0.0
    assert monitor.coolest() == 2
    assert monitor.coolest(exclude=(2,)) == 1


def test_policy_moves_excess_fraction_off_hot_shard():
    _cluster, monitor = loaded_cluster([95, 5, 5])
    policy = LoadBalancingPolicy(monitor, hot_threshold=0.8, min_gap=0.3)
    owners = [KeyPair.from_name(f"owner-{i}").address for i in range(200)]
    decisions = [policy.suggest_move(0, owner) for owner in owners]
    movers = [d for d in decisions if d is not None]
    # Roughly the excess fraction migrates (stay prob = mean/load ~ 0.37),
    # never the whole population.
    assert 0.35 * len(owners) < len(movers) < 0.9 * len(owners)
    assert all(target in (1, 2) for target in movers)
    # Cool shards stay put for everyone.
    assert all(policy.suggest_move(1, owner) is None for owner in owners)
    # Deterministic: same owner, same answer.
    assert decisions == [policy.suggest_move(0, owner) for owner in owners]


def test_policy_requires_gap():
    _cluster, monitor = loaded_cluster([95, 90, 92])
    policy = LoadBalancingPolicy(monitor, hot_threshold=0.8, min_gap=0.3)
    owner = KeyPair.from_name("owner").address
    # Everything is hot: no target cooler by the required gap.
    assert policy.suggest_move(0, owner) is None


def test_policy_spreads_movers_across_cool_shards():
    _cluster, monitor = loaded_cluster([95, 5, 5, 5, 5])
    policy = LoadBalancingPolicy(monitor, hot_threshold=0.8, min_gap=0.3)
    targets = {
        policy.suggest_move(0, KeyPair.from_name(f"owner-{i}").address)
        for i in range(40)
    }
    # Deterministic per owner, but the crowd fans out, no stampede.
    assert len(targets) >= 3


def test_rebalance_plan_only_names_hot_contracts():
    _cluster, monitor = loaded_cluster([95, 5])
    policy = LoadBalancingPolicy(monitor)
    hot = {KeyPair.from_name(f"hot-{i}").address: 0 for i in range(100)}
    cool = {KeyPair.from_name(f"cool-{i}").address: 1 for i in range(100)}
    plan = policy.rebalance_plan({**hot, **cool})
    # A meaningful share of hot-shard contracts is told to move...
    assert len(plan) > 20
    assert all(address in hot for address in plan)
    assert all(target == 1 for target in plan.values())
    # ...and nothing on the cool shard is.
    assert not any(address in cool for address in plan)


def test_locator_over_live_chains():
    burrow, ethereum = make_chain_pair()
    clock = ManualClock()
    addr = deploy_store(burrow, clock, ALICE)
    locator = ContractLocator.over_chains([burrow, ethereum])
    assert locator.locate(addr, start_chain=burrow.chain_id) == burrow.chain_id
    from tests.helpers import full_move

    assert full_move(burrow, ethereum, clock, ALICE, addr).success
    # The trail: chain 1 says "moved to 2", chain 2 has the active copy.
    assert locator.locate(addr, start_chain=burrow.chain_id) == ethereum.chain_id
    assert locator.locate(addr, start_chain=ethereum.chain_id) == ethereum.chain_id
