"""Network partitions: BFT safety over liveness.

A partitioned validator set must never fork: the side holding a 2/3+
quorum (if any) keeps committing, the other halts; with no quorum
anywhere the whole chain halts; healing restores liveness with a single
consistent history.
"""

import pytest

from repro.chain.chain import Chain
from repro.chain.params import burrow_params
from repro.consensus.tendermint import TendermintEngine
from repro.net.latency import LatencyModel
from repro.net.sim import Simulator
from repro.net.transport import Network


def make_engine(seed=1, validators=10):
    sim = Simulator(seed=seed)
    net = Network(sim)
    chain = Chain(burrow_params(1), verify_signatures=False)
    regions = LatencyModel().assign_regions(validators, sim.rng)
    engine = TendermintEngine(sim, net, chain, regions)
    return sim, net, chain, engine


def test_transport_partition_drops_cross_group_only():
    sim = Simulator(seed=2)
    net = Network(sim)
    boxes = {name: [] for name in "abcd"}
    for name in "abcd":
        net.attach(name, "us-east-1", lambda s, m, n=name: boxes[n].append(m))
    net.partition(["a", "b"], ["c", "d"])
    net.send("a", "b", "in-group")
    net.send("a", "c", "cross")
    sim.run()
    assert boxes["b"] == ["in-group"]
    assert boxes["c"] == []
    assert net.messages_dropped == 1
    net.heal()
    net.send("a", "c", "after-heal")
    sim.run()
    assert boxes["c"] == ["after-heal"]


def test_majority_side_keeps_committing():
    sim, net, chain, engine = make_engine(seed=3)
    engine.start()
    sim.run(until=30.0)
    before = chain.height
    # 7 | 3 split: the 7-side holds the quorum.
    net.partition(engine.validators[:7], engine.validators[7:])
    sim.run(until=120.0)
    assert chain.height > before + 10
    heights = [b.height for b in chain.blocks]
    assert heights == sorted(set(heights))  # single consistent history


def test_even_split_halts_then_heals():
    sim, net, chain, engine = make_engine(seed=4)
    engine.start()
    sim.run(until=30.0)
    before = chain.height
    net.partition(engine.validators[:5], engine.validators[5:])
    sim.run(until=150.0)
    # Neither side has 7 votes: no commits (at most one in flight).
    assert chain.height <= before + 1
    net.heal()
    sim.run(until=300.0)
    assert chain.height > before + 10
    heights = [b.height for b in chain.blocks]
    assert heights == sorted(set(heights))


def test_partition_never_forks_transactions():
    from repro.chain.tx import TransferPayload, sign_transaction
    from repro.crypto.keys import KeyPair

    sim, net, chain, engine = make_engine(seed=5)
    alice, bob = KeyPair.from_name("pa"), KeyPair.from_name("pb")
    chain.fund({alice.address: 100})
    engine.start()
    sim.run(until=20.0)
    net.partition(engine.validators[:6], engine.validators[6:])
    tx = sign_transaction(alice, TransferPayload(to=bob.address, amount=7))
    chain.submit(tx)
    sim.run(until=120.0)
    executed_during_partition = tx.tx_id in chain.receipts
    net.heal()
    sim.run(until=300.0)
    # Executed exactly once, whenever it landed.
    assert chain.receipts[tx.tx_id].success
    assert chain.balance_of(bob.address) == 7
    assert not executed_during_partition  # 6|4: no quorum either side