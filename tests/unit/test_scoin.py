"""Unit tests for SCoin / SAccount (single chain)."""

import pytest

from repro.apps.scoin import SAccount, SCoin
from repro.chain.chain import Chain
from repro.chain.params import burrow_params
from repro.chain.tx import CallPayload, DeployPayload
from repro.crypto.keys import KeyPair, create2_address
from tests.helpers import ALICE, BOB, CAROL, ManualClock, produce, run_tx


@pytest.fixture
def token_world():
    chain = Chain(burrow_params(1))
    clock = ManualClock()
    receipt = run_tx(chain, clock, ALICE, DeployPayload(code_hash=SCoin.CODE_HASH))
    assert receipt.success, receipt.error
    token = receipt.return_value
    return chain, clock, token


def new_account(chain, clock, token, user):
    receipt = run_tx(chain, clock, user, CallPayload(token, "new_account"))
    assert receipt.success, receipt.error
    return receipt.return_value  # (address, salt)


def test_new_account_returns_create2_address(token_world):
    chain, clock, token = token_world
    account, salt = new_account(chain, clock, token, ALICE)
    assert salt == 0
    assert account == create2_address(1, token, salt, SAccount.CODE_HASH)
    assert chain.view(account, "token_balance") == 0
    assert chain.view(account, "origin_salt") == 0


def test_salts_are_monotonic(token_world):
    chain, clock, token = token_world
    _, s0 = new_account(chain, clock, token, ALICE)
    _, s1 = new_account(chain, clock, token, BOB)
    _, s2 = new_account(chain, clock, token, CAROL)
    assert (s0, s1, s2) == (0, 1, 2)


def test_mint_owner_only_and_supply(token_world):
    chain, clock, token = token_world
    account, _ = new_account(chain, clock, token, ALICE)
    assert run_tx(chain, clock, ALICE, CallPayload(token, "mint_to", (account, 100))).success
    assert chain.view(account, "token_balance") == 100
    assert chain.view(token, "total_supply") == 100
    refused = run_tx(chain, clock, BOB, CallPayload(token, "mint_to", (account, 5)))
    assert not refused.success


def test_mint_direct_on_account_refused(token_world):
    chain, clock, token = token_world
    account, _ = new_account(chain, clock, token, ALICE)
    receipt = run_tx(chain, clock, ALICE, CallPayload(account, "mint", (100,)))
    assert not receipt.success
    assert "only the parent" in receipt.error


def test_transfer_between_sibling_accounts(token_world):
    chain, clock, token = token_world
    a, _ = new_account(chain, clock, token, ALICE)
    b, _ = new_account(chain, clock, token, BOB)
    run_tx(chain, clock, ALICE, CallPayload(token, "mint_to", (a, 100)))
    receipt = run_tx(chain, clock, ALICE, CallPayload(a, "transfer_tokens", (b, 40)))
    assert receipt.success, receipt.error
    assert chain.view(a, "token_balance") == 60
    assert chain.view(b, "token_balance") == 40


def test_transfer_requires_owner(token_world):
    chain, clock, token = token_world
    a, _ = new_account(chain, clock, token, ALICE)
    b, _ = new_account(chain, clock, token, BOB)
    run_tx(chain, clock, ALICE, CallPayload(token, "mint_to", (a, 100)))
    receipt = run_tx(chain, clock, BOB, CallPayload(a, "transfer_tokens", (b, 40)))
    assert not receipt.success


def test_transfer_insufficient_tokens(token_world):
    chain, clock, token = token_world
    a, _ = new_account(chain, clock, token, ALICE)
    b, _ = new_account(chain, clock, token, BOB)
    receipt = run_tx(chain, clock, ALICE, CallPayload(a, "transfer_tokens", (b, 1)))
    assert not receipt.success
    assert "insufficient tokens" in receipt.error


def test_forged_account_cannot_receive_or_debit(token_world):
    # A hand-deployed SAccount (not created by SCoin via create2) fails
    # the origin attestation in both directions (Section V-A's attack).
    chain, clock, token = token_world
    a, _ = new_account(chain, clock, token, ALICE)
    run_tx(chain, clock, ALICE, CallPayload(token, "mint_to", (a, 100)))
    forged_receipt = run_tx(
        chain, clock, BOB, DeployPayload(code_hash=SAccount.CODE_HASH, args=(BOB.address, 0))
    )
    assert forged_receipt.success
    forged = forged_receipt.return_value
    # Transfer to the forgery: A recomputes the create2 address and refuses.
    receipt = run_tx(chain, clock, ALICE, CallPayload(a, "transfer_tokens", (forged, 10)))
    assert not receipt.success
    assert "not a sibling" in receipt.error
    # The forgery cannot debit a real account either.
    receipt = run_tx(
        chain, clock, BOB,
        CallPayload(a, "debit", (10, (0).to_bytes(32, "big"))),
    )
    assert not receipt.success


def test_approve_and_transfer_from(token_world):
    chain, clock, token = token_world
    a, _ = new_account(chain, clock, token, ALICE)
    b, _ = new_account(chain, clock, token, BOB)
    run_tx(chain, clock, ALICE, CallPayload(token, "mint_to", (a, 100)))
    assert run_tx(chain, clock, ALICE, CallPayload(a, "approve", (CAROL.address, 30))).success
    assert chain.view(a, "allowance", CAROL.address) == 30
    receipt = run_tx(chain, clock, CAROL, CallPayload(a, "transfer_from", (b, 20)))
    assert receipt.success, receipt.error
    assert chain.view(a, "token_balance") == 80
    assert chain.view(b, "token_balance") == 20
    assert chain.view(a, "allowance", CAROL.address) == 10
    # Exceeding the remaining allowance fails.
    receipt = run_tx(chain, clock, CAROL, CallPayload(a, "transfer_from", (b, 11)))
    assert not receipt.success


def test_new_account_for(token_world):
    chain, clock, token = token_world
    receipt = run_tx(chain, clock, ALICE, CallPayload(token, "new_account_for", (BOB.address,)))
    account, _salt = receipt.return_value
    # BOB owns it: BOB can approve, ALICE cannot.
    assert run_tx(chain, clock, BOB, CallPayload(account, "approve", (CAROL.address, 1))).success
    assert not run_tx(chain, clock, ALICE, CallPayload(account, "approve", (CAROL.address, 1))).success


def test_token_conservation_over_random_transfers(token_world):
    chain, clock, token = token_world
    users = [ALICE, BOB, CAROL]
    accounts = [new_account(chain, clock, token, u)[0] for u in users]
    for acc in accounts:
        run_tx(chain, clock, ALICE, CallPayload(token, "mint_to", (acc, 100)))
    import random

    rng = random.Random(1)
    for _ in range(15):
        i, j = rng.sample(range(3), 2)
        amount = rng.randint(0, 50)
        run_tx(
            chain, clock, users[i],
            CallPayload(accounts[i], "transfer_tokens", (accounts[j], amount)),
        )
    total = sum(chain.view(acc, "token_balance") for acc in accounts)
    assert total == 300
