"""Unit tests for the high-level contract runtime."""

import pytest

from repro.crypto.keys import Address, KeyPair, create2_address
from repro.errors import ContractLocked, OutOfGas, Revert
from repro.merkle.iavl import IAVLTree
from repro.runtime import (
    BlockEnv,
    Contract,
    MapSlot,
    Runtime,
    Slot,
    external,
    payable,
    register_contract,
    view,
)
from repro.runtime.context import Msg
from repro.runtime.contract import require
from repro.statedb.state import WorldState
from repro.vm.gas import ETHEREUM_SCHEDULE, GasMeter

ALICE = KeyPair.from_name("alice").address
BOB = KeyPair.from_name("bob").address
ENV = BlockEnv(chain_id=1, height=1, timestamp=100.0)


@register_contract
class Counter(Contract):
    count = Slot(int)
    owner = Slot(Address)

    def init(self, start=0):
        self.count = start
        self.owner = self.msg.sender

    @external
    def bump(self):
        self.count += 1
        return self.count

    @external
    def owner_only_reset(self):
        require(self.msg.sender == self.owner, "not owner")
        self.count = 0

    @view
    def peek(self):
        return self.count

    def move_to(self, target_chain):
        require(self.msg.sender == self.owner, "only owner moves")


@register_contract
class Wallet(Contract):
    deposits = MapSlot(Address, int)

    @payable
    def deposit(self):
        self.deposits[self.msg.sender] += self.msg.value

    @external
    def withdraw(self, amount):
        require(self.deposits[self.msg.sender] >= amount, "insufficient")
        self.deposits[self.msg.sender] -= amount
        self.transfer(self.msg.sender, amount)

    @view
    def deposited(self, who):
        return self.deposits[who]


@register_contract
class Factory(Contract):
    created = Slot(int)

    @external
    def make_counter(self, salt):
        child = self.create(Counter, 0, salt=salt)
        self.created += 1
        return child

    @external
    def bump_remote(self, target):
        return self.call(target, "bump")


@pytest.fixture
def world():
    state = WorldState(chain_id=1, tree_factory=IAVLTree)
    runtime = Runtime(state, ETHEREUM_SCHEDULE)
    return state, runtime


def make_ctx(runtime, sender=ALICE, meter=None):
    return runtime.make_context(sender, ENV, meter)


def test_deploy_and_call(world):
    state, runtime = world
    ctx = make_ctx(runtime)
    addr = runtime.deploy(ctx, Counter, (5,), sender=ALICE)
    assert state.contract(addr) is not None
    assert runtime.call(ctx, addr, "bump", sender=ALICE) == 6
    assert runtime.view(addr, "peek") == 6


def test_constructor_sees_msg_sender(world):
    _, runtime = world
    ctx = make_ctx(runtime)
    addr = runtime.deploy(ctx, Counter, (), sender=ALICE)
    assert runtime.view(addr, "peek") == 0
    # owner set to ALICE: only ALICE may reset
    runtime.call(ctx, addr, "owner_only_reset", sender=ALICE)
    with pytest.raises(Revert, match="not owner"):
        runtime.call(ctx, addr, "owner_only_reset", sender=BOB)


def test_slots_persist_across_calls(world):
    _, runtime = world
    ctx = make_ctx(runtime)
    addr = runtime.deploy(ctx, Counter, (), sender=ALICE)
    for expected in (1, 2, 3):
        assert runtime.call(ctx, addr, "bump", sender=ALICE) == expected


def test_map_slot_and_payable(world):
    state, runtime = world
    state.add_balance(ALICE, 100)
    ctx = make_ctx(runtime)
    addr = runtime.deploy(ctx, Wallet, (), sender=ALICE)
    runtime.call(ctx, addr, "deposit", sender=ALICE, value=40)
    assert state.balance_of(addr) == 40
    assert runtime.view(addr, "deposited", (ALICE,)) == 40
    runtime.call(ctx, addr, "withdraw", (15,), sender=ALICE)
    assert state.balance_of(ALICE) == 75
    assert runtime.view(addr, "deposited", (ALICE,)) == 25


def test_value_to_non_payable_rejected(world):
    state, runtime = world
    state.add_balance(ALICE, 10)
    ctx = make_ctx(runtime)
    addr = runtime.deploy(ctx, Counter, (), sender=ALICE)
    with pytest.raises(Revert, match="not payable"):
        runtime.call(ctx, addr, "bump", sender=ALICE, value=5)


def test_insufficient_value_rejected(world):
    _, runtime = world
    ctx = make_ctx(runtime)
    addr = runtime.deploy(ctx, Wallet, (), sender=ALICE)
    with pytest.raises(Revert, match="insufficient balance"):
        runtime.call(ctx, addr, "deposit", sender=ALICE, value=5)


def test_non_external_method_not_callable(world):
    _, runtime = world
    ctx = make_ctx(runtime)
    addr = runtime.deploy(ctx, Counter, (), sender=ALICE)
    with pytest.raises(Revert, match="no external method"):
        runtime.call(ctx, addr, "init", sender=ALICE)
    with pytest.raises(Revert, match="no external method"):
        runtime.call(ctx, addr, "_storage_read", sender=ALICE)


def test_cross_contract_call(world):
    _, runtime = world
    ctx = make_ctx(runtime)
    factory = runtime.deploy(ctx, Factory, (), sender=ALICE)
    counter = runtime.call(ctx, factory, "make_counter", (1,), sender=ALICE)
    # Factory calls Counter.bump: msg.sender inside bump is the factory
    assert runtime.call(ctx, factory, "bump_remote", (counter,), sender=ALICE) == 1


def test_create2_address_is_predictable(world):
    _, runtime = world
    ctx = make_ctx(runtime)
    factory = runtime.deploy(ctx, Factory, (), sender=ALICE)
    child = runtime.call(ctx, factory, "make_counter", (42,), sender=ALICE)
    assert child == create2_address(1, factory, 42, Counter.CODE_HASH)


def test_locked_contract_rejects_mutation_allows_view(world):
    state, runtime = world
    ctx = make_ctx(runtime)
    addr = runtime.deploy(ctx, Counter, (7,), sender=ALICE)
    state.set_location(addr, 2)  # as if Move1 executed
    with pytest.raises(ContractLocked):
        runtime.call(ctx, addr, "bump", sender=ALICE)
    assert runtime.view(addr, "peek") == 7  # reads stay allowed


def test_gas_metering_charges_storage_costs(world):
    _, runtime = world
    meter = GasMeter(schedule=ETHEREUM_SCHEDULE)
    ctx = make_ctx(runtime, meter=meter)
    addr = runtime.deploy(ctx, Counter, (), sender=ALICE)
    assert meter.by_category.get("create", 0) >= ETHEREUM_SCHEDULE.create
    assert meter.by_category.get("code_deposit", 0) == ETHEREUM_SCHEDULE.code_deposit(
        len(Counter.CODE)
    )
    before = meter.used
    runtime.call(ctx, addr, "bump", sender=ALICE)
    # bump: CALL + SLOAD + SSTORE(update) at minimum
    assert meter.used - before >= (
        ETHEREUM_SCHEDULE.call + ETHEREUM_SCHEDULE.sload + ETHEREUM_SCHEDULE.sstore_update
    )


def test_out_of_gas_aborts(world):
    _, runtime = world
    meter = GasMeter(limit=10_000, schedule=ETHEREUM_SCHEDULE)
    ctx = make_ctx(runtime, meter=meter)
    with pytest.raises(OutOfGas):
        runtime.deploy(ctx, Counter, (), sender=ALICE)


def test_code_deposit_charged_on_every_ethereum_creation(world):
    # Section VIII: every (re)created contract pays the per-byte code
    # deposit on Ethereum, even when identical code is already on-chain.
    _, runtime = world
    meter = GasMeter(schedule=ETHEREUM_SCHEDULE)
    ctx = make_ctx(runtime, meter=meter)
    runtime.deploy(ctx, Counter, (), sender=ALICE)
    first_deposit = meter.by_category.get("code_deposit", 0)
    assert first_deposit == ETHEREUM_SCHEDULE.code_deposit(len(Counter.CODE))
    runtime.deploy(ctx, Counter, (), sender=ALICE)
    assert meter.by_category.get("code_deposit", 0) == 2 * first_deposit


def test_no_code_deposit_on_burrow_flavour(world):
    from repro.vm.gas import BURROW_SCHEDULE

    state, _ = world
    from repro.runtime.runtime import Runtime

    runtime = Runtime(state, BURROW_SCHEDULE)
    meter = GasMeter(schedule=BURROW_SCHEDULE)
    ctx = make_ctx(runtime, meter=meter)
    runtime.deploy(ctx, Counter, (), sender=ALICE)
    assert meter.by_category.get("code_deposit", 0) == 0


def test_default_move_to_refuses(world):
    _, runtime = world
    ctx = make_ctx(runtime)
    addr = runtime.deploy(ctx, Wallet, (), sender=ALICE)
    instance = runtime.bind(ctx, addr)
    ctx.push_msg(Msg(ALICE, 0))
    try:
        with pytest.raises(Revert, match="does not implement moveTo"):
            instance.move_to(2)
    finally:
        ctx.pop_msg()


def test_events_recorded(world):
    @register_contract
    class Emitter(Contract):
        @external
        def ping(self):
            self.emit("Ping", who=str(self.msg.sender))

    _, runtime = world
    ctx = make_ctx(runtime)
    addr = runtime.deploy(ctx, Emitter, (), sender=ALICE)
    runtime.call(ctx, addr, "ping", sender=ALICE)
    assert ctx.events and ctx.events[0][0] == "Ping"
