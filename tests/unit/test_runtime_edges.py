"""Edge-case coverage for the contract runtime and code registry."""

import pytest

from repro.crypto.keys import Address, KeyPair
from repro.errors import CodeNotFound, Revert
from repro.merkle.iavl import IAVLTree
from repro.runtime import (
    BlockEnv,
    Contract,
    MapSlot,
    Runtime,
    Slot,
    external,
    register_contract,
)
from repro.runtime.registry import code_for, lookup_code, register_contract as register
from repro.statedb.state import WorldState
from repro.vm.gas import ETHEREUM_SCHEDULE

ALICE = KeyPair.from_name("alice").address
ENV = BlockEnv(chain_id=1, height=1, timestamp=10.0)


@pytest.fixture
def runtime():
    return Runtime(WorldState(chain_id=1, tree_factory=IAVLTree), ETHEREUM_SCHEDULE)


def test_unregistered_class_has_no_code():
    class Naked(Contract):
        """Not passed through @register_contract."""

    with pytest.raises(CodeNotFound):
        code_for(Naked)


def test_lookup_unknown_hash():
    with pytest.raises(CodeNotFound):
        lookup_code(b"\x00" * 32)


def test_dynamic_class_registration_fallback():
    # Classes created without retrievable source still register with a
    # stable identity (REPL/exec scenario).
    cls = type("DynamicThing", (Contract,), {"__doc__": "made at runtime"})
    registered = register(cls)
    assert registered.CODE
    assert lookup_code(registered.CODE_HASH) is registered


def test_negative_int_slot_rejected(runtime):
    @register_contract
    class Neg(Contract):
        """Stores an int slot."""

        x = Slot(int)

        @external
        def set_neg(self):
            """Try to store a negative value."""
            self.x = -1

    ctx = runtime.make_context(ALICE, ENV)
    addr = runtime.deploy(ctx, Neg, (), sender=ALICE)
    with pytest.raises(ValueError):
        runtime.call(ctx, addr, "set_neg", sender=ALICE)


def test_map_slot_direct_assignment_rejected(runtime):
    @register_contract
    class Mapped(Contract):
        """Has a map slot."""

        table = MapSlot(int, int)

        @external
        def smash(self):
            """Illegal: replace the map wholesale."""
            self.table = {}

    ctx = runtime.make_context(ALICE, ENV)
    addr = runtime.deploy(ctx, Mapped, (), sender=ALICE)
    with pytest.raises(AttributeError):
        runtime.call(ctx, addr, "smash", sender=ALICE)


def test_map_slot_delete_and_contains(runtime):
    @register_contract
    class Deleting(Contract):
        """Exercises map deletion."""

        table = MapSlot(int, int)

        @external
        def put_and_del(self):
            """Insert then delete a key; report membership."""
            self.table[1] = 5
            had = 1 in self.table
            del self.table[1]
            return had, 1 in self.table

    ctx = runtime.make_context(ALICE, ENV)
    addr = runtime.deploy(ctx, Deleting, (), sender=ALICE)
    assert runtime.call(ctx, addr, "put_and_del", sender=ALICE) == (True, False)


def test_view_on_missing_contract(runtime):
    from repro.errors import StateError

    with pytest.raises(StateError):
        runtime.view(Address(b"\x01" * 20), "anything")


def test_verify_remote_state_without_light_client(runtime):
    @register_contract
    class Prover(Contract):
        """Calls the light-client builtin."""

        @external
        def check(self, proof):
            """Try to verify a remote proof."""
            return self.verify_remote_state(proof)

    ctx = runtime.make_context(ALICE, ENV)  # standalone: no light client
    addr = runtime.deploy(ctx, Prover, (), sender=ALICE)

    class FakeProof:
        def size_bytes(self):
            return 10

        def verify(self, lc):
            return True

    with pytest.raises(Revert, match="light client"):
        runtime.call(ctx, addr, "check", (FakeProof(),), sender=ALICE)


def test_op_move_to_own_chain_rejected(runtime):
    @register_contract
    class SelfMover(Contract):
        """Tries OP_MOVE to the current chain."""

        @external
        def bad_move(self):
            """Illegal self-move."""
            self.op_move(self.chain_id)

    ctx = runtime.make_context(ALICE, ENV)
    addr = runtime.deploy(ctx, SelfMover, (), sender=ALICE)
    with pytest.raises(Revert, match="current chain"):
        runtime.call(ctx, addr, "bad_move", sender=ALICE)
