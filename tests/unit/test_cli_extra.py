"""Additional CLI coverage: retry mode, saved-trace replay, inspect."""

import pytest

from repro.cli import main


def run_cli(capsys, *argv):
    code = main(list(argv))
    return code, capsys.readouterr().out


def test_scoin_retry_flag(capsys):
    code, out = run_cli(
        capsys, "scoin", "--shards", "2", "--clients", "8",
        "--cross", "0.1", "--duration", "200", "--retry",
    )
    assert code == 0
    assert "retry mode" in out
    assert "retry histogram" in out


def test_trace_save_load_roundtrip(tmp_path, capsys):
    path = str(tmp_path / "t.json")
    code, out_saved = run_cli(
        capsys, "trace", "--shards", "1", "--ops", "200", "--save", path
    )
    assert code == 0
    assert "saved trace" in out_saved
    code, out_loaded = run_cli(capsys, "trace", "--shards", "1", "--load", path)
    assert code == 0
    assert "loaded trace" in out_loaded

    def stats(text):
        return [line for line in text.splitlines() if "committed txs" in line]

    assert stats(out_saved) == stats(out_loaded)


def test_trace_inspect_prints_shard_stats(capsys):
    code, out = run_cli(
        capsys, "trace", "--shards", "2", "--ops", "150", "--inspect"
    )
    assert code == 0
    assert "chain 1 (shard-0" in out
    assert "tx mix" in out


def test_ibc_e2b_direction(capsys):
    code, out = run_cli(capsys, "ibc", "--app", "store1", "--direction", "e2b")
    assert code == 0
    assert "Ethereum -> Burrow" in out
