"""Unit tests for the binary Merkle tree and the {v} -> m interface."""

import pytest

from repro.merkle.binary import EMPTY_ROOT, BinaryMerkleTree
from repro.merkle.proof import verify_proof


def leaves(n):
    return [f"tx-{i}".encode() for i in range(n)]


def test_empty_tree_has_sentinel_root():
    assert BinaryMerkleTree([]).root == EMPTY_ROOT


def test_single_leaf():
    tree = BinaryMerkleTree([b"only"])
    proof = tree.prove(0)
    assert proof.value == b"only"
    assert len(proof) == 0
    assert verify_proof(proof, tree.root)


@pytest.mark.parametrize("n", [1, 2, 3, 4, 5, 7, 8, 9, 16, 33])
def test_all_leaves_provable(n):
    tree = BinaryMerkleTree(leaves(n))
    for i in range(n):
        proof = tree.prove(i)
        assert proof.value == f"tx-{i}".encode()
        assert verify_proof(proof, tree.root)


def test_proof_fails_against_wrong_root():
    t1 = BinaryMerkleTree(leaves(5))
    t2 = BinaryMerkleTree(leaves(6))
    assert not verify_proof(t1.prove(2), t2.root)


def test_proof_fails_with_tampered_value():
    tree = BinaryMerkleTree(leaves(8))
    proof = tree.prove(3)
    from repro.merkle.proof import MembershipProof

    forged = MembershipProof(
        key=proof.key, value=b"tx-FORGED", leaf_prefix=proof.leaf_prefix, steps=proof.steps
    )
    assert not verify_proof(forged, tree.root)


def test_root_changes_with_any_leaf():
    base = BinaryMerkleTree(leaves(8)).root
    for i in range(8):
        modified = leaves(8)
        modified[i] = b"changed"
        assert BinaryMerkleTree(modified).root != base


def test_root_depends_on_order():
    a = BinaryMerkleTree([b"a", b"b"]).root
    b = BinaryMerkleTree([b"b", b"a"]).root
    assert a != b


def test_index_out_of_range():
    tree = BinaryMerkleTree(leaves(3))
    with pytest.raises(IndexError):
        tree.prove(3)


def test_verify_against_none_root_is_false():
    tree = BinaryMerkleTree(leaves(2))
    assert not verify_proof(tree.prove(0), None)


def test_proof_length_is_logarithmic():
    tree = BinaryMerkleTree(leaves(1024))
    assert len(tree.prove(0)) == 10


def test_root_hash_alias_and_snapshot():
    tree = BinaryMerkleTree(leaves(5))
    assert tree.root_hash == tree.root
    snap = tree.snapshot()
    assert snap.root_hash == tree.root_hash
    assert verify_proof(snap.prove(2), tree.root)
