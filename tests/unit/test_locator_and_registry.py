"""Unit tests for the contract locator and the chain registry."""

import pytest

from repro.chain.params import burrow_params
from repro.core.locator import ContractLocator
from repro.core.registry import ChainRegistry
from repro.crypto.keys import Address
from repro.errors import StateError

ADDR = Address(b"\x07" * 20)


def locator_over(table):
    """table: {chain_id: location or None}"""
    return ContractLocator(lambda chain, _addr: table.get(chain))


def test_locate_contract_at_home():
    loc = locator_over({1: 1})
    assert loc.locate(ADDR, start_chain=1) == 1


def test_locate_follows_one_hop():
    loc = locator_over({1: 2, 2: 2})
    assert loc.locate(ADDR, start_chain=1) == 2


def test_locate_follows_long_trail():
    loc = locator_over({1: 2, 2: 3, 3: 4, 4: 4})
    assert loc.locate(ADDR, start_chain=1) == 4


def test_locate_unknown_contract():
    loc = locator_over({})
    with pytest.raises(StateError, match="no record"):
        loc.locate(ADDR, start_chain=1)


def test_locate_dangling_move_detected():
    # Move1 executed (1 says "at 2") but Move2 never ran and chain 2
    # has no record: the trail dead-ends with a clear error.
    loc = locator_over({1: 2})
    with pytest.raises(StateError, match="no record"):
        loc.locate(ADDR, start_chain=1)


def test_locate_cycle_detected():
    # Stale records pointing at each other (no active copy).
    loc = locator_over({1: 2, 2: 1})
    with pytest.raises(StateError):
        loc.locate(ADDR, start_chain=1)


def test_registry_register_and_lookup():
    registry = ChainRegistry()
    params = burrow_params(5)
    registry.register(params)
    assert registry.params_for(5) is params
    assert 5 in registry
    assert len(registry) == 1


def test_registry_rejects_conflicting_ids():
    registry = ChainRegistry()
    registry.register(burrow_params(5))
    with pytest.raises(StateError):
        registry.register(burrow_params(5, name="other"))


def test_registry_same_instance_is_idempotent():
    registry = ChainRegistry()
    params = burrow_params(5)
    registry.register(params)
    registry.register(params)  # no raise
    assert len(registry) == 1


def test_registry_unknown_chain():
    with pytest.raises(StateError):
        ChainRegistry().params_for(42)
