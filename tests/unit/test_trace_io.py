"""Unit tests for trace serialization."""

import pytest

from repro.traces.cryptokitties import TraceConfig, generate_trace
from repro.traces.io import load_trace, save_trace, trace_from_json, trace_to_json


@pytest.fixture(scope="module")
def trace():
    return generate_trace(TraceConfig(n_ops=150, n_promo=30, n_users=20, seed=11))


def test_roundtrip_in_memory(trace):
    assert trace_from_json(trace_to_json(trace)) == trace


def test_roundtrip_on_disk(tmp_path, trace):
    path = tmp_path / "trace.json"
    save_trace(trace, path)
    assert load_trace(path) == trace


def test_loaded_trace_replays_identically(tmp_path, trace):
    from repro.sharding.cluster import ShardedCluster
    from repro.traces.replay import KittiesReplayer

    path = tmp_path / "trace.json"
    save_trace(trace, path)
    loaded = load_trace(path)

    reports = []
    for ops in (trace, loaded):
        cluster = ShardedCluster(num_shards=2, seed=9, max_block_txs=130)
        replayer = KittiesReplayer(cluster, trace=list(ops), outstanding_limit=100)
        reports.append(replayer.run(max_time=40_000))
    assert reports[0].txs_committed == reports[1].txs_committed
    assert reports[0].finished_at == reports[1].finished_at
    assert reports[0].cross_shard_ops == reports[1].cross_shard_ops


def test_rejects_foreign_documents():
    with pytest.raises(ValueError, match="not a trace file"):
        trace_from_json('{"format": "something-else", "version": 1, "ops": []}')
    with pytest.raises(ValueError, match="unsupported trace version"):
        trace_from_json('{"format": "scontracts-move-trace", "version": 99, "ops": []}')


def test_rejects_malformed_ops():
    bad = (
        '{"format": "scontracts-move-trace", "version": 1, '
        '"ops": [{"id": 0, "kind": "explode", "objects": [1], "params": {}}]}'
    )
    with pytest.raises(ValueError):
        trace_from_json(bad)
