"""Actuation-layer tests: driver semantics, node hosting, determinism.

The determinism test is the load-bearing one: rebalancing decisions are
derived from the public block stream and the shared metrics registry,
both of which are byte-identical across executor worker counts, so the
decision log must replay exactly at workers 0 (serial), 2 and 4.
"""

import json

import pytest

from repro.chain.tx import CallPayload, DeployPayload, sign_transaction
from repro.crypto.keys import Address, KeyPair
from repro.errors import ConfigError
from repro.net.sim import Simulator
from repro.node import Node
from repro.chain.params import burrow_params
from repro.rebalance import RebalancePolicy, Rebalancer, SignalPlane
from repro.sharding.cluster import ShardedCluster
from tests.helpers import ALICE, ManualClock, StoreContract, deploy_store, full_move


def addr(n: int) -> Address:
    return Address(bytes([n]) * 20)


class _StubSignal:
    def __init__(self, name, shard_values, contract_values=None):
        self.name = name
        self.shard = dict(shard_values)
        self.contract = dict(contract_values or {})

    def shard_values(self):
        return self.shard

    def contract_values(self):
        return self.contract


def skewed_plane(placement=None):
    """Shard 0 saturated, shard 1 idle, one hot contract on 0."""
    placement = placement if placement is not None else {addr(1): 0}
    plane = SignalPlane(locate=placement.get)
    plane.attach(_StubSignal("utilization", {0: 0.95, 1: 0.05}, {addr(1): 2.0}))
    return plane


def quick_policy(**overrides):
    defaults = dict(
        hot_enter=0.8,
        hot_exit=0.5,
        min_gap=0.3,
        contract_cooldown=0.0,
        shard_cooldown=0.0,
    )
    defaults.update(overrides)
    return RebalancePolicy(**defaults)


# ----------------------------------------------------------------------
# Driver semantics
# ----------------------------------------------------------------------


def test_successful_move_settles_log_metrics_and_inflight():
    sim = Simulator(seed=1)
    calls = []

    def actuator(decision, done):
        calls.append(decision)
        sim.schedule(5.0, lambda: done(True))

    rb = Rebalancer(sim, skewed_plane(), quick_policy(), actuator, interval=10.0)
    rb.start()
    sim.run(until=12.0)
    assert len(calls) == 1
    assert rb.policy.inflight  # still moving at t=12
    sim.run(until=16.0)
    assert rb.policy.inflight == {}
    assert rb.moves("ok") and rb.moves("ok")[0]["contract"] == addr(1).hex
    metrics = rb.telemetry.metrics
    assert metrics.value("rebalance_moves_total", status="ok") == 1
    assert metrics.value("rebalance_decisions_total") == 1
    assert metrics.value("rebalance_ticks_total") >= 1
    assert metrics.value("rebalance_inflight") == 0


def test_move_timeout_reclaims_inflight_slot_and_ignores_late_done():
    sim = Simulator(seed=1)
    late = []

    def actuator(decision, done):
        late.append(done)  # never answers in time

    rb = Rebalancer(
        sim, skewed_plane(), quick_policy(contract_cooldown=100.0), actuator,
        interval=10.0, move_timeout=30.0,
    )
    rb.start()
    sim.run(until=45.0)
    assert rb.moves("timeout")
    assert rb.policy.inflight == {}
    assert rb.telemetry.metrics.value("rebalance_moves_total", status="timeout") >= 1
    before = rb.telemetry.metrics.value("rebalance_moves_total", status="ok")
    late[0](True)  # the move finally answers — after the write-off
    assert rb.telemetry.metrics.value("rebalance_moves_total", status="ok") == before


def test_raising_actuator_degrades_to_error_status():
    sim = Simulator(seed=1)

    def actuator(decision, done):
        raise RuntimeError("bridge on fire")

    rb = Rebalancer(sim, skewed_plane(), quick_policy(), actuator, interval=10.0)
    rb.start()
    sim.run(until=12.0)  # does not raise
    assert rb.moves("error")
    assert rb.policy.inflight == {}


def test_dry_run_records_skipped_decisions():
    sim = Simulator(seed=1)
    rb = Rebalancer(sim, skewed_plane(), quick_policy(), actuator=None, interval=10.0)
    rb.start()
    sim.run(until=12.0)
    assert rb.moves("skipped")
    json.dumps(rb.decision_log)  # the replay artifact stays serializable


def test_stop_start_cannot_double_tick():
    sim = Simulator(seed=1)
    rb = Rebalancer(sim, skewed_plane(), quick_policy(), None, interval=10.0)
    rb.start()
    rb.stop()
    rb.start()  # the stale first timer must not produce a second chain
    sim.run(until=41.0)
    assert rb.ticks == 4


def test_config_validation():
    sim = Simulator(seed=1)
    with pytest.raises(ConfigError):
        Rebalancer(sim, skewed_plane(), interval=0.0)
    with pytest.raises(ConfigError):
        Rebalancer(sim, skewed_plane(), move_timeout=0.0)


# ----------------------------------------------------------------------
# Node hosting
# ----------------------------------------------------------------------


def test_node_hosts_rebalancer_lifecycle():
    node = Node(burrow_params(1), seed=3)
    rb = Rebalancer(node.sim, skewed_plane(), quick_policy(), None, interval=10.0)
    node.attach_rebalancer(rb)
    assert node.rebalancer is rb
    assert not rb.running
    node.start()
    assert rb.running
    node.run_for(25.0)
    assert rb.ticks == 2
    node.stop()
    assert not rb.running
    node.run_for(30.0)
    assert rb.ticks == 2  # no ticks while stopped
    node.start()
    node.run_for(25.0)
    assert rb.ticks == 4
    node.stop()
    node.attach_rebalancer(None)
    assert node.rebalancer is None


def test_attach_while_running_starts_immediately():
    node = Node(burrow_params(1), seed=3)
    node.start()
    rb = Rebalancer(node.sim, skewed_plane(), quick_policy(), None, interval=10.0)
    node.attach_rebalancer(rb)
    assert rb.running
    node.run_for(12.0)
    assert rb.ticks == 1
    node.stop()


# ----------------------------------------------------------------------
# Contract location index (satellite: O(1) locate_contract)
# ----------------------------------------------------------------------


def test_locate_contract_tracks_deploys_and_moves():
    cluster = ShardedCluster(num_shards=2, seed=3)
    clock = ManualClock()
    store = deploy_store(cluster.shard(0), clock, ALICE)
    assert cluster.locate_contract(store) == 0
    receipt = full_move(cluster.shard(0), cluster.shard(1), clock, ALICE, store)
    assert receipt.success
    assert cluster.locate_contract(store) == 1
    assert cluster.locate_contract(addr(9)) is None


def test_locate_contract_returns_none_mid_move():
    from repro.chain.tx import Move1Payload
    from tests.helpers import run_tx

    cluster = ShardedCluster(num_shards=2, seed=3)
    clock = ManualClock()
    store = deploy_store(cluster.shard(0), clock, ALICE)
    receipt = run_tx(
        cluster.shard(0), clock, ALICE,
        Move1Payload(contract=store, target_chain=cluster.shard(1).chain_id),
    )
    assert receipt.success
    # In transit: no shard holds the active copy.
    assert cluster.locate_contract(store) is None


# ----------------------------------------------------------------------
# Seed-exact decision determinism across executor worker counts
# ----------------------------------------------------------------------


def decision_log_at(workers: int) -> str:
    """Drive a skewed deterministic load and return the decision log."""
    cluster = ShardedCluster(
        num_shards=3, seed=11, max_block_txs=10, executor_workers=workers
    )
    clock = ManualClock()
    # Eight independent owners, each with their own store on shard 0:
    # one put per owner per block — no intra-block conflicts, so the
    # serial and speculative executors see identical outcomes.
    owners = [KeyPair.from_name(f"det-owner-{i}") for i in range(8)]
    cluster.fund_all({kp.address: 1_000_000 for kp in owners})
    for kp in owners:
        cluster.shard(0).submit(
            sign_transaction(kp, DeployPayload(code_hash=StoreContract.CODE_HASH))
        )
    cluster.shard(0).produce_block(clock.tick())
    stores = [
        cluster.shard(0).receipts[tx_id].return_value
        for tx_id in [
            tx.tx_id for tx in cluster.shard(0).blocks[-1].transactions
        ]
    ]
    assert len(stores) == 8
    rb = cluster.auto_rebalancer(
        policy=RebalancePolicy(
            hot_enter=0.7,
            hot_exit=0.4,
            min_gap=0.3,
            contract_cooldown=50.0,
            shard_cooldown=0.0,
            max_moves_per_tick=2,
        ),
    )
    for _round in range(9):
        for kp, store in zip(owners, stores):
            cluster.shard(0).submit(
                sign_transaction(kp, CallPayload(store, "put", (1, 1)))
            )
        cluster.shard(0).produce_block(clock.tick())
        cluster.shard(1).produce_block(clock.now)
        cluster.shard(2).produce_block(clock.now)
    rb.evaluate()
    assert rb.decision_log, "the skewed load must trigger decisions"
    return json.dumps(rb.decision_log, sort_keys=True)


def test_decisions_are_seed_exact_across_worker_counts():
    logs = {workers: decision_log_at(workers) for workers in (0, 2, 4)}
    assert logs[0] == logs[2] == logs[4]
