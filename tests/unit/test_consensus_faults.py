"""Fault tolerance of the Tendermint-style engine.

BFT consensus must keep committing with f < n/3 fail-stop validators,
survive crashed proposers via round timeouts, and halt (never fork)
when the quorum is lost.
"""

import pytest

from repro.chain.chain import Chain
from repro.chain.params import burrow_params
from repro.consensus.tendermint import TendermintEngine
from repro.net.latency import LatencyModel
from repro.net.sim import Simulator
from repro.net.transport import Network


def make_engine(seed=1, validators=10):
    sim = Simulator(seed=seed)
    net = Network(sim)
    chain = Chain(burrow_params(1), verify_signatures=False)
    regions = LatencyModel().assign_regions(validators, sim.rng)
    engine = TendermintEngine(sim, net, chain, regions)
    return sim, chain, engine


def test_progress_with_f_crashed_followers():
    sim, chain, engine = make_engine()
    # Crash 3 of 10 non-proposer validators (f = 3 < n/3 quorum bound
    # of 7 alive): progress must continue.
    for validator in engine.validators[7:]:
        engine.crash(validator)
    engine.start()
    sim.run(until=120.0)
    assert chain.height >= 15


def test_progress_with_crashed_proposers():
    sim, chain, engine = make_engine()
    # Crash 2 validators including ones that will be proposers: round
    # timeouts hand their heights to the next proposer.
    engine.crash(engine.validators[1])
    engine.crash(engine.validators[2])
    engine.start()
    sim.run(until=200.0)
    assert chain.height >= 20
    # Some heights had to advance rounds.
    assert engine.rounds_advanced > 0
    # Crashed validators proposed nothing.
    proposers = {b.header.proposer for b in chain.blocks[1:]}
    assert engine.validators[1] not in proposers
    assert engine.validators[2] not in proposers


def test_blocks_slower_under_proposer_crashes_but_monotonic():
    sim, chain, engine = make_engine(seed=2)
    engine.crash(engine.validators[0])
    engine.crash(engine.validators[3])
    engine.start()
    sim.run(until=300.0)
    heights = [b.height for b in chain.blocks]
    assert heights == sorted(set(heights))  # no forks, no gaps
    assert chain.height >= 25


def test_halt_without_quorum_then_recover():
    sim, chain, engine = make_engine(seed=3)
    engine.start()
    sim.run(until=30.0)
    progress_point = chain.height
    assert progress_point >= 3
    # Crash 4 of 10: only 6 alive < quorum 7 -> the chain must halt
    # (safety over liveness), not fork.
    for validator in engine.validators[:4]:
        engine.crash(validator)
    sim.run(until=150.0)
    assert chain.height <= progress_point + 1  # at most one in-flight commit
    # Recovery restores liveness.
    for validator in engine.validators[:4]:
        engine.recover(validator)
    sim.run(until=300.0)
    assert chain.height > progress_point + 5


def test_crashed_validator_votes_do_not_count():
    sim, chain, engine = make_engine(seed=4)
    for validator in engine.validators[:3]:
        engine.crash(validator)
    engine.start()
    sim.run(until=60.0)
    # The quorum is still computed over the full set (7 of 10), so the
    # 7 alive validators are all needed; progress confirms none of the
    # crashed ones were counted as voters.
    assert engine.quorum_size() == 7
    assert chain.height >= 7
