"""Unit tests for repro.crypto.hashing."""

from repro.crypto.hashing import (
    DIGEST_SIZE,
    keccak,
    keccak_hex,
    merkle_hash_leaf,
    merkle_hash_node,
)


def test_digest_size():
    assert len(keccak(b"x")) == DIGEST_SIZE


def test_deterministic():
    assert keccak(b"abc") == keccak(b"abc")


def test_chunking_is_concatenation():
    assert keccak(b"ab", b"c") == keccak(b"abc")


def test_different_inputs_differ():
    assert keccak(b"a") != keccak(b"b")


def test_hex_form():
    assert keccak_hex(b"x") == keccak(b"x").hex()
    assert len(keccak_hex(b"x")) == 64


def test_leaf_and_node_domains_are_separated():
    payload = keccak(b"left") + keccak(b"right")
    assert merkle_hash_leaf(payload) != merkle_hash_node(keccak(b"left"), keccak(b"right"))


def test_node_hash_order_matters():
    a, b = keccak(b"a"), keccak(b"b")
    assert merkle_hash_node(a, b) != merkle_hash_node(b, a)


def test_memo_matches_unmemoized_reference():
    import hashlib

    from repro.crypto.hashing import _MEMO_MAX_LEN, keccak_memo_info

    small = b"\x07" * _MEMO_MAX_LEN          # memoized path
    large = b"\x07" * (_MEMO_MAX_LEN + 1)    # direct path
    assert keccak(small) == hashlib.sha3_256(small).digest()
    assert keccak(large) == hashlib.sha3_256(large).digest()
    before = keccak_memo_info().hits
    keccak(small)
    keccak(b"\x07" * 64, b"\x07" * 64)  # same bytes via chunks: same entry
    assert keccak_memo_info().hits >= before + 2
