"""Reproducibility: identical seeds must give identical experiments.

The entire evaluation rests on deterministic simulation — same seed,
same trace, same results — so regressions here would silently undermine
every reported number.
"""

import pytest

from repro.sharding.cluster import ShardedCluster
from repro.traces.cryptokitties import TraceConfig, generate_trace
from repro.traces.replay import KittiesReplayer
from repro.workload.clients import ScoinWorkload


def test_cluster_runs_are_bit_identical():
    def run():
        cluster = ShardedCluster(num_shards=2, seed=21)
        cluster.start()
        cluster.run(until=100.0)
        return [
            (shard.height, [b.hash() for b in shard.blocks])
            for shard in cluster.shards
        ]

    assert run() == run()


def test_workload_runs_are_identical():
    def run():
        cluster = ShardedCluster(num_shards=2, seed=22)
        workload = ScoinWorkload(cluster, clients_per_shard=8, cross_rate=0.1, seed=3)
        report = workload.run(duration=150.0, warmup=20.0)
        return (
            report.ops_completed,
            report.single_shard_ops,
            report.cross_shard_ops,
            tuple(sorted(report.latency.all_samples())),
        )

    assert run() == run()


def test_replay_runs_are_identical():
    trace = generate_trace(TraceConfig(n_ops=300, n_promo=60, n_users=40, seed=23))

    def run():
        cluster = ShardedCluster(num_shards=2, seed=24, max_block_txs=130)
        replayer = KittiesReplayer(cluster, trace=list(trace), outstanding_limit=100)
        report = replayer.run(max_time=30_000)
        return (report.txs_committed, report.finished_at, report.cross_shard_ops)

    assert run() == run()


def test_different_seeds_differ():
    def run(seed):
        cluster = ShardedCluster(num_shards=2, seed=seed)
        cluster.start()
        cluster.run(until=100.0)
        return [b.hash() for b in cluster.shard(0).blocks]

    assert run(31) != run(32)


def test_ibc_experiment_is_deterministic():
    from repro.ibc.scenarios import BURROW_ID, ETHEREUM_ID, IBCExperiment

    def run():
        phases = IBCExperiment(seed=7).run_app("store10", BURROW_ID, ETHEREUM_ID)
        return (phases.total_time, dict(phases.gas))

    assert run() == run()
