"""CLI tests for the ``telemetry`` and ``obs`` command families."""

import json

from repro.cli import main

DURATION = ["--duration", "120"]


def run_cli(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out


# ----------------------------------------------------------------------
# telemetry breakdown / slowest / export
# ----------------------------------------------------------------------


def test_telemetry_breakdown_text(capsys):
    code, out = run_cli(capsys, "telemetry", "breakdown", *DURATION)
    assert code == 0
    assert "move traces" in out
    assert "phase" in out and "p99 (s)" in out
    for phase in ("move1", "confirm.wait", "proof.build", "move2", "complete", "total"):
        assert phase in out


def test_telemetry_breakdown_json(capsys):
    code, out = run_cli(capsys, "telemetry", "breakdown", "--json", *DURATION)
    assert code == 0
    doc = json.loads(out)
    assert doc["seed"] == 11
    assert doc["workload"] == "scoin"
    assert doc["traces"] == len(doc["breakdown"])
    assert set(doc["phases"]) == {
        "move1", "confirm.wait", "proof.build", "move2", "complete"
    }
    for stats in doc["phases"].values():
        assert set(stats) == {"mean", "p50", "p99"}


def test_telemetry_slowest_text(capsys):
    code, out = run_cli(capsys, "telemetry", "slowest", "--top", "3", *DURATION)
    assert code == 0
    assert "slowest" in out
    assert "trace" in out


def test_telemetry_slowest_json(capsys):
    code, out = run_cli(capsys, "telemetry", "slowest", "--top", "3", "--json", *DURATION)
    assert code == 0
    docs = json.loads(out)
    assert isinstance(docs, list) and len(docs) <= 3
    totals = [t["total"] for t in docs]
    assert totals == sorted(totals, reverse=True)


def test_telemetry_export_jsonl(capsys):
    code, out = run_cli(capsys, "telemetry", "export", *DURATION)
    assert code == 0
    lines = [json.loads(line) for line in out.splitlines()]
    assert lines
    assert all("trace" in doc and "name" in doc for doc in lines)


def test_telemetry_export_prometheus(capsys):
    code, out = run_cli(
        capsys, "telemetry", "export", "--format", "prometheus", *DURATION
    )
    assert code == 0
    assert "# TYPE" in out
    assert "faults_injected_total" in out


def test_telemetry_export_to_file(capsys, tmp_path):
    path = tmp_path / "spans.jsonl"
    code, out = run_cli(
        capsys, "telemetry", "export", "--out", str(path), *DURATION
    )
    assert code == 0
    assert "wrote" in out
    assert path.read_text().count("\n") >= 1


# ----------------------------------------------------------------------
# obs status / slo / postmortem
# ----------------------------------------------------------------------


def test_obs_status_text(capsys):
    code, out = run_cli(capsys, "obs", "status", *DURATION)
    assert code == 0
    assert "health ticks" in out
    assert "chain:1" in out and "chain:2" in out
    assert "firing alerts" in out
    assert "postmortems" in out


def test_obs_status_json(capsys):
    code, out = run_cli(capsys, "obs", "status", "--json", *DURATION)
    assert code == 0
    status = json.loads(out)
    assert status["ticks"] > 0
    assert status["targets"]["chain:1"] in ("healthy", "unhealthy")
    assert isinstance(status["firing"], list)


def test_obs_status_fault_free_is_all_healthy(capsys):
    code, out = run_cli(
        capsys, "obs", "status", "--json", "--no-faults", *DURATION
    )
    assert code == 0
    status = json.loads(out)
    assert status["unhealthy"] == []
    assert status["alerts_logged"] == 0


def test_obs_slo_text(capsys):
    code, out = run_cli(capsys, "obs", "slo", *DURATION)
    assert code == 0
    assert "SLOs" in out and "alert transitions" in out


def test_obs_slo_json(capsys):
    code, out = run_cli(capsys, "obs", "slo", "--json", *DURATION)
    assert code == 0
    doc = json.loads(out)
    names = {spec["name"] for spec in doc["slos"]}
    assert "chain-liveness" in names and "relay-lag" in names
    for spec in doc["slos"]:
        assert 0.0 < spec["objective"] < 1.0
        assert spec["fast_window"] < spec["slow_window"]
    assert isinstance(doc["alerts"], list)


def test_obs_postmortem_stdout(capsys):
    code, out = run_cli(capsys, "obs", "postmortem", *DURATION)
    assert code == 0
    bundle = json.loads(out)
    assert bundle["reason"] in ("manual", "alert", "fault", "invariant")
    assert set(bundle["metrics"]) == {"start", "current", "delta"}
    assert "health" in bundle and "events" in bundle


def test_obs_postmortem_to_file(capsys, tmp_path):
    path = tmp_path / "bundle.json"
    code, out = run_cli(
        capsys, "obs", "postmortem", "--out", str(path), *DURATION
    )
    assert code == 0
    assert "wrote postmortem bundle" in out
    bundle = json.loads(path.read_text())
    assert "reason" in bundle


def test_obs_postmortem_deterministic(capsys, tmp_path):
    texts = set()
    for name in ("a.json", "b.json"):
        path = tmp_path / name
        code, _ = run_cli(
            capsys, "obs", "postmortem", "--out", str(path), *DURATION
        )
        assert code == 0
        texts.add(path.read_text())
    assert len(texts) == 1
