"""Policy-layer edge cases: hysteresis, dedup, cooldowns, determinism.

Views are built directly from plain data — the policy never needs a
live cluster, which is exactly the decoupling the signal plane buys.
"""

import pytest

from repro.crypto.keys import Address
from repro.errors import ConfigError
from repro.rebalance.policy import RebalancePolicy, spread_target
from repro.rebalance.signals import ShardLoad, ShardLoadView


def addr(n: int) -> Address:
    return Address(bytes([n]) * 20)


def make_view(pressures, hotness=None, placement=None, at=0.0):
    shards = {
        i: ShardLoad(i, {"utilization": p}, p) for i, p in pressures.items()
    }
    return ShardLoadView(at, shards, hotness, placement)


def skew_view(hot=0.9, cool=0.1, contracts=1, at=0.0):
    """Shard 0 hot, shard 1 cool, ``contracts`` hot contracts on 0."""
    hotness = {addr(i + 1): float(contracts - i) for i in range(contracts)}
    placement = {address: 0 for address in hotness}
    return make_view({0: hot, 1: cool}, hotness, placement, at=at)


def issue_all(policy, decisions, now):
    """Mirror the driver: every emitted decision is actuated."""
    for decision in decisions:
        policy.note_issued(decision, now)
    return decisions


def no_cooldown_policy(**overrides):
    defaults = dict(
        hot_enter=0.8,
        hot_exit=0.5,
        min_gap=0.3,
        contract_cooldown=0.0,
        shard_cooldown=0.0,
    )
    defaults.update(overrides)
    return RebalancePolicy(**defaults)


# ----------------------------------------------------------------------
# Hysteresis
# ----------------------------------------------------------------------


def test_hysteresis_latch_does_not_flap_around_threshold():
    policy = no_cooldown_policy()
    # Below the enter threshold: never hot.
    policy.decide(skew_view(hot=0.79), now=0.0)
    assert not policy.is_hot(0)
    # Crosses enter: latched hot.
    assert policy.decide(skew_view(hot=0.85), now=1.0)
    assert policy.is_hot(0)
    # Oscillating between exit and enter: *stays* hot (no flapping).
    policy.note_finished(addr(1), True, 1.5)
    assert policy.decide(skew_view(hot=0.6), now=2.0)
    assert policy.is_hot(0)
    policy.note_finished(addr(1), True, 2.5)
    assert policy.decide(skew_view(hot=0.79), now=3.0)
    assert policy.is_hot(0)
    # Only dropping to the exit threshold unlatches...
    policy.note_finished(addr(1), True, 3.5)
    assert policy.decide(skew_view(hot=0.5), now=4.0) == []
    assert not policy.is_hot(0)
    # ...and a value below enter does not re-latch.
    assert policy.decide(skew_view(hot=0.79), now=5.0) == []
    assert not policy.is_hot(0)


def test_hot_shards_are_never_targets():
    policy = no_cooldown_policy(max_moves_per_tick=8)
    hotness = {addr(i + 1): 1.0 for i in range(4)}
    placement = {address: 0 for address in hotness}
    view = make_view({0: 0.95, 1: 0.85, 2: 0.1}, hotness, placement)
    decisions = policy.decide(view, now=0.0)
    assert decisions
    assert all(d.target_shard == 2 for d in decisions)


# ----------------------------------------------------------------------
# In-flight accounting
# ----------------------------------------------------------------------


def test_inflight_move_is_never_double_decided():
    policy = no_cooldown_policy()
    first = issue_all(policy, policy.decide(skew_view(), now=0.0), 0.0)
    assert len(first) == 1
    # Once issued, re-evaluating the same hot view must not re-pick it.
    assert addr(1) in policy.inflight
    assert policy.decide(skew_view(), now=1.0) == []
    # Completion frees the slot (cooldowns disabled here).
    policy.note_finished(addr(1), True, 2.0)
    assert policy.inflight == {}
    assert len(policy.decide(skew_view(), now=3.0)) == 1


def test_max_inflight_bounds_concurrent_moves():
    policy = no_cooldown_policy(max_moves_per_tick=10, max_inflight=2)
    decisions = issue_all(
        policy, policy.decide(skew_view(contracts=5), now=0.0), 0.0
    )
    assert len(decisions) == 2
    assert policy.decide(skew_view(contracts=5), now=1.0) == []
    policy.note_finished(decisions[0].contract, True, 2.0)
    assert len(policy.decide(skew_view(contracts=5), now=3.0)) == 1


def test_max_moves_per_tick_bounds_each_evaluation():
    policy = no_cooldown_policy(max_moves_per_tick=2, max_inflight=100)
    assert len(policy.decide(skew_view(contracts=6), now=0.0)) == 2


# ----------------------------------------------------------------------
# Cooldowns
# ----------------------------------------------------------------------


def test_contract_cooldown_expiry():
    policy = no_cooldown_policy(contract_cooldown=100.0)
    assert len(issue_all(policy, policy.decide(skew_view(at=0.0), now=0.0), 0.0)) == 1
    policy.note_finished(addr(1), True, 10.0)
    # Cooldown runs from issue time, success or not: still blocked...
    assert policy.decide(skew_view(at=50.0), now=50.0) == []
    assert policy.cooldown_remaining(addr(1), 50.0) == pytest.approx(50.0)
    # ...and eligible again once it expires.
    assert len(policy.decide(skew_view(at=150.0), now=150.0)) == 1
    assert policy.cooldown_remaining(addr(1), 150.0) == 0.0


def test_failed_move_cannot_retry_within_cooldown():
    policy = no_cooldown_policy(contract_cooldown=100.0)
    assert issue_all(policy, policy.decide(skew_view(), now=0.0), 0.0)
    policy.note_finished(addr(1), False, 5.0)  # the move FAILED
    assert policy.decide(skew_view(at=6.0), now=6.0) == []


def test_shard_cooldown_lets_windows_refill():
    policy = no_cooldown_policy(shard_cooldown=60.0, max_moves_per_tick=1)
    assert len(policy.decide(skew_view(contracts=3), now=0.0)) == 1
    policy.note_finished(addr(1), True, 1.0)
    # The source shard rests even though more hot contracts remain.
    assert policy.decide(skew_view(contracts=3, at=30.0), now=30.0) == []
    assert len(policy.decide(skew_view(contracts=3, at=61.0), now=61.0)) == 1


# ----------------------------------------------------------------------
# Targeting
# ----------------------------------------------------------------------


def test_min_gap_blocks_marginally_cooler_targets():
    policy = no_cooldown_policy(min_gap=0.3)
    view = make_view({0: 0.9, 1: 0.75}, {addr(1): 1.0}, {addr(1): 0})
    assert policy.decide(view, now=0.0) == []
    assert policy.is_hot(0)  # latched, just nowhere to go


def test_target_pick_is_deterministic_and_spreads():
    candidates = [1, 2, 3]
    picks = {addr(n): spread_target(addr(n), candidates) for n in range(1, 40)}
    # Same address, same answer, forever.
    for address, pick in picks.items():
        assert spread_target(address, candidates) == pick
    # The crowd fans out instead of stampeding onto one shard.
    assert len(set(picks.values())) == 3


def test_decisions_use_owner_keyed_spread():
    policy = no_cooldown_policy(max_moves_per_tick=30, max_inflight=30)
    hotness = {addr(i + 1): 1.0 for i in range(20)}
    placement = {address: 0 for address in hotness}
    view = make_view({0: 0.95, 1: 0.0, 2: 0.0, 3: 0.0}, hotness, placement)
    decisions = policy.decide(view, now=0.0)
    assert len(decisions) == 20
    for decision in decisions:
        assert decision.target_shard == spread_target(
            decision.contract, [1, 2, 3]
        )
    assert len({d.target_shard for d in decisions}) >= 2


def test_ranking_breaks_score_ties_on_address_bytes():
    hotness = {addr(3): 1.0, addr(1): 1.0, addr(2): 1.0}
    placement = {address: 0 for address in hotness}
    view = make_view({0: 0.9, 1: 0.0}, hotness, placement)
    ranked = [address for address, _ in view.hottest_contracts(0)]
    assert ranked == [addr(1), addr(2), addr(3)]


# ----------------------------------------------------------------------
# Validation
# ----------------------------------------------------------------------


@pytest.mark.parametrize(
    "kwargs",
    [
        dict(hot_enter=0.0),
        dict(hot_exit=0.9, hot_enter=0.8),
        dict(hot_exit=-0.1),
        dict(min_gap=0.0),
        dict(contract_cooldown=-1.0),
        dict(shard_cooldown=-1.0),
        dict(max_moves_per_tick=0),
        dict(max_inflight=0),
    ],
)
def test_config_validation(kwargs):
    with pytest.raises(ConfigError):
        RebalancePolicy(**kwargs)


def test_spread_target_requires_candidates():
    with pytest.raises(ValueError):
        spread_target(addr(1), [])
