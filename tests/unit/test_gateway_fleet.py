"""Unit tests for the gateway fleet, subscriptions and SDK ergonomics.

Covers the fleet's coordination guarantees (stable routing, the shared
admission budget, rotating flush order, epoch-guarded restart), the
push subscription path, victim-attributed shed accounting, and the
client-facing ergonomics added with the fleet (``priority=``,
``handle.wait(timeout=)``, keyword-only validated ``Client``).
"""

import pytest

from repro.api import (
    Client,
    ConfigError,
    Gateway,
    GatewayFleet,
    GatewayLimits,
    InProcessTransport,
    Node,
    PriorityClass,
    RequestTimeout,
    ShedByClass,
    SimNetTransport,
    TransferPayload,
    burrow_params,
    sign_transaction,
)
from repro.crypto.keys import KeyPair

ALICE = KeyPair.from_name("fleet-test-alice")
BOB = KeyPair.from_name("fleet-test-bob")


def make_node(**params):
    params.setdefault("max_block_txs", 100)
    node = Node(burrow_params(1, **params), verify_signatures=False)
    node.chain(1).fund({ALICE.address: 10**9, BOB.address: 10**9})
    return node


def transfer(n=1, sender=ALICE, nonce=None):
    return sign_transaction(
        sender, TransferPayload(to=BOB.address, amount=n), nonce=nonce
    )


# ----------------------------------------------------------------------
# Routing
# ----------------------------------------------------------------------


def test_routing_is_stable_and_spreads_clients():
    fleet = GatewayFleet(make_node(), replicas=4)
    routed = {f"client-{i}": fleet.replica_for(f"client-{i}") for i in range(64)}
    # Stable: the same id always lands on the same replica.
    for client_id, replica in routed.items():
        assert fleet.replica_for(client_id) is replica
    # Spread: 64 ids across 4 replicas should touch every replica.
    assert len({r.replica_index for r in routed.values()}) == 4


def test_submissions_route_to_the_pinned_replica():
    fleet = GatewayFleet(make_node(), replicas=4)
    replica = fleet.replica_for("alice")
    fleet.submit(transfer(), 1, client_id="alice")
    assert replica.queue_depth(1) == 1
    for other in fleet.replicas:
        if other is not replica:
            assert other.queue_depth(1) == 0


def test_idempotency_survives_fleet_routing():
    fleet = GatewayFleet(make_node(), replicas=4)
    first = fleet.submit(transfer(), 1, client_id="alice", idempotency_key="k")
    retry = fleet.submit(
        transfer(nonce=9), 1, client_id="alice", idempotency_key="k"
    )
    assert retry.tx_id == first.tx_id  # same replica, same key table


def test_replicas_validated():
    with pytest.raises(ConfigError, match="replicas"):
        GatewayFleet(make_node(), replicas=0)


# ----------------------------------------------------------------------
# The shared admission budget
# ----------------------------------------------------------------------


def test_fleet_flush_respects_one_shared_headroom():
    node = make_node(max_block_txs=5)
    fleet = GatewayFleet(
        node,
        replicas=4,
        limits=GatewayLimits(
            max_queue_depth=64, batch_size=64, mempool_headroom=2
        ),
    )
    # Load every replica's queue well past the shared headroom.
    for i in range(40):
        fleet.submit(transfer(nonce=i), 1, client_id=f"c{i}")
    assert fleet.queue_depth(1) == 40
    # One fleet flush: the *sum* across replicas is capped at
    # headroom × max_block_txs = 10 — not 10 per replica.
    assert fleet.flush() == 10
    assert len(node.chain(1).mempool) == 10
    assert fleet.flush() == 0  # still no headroom anywhere
    node.chain(1).produce_block(5.0)  # commits 5
    assert fleet.flush() == 5


def test_flush_rotation_moves_first_claim():
    node = make_node(max_block_txs=2)
    fleet = GatewayFleet(
        node,
        replicas=2,
        limits=GatewayLimits(
            max_queue_depth=64, batch_size=64, mempool_headroom=1
        ),
    )
    # Both replicas backlogged; headroom admits only 2 per tick.
    for i in range(20):
        fleet.submit(transfer(nonce=i), 1, client_id=f"c{i}")
    assert all(r.queue_depth(1) > 0 for r in fleet.replicas)
    fleet.flush()
    first_tick = [r for _, kind, r, *_ in fleet.admission_log if kind == "flush"]
    node.chain(1).produce_block(5.0)
    fleet.flush()
    second_tick = [
        r for _, kind, r, *_ in fleet.admission_log if kind == "flush"
    ][len(first_tick):]
    # The replica that got the scarce budget changed between ticks.
    assert first_tick and second_tick
    assert first_tick[0] != second_tick[0]


# ----------------------------------------------------------------------
# Lifecycle
# ----------------------------------------------------------------------


def test_fleet_restart_does_not_double_flush():
    node = make_node()
    fleet = GatewayFleet(
        node, replicas=2, limits=GatewayLimits(flush_interval=1.0)
    )
    fleet.start()
    fleet.stop()
    fleet.start()  # a stale tick timer from the first start is pending
    node.run_for(10.0)
    ticks = fleet.telemetry.metrics.counter("gateway_fleet_flush_ticks_total")
    # ~10 ticks from one live loop; a doubled loop would show ~20.
    assert ticks.value <= 12
    fleet.stop()


def test_replica_start_delegates_to_fleet():
    fleet = GatewayFleet(make_node(), replicas=2)
    fleet.replicas[0].start()
    assert fleet.started
    assert all(r.started for r in fleet.replicas)
    fleet.replicas[1].stop()
    assert not fleet.started


def test_node_serve_convenience():
    node = make_node()
    assert isinstance(node.serve(), Gateway)
    fleet = make_node().serve(replicas=3)
    assert isinstance(fleet, GatewayFleet)
    assert len(fleet) == 3


def test_fleet_health_shape():
    fleet = GatewayFleet(make_node(), replicas=2)
    fleet.submit(transfer(), 1, client_id="alice", priority="view")
    health = fleet.health()
    assert health["serving"] is False
    assert health["replicas"] == 2
    assert health["queues"] == {1: 1}
    assert health["classes"][1]["view"] == 1
    assert len(health["per_replica"]) == 2
    assert not health["degraded"]


# ----------------------------------------------------------------------
# Victim-attributed shed accounting
# ----------------------------------------------------------------------


def test_eviction_charges_the_victim_not_the_enqueuer():
    node = make_node()
    fleet = GatewayFleet(node, replicas=1, limits=GatewayLimits(max_queue_depth=2))
    gateway = fleet.replicas[0]
    bulk = [
        gateway.submit(transfer(nonce=i), 1, client_id="hog") for i in range(2)
    ]
    move = gateway.submit(
        transfer(nonce=9), 1, client_id="vip", priority="move"
    )
    # The move was admitted by evicting hog's newest bulk entry.
    assert not move.done
    victim = bulk[1]
    assert isinstance(victim.error, ShedByClass)
    assert victim.error.shed_class == "bulk"
    assert victim.error.shed_client == "hog"
    assert victim.error.chain_id == 1
    shed = gateway.telemetry.metrics.counter(
        "gateway_queue_shed_total", chain=1, cls="bulk"
    )
    assert shed.value == 1
    # No shed charged to the move class that triggered the eviction.
    move_shed = gateway.telemetry.metrics.counter(
        "gateway_queue_shed_total", chain=1, cls="move"
    )
    assert move_shed.value == 0
    # The admission log recorded the shed against the victim too.
    sheds = [rec for rec in fleet.admission_log if rec[1] == "shed"]
    assert sheds and sheds[0][4] == "bulk" and sheds[0][5] == "hog"


def test_refused_newcomer_is_charged_itself():
    node = make_node()
    gateway = Gateway(node, GatewayLimits(max_queue_depth=1))
    gateway.submit(transfer(), 1, client_id="a")
    shed = gateway.submit(transfer(nonce=2), 1, client_id="b")
    assert isinstance(shed.error, ShedByClass)
    assert shed.error.shed_class == "bulk"
    assert shed.error.shed_client == "b"
    counter = gateway.telemetry.metrics.counter(
        "gateway_queue_shed_total", chain=1, cls="bulk"
    )
    assert counter.value == 1


def test_parked_overflow_shed_attributes_the_dropped_entry():
    node = make_node()
    gateway = Gateway(
        node,
        GatewayLimits(max_queue_depth=1, max_blocked=1, shed_policy="block"),
    )
    gateway.submit(transfer(nonce=1), 1, client_id="a")   # queued
    gateway.submit(transfer(nonce=2), 1, client_id="a")   # parked
    shed = gateway.submit(transfer(nonce=3), 1, client_id="b")  # lot full
    assert isinstance(shed.error, ShedByClass)
    # The entry dropped at the parked-overflow path is the arrival
    # itself — charged to its own class/client, not to whoever filled
    # the lot.
    assert shed.error.shed_client == "b"
    counter = gateway.telemetry.metrics.counter(
        "gateway_queue_shed_total", chain=1, cls="bulk"
    )
    assert counter.value == 1


def test_priority_classes_flush_before_bulk():
    node = make_node()
    gateway = Gateway(node, GatewayLimits(max_queue_depth=64))
    bulk_tx = transfer(nonce=1)
    view_tx = transfer(nonce=2)
    move_tx = transfer(nonce=3)
    gateway.submit(bulk_tx, 1, client_id="a")
    gateway.submit(view_tx, 1, client_id="a", priority="view")
    gateway.submit(move_tx, 1, client_id="a", priority=PriorityClass.MOVE)
    gateway.flush()
    flushed = [tx.tx_id for tx in node.chain(1).mempool.take(10)]
    assert flushed == [move_tx.tx_id, view_tx.tx_id, bulk_tx.tx_id]


# ----------------------------------------------------------------------
# Subscriptions
# ----------------------------------------------------------------------


def test_watch_contract_pushes_committed_events():
    node = make_node()
    fleet = GatewayFleet(node, replicas=2)
    client = Client(InProcessTransport(fleet), keypair=ALICE)

    # Watching an address with no contract traffic stays quiet:
    # transfers don't target a contract, so no events are pushed.
    sub = fleet.watch_contract(1, BOB.address, client_id="alice")
    assert sub.active
    fleet.replicas[0].submit(transfer(), 1, client_id="alice")
    fleet.replicas[0].flush()
    node.chain(1).produce_block(5.0)
    assert sub.events == []
    sub.cancel()
    assert not sub.active


def test_watch_contract_streams_calls_and_deploys():
    from repro.lang import MovableContract
    from repro.runtime import Slot, external, register_contract, view

    @register_contract
    class Box(MovableContract):
        value = Slot("value", default=0)

        @external
        def put(self, v):
            self.value = v

        @view
        def get(self):
            return self.value

    node = make_node()
    fleet = GatewayFleet(node, replicas=2)
    client = Client(InProcessTransport(fleet), keypair=ALICE)
    fleet.start()
    box = client.deploy(Box).wait().return_value

    sub = client.watch_contract(box)
    events = []
    sub.on_event(events.append)
    client.call(box, "put", 42).wait()
    assert [e["type"] for e in events] == ["call"]
    assert events[0]["method"] == "put"
    assert events[0]["ok"] is True
    assert sub.events == events
    # A late subscriber replays nothing (no events before it attached),
    # but cancel stops the stream immediately.
    sub.cancel()
    client.call(box, "put", 43).wait()
    assert len(events) == 1
    fleet.stop()


def test_watch_move_streams_stages_then_done():
    params = [
        burrow_params(1, max_block_txs=100),
        burrow_params(2, max_block_txs=100),
    ]
    node = Node(params, verify_signatures=False)
    node.chain(1).fund({ALICE.address: 10**9})

    from repro.lang import MovableContract
    from repro.runtime import Slot, external, register_contract

    @register_contract
    class Roamer(MovableContract):
        ticks = Slot("ticks", default=0)

        @external
        def tick(self):
            self.ticks = self.ticks + 1

    fleet = GatewayFleet(node, replicas=2)
    client = Client(InProcessTransport(fleet), keypair=ALICE)
    fleet.start()
    contract = client.deploy(Roamer, chain=1).wait().return_value

    handle = client.move(contract, target_chain=2, source_chain=1)
    sub = client.watch_move(handle)
    stages = []
    sub.on_event(lambda e: stages.append(e.get("stage", e["type"])))
    assert stages == ["move1"]  # already-traversed stages replay
    handle.wait()
    assert stages[-1] == "done"
    assert stages.index("move1") < stages.index("confirm") < stages.index("move2")
    assert not sub.active  # terminal event closes the subscription
    fleet.stop()


def test_watch_paths_are_rate_limited():
    node = make_node()
    fleet = GatewayFleet(
        node, replicas=1, limits=GatewayLimits(rate_limit=1.0, rate_burst=1)
    )
    fleet.watch_contract(1, BOB.address, client_id="alice")
    from repro.errors import RateLimited

    with pytest.raises(RateLimited):
        fleet.watch_contract(1, BOB.address, client_id="alice")


# ----------------------------------------------------------------------
# Client ergonomics
# ----------------------------------------------------------------------


def test_client_kwargs_are_keyword_only():
    gateway = Gateway(make_node())
    with pytest.raises(TypeError):
        Client(InProcessTransport(gateway), ALICE)  # positional keypair


@pytest.mark.parametrize(
    "kwargs, field",
    [
        ({"keypair": "not-a-keypair"}, "keypair"),
        ({"name": 42}, "name"),
        ({"name": "x", "default_chain": "one"}, "default_chain"),
        ({"name": "x", "default_chain": True}, "default_chain"),
    ],
)
def test_client_validation_names_the_field(kwargs, field):
    gateway = Gateway(make_node())
    with pytest.raises(ConfigError, match=field):
        Client(InProcessTransport(gateway), **kwargs)


def test_priority_plumbs_through_both_transports():
    for transport_cls in (InProcessTransport, SimNetTransport):
        node = make_node()
        gateway = Gateway(node)
        client = Client(transport_cls(gateway), keypair=ALICE)
        gateway.start()
        handle = client.transfer(BOB.address, 1, priority="move")
        client.wait(handle)
        admitted = gateway.telemetry.metrics.counter(
            "gateway_class_admitted_total", chain=1, cls="move"
        )
        assert admitted.value == 1, transport_cls.__name__
        gateway.stop()


def test_handle_wait_returns_receipt_and_times_out():
    node = make_node()
    gateway = Gateway(node)
    client = Client(InProcessTransport(gateway), keypair=ALICE)
    gateway.start()
    receipt = client.transfer(BOB.address, 5).wait()
    assert receipt.success
    gateway.stop()
    # With the gateway stopped nothing flushes: wait's own timeout
    # fires as a typed error.
    stuck = client.transfer(BOB.address, 5)
    with pytest.raises(RequestTimeout):
        stuck.wait(timeout=3.0)


def test_wait_composes_with_request_deadline():
    node = make_node()
    gateway = Gateway(node, GatewayLimits(request_timeout=2.0))
    client = Client(InProcessTransport(gateway), keypair=ALICE)
    # Not started: the admission deadline (2 s) fires before wait's own
    # bound (60 s) and wait re-raises the gateway's typed timeout.
    handle = client.transfer(BOB.address, 1)
    with pytest.raises(RequestTimeout):
        handle.wait(timeout=60.0)
    assert isinstance(handle.error, RequestTimeout)


def test_unbound_handle_wait_is_a_typed_error():
    from repro.errors import GatewayError
    from repro.gateway.handles import RequestHandle

    with pytest.raises(GatewayError, match="not bound"):
        RequestHandle(1).wait()
