"""Unit tests for the ledger self-audit."""

import dataclasses

import pytest

from repro.chain.tx import TransferPayload, sign_transaction
from repro.errors import StateError
from tests.helpers import ALICE, BOB, ManualClock, make_chain_pair, produce, run_tx


@pytest.fixture
def chain():
    burrow, _ethereum = make_chain_pair()
    burrow.fund({ALICE.address: 1_000})
    clock = ManualClock()
    for amount in (1, 2, 3):
        run_tx(burrow, clock, ALICE, TransferPayload(to=BOB.address, amount=amount))
    produce(burrow, clock, 2)
    return burrow


def test_honest_chain_verifies(chain):
    assert chain.verify_chain()


def test_detects_broken_parent_link(chain):
    block = chain.blocks[3]
    chain.blocks[3] = dataclasses.replace(
        block, header=dataclasses.replace(block.header, parent_hash=b"\x00" * 32)
    )
    with pytest.raises(StateError, match="parent link"):
        chain.verify_chain()


def test_detects_tampered_body(chain):
    # Swap a transaction into another block's body: the txs_root breaks.
    donor = chain.blocks[1].transactions
    victim = chain.blocks[2]
    chain.blocks[2] = dataclasses.replace(victim, transactions=list(donor))
    with pytest.raises(StateError, match="txs_root"):
        chain.verify_chain()


def test_detects_height_gap(chain):
    block = chain.blocks[4]
    chain.blocks[4] = dataclasses.replace(
        block,
        header=dataclasses.replace(
            block.header, height=block.header.height + 1,
            parent_hash=chain.blocks[3].hash(),
        ),
    )
    with pytest.raises(StateError, match="height"):
        chain.verify_chain()
