"""Unit tests for header stores and the VS predicate."""

import pytest

from repro.chain.block import GENESIS_PARENT, BlockHeader
from repro.chain.lightclient import HeaderStore, LightClient
from repro.crypto.hashing import keccak
from repro.errors import StateError


def header(chain_id, height, root=None):
    return BlockHeader(
        chain_id=chain_id,
        height=height,
        parent_hash=GENESIS_PARENT,
        state_root=root if root is not None else keccak(f"root-{height}".encode()),
        txs_root=keccak(b"txs"),
        timestamp=float(height),
    )


def test_store_tracks_head():
    store = HeaderStore(chain_id=1, confirmation_depth=2)
    store.add_header(header(1, 0))
    store.add_header(header(1, 5))
    store.add_header(header(1, 3))  # out of order is fine
    assert store.head_height == 5


def test_wrong_chain_header_rejected():
    store = HeaderStore(chain_id=1, confirmation_depth=2)
    with pytest.raises(StateError):
        store.add_header(header(2, 0))


def test_confirmation_depth_gates_trust():
    store = HeaderStore(chain_id=1, confirmation_depth=2)
    root = keccak(b"the-root")
    store.add_header(header(1, 10, root))
    assert store.trusted_state_root(10) is None  # head == height
    store.add_header(header(1, 11))
    assert store.trusted_state_root(10) is None  # only 1 deep
    store.add_header(header(1, 12))
    assert store.trusted_state_root(10) == root  # exactly p deep


def test_unknown_height_untrusted():
    store = HeaderStore(chain_id=1, confirmation_depth=0)
    store.add_header(header(1, 3))
    assert store.trusted_state_root(2) is None


def test_light_client_vs_predicate():
    lc = LightClient()
    lc.observe(chain_id=1, confirmation_depth=1)
    root = keccak(b"r")
    lc.add_header(header(1, 4, root))
    lc.add_header(header(1, 5))
    assert lc.valid_state_root(1, 4, root)
    assert not lc.valid_state_root(1, 4, keccak(b"other"))
    assert not lc.valid_state_root(1, 5, keccak(b"r5"))  # unconfirmed
    assert not lc.valid_state_root(99, 4, root)  # unobserved chain


def test_light_client_rejects_unobserved_ingest():
    lc = LightClient()
    with pytest.raises(StateError):
        lc.add_header(header(1, 0))


def test_observe_is_idempotent():
    lc = LightClient()
    a = lc.observe(1, 2)
    b = lc.observe(1, 2)
    assert a is b
