"""Unit tests for the classed, weighted-fair admission queue.

The invariants under test are the tentpole's core guarantees:

* strict-priority flush: every queued MOVE leaves before any VIEW,
  every VIEW before any BULK;
* class-aware shed: an arrival at the bound evicts the most recent
  entry of the lowest backlogged class strictly below its own, never a
  peer or better class (so within a class admission stays FIFO-honest);
* deficit round-robin across clients: lanes are served ``quantum`` at a
  time in ring order, per-client FIFO order preserved, partial turns
  resuming where they stopped.
"""

import pytest

from repro.gateway.classes import PriorityClass, classify
from repro.gateway.fairqueue import ClassedFairQueue, QueueEntry
from repro.errors import ConfigError


def entry(cls, client="c", tag=None):
    return QueueEntry(tx=tag, handle=None, cls=cls, client=client)


def drain(queue, budget=10**9):
    return [(e.cls, e.client, e.tx) for e in queue.pop(budget)]


# ----------------------------------------------------------------------
# Classification and coercion
# ----------------------------------------------------------------------


def test_priority_class_order_and_labels():
    assert PriorityClass.MOVE < PriorityClass.VIEW < PriorityClass.BULK
    assert [c.label for c in PriorityClass] == ["move", "view", "bulk"]


@pytest.mark.parametrize(
    "value, expected",
    [
        ("move", PriorityClass.MOVE),
        ("VIEW", PriorityClass.VIEW),
        (PriorityClass.BULK, PriorityClass.BULK),
        (0, PriorityClass.MOVE),
        (2, PriorityClass.BULK),
    ],
)
def test_coerce_accepts_members_labels_and_ints(value, expected):
    assert PriorityClass.coerce(value) is expected


@pytest.mark.parametrize("bad", ["urgent", 3, -1, 1.5, None])
def test_coerce_rejects_unknown_priorities_naming_the_field(bad):
    with pytest.raises(ConfigError, match="priority"):
        PriorityClass.coerce(bad)


def test_classify_defaults_moves_high_everything_else_bulk():
    from repro.chain.tx import Move1Payload, TransferPayload, sign_transaction
    from repro.crypto.keys import Address, KeyPair

    kp = KeyPair.from_name("classifier")
    move1 = sign_transaction(
        kp, Move1Payload(contract=kp.address, target_chain=2)
    )
    bulk = sign_transaction(
        kp, TransferPayload(to=Address(b"\x01" * 20), amount=1)
    )
    assert classify(move1) is PriorityClass.MOVE
    assert classify(bulk) is PriorityClass.BULK


# ----------------------------------------------------------------------
# Strict-priority flush
# ----------------------------------------------------------------------


def test_flush_order_is_strict_priority_across_classes():
    queue = ClassedFairQueue(bound=10)
    queue.push(entry(PriorityClass.BULK, tag=1))
    queue.push(entry(PriorityClass.MOVE, tag=2))
    queue.push(entry(PriorityClass.VIEW, tag=3))
    queue.push(entry(PriorityClass.MOVE, tag=4))
    order = [tag for _, _, tag in drain(queue)]
    assert order == [2, 4, 3, 1]
    assert queue.depth == 0


def test_per_client_fifo_within_a_class():
    queue = ClassedFairQueue(bound=10, quantum=8)
    for tag in range(4):
        queue.push(entry(PriorityClass.BULK, client="a", tag=tag))
    drained = [tag for _, _, tag in drain(queue)]
    assert drained == [0, 1, 2, 3]


# ----------------------------------------------------------------------
# Deficit round-robin across clients
# ----------------------------------------------------------------------


def test_drr_interleaves_clients_by_quantum():
    queue = ClassedFairQueue(bound=100, quantum=2)
    for tag in range(6):
        queue.push(entry(PriorityClass.BULK, client="hog", tag=f"h{tag}"))
    for tag in range(2):
        queue.push(entry(PriorityClass.BULK, client="meek", tag=f"m{tag}"))
    drained = [tag for _, _, tag in drain(queue)]
    # hog gets 2, then meek gets its 2, then hog finishes.
    assert drained == ["h0", "h1", "m0", "m1", "h2", "h3", "h4", "h5"]


def test_drr_partial_turn_resumes_same_client():
    queue = ClassedFairQueue(bound=100, quantum=4)
    for tag in range(6):
        queue.push(entry(PriorityClass.BULK, client="a", tag=f"a{tag}"))
    for tag in range(2):
        queue.push(entry(PriorityClass.BULK, client="b", tag=f"b{tag}"))
    # Budget 2 cuts a's quantum mid-turn: its remaining quantum must
    # come first next pop, not forfeit to b.
    first = [tag for _, _, tag in drain(queue, budget=2)]
    second = [tag for _, _, tag in drain(queue, budget=4)]
    assert first == ["a0", "a1"]
    assert second == ["a2", "a3", "b0", "b1"]


def test_drr_full_quantum_rotates_to_back_of_ring():
    queue = ClassedFairQueue(bound=100, quantum=2)
    for tag in range(4):
        queue.push(entry(PriorityClass.BULK, client="a", tag=f"a{tag}"))
    queue.push(entry(PriorityClass.BULK, client="b", tag="b0"))
    # a's full quantum is exhausted exactly at the budget boundary: the
    # turn is complete, so b is served before a's remainder.
    first = [tag for _, _, tag in drain(queue, budget=2)]
    second = [tag for _, _, tag in drain(queue, budget=3)]
    assert first == ["a0", "a1"]
    assert second == ["b0", "a2", "a3"]


# ----------------------------------------------------------------------
# Class-aware shedding
# ----------------------------------------------------------------------


def test_push_at_bound_evicts_lowest_class_below():
    queue = ClassedFairQueue(bound=2)
    queue.push(entry(PriorityClass.VIEW, tag="v"))
    queue.push(entry(PriorityClass.BULK, tag="b"))
    result = queue.push(entry(PriorityClass.MOVE, tag="m"))
    assert result.admitted and result.victim.tx == "b"
    assert queue.depth == 2
    assert [tag for _, _, tag in drain(queue)] == ["m", "v"]


def test_push_refused_when_no_lower_class_backlogged():
    queue = ClassedFairQueue(bound=2)
    queue.push(entry(PriorityClass.MOVE, tag=1))
    queue.push(entry(PriorityClass.BULK, tag=2))
    # A BULK arrival cannot evict its own class (FIFO honesty) and
    # never evicts a better one.
    result = queue.push(entry(PriorityClass.BULK, tag=3))
    assert not result.admitted and result.victim is None
    assert queue.depth == 2


def test_view_evicts_bulk_but_not_view_or_move():
    queue = ClassedFairQueue(bound=2)
    queue.push(entry(PriorityClass.MOVE, tag="m"))
    queue.push(entry(PriorityClass.VIEW, tag="v1"))
    refused = queue.push(entry(PriorityClass.VIEW, tag="v2"))
    assert not refused.admitted
    queue.pop(2)
    queue.push(entry(PriorityClass.BULK, tag="b"))
    queue.push(entry(PriorityClass.VIEW, tag="v3"))
    evicting = queue.push(entry(PriorityClass.VIEW, tag="v4"))
    assert evicting.admitted and evicting.victim.tx == "b"


def test_eviction_takes_tail_of_longest_lane():
    queue = ClassedFairQueue(bound=4)
    queue.push(entry(PriorityClass.BULK, client="small", tag="s0"))
    for tag in range(3):
        queue.push(entry(PriorityClass.BULK, client="big", tag=f"g{tag}"))
    result = queue.push(entry(PriorityClass.MOVE, tag="m"))
    # The client hogging the most slots gives back its *newest* entry.
    assert result.victim.client == "big" and result.victim.tx == "g2"
    survivors = [tag for _, _, tag in drain(queue)]
    assert survivors == ["m", "s0", "g0", "g1"]


def test_eviction_empties_lane_cleanly():
    queue = ClassedFairQueue(bound=1)
    queue.push(entry(PriorityClass.BULK, client="solo", tag="b"))
    result = queue.push(entry(PriorityClass.MOVE, tag="m"))
    assert result.victim.tx == "b"
    assert queue.backlogged_clients(PriorityClass.BULK) == ()
    assert queue.class_depth[PriorityClass.BULK] == 0
    assert [tag for _, _, tag in drain(queue)] == ["m"]


# ----------------------------------------------------------------------
# Accounting
# ----------------------------------------------------------------------


def test_depth_and_peak_accounting():
    queue = ClassedFairQueue(bound=3)
    for tag in range(3):
        queue.push(entry(PriorityClass.BULK, tag=tag))
    assert queue.depth == len(queue) == 3
    assert queue.peak_depth == 3
    queue.pop(2)
    assert queue.depth == 1
    assert queue.peak_depth == 3  # high-water mark survives the drain
    assert queue.depths_by_class() == {"move": 0, "view": 0, "bulk": 1}
    assert queue.class_peak[PriorityClass.BULK] == 3
