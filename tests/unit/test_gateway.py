"""Unit tests for the request gateway: bounds, sheds, retries, limits.

Everything here drives the gateway synchronously — manual ``flush()``
calls and manual block production — so each admission decision is
observable in isolation.  The end-to-end behaviours (64-client
saturation, byte-identical determinism) live in
``tests/property/test_gateway_determinism.py``.
"""

import pytest

from repro.api import (
    Client,
    ConfigError,
    Gateway,
    GatewayLimits,
    InProcessTransport,
    InvalidRequest,
    Node,
    Overloaded,
    ShedByClass,
    RateLimited,
    RequestTimeout,
    TransferPayload,
    UnknownChainError,
    burrow_params,
    sign_transaction,
)
from repro.crypto.keys import KeyPair
from repro.gateway.limits import TokenBucket

ALICE = KeyPair.from_name("gw-test-alice")
BOB = KeyPair.from_name("gw-test-bob")


def make_node(**params):
    params.setdefault("max_block_txs", 100)
    node = Node(burrow_params(1, **params), verify_signatures=False)
    node.chain(1).fund({ALICE.address: 10**9, BOB.address: 10**9})
    return node


def transfer(n=1, sender=ALICE, nonce=None):
    return sign_transaction(
        sender, TransferPayload(to=BOB.address, amount=n), nonce=nonce
    )


# ----------------------------------------------------------------------
# Queue bounds and shed policies
# ----------------------------------------------------------------------


def test_queue_bound_sheds_typed_queue_full():
    node = make_node()
    gateway = Gateway(node, GatewayLimits(max_queue_depth=4))
    handles = [
        gateway.submit(transfer(nonce=i), 1, client_id="a") for i in range(10)
    ]
    admitted = [h for h in handles if not h.done]
    shed = [h for h in handles if h.done]
    assert len(admitted) == 4 and len(shed) == 6
    for handle in shed:
        with pytest.raises(ShedByClass) as excinfo:
            handle.result()
        assert excinfo.value.code == "queue_full"
        assert isinstance(excinfo.value, Overloaded)
    assert gateway.peak_queue_depth[1] == 4


def test_block_policy_parks_then_sheds():
    node = make_node()
    gateway = Gateway(
        node, GatewayLimits(max_queue_depth=2, max_blocked=3, shed_policy="block")
    )
    handles = [
        gateway.submit(transfer(nonce=i), 1, client_id="a") for i in range(8)
    ]
    shed = [h for h in handles if h.done]
    assert len(shed) == 3  # 2 queued + 3 parked, the rest shed
    assert gateway.queue_depth(1) == 5
    # A flush drains queue and promotes the parked requests FIFO.
    assert gateway.flush() == 5
    assert gateway.queue_depth(1) == 0


def test_flush_preserves_admission_order():
    node = make_node()
    gateway = Gateway(node, GatewayLimits(max_queue_depth=64))
    txs = [transfer(nonce=i) for i in range(10)]
    for tx in txs:
        gateway.submit(tx, 1)
    gateway.flush()
    chain = node.chain(1)
    assert [tx.tx_id for tx in chain.mempool.take(100)] == [tx.tx_id for tx in txs]


def test_mempool_headroom_caps_flush():
    node = make_node(max_block_txs=5)
    gateway = Gateway(
        node, GatewayLimits(max_queue_depth=64, batch_size=64, mempool_headroom=2)
    )
    for i in range(30):
        gateway.submit(transfer(nonce=i), 1)
    # Only headroom×max_block_txs = 10 may sit in the mempool at once.
    assert gateway.flush() == 10
    assert len(node.chain(1).mempool) == 10
    assert gateway.flush() == 0  # still no headroom
    node.chain(1).produce_block(5.0)  # commits 5
    assert gateway.flush() == 5


def test_resolution_to_receipt():
    node = make_node()
    gateway = Gateway(node)
    handle = gateway.submit(transfer(), 1)
    assert not handle.done and handle.status == "queued"
    gateway.flush()
    assert handle.status == "submitted"
    node.chain(1).produce_block(5.0)
    assert handle.ok
    assert handle.result().success
    assert handle.result().tx_id == handle.tx_id


# ----------------------------------------------------------------------
# Rate limiting
# ----------------------------------------------------------------------


def test_token_bucket_refills_on_simulated_time():
    bucket = TokenBucket(rate=2.0, burst=2, now=0.0)
    assert bucket.take(0.0) and bucket.take(0.0)
    assert not bucket.take(0.0)
    assert bucket.take(1.0)  # 2 tokens/s × 1 s refill
    assert bucket.take(1.0)
    assert not bucket.take(1.0)


def test_rate_limit_is_per_client():
    node = make_node()
    gateway = Gateway(
        node, GatewayLimits(rate_limit=1.0, rate_burst=2, max_queue_depth=64)
    )
    a = [gateway.submit(transfer(nonce=i), 1, client_id="a") for i in range(4)]
    b = [gateway.submit(transfer(nonce=10 + i), 1, client_id="b") for i in range(2)]
    assert [h.done for h in a] == [False, False, True, True]
    assert all(not h.done for h in b)  # b has its own bucket
    with pytest.raises(RateLimited) as excinfo:
        a[2].result()
    assert excinfo.value.code == "rate_limited"
    assert isinstance(excinfo.value, Overloaded)


# ----------------------------------------------------------------------
# Deadlines and idempotent retries
# ----------------------------------------------------------------------


def test_request_timeout_fires_with_typed_error():
    node = make_node()
    gateway = Gateway(node, GatewayLimits(request_timeout=3.0))
    handle = gateway.submit(transfer(), 1)
    node.sim.run(until=10.0)  # gateway never started: nothing flushes
    assert handle.done
    with pytest.raises(RequestTimeout) as excinfo:
        handle.result()
    assert excinfo.value.code == "timeout"


def test_idempotent_retry_attaches_to_pending_original():
    node = make_node()
    gateway = Gateway(node)
    first = gateway.submit(transfer(), 1, client_id="a", idempotency_key="k")
    retry = gateway.submit(transfer(nonce=99), 1, client_id="a", idempotency_key="k")
    assert retry.tx_id == first.tx_id  # the retry's own tx was dropped
    gateway.flush()
    node.chain(1).produce_block(5.0)
    assert first.ok and retry.ok
    assert retry.result().tx_id == first.result().tx_id


def test_idempotent_retry_after_resolution_gets_original_receipt():
    node = make_node()
    gateway = Gateway(node)
    first = gateway.submit(transfer(), 1, client_id="a", idempotency_key="k")
    gateway.flush()
    node.chain(1).produce_block(5.0)
    assert first.ok
    retry = gateway.submit(transfer(nonce=99), 1, client_id="a", idempotency_key="k")
    assert retry.ok
    assert retry.result() is first.result()


def test_shed_retry_with_same_key_is_readmitted():
    node = make_node()
    gateway = Gateway(node, GatewayLimits(max_queue_depth=1))
    gateway.submit(transfer(), 1, client_id="a", idempotency_key="k1")
    shed = gateway.submit(transfer(nonce=2), 1, client_id="a", idempotency_key="k2")
    assert isinstance(shed.error, ShedByClass)
    gateway.flush()  # frees the queue slot, as the shed message promises
    retry = gateway.submit(transfer(nonce=2), 1, client_id="a", idempotency_key="k2")
    assert not retry.done  # fresh admission, not a mirror of the shed
    gateway.flush()
    node.chain(1).produce_block(5.0)
    assert retry.ok


def test_rate_limited_retry_with_same_key_is_readmitted():
    node = make_node()
    gateway = Gateway(node, GatewayLimits(rate_limit=1.0, rate_burst=1))
    gateway.submit(transfer(), 1, client_id="a", idempotency_key="k1")
    limited = gateway.submit(transfer(nonce=2), 1, client_id="a", idempotency_key="k2")
    assert isinstance(limited.error, RateLimited)
    node.sim.run(until=2.0)  # the bucket refills
    retry = gateway.submit(transfer(nonce=2), 1, client_id="a", idempotency_key="k2")
    assert not retry.done


def test_timeout_retry_reattaches_to_eventual_receipt():
    node = make_node()
    gateway = Gateway(node, GatewayLimits(request_timeout=2.0))
    first = gateway.submit(transfer(), 1, client_id="a", idempotency_key="k")
    node.sim.run(until=5.0)  # never flushed: the deadline fires
    assert isinstance(first.error, RequestTimeout)
    retry = gateway.submit(transfer(nonce=9), 1, client_id="a", idempotency_key="k")
    assert not retry.done
    gateway.flush()  # the original transaction is still submitted...
    node.chain(1).produce_block(node.now)
    assert retry.ok  # ...and the retry resolves to its receipt
    assert retry.result().tx_id == first.tx_id
    assert first.receipt is retry.result()  # late receipt recorded on the original


def test_timeout_retry_after_late_receipt_resolves_immediately():
    node = make_node()
    gateway = Gateway(node, GatewayLimits(request_timeout=2.0))
    first = gateway.submit(transfer(), 1, client_id="a", idempotency_key="k")
    node.sim.run(until=5.0)
    gateway.flush()
    node.chain(1).produce_block(node.now)
    assert isinstance(first.error, RequestTimeout) and first.receipt is not None
    retry = gateway.submit(transfer(nonce=9), 1, client_id="a", idempotency_key="k")
    assert retry.ok
    assert retry.result() is first.receipt


def test_idempotency_records_evicted_after_retention():
    node = make_node()
    gateway = Gateway(node, GatewayLimits(idempotency_retention=10.0))
    first = gateway.submit(transfer(), 1, client_id="a", idempotency_key="k")
    gateway.flush()
    node.chain(1).produce_block(1.0)
    assert first.ok and ("a", "k") in gateway._by_key
    node.sim.run(until=5.0)
    assert ("a", "k") in gateway._by_key  # inside the replay window
    node.sim.run(until=20.0)
    assert ("a", "k") not in gateway._by_key  # evicted: table stays bounded
    retry = gateway.submit(transfer(nonce=2), 1, client_id="a", idempotency_key="k")
    assert retry.tx_id != first.tx_id  # outside the window: fresh admission


def test_token_buckets_are_lru_capped():
    node = make_node()
    gateway = Gateway(node, GatewayLimits(rate_limit=100.0, max_clients=4))
    for i in range(10):
        gateway.submit(transfer(nonce=i), 1, client_id=f"c{i}")
    assert set(gateway._buckets) == {"c6", "c7", "c8", "c9"}


def test_idempotency_keys_are_scoped_per_client():
    node = make_node()
    gateway = Gateway(node)
    a = gateway.submit(transfer(), 1, client_id="a", idempotency_key="k")
    b = gateway.submit(transfer(nonce=2), 1, client_id="b", idempotency_key="k")
    assert a.tx_id != b.tx_id
    assert gateway.queue_depth(1) == 2


# ----------------------------------------------------------------------
# Error taxonomy at the boundary
# ----------------------------------------------------------------------


def test_unknown_chain_is_typed():
    gateway = Gateway(make_node())
    handle = gateway.submit(transfer(), 7)
    with pytest.raises(UnknownChainError) as excinfo:
        handle.result()
    assert excinfo.value.code == "unknown_chain"


def test_malformed_request_maps_to_invalid_request():
    gateway = Gateway(make_node())
    handle = gateway.submit(TransferPayload(to=BOB.address, amount=1), 1)
    with pytest.raises(InvalidRequest) as excinfo:
        handle.result()
    assert excinfo.value.code == "invalid_request"


def test_rejections_carry_machine_readable_dict():
    gateway = Gateway(make_node(), GatewayLimits(max_queue_depth=1))
    gateway.submit(transfer(), 1)
    shed = gateway.submit(transfer(nonce=2), 1)
    payload = shed.error.to_dict()
    assert payload["code"] == "queue_full"
    assert payload["message"]


# ----------------------------------------------------------------------
# Configuration validation
# ----------------------------------------------------------------------


@pytest.mark.parametrize(
    "kwargs",
    [
        {"max_queue_depth": 0},
        {"max_blocked": -1},
        {"batch_size": 0},
        {"flush_interval": 0.0},
        {"rate_limit": -1.0},
        {"rate_burst": 0},
        {"request_timeout": -5.0},
        {"mempool_headroom": 0},
        {"shed_policy": "panic"},
        {"idempotency_retention": -1.0},
        {"max_clients": 0},
        {"drr_quantum": 0},
    ],
)
def test_gateway_limits_validation(kwargs):
    with pytest.raises(ConfigError):
        GatewayLimits(**kwargs)


@pytest.mark.parametrize(
    "kwargs",
    [
        {"block_interval": 0.0},
        {"block_interval": -5.0},
        {"confirmation_depth": -1},
        {"state_root_lag": -1},
        {"max_block_txs": 0},
        {"validator_count": 0},
        {"gas_price": -1},
        {"executor_workers": -1},
        {"snapshot_retention": -2},
    ],
)
def test_chain_params_validation(kwargs):
    with pytest.raises(ConfigError):
        burrow_params(1, **kwargs)


def test_chain_params_error_names_the_field():
    with pytest.raises(ConfigError, match="block_interval"):
        burrow_params(1, block_interval=-1.0)


# ----------------------------------------------------------------------
# Restart safety
# ----------------------------------------------------------------------


def test_node_restart_does_not_double_block_production():
    node = make_node(block_interval=1.0)
    node.start()
    node.run_for(5.0)
    first_window = node.chain(1).height
    assert first_window > 0
    node.stop()  # a stale tick timer stays pending...
    node.start()  # ...and must not spawn a second production loop
    node.run_for(5.0)
    assert node.chain(1).height - first_window == first_window


def test_gateway_restart_keeps_single_flush_loop():
    node = make_node()
    gateway = Gateway(node)
    times = []
    inner = gateway.flush
    gateway.flush = lambda: (times.append(node.now), inner())[1]
    gateway.start()
    node.run_for(1.0)
    gateway.stop()
    gateway.start()  # a stale flush timer is still pending
    node.run_for(1.0)
    # Two live loops would flush twice at the same simulated instant.
    assert times and len(times) == len(set(times))


# ----------------------------------------------------------------------
# Client SDK plumbing
# ----------------------------------------------------------------------


def test_client_wait_resolves_through_running_node():
    node = make_node()
    gateway = Gateway(node)
    client = Client(InProcessTransport(gateway), keypair=ALICE)
    gateway.start()
    receipt = client.wait(client.transfer(BOB.address, 123))
    assert receipt.success
    assert node.chain(1).balance_of(BOB.address) == 10**9 + 123


def test_client_wait_times_out_typed():
    node = make_node()
    gateway = Gateway(node)  # never started: handle can't resolve
    client = Client(InProcessTransport(gateway), keypair=ALICE)
    handle = client.transfer(BOB.address, 1)
    with pytest.raises(RequestTimeout):
        client.wait(handle, max_time=5.0)
