"""Unit tests for the gas schedule and meter."""

import pytest

from repro.errors import OutOfGas
from repro.vm.gas import BURROW_SCHEDULE, ETHEREUM_SCHEDULE, GasMeter, GasSchedule


def test_paper_quoted_constants():
    # Section VI: "a sum between two integers costs 3 gas, while
    # creating a new smart contract costs 32000 gas".
    assert ETHEREUM_SCHEDULE.verylow == 3
    assert ETHEREUM_SCHEDULE.create == 32_000
    assert ETHEREUM_SCHEDULE.tx_base == 21_000
    assert ETHEREUM_SCHEDULE.sstore_set == 20_000


def test_burrow_charges_no_code_deposit():
    assert BURROW_SCHEDULE.code_deposit_per_byte == 0
    assert BURROW_SCHEDULE.code_deposit(5_000) == 0
    assert ETHEREUM_SCHEDULE.code_deposit(5_000) == 1_000_000


def test_sha3_cost_by_word():
    s = ETHEREUM_SCHEDULE
    assert s.sha3(0) == 30
    assert s.sha3(1) == 36
    assert s.sha3(32) == 36
    assert s.sha3(33) == 42


def test_proof_verification_cost_scales():
    s = ETHEREUM_SCHEDULE
    small = s.proof_verification(100)
    large = s.proof_verification(10_000)
    assert large > small
    assert small >= s.proof_verify_base


def test_log_cost():
    s = ETHEREUM_SCHEDULE
    assert s.log(0) == 375
    assert s.log(10) == 375 + 80


def test_meter_tracks_categories():
    meter = GasMeter(schedule=ETHEREUM_SCHEDULE)
    meter.charge(100, "a")
    meter.charge(50, "a")
    meter.charge(25, "b")
    assert meter.used == 175
    assert meter.by_category == {"a": 150, "b": 25}


def test_meter_limit_enforced_and_remaining():
    meter = GasMeter(limit=100, schedule=ETHEREUM_SCHEDULE)
    meter.charge(60)
    assert meter.remaining == 40
    with pytest.raises(OutOfGas):
        meter.charge(41)
    # Usage recorded even on the failing charge (EVM: gas is consumed).
    assert meter.used == 101
    assert meter.remaining == 0


def test_unlimited_meter():
    meter = GasMeter(schedule=ETHEREUM_SCHEDULE)
    assert meter.remaining is None
    meter.charge(10**9)  # no limit, no raise


def test_negative_charge_rejected():
    with pytest.raises(ValueError):
        GasMeter(schedule=ETHEREUM_SCHEDULE).charge(-1)


def test_snapshot_for_phase_metering():
    meter = GasMeter(schedule=ETHEREUM_SCHEDULE)
    meter.charge(100)
    before = meter.snapshot()
    meter.charge(42)
    assert meter.snapshot() - before == 42


def test_dedup_flag_defaults_off():
    assert not ETHEREUM_SCHEDULE.code_deposit_dedup
    custom = GasSchedule(code_deposit_dedup=True)
    assert custom.code_deposit_dedup
