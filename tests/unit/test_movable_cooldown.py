"""Listing 1's move cool-down ("the contract must remain at least three
days in the target blockchain before moved again")."""

import pytest

from repro.chain.tx import Move1Payload
from repro.lang.movable import MovableContract
from repro.runtime import MapSlot, external, register_contract
from tests.helpers import ALICE, ManualClock, full_move, make_chain_pair, produce, run_tx


@register_contract
class CooledContract(MovableContract):
    """Moves at most once per 100 simulated seconds."""

    MOVE_COOLDOWN = 100.0

    values = MapSlot(int, int)

    @external
    def put(self, key, value):
        """Store a value."""
        self.values[key] = value


def deploy(chain, clock):
    from repro.chain.tx import DeployPayload

    receipt = run_tx(chain, clock, ALICE, DeployPayload(code_hash=CooledContract.CODE_HASH))
    assert receipt.success, receipt.error
    return receipt.return_value


def test_first_move_is_always_allowed():
    burrow, ethereum = make_chain_pair()
    clock = ManualClock()
    addr = deploy(burrow, clock)
    assert full_move(burrow, ethereum, clock, ALICE, addr).success


def test_second_move_respects_cooldown():
    burrow, ethereum = make_chain_pair()
    clock = ManualClock()
    addr = deploy(burrow, clock)
    assert full_move(burrow, ethereum, clock, ALICE, addr).success
    # Immediately trying to move back: the moveFinish stamp throttles it.
    refused = run_tx(
        ethereum, clock, ALICE, Move1Payload(contract=addr, target_chain=burrow.chain_id)
    )
    assert not refused.success
    assert "cool-down" in refused.error
    # After the cool-down elapses (5 s blocks), the move goes through.
    produce(ethereum, clock, 21)
    assert full_move(ethereum, burrow, clock, ALICE, addr).success
