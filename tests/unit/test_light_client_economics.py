"""The size assumptions behind light clients (paper §II/§III-A).

Headers must be constant-size hundreds of bytes and a small fraction of
full block bodies; Merkle proofs must be logarithmic in state size —
what makes interoperability affordable for non-archival peers.
"""

import pytest

from repro.chain.tx import CallPayload, TransferPayload, sign_transaction
from repro.crypto.keys import KeyPair
from tests.helpers import ALICE, BOB, ManualClock, StoreContract, deploy_store, make_chain_pair, produce, run_tx


def test_header_size_is_constant_hundreds_of_bytes():
    burrow, _ethereum = make_chain_pair()
    clock = ManualClock()
    produce(burrow, clock, 3)
    sizes = {block.header.size_bytes() for block in burrow.blocks[1:]}
    assert len(sizes) <= 2  # constant modulo the proposer label
    assert all(100 <= size <= 400 for size in sizes)


def test_header_is_small_fraction_of_full_block():
    # A full block (hundreds of transfer transactions): the header must
    # be on the order of the paper's ~2 % figure.
    burrow, _ethereum = make_chain_pair()
    burrow.fund({ALICE.address: 10**9})
    clock = ManualClock()
    for _ in range(130):
        burrow.submit(sign_transaction(ALICE, TransferPayload(to=BOB.address, amount=1)))
    clock.tick()
    block = burrow.produce_block(clock.now)
    ratio = block.header.size_bytes() / block.body_size_bytes()
    assert len(block.transactions) == 130
    assert ratio < 0.05  # header « body


def test_account_proof_grows_logarithmically():
    # Populate a chain with many accounts; single-account proofs must
    # stay logarithmic in the state size.
    burrow, _ethereum = make_chain_pair()
    clock = ManualClock()
    addr = deploy_store(burrow, clock, ALICE)
    run_tx(burrow, clock, ALICE, CallPayload(addr, "put", (1, 1)))
    small_proof = None
    for population in (64, 512):
        burrow.fund({
            KeyPair.from_name(f"filler-{population}-{i}").address: 1
            for i in range(population)
        })
        produce(burrow, clock)
        proof = burrow.state.prove_account(addr)
        if small_proof is None:
            small_proof = len(proof)
        else:
            # 8x the accounts adds only ~3 levels to the path.
            assert len(proof) <= small_proof + 6
    assert small_proof >= 1


def test_move_bundle_size_dominated_by_state_not_proof():
    # For a Store-100, the bundle's bytes are mostly the storage being
    # moved, not Merkle overhead — the protocol ships state, not trees.
    from repro.apps.store import StateStore
    from repro.chain.tx import DeployPayload, Move1Payload

    burrow, ethereum = make_chain_pair()
    clock = ManualClock()
    store = run_tx(
        burrow, clock, ALICE, DeployPayload(code_hash=StateStore.CODE_HASH, args=(100,))
    ).return_value
    receipt = run_tx(
        burrow, clock, ALICE, Move1Payload(contract=store, target_chain=ethereum.chain_id)
    )
    while burrow.height < burrow.proof_ready_height(receipt.block_height):
        produce(burrow, clock)
    bundle = burrow.prove_contract_at(store, receipt.block_height)
    storage_bytes = sum(len(k) + len(v) for k, v in bundle.storage.items())
    proof_overhead = bundle.account_proof.size_bytes()
    assert storage_bytes + len(bundle.code) > 2 * proof_overhead
