"""Unit tests for header relays (including delayed delivery)."""

import pytest

from repro.chain.chain import Chain
from repro.chain.params import burrow_params
from repro.core.registry import ChainRegistry
from repro.ibc.headers import HeaderRelay, connect_chains
from repro.net.sim import Simulator


def make_pair():
    registry = ChainRegistry()
    a = Chain(burrow_params(1), registry)
    b = Chain(burrow_params(2), registry)
    return a, b


def test_instant_relay_backfills_genesis():
    a, b = make_pair()
    relay = HeaderRelay(a, [b])
    store = b.light_client.store_for(a.chain_id)
    assert store is not None
    assert store.head_height == 0  # genesis backfilled
    assert relay.headers_relayed == 1


def test_instant_relay_streams_new_blocks():
    a, b = make_pair()
    HeaderRelay(a, [b])
    a.produce_block(5.0)
    a.produce_block(10.0)
    store = b.light_client.store_for(a.chain_id)
    assert store.head_height == 2
    assert store.header_at(1).timestamp == 5.0


def test_delayed_relay_delivers_after_sim_delay():
    sim = Simulator(seed=1)
    a, b = make_pair()
    HeaderRelay(a, [b], sim=sim, delay=2.0)
    sim.run(until=3.0)  # flush the backfilled genesis delivery
    a.produce_block(5.0)
    store = b.light_client.store_for(a.chain_id)
    assert store.head_height == 0  # not yet delivered
    sim.run(until=10.0)
    assert store.head_height == 1


def test_connect_chains_is_a_full_mesh():
    registry = ChainRegistry()
    chains = [Chain(burrow_params(i), registry) for i in (1, 2, 3)]
    relays = connect_chains(chains)
    assert len(relays) == 3
    for chain in chains:
        for other in chains:
            if chain is other:
                continue
            assert chain.light_client.store_for(other.chain_id) is not None
    # Registry carries everyone's agreed parameters.
    for chain in chains:
        for other in chains:
            assert other.chain_id in chain.registry


def test_relay_counts_headers():
    a, b = make_pair()
    relay = HeaderRelay(a, [b])
    for i in range(1, 4):
        a.produce_block(5.0 * i)
    assert relay.headers_relayed == 4  # genesis + 3
