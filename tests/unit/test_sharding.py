"""Unit tests for hash partitioning and the sharded cluster."""

from collections import Counter

import pytest

from repro.crypto.keys import KeyPair
from repro.sharding.cluster import ShardedCluster
from repro.sharding.partition import shard_of, shard_of_int


def test_shard_of_is_deterministic():
    addr = KeyPair.from_name("x").address
    assert shard_of(addr, 4) == shard_of(addr, 4)


def test_shard_of_in_range_and_balanced():
    counts = Counter(
        shard_of(KeyPair.from_name(f"user-{i}").address, 8) for i in range(800)
    )
    assert set(counts) <= set(range(8))
    # Hash partitioning "ensures a good balance among shards".
    assert min(counts.values()) > 60
    assert max(counts.values()) < 140


def test_shard_of_int_balanced():
    counts = Counter(shard_of_int(i, 4) for i in range(400))
    assert set(counts) == set(range(4))
    assert min(counts.values()) > 60


def test_invalid_shard_count():
    addr = KeyPair.from_name("x").address
    with pytest.raises(ValueError):
        shard_of(addr, 0)
    with pytest.raises(ValueError):
        shard_of_int(1, -1)


def test_cluster_builds_n_shards():
    cluster = ShardedCluster(num_shards=4, seed=1)
    assert len(cluster.shards) == 4
    assert len(cluster.engines) == 4
    ids = [shard.chain_id for shard in cluster.shards]
    assert ids == [1, 2, 3, 4]


def test_cluster_shards_observe_each_other():
    cluster = ShardedCluster(num_shards=3, seed=1)
    for shard in cluster.shards:
        for other in cluster.shards:
            if shard is other:
                continue
            assert shard.light_client.store_for(other.chain_id) is not None


def test_cluster_produces_blocks_everywhere():
    cluster = ShardedCluster(num_shards=2, seed=1)
    cluster.start()
    cluster.run(until=30.0)
    assert all(shard.height >= 4 for shard in cluster.shards)
    # Headers flowed to peers.
    a, b = cluster.shards
    assert a.light_client.store_for(b.chain_id).head_height >= 4


def test_cluster_submit_reaches_shard():
    from repro.chain.tx import TransferPayload, sign_transaction

    cluster = ShardedCluster(num_shards=2, seed=1)
    alice, bob = KeyPair.from_name("a"), KeyPair.from_name("b")
    cluster.fund_all({alice.address: 100})
    cluster.start()
    tx = sign_transaction(alice, TransferPayload(to=bob.address, amount=5))
    cluster.submit(1, tx)
    cluster.run(until=20.0)
    assert cluster.shard(1).receipts[tx.tx_id].success
    assert cluster.shard(1).balance_of(bob.address) == 5
    assert cluster.shard(0).balance_of(bob.address) == 0


def test_locate_contract_across_shards():
    from repro.chain.tx import DeployPayload, sign_transaction
    from tests.helpers import StoreContract

    cluster = ShardedCluster(num_shards=2, seed=1)
    alice = KeyPair.from_name("a")
    cluster.start()
    tx = sign_transaction(alice, DeployPayload(code_hash=StoreContract.CODE_HASH))
    cluster.submit(1, tx)
    cluster.run(until=20.0)
    addr = cluster.shard(1).receipts[tx.tx_id].return_value
    assert cluster.locate_contract(addr) == 1
    missing = KeyPair.from_name("nothing").address
    assert cluster.locate_contract(missing) is None
