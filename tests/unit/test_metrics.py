"""Unit tests for collectors, CDFs and report rendering."""

import pytest

from repro.metrics.cdf import cdf_points, percentile
from repro.metrics.collector import LatencySampler, ThroughputCollector
from repro.metrics.report import format_series, format_table


def test_throughput_rate_and_total():
    tc = ThroughputCollector()
    for t in [1.0, 2.0, 2.5, 9.0]:
        tc.record(t)
    assert tc.total == 4
    assert tc.rate(0.0, 10.0) == pytest.approx(0.4)
    assert tc.rate(0.0, 5.0) == pytest.approx(0.6)
    assert tc.rate(5.0, 5.0) == 0.0


def test_throughput_series_buckets():
    tc = ThroughputCollector()
    tc.record(1.0, count=5)
    tc.record(12.0, count=10)
    series = tc.series(bucket=10.0, end=30.0)
    assert series == [(0.0, 0.5), (10.0, 1.0), (20.0, 0.0)]


def test_throughput_empty_series():
    assert ThroughputCollector().series() == []


def test_latency_sampler_kinds_and_mean():
    ls = LatencySampler()
    ls.add("single", 1.0)
    ls.add("single", 3.0)
    ls.add("cross", 10.0)
    assert set(ls.kinds()) == {"single", "cross"}
    assert ls.mean("single") == 2.0
    assert ls.count("cross") == 1
    assert sorted(ls.all_samples()) == [1.0, 3.0, 10.0]


def test_latency_sampler_rejects_negative():
    with pytest.raises(ValueError):
        LatencySampler().add("x", -1.0)


def test_latency_mean_of_unknown_kind():
    with pytest.raises(ValueError):
        LatencySampler().mean("nope")


def test_cdf_points_monotonic_and_complete():
    samples = [5.0, 1.0, 3.0, 2.0, 4.0]
    points = cdf_points(samples)
    values = [v for v, _f in points]
    fractions = [f for _v, f in points]
    assert values == sorted(values)
    assert fractions[-1] == 1.0
    assert all(0 < f <= 1 for f in fractions)


def test_cdf_points_downsampled():
    points = cdf_points(list(range(1000)), points=50)
    assert len(points) <= 52
    assert points[-1][1] == 1.0


def test_cdf_empty():
    assert cdf_points([]) == []


def test_percentile():
    samples = list(range(1, 101))
    assert percentile(samples, 0.5) == 51
    assert percentile(samples, 0.0) == 1
    assert percentile(samples, 1.0) == 100
    with pytest.raises(ValueError):
        percentile([], 0.5)
    with pytest.raises(ValueError):
        percentile([1.0], 1.5)


def test_format_table_aligns():
    text = format_table(["a", "bbbb"], [[1, 2.5], [333, 4]])
    lines = text.splitlines()
    assert len(lines) == 4
    assert "333" in lines[3]
    assert "2.50" in lines[2]


def test_format_series_renders_bars():
    text = format_series([(0.0, 1.0), (10.0, 2.0)], y_label="tx/s")
    assert "tx/s" in text
    assert text.count("#") > 0
    assert format_series([]) == "(empty series)"
