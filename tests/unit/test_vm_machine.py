"""Unit tests for the bytecode interpreter, including OP_MOVE."""

import pytest

from repro.crypto.hashing import keccak
from repro.errors import OutOfGas
from repro.vm.assembler import assemble
from repro.vm.gas import ETHEREUM_SCHEDULE, GasMeter
from repro.vm.machine import Machine, MemoryContext


@pytest.fixture
def machine():
    return Machine(ETHEREUM_SCHEDULE)


def run(machine, source, ctx=None, meter=None):
    ctx = ctx or MemoryContext()
    result = machine.execute(assemble(source), ctx, meter)
    return result, ctx


def word(result):
    return int.from_bytes(result.return_data, "big")


def ret(expr_source):
    """Wrap: compute a value on the stack, then return it as one word.

    MSTORE pops (offset, value) and RETURN pops (offset, size), so the
    operand pushed last sits on top and is popped first.
    """
    return expr_source + "\nPUSH1 0\nMSTORE\nPUSH1 32\nPUSH1 0\nRETURN"


@pytest.mark.parametrize(
    "source,expected",
    [
        ("PUSH1 2\nPUSH1 3\nADD", 5),
        ("PUSH1 2\nPUSH1 3\nMUL", 6),
        ("PUSH1 3\nPUSH1 10\nSUB", 7),  # SUB pops a then b, computes a-b
        ("PUSH1 3\nPUSH1 12\nDIV", 4),
        ("PUSH1 0\nPUSH1 12\nDIV", 0),  # div by zero yields 0
        ("PUSH1 5\nPUSH1 12\nMOD", 2),
        ("PUSH1 0\nPUSH1 12\nMOD", 0),
        ("PUSH1 3\nPUSH1 2\nEXP", 8),  # EXP pops base then exponent? a=2,b=3 -> 8
        ("PUSH1 9\nPUSH1 4\nLT", 1),
        ("PUSH1 4\nPUSH1 9\nGT", 1),
        ("PUSH1 7\nPUSH1 7\nEQ", 1),
        ("PUSH1 0\nISZERO", 1),
        ("PUSH1 5\nISZERO", 0),
        ("PUSH1 12\nPUSH1 10\nAND", 8),
        ("PUSH1 12\nPUSH1 10\nOR", 14),
        ("PUSH1 12\nPUSH1 10\nXOR", 6),
    ],
)
def test_arithmetic_and_logic(machine, source, expected):
    result, _ = run(machine, ret(source))
    assert result.success, result.error
    assert word(result) == expected


def test_not_is_bitwise_complement(machine):
    result, _ = run(machine, ret("PUSH1 0\nNOT"))
    assert word(result) == (1 << 256) - 1


def test_overflow_wraps_at_256_bits(machine):
    source = ret("PUSH32 " + hex((1 << 256) - 1) + "\nPUSH1 1\nADD")
    result, _ = run(machine, source)
    assert word(result) == 0


def test_sstore_and_sload(machine):
    source = """
        PUSH1 42
        PUSH1 7
        SSTORE
        PUSH1 7
        SLOAD
    """
    result, ctx = run(machine, ret(source))
    assert result.success
    assert word(result) == 42
    assert ctx.storage[7] == 42


def test_mstore_mload_roundtrip(machine):
    result, _ = run(machine, ret("PUSH2 0xBEEF\nPUSH1 64\nMSTORE\nPUSH1 64\nMLOAD"))
    assert word(result) == 0xBEEF


def test_sha3_matches_keccak(machine):
    # store 32-byte word 5 at offset 0, hash those 32 bytes
    source = ret("PUSH1 5\nPUSH1 0\nMSTORE\nPUSH1 32\nPUSH1 0\nSHA3")
    result, _ = run(machine, source)
    expected = int.from_bytes(keccak((5).to_bytes(32, "big")), "big")
    assert word(result) == expected


def test_environment_opcodes(machine):
    ctx = MemoryContext(address=0xAA, caller=0xBB, callvalue=9, chain_id=3,
                        block_number=12, timestamp=99)
    for source, expected in [
        ("ADDRESS", 0xAA),
        ("CALLER", 0xBB),
        ("CALLVALUE", 9),
        ("CHAINID", 3),
        ("NUMBER", 12),
        ("TIMESTAMP", 99),
    ]:
        result, _ = run(machine, ret(source), ctx=ctx)
        assert word(result) == expected


def test_balance_opcode(machine):
    ctx = MemoryContext(balances={0xAB: 77})
    result, _ = run(machine, ret("PUSH1 0xAB\nBALANCE"), ctx=ctx)
    assert word(result) == 77


def test_jump_skips_code(machine):
    source = """
        PUSH @end
        JUMP
        PUSH1 1
        PUSH1 0
        SSTORE
        end:
        STOP
    """
    result, ctx = run(machine, source)
    assert result.success
    assert ctx.storage == {}


def test_jumpi_taken_and_not_taken(machine):
    template = """
        PUSH1 {cond}
        PUSH @skip
        JUMPI
        PUSH1 1
        PUSH1 0
        SSTORE
        skip:
        STOP
    """
    _, ctx = run(machine, template.format(cond=1))
    assert ctx.storage == {}
    _, ctx = run(machine, template.format(cond=0))
    assert ctx.storage == {0: 1}


def test_invalid_jump_fails(machine):
    result, _ = run(machine, "PUSH1 1\nJUMP")
    assert not result.success
    assert "non-JUMPDEST" in result.error


def test_jump_into_push_immediate_rejected(machine):
    # byte 1 is the immediate of PUSH1 0x5B (a fake JUMPDEST)
    code = bytes([0x60, 0x5B, 0x60, 0x01, 0x56])  # PUSH1 0x5B; PUSH1 1; JUMP
    result = machine.execute(code, MemoryContext())
    assert not result.success


def test_revert_reports_message_and_fails(machine):
    source = """
        PUSH1 0
        PUSH1 0
        REVERT
    """
    result, _ = run(machine, source)
    assert not result.success


def test_invalid_opcode(machine):
    result = machine.execute(bytes([0xEF]), MemoryContext())
    assert not result.success
    assert "undefined opcode" in result.error


def test_op_move_sets_location(machine):
    ctx = MemoryContext(chain_id=1)
    result, _ = run(machine, "PUSH1 2\nMOVE\nSTOP", ctx=ctx)
    assert result.success
    assert ctx.location() == 2


def test_op_move_charges_storage_class_gas(machine):
    meter = GasMeter(schedule=ETHEREUM_SCHEDULE)
    run(machine, "PUSH1 2\nMOVE", meter=meter)
    assert meter.used >= ETHEREUM_SCHEDULE.move_op


def test_location_and_movenonce_opcodes(machine):
    ctx = MemoryContext(chain_id=5)
    ctx._move_nonce = 3
    result, _ = run(machine, ret("LOCATION"), ctx=ctx)
    assert word(result) == 5
    result, _ = run(machine, ret("MOVENONCE"), ctx=ctx)
    assert word(result) == 3


def test_out_of_gas_propagates(machine):
    meter = GasMeter(limit=10, schedule=ETHEREUM_SCHEDULE)
    with pytest.raises(OutOfGas):
        machine.execute(assemble("PUSH1 1\nPUSH1 1\nSSTORE"), MemoryContext(), meter)


def test_gas_charged_for_arithmetic_is_exact(machine):
    meter = GasMeter(schedule=ETHEREUM_SCHEDULE)
    machine.execute(assemble("PUSH1 1\nPUSH1 2\nADD"), MemoryContext(), meter)
    # 2 pushes + 1 add, all verylow(3)
    assert meter.used == 9


def test_sstore_gas_set_vs_update_vs_clear(machine):
    sch = ETHEREUM_SCHEDULE
    ctx = MemoryContext()
    meter = GasMeter(schedule=sch)
    machine.execute(assemble("PUSH1 1\nPUSH1 0\nSSTORE"), ctx, meter)
    assert meter.used == 2 * sch.verylow + sch.sstore_set
    meter = GasMeter(schedule=sch)
    machine.execute(assemble("PUSH1 2\nPUSH1 0\nSSTORE"), ctx, meter)
    assert meter.used == 2 * sch.verylow + sch.sstore_update
    meter = GasMeter(schedule=sch)
    machine.execute(assemble("PUSH1 0\nPUSH1 0\nSSTORE"), ctx, meter)
    assert meter.used == 2 * sch.verylow + sch.sstore_clear


def test_dup_and_swap(machine):
    result, _ = run(machine, ret("PUSH1 1\nPUSH1 2\nDUP2\nADD\nADD"))
    assert word(result) == 4  # 1 + (2 + 1)
    result, _ = run(machine, ret("PUSH1 9\nPUSH1 1\nSWAP1\nSUB"))
    assert word(result) == 8  # SWAP then SUB: 9 - 1


def test_log0_records_data(machine):
    source = """
        PUSH1 0x41
        PUSH1 0
        MSTORE
        PUSH1 32
        PUSH1 0
        LOG0
    """
    _, ctx = run(machine, source)
    assert len(ctx.logs) == 1


def test_stack_underflow_is_a_vm_fault(machine):
    from repro.errors import StackUnderflow

    with pytest.raises(StackUnderflow):
        machine.execute(assemble("ADD"), MemoryContext())
