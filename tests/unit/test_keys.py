"""Unit tests for address derivation rules (paper Section III-G)."""

import pytest

from repro.crypto.hashing import keccak
from repro.crypto.keys import (
    Address,
    KeyPair,
    contract_address,
    create2_address,
    derive_address,
)


def test_address_requires_20_bytes():
    with pytest.raises(ValueError):
        Address(b"\x01" * 19)
    Address(b"\x01" * 20)  # no raise


def test_address_hex_roundtrip():
    addr = Address(bytes(range(20)))
    assert Address.from_hex(addr.hex) == addr
    assert addr.hex.startswith("0x")


def test_keypair_is_deterministic_from_name():
    a1 = KeyPair.from_name("alice")
    a2 = KeyPair.from_name("alice")
    assert a1.address == a2.address
    assert a1.public_key == a2.public_key


def test_same_key_same_address_across_chains():
    # Section III-G: the same key pair controls the same address on
    # every chain, because derivation does not involve the chain id.
    kp = KeyPair.from_name("bob")
    assert derive_address(kp.public_key) == kp.address


def test_contract_address_incorporates_chain_id():
    creator = KeyPair.from_name("alice").address
    a_on_1 = contract_address(1, creator, 0)
    a_on_2 = contract_address(2, creator, 0)
    assert a_on_1 != a_on_2


def test_contract_address_varies_with_nonce():
    creator = KeyPair.from_name("alice").address
    assert contract_address(1, creator, 0) != contract_address(1, creator, 1)


def test_create2_is_deterministic_and_salt_sensitive():
    parent = KeyPair.from_name("token").address
    code_hash = keccak(b"account-code")
    a = create2_address(1, parent, 7, code_hash)
    b = create2_address(1, parent, 7, code_hash)
    c = create2_address(1, parent, 8, code_hash)
    assert a == b
    assert a != c


def test_create2_differs_across_chains_and_code():
    parent = KeyPair.from_name("token").address
    code_hash = keccak(b"account-code")
    assert create2_address(1, parent, 7, code_hash) != create2_address(2, parent, 7, code_hash)
    assert create2_address(1, parent, 7, code_hash) != create2_address(
        1, parent, 7, keccak(b"other-code")
    )
