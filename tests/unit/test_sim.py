"""Unit tests for the discrete-event simulator."""

import pytest

from repro.errors import SimulationError
from repro.net.sim import Simulator


def test_events_fire_in_time_order():
    sim = Simulator()
    order = []
    sim.schedule(3.0, lambda: order.append("c"))
    sim.schedule(1.0, lambda: order.append("a"))
    sim.schedule(2.0, lambda: order.append("b"))
    sim.run()
    assert order == ["a", "b", "c"]
    assert sim.now == 3.0


def test_same_time_events_fire_in_schedule_order():
    sim = Simulator()
    order = []
    for name in "abc":
        sim.schedule(1.0, lambda n=name: order.append(n))
    sim.run()
    assert order == ["a", "b", "c"]


def test_run_until_stops_and_resumes():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, lambda: fired.append(1))
    sim.schedule(5.0, lambda: fired.append(5))
    sim.run(until=2.0)
    assert fired == [1]
    assert sim.now == 2.0
    sim.run()
    assert fired == [1, 5]


def test_run_until_advances_clock_even_without_events():
    sim = Simulator()
    sim.run(until=10.0)
    assert sim.now == 10.0


def test_events_can_schedule_events():
    sim = Simulator()
    seen = []

    def first():
        seen.append(sim.now)
        sim.schedule(2.0, lambda: seen.append(sim.now))

    sim.schedule(1.0, first)
    sim.run()
    assert seen == [1.0, 3.0]


def test_cancellation():
    sim = Simulator()
    fired = []
    handle = sim.schedule(1.0, lambda: fired.append(1))
    handle.cancel()
    sim.run()
    assert fired == []


def test_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.schedule(-1.0, lambda: None)


def test_schedule_at_absolute_time():
    sim = Simulator()
    times = []
    sim.schedule(1.0, lambda: sim.schedule_at(4.0, lambda: times.append(sim.now)))
    sim.run()
    assert times == [4.0]


def test_max_events_bound():
    sim = Simulator()
    fired = []
    for i in range(10):
        sim.schedule(float(i), lambda i=i: fired.append(i))
    processed = sim.run(max_events=4)
    assert processed == 4
    assert fired == [0, 1, 2, 3]


def test_rng_is_seeded_and_reproducible():
    a = Simulator(seed=42).rng.random()
    b = Simulator(seed=42).rng.random()
    c = Simulator(seed=43).rng.random()
    assert a == b
    assert a != c
