"""Hostile/malformed transactions must fail cleanly, never crash a node."""

import pytest

from repro.chain.tx import CallPayload, DeployPayload, Move2Payload, sign_transaction
from tests.helpers import (
    ALICE,
    BOB,
    ManualClock,
    StoreContract,
    deploy_store,
    make_chain_pair,
    run_tx,
)


@pytest.fixture
def world():
    burrow, _ethereum = make_chain_pair()
    clock = ManualClock()
    addr = deploy_store(burrow, clock, ALICE)
    return burrow, clock, addr


def test_wrong_argument_count_fails_cleanly(world):
    burrow, clock, addr = world
    receipt = run_tx(burrow, clock, ALICE, CallPayload(addr, "put", (1, 2, 3, 4)))
    assert not receipt.success
    assert "ContractFault" in receipt.error
    # The chain is alive and consistent afterwards.
    assert run_tx(burrow, clock, ALICE, CallPayload(addr, "put", (1, 2))).success


def test_wrong_argument_types_fail_cleanly(world):
    burrow, clock, addr = world
    receipt = run_tx(burrow, clock, ALICE, CallPayload(addr, "put", ("not-an-int", {})))
    assert not receipt.success
    assert run_tx(burrow, clock, BOB, CallPayload(addr, "get_value", (1,))).success


def test_malformed_move2_bundle_fails_cleanly(world):
    burrow, clock, _addr = world

    class FakeBundle:
        """Quacks enough to be signed, explodes when executed."""

        location = 1

        def signing_fields(self):
            return ("fake",)

        def size_bytes(self):
            raise RuntimeError("boom")

    receipt = run_tx(burrow, clock, BOB, Move2Payload(bundle=FakeBundle()))
    assert not receipt.success
    assert "ContractFault" in receipt.error or "MoveError" in receipt.error


def test_fault_reverts_partial_state(world):
    burrow, clock, addr = world

    from repro.runtime import Contract, Slot, external, register_contract

    @register_contract
    class HalfWriter(Contract):
        """Writes a slot, then faults."""

        a = Slot(int)

        @external
        def half(self):
            self.a = 42
            raise RuntimeError("deliberate fault after a write")

    deploy = run_tx(burrow, clock, ALICE, DeployPayload(code_hash=HalfWriter.CODE_HASH))
    target = deploy.return_value
    receipt = run_tx(burrow, clock, ALICE, CallPayload(target, "half"))
    assert not receipt.success
    # The partial write rolled back with the fault.
    record = burrow.state.contract(target)
    assert record.storage == {}


def test_deeply_nested_recursion_fails_cleanly(world):
    burrow, clock, _addr = world
    from repro.runtime import Contract, external, register_contract

    @register_contract
    class Recurser(Contract):
        """Calls itself until the depth limit trips."""

        @external
        def spin(self):
            return self.call(self.address, "spin")

    deploy = run_tx(burrow, clock, ALICE, DeployPayload(code_hash=Recurser.CODE_HASH))
    receipt = run_tx(burrow, clock, ALICE, CallPayload(deploy.return_value, "spin"))
    assert not receipt.success
    assert "depth" in receipt.error
