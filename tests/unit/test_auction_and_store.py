"""Unit tests for the clock auction and the Store-N probes."""

import pytest

from repro.apps.auction import ClockAuction
from repro.apps.kitties import KittyRegistry
from repro.apps.store import StateStore
from repro.chain.chain import Chain
from repro.chain.params import burrow_params
from repro.chain.tx import CallPayload, DeployPayload
from tests.helpers import ALICE, BOB, CAROL, ManualClock, produce, run_tx


@pytest.fixture
def world():
    chain = Chain(burrow_params(1))
    chain.fund({ALICE.address: 10_000, BOB.address: 10_000, CAROL.address: 10_000})
    clock = ManualClock()
    registry = run_tx(chain, clock, ALICE, DeployPayload(code_hash=KittyRegistry.CODE_HASH)).return_value
    auction = run_tx(chain, clock, ALICE, DeployPayload(code_hash=ClockAuction.CODE_HASH)).return_value
    cat = run_tx(
        chain, clock, ALICE, CallPayload(registry, "create_promo_kitty", (BOB.address,))
    ).return_value
    return chain, clock, auction, cat


def list_cat(chain, clock, auction, cat, seller, start=1000, end=100, duration=100):
    assert run_tx(chain, clock, seller, CallPayload(cat, "transfer_ownership", (auction,))).success
    receipt = run_tx(
        chain, clock, seller,
        CallPayload(auction, "create_auction", (cat, start, end, duration)),
    )
    assert receipt.success, receipt.error


def test_escrow_required(world):
    chain, clock, auction, cat = world
    receipt = run_tx(
        chain, clock, BOB, CallPayload(auction, "create_auction", (cat, 1000, 100, 100))
    )
    assert not receipt.success
    assert "not escrowed" in receipt.error


def test_price_descends_linearly(world):
    chain, clock, auction, cat = world
    list_cat(chain, clock, auction, cat, BOB, start=1000, end=0, duration=100)
    t0 = chain.view(auction, "current_price", cat)
    # Advance simulated block time by ~50s (10 blocks at 5 s).
    produce(chain, clock, 10)
    t1 = chain.view(auction, "current_price", cat)
    assert t1 < t0
    produce(chain, clock, 30)
    assert chain.view(auction, "current_price", cat) == 0  # past duration


def test_bid_buys_and_pays_seller(world):
    chain, clock, auction, cat = world
    list_cat(chain, clock, auction, cat, BOB, start=500, end=500, duration=10)
    bob_before = chain.balance_of(BOB.address)
    receipt = run_tx(chain, clock, CAROL, CallPayload(auction, "bid", (cat,), value=600))
    assert receipt.success, receipt.error
    assert chain.view(cat, "get_owner") == CAROL.address
    assert chain.balance_of(BOB.address) == bob_before + 500
    # Overpayment refunded.
    assert chain.balance_of(CAROL.address) == 10_000 - 500


def test_underbid_rejected(world):
    chain, clock, auction, cat = world
    list_cat(chain, clock, auction, cat, BOB, start=500, end=500, duration=10)
    receipt = run_tx(chain, clock, CAROL, CallPayload(auction, "bid", (cat,), value=499))
    assert not receipt.success
    assert chain.view(cat, "get_owner") == auction


def test_cancel_returns_cat(world):
    chain, clock, auction, cat = world
    list_cat(chain, clock, auction, cat, BOB)
    refused = run_tx(chain, clock, CAROL, CallPayload(auction, "cancel_auction", (cat,)))
    assert not refused.success
    assert run_tx(chain, clock, BOB, CallPayload(auction, "cancel_auction", (cat,))).success
    assert chain.view(cat, "get_owner") == BOB.address
    # Delisted: bidding now fails.
    receipt = run_tx(chain, clock, CAROL, CallPayload(auction, "bid", (cat,), value=9999))
    assert not receipt.success


def test_double_listing_rejected(world):
    chain, clock, auction, cat = world
    list_cat(chain, clock, auction, cat, BOB)
    receipt = run_tx(
        chain, clock, BOB, CallPayload(auction, "create_auction", (cat, 10, 1, 10))
    )
    assert not receipt.success


@pytest.mark.parametrize("n", [1, 10, 100])
def test_store_holds_n_values(n):
    chain = Chain(burrow_params(1))
    clock = ManualClock()
    receipt = run_tx(
        chain, clock, ALICE, DeployPayload(code_hash=StateStore.CODE_HASH, args=(n,))
    )
    assert receipt.success, receipt.error
    store = receipt.return_value
    assert chain.view(store, "size") == n
    for i in (0, n - 1):
        value = chain.view(store, "value_at", i)
        assert len(value) == 32
    assert len(chain.state.contract(store).storage) >= n


def test_store_gas_scales_with_slots():
    chain = Chain(burrow_params(1))
    clock = ManualClock()
    gas = {}
    for n in (1, 10, 100):
        receipt = run_tx(
            chain, clock, ALICE, DeployPayload(code_hash=StateStore.CODE_HASH, args=(n,))
        )
        gas[n] = receipt.gas_used
    assert gas[10] > gas[1]
    assert gas[100] > gas[10] * 5  # dominated by per-slot SSTORE


def test_store_rewrite_owner_only():
    chain = Chain(burrow_params(1))
    clock = ManualClock()
    store = run_tx(
        chain, clock, ALICE, DeployPayload(code_hash=StateStore.CODE_HASH, args=(2,))
    ).return_value
    new_value = b"\x42" * 32
    assert run_tx(chain, clock, ALICE, CallPayload(store, "rewrite", (0, new_value))).success
    assert chain.view(store, "value_at", 0) == new_value
    assert not run_tx(chain, clock, BOB, CallPayload(store, "rewrite", (0, new_value))).success
    assert not run_tx(chain, clock, ALICE, CallPayload(store, "rewrite", (5, new_value))).success
