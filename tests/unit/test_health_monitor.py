"""Unit tests for the health monitor, its node/gateway hosting, and
the flight recorder."""

from types import SimpleNamespace

import pytest

from repro import api
from repro.errors import ConfigError
from repro.health import probes
from repro.health.monitor import HealthMonitor
from repro.health.recorder import (
    DEFAULT_SNAPSHOT_METRICS,
    FlightRecorder,
    bundle_json,
)
from repro.health.slo import SloSpec
from repro.net.sim import Simulator
from repro.telemetry import Telemetry


def _node(telemetry=None):
    return api.Node(
        [api.burrow_params(1), api.burrow_params(2)],
        seed=3,
        telemetry=telemetry,
    )


class _StuckProbe:
    """A probe whose single target is permanently unhealthy."""

    kind = probes.CHAIN_LIVENESS

    def __init__(self, target="chain:1"):
        self.target = target

    def sample(self, now):
        return [probes.ProbeSample(self.target, False, 99.0, "stuck")]


# ----------------------------------------------------------------------
# Monitor mechanics
# ----------------------------------------------------------------------


class TestMonitorMechanics:
    def test_interval_must_be_positive(self):
        with pytest.raises(ConfigError):
            HealthMonitor(Simulator(seed=0), interval=0.0)

    def test_ticks_on_the_simulated_clock(self):
        node = _node(telemetry=Telemetry.enabled())
        monitor = node.attach_health()
        node.start()
        node.run_for(50.0)
        assert monitor.ticks == 10  # every 5 s
        assert node.telemetry.metrics.total("health_ticks_total") == 10.0
        assert set(monitor.states) == {
            "chain:1", "chain:2", "relay:1->2", "relay:2->1",
            "mempool:1", "mempool:2", "executor:1", "executor:2",
        }
        assert all(monitor.states.values())

    def test_restart_does_not_double_tick(self):
        node = _node()
        monitor = node.attach_health()
        node.start()
        node.run_for(20.0)
        node.stop()
        node.run_for(20.0)  # stale timers die against the epoch
        ticks_while_stopped = monitor.ticks
        node.start()
        node.run_for(20.0)
        assert monitor.ticks == ticks_while_stopped + 4

    def test_health_state_gauge_tracks_judgement(self):
        node = _node(telemetry=Telemetry.enabled())
        monitor = node.attach_health()
        monitor.add_probe(_StuckProbe("chain:99"))
        monitor.sample()
        metrics = node.telemetry.metrics
        assert metrics.value("health_state", target="chain:1") == 1.0
        assert metrics.value("health_state", target="chain:99") == 0.0

    def test_transitions_recorded_once_per_flip(self):
        monitor = HealthMonitor(Simulator(seed=0))
        probe = _StuckProbe()
        monitor.add_probe(probe)
        monitor.sample()
        monitor.sample()  # still unhealthy: no second transition
        assert len(monitor.transitions) == 1
        assert monitor.transitions[0]["to"] == "unhealthy"

    def test_sustained_unhealthy_fires_and_dumps_postmortem(self):
        sim = Simulator(seed=0)
        monitor = HealthMonitor(
            sim,
            telemetry=Telemetry.enabled(),
            slos=[SloSpec("liveness", probes.CHAIN_LIVENESS, objective=0.75)],
        )
        monitor.add_probe(_StuckProbe())
        monitor.start()
        sim.run(until=100.0)
        assert monitor.firing() == [
            {"slo": "liveness", "target": "chain:1", "severity": "page"}
        ]
        assert monitor.recorder.postmortems_written >= 1
        bundle = monitor.last_postmortem()
        assert bundle["reason"] == "alert"
        assert bundle["health"]["chain:1"] == "unhealthy"
        assert monitor.status()["firing"]

    def test_alert_counter_labels_state(self):
        sim = Simulator(seed=0)
        telemetry = Telemetry.enabled()
        monitor = HealthMonitor(
            sim,
            telemetry=telemetry,
            slos=[SloSpec("liveness", probes.CHAIN_LIVENESS, objective=0.75)],
        )
        monitor.add_probe(_StuckProbe())
        monitor.start()
        sim.run(until=100.0)
        assert telemetry.metrics.value(
            "health_alerts_total", slo="liveness", state="firing"
        ) == 1.0


# ----------------------------------------------------------------------
# Flight-recorder triggers
# ----------------------------------------------------------------------


class TestTriggers:
    def test_on_fault_records_and_dumps(self):
        monitor = HealthMonitor(Simulator(seed=0))
        event = SimpleNamespace(
            kind="crash", chain=1, target="val-1-0", duration=10.0, magnitude=0.0
        )
        monitor.on_fault(event)
        assert monitor.recorder.postmortems_written == 1
        bundle = monitor.last_postmortem()
        assert bundle["reason"] == "fault"
        assert bundle["events"][-1]["kind"] == "fault"
        assert bundle["events"][-1]["attrs"]["fault"] == "crash"

    def test_on_violation_records_and_dumps(self):
        monitor = HealthMonitor(Simulator(seed=0))
        monitor.on_violation("[I1] contract active twice")
        bundle = monitor.last_postmortem()
        assert bundle["reason"] == "invariant"
        assert bundle["events"][-1]["attrs"]["message"] == (
            "[I1] contract active twice"
        )

    def test_manual_postmortem(self):
        monitor = HealthMonitor(Simulator(seed=0))
        bundle = monitor.postmortem("manual")
        assert bundle["reason"] == "manual"
        assert monitor.last_postmortem_json() == bundle_json(bundle)


# ----------------------------------------------------------------------
# Node hosting
# ----------------------------------------------------------------------


class TestNodeHosting:
    def test_attach_health_builds_and_returns_the_same_monitor(self):
        node = _node()
        monitor = node.attach_health()
        assert node.attach_health() is monitor
        assert node.health is monitor

    def test_attach_none_detaches_and_stops(self):
        node = _node()
        monitor = node.attach_health()
        node.start()
        assert monitor.running
        node.attach_health(None)
        assert not monitor.running
        assert node.health is None

    def test_monitor_follows_node_lifecycle(self):
        node = _node()
        monitor = node.attach_health()
        assert not monitor.running
        node.start()
        assert monitor.running
        node.stop()
        assert not monitor.running

    def test_for_node_includes_attached_components(self):
        node = _node()
        node.attach_replication()
        monitor = HealthMonitor.for_node(node, conflict_probe=False)
        kinds = {probe.kind for probe in monitor.probes}
        assert probes.REPLICA_STALENESS in kinds
        assert probes.CONFLICT_RATE not in kinds


# ----------------------------------------------------------------------
# Gateway and client exposure
# ----------------------------------------------------------------------


class TestGatewayHealth:
    def _world(self):
        node = _node()
        gateway = api.Gateway(node)
        client = api.Client(api.InProcessTransport(gateway), name="alice")
        return node, gateway, client

    def test_healthy_world_is_not_degraded(self):
        node, gateway, client = self._world()
        monitor = node.attach_health()
        gateway.start()
        node.run_for(30.0)
        health = client.health()
        assert health["serving"] is True
        assert health["degraded"] is False
        assert health["targets"]["chain:1"] == "healthy"
        assert health["alerts"] == []
        assert health["queues"] == {1: 0, 2: 0}

    def test_unhealthy_target_degrades(self):
        node, gateway, client = self._world()
        monitor = node.attach_health()
        monitor.add_probe(_StuckProbe())
        gateway.start()
        node.run_for(10.0)
        health = client.health()
        assert health["degraded"] is True
        assert health["targets"]["chain:1"] == "unhealthy"

    def test_health_without_monitor_still_reports_queues(self):
        node, gateway, client = self._world()
        gateway.start()
        health = client.health()
        assert health["serving"] is True
        assert health["degraded"] is False
        assert health["targets"] == {}

    def test_simnet_transport_serves_health_immediately(self):
        node = _node()
        gateway = api.Gateway(node)
        client = api.Client(api.SimNetTransport(gateway), name="bob")
        gateway.start()
        assert client.health()["serving"] is True


# ----------------------------------------------------------------------
# Flight recorder
# ----------------------------------------------------------------------


class TestFlightRecorder:
    def test_ring_is_bounded(self):
        recorder = FlightRecorder(capacity=4)
        for i in range(10):
            recorder.record(float(i), "transition", index=i)
        assert len(recorder.events) == 4
        assert recorder.events[0]["attrs"]["index"] == 6
        assert recorder.events_recorded == 10

    def test_snapshot_delta(self):
        telemetry = Telemetry.enabled()
        recorder = FlightRecorder()
        recorder.snapshot(telemetry.metrics)  # pins the baseline
        telemetry.metrics.counter("gateway_requests_total").inc(7)
        recorder.snapshot(telemetry.metrics)
        bundle = recorder.dump("manual", 10.0, {}, [], [])
        assert bundle["metrics"]["delta"]["gateway_requests_total"] == 7.0
        assert bundle["metrics"]["start"]["gateway_requests_total"] == 0.0

    def test_postmortem_retention_bounded(self):
        recorder = FlightRecorder(max_postmortems=2)
        for i in range(5):
            recorder.dump("alert", float(i), {}, [], [])
        assert len(recorder.postmortems) == 2
        assert recorder.postmortems_written == 5
        assert recorder.postmortems_dropped == 3

    def test_bundle_json_is_canonical(self):
        recorder = FlightRecorder()
        bundle = recorder.dump("manual", 1.0, {"chain:1": "healthy"}, [], [])
        text = bundle_json(bundle)
        assert '"reason":"manual"' in text
        assert "\n" not in text

    def test_snapshot_whitelist_excludes_parallel_counters(self):
        assert not any(
            name.startswith("executor_parallel") for name in DEFAULT_SNAPSHOT_METRICS
        )
