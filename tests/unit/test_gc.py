"""Unit/integration tests for stale-state garbage collection (§III-G c).

The safety property under test: collection must never re-enable the
Fig. 2 replay attack — tombstones keep the move nonce — and must never
break an active contract.
"""

import pytest

from repro.chain.chain import Chain, ChainRegistry
from repro.chain.params import burrow_params
from repro.chain.tx import CallPayload, Move1Payload, Move2Payload
from repro.errors import ProofError
from tests.helpers import (
    ALICE,
    BOB,
    ManualClock,
    StoreContract,
    deploy_store,
    full_move,
    make_chain_pair,
    produce,
    run_tx,
)


@pytest.fixture
def moved_world():
    burrow, ethereum = make_chain_pair()
    clock = ManualClock()
    addr = deploy_store(burrow, clock, ALICE)
    run_tx(burrow, clock, ALICE, CallPayload(addr, "put", (1, 100)))
    receipt = full_move(burrow, ethereum, clock, ALICE, addr)
    assert receipt.success
    return burrow, ethereum, clock, addr


def test_gc_reclaims_stale_storage(moved_world):
    burrow, _ethereum, clock, addr = moved_world
    record = burrow.state.contract(addr)
    assert record.storage  # stale copy still holds state
    report = burrow.gc_stale()
    assert addr in report.collected
    assert report.slots_freed >= 1
    assert report.bytes_freed > 0
    assert not record.storage
    # Tombstone: location and nonce survive.
    assert record.location == 2
    assert record.move_nonce == 1


def test_gc_never_touches_active_contracts():
    burrow, _ethereum = make_chain_pair()
    clock = ManualClock()
    addr = deploy_store(burrow, clock, ALICE)
    run_tx(burrow, clock, ALICE, CallPayload(addr, "put", (1, 1)))
    report = burrow.gc_stale()
    assert report.contracts_collected == 0
    assert burrow.state.contract(addr).storage


def test_gc_is_idempotent(moved_world):
    burrow, _ethereum, _clock, addr = moved_world
    assert burrow.gc_stale().contracts_collected == 1
    assert burrow.gc_stale().contracts_collected == 0


def test_gc_age_gate(moved_world):
    burrow, _ethereum, clock, addr = moved_world
    # Move happened a couple of blocks ago; a large age gate defers GC.
    report = burrow.gc_stale(min_age_blocks=100)
    assert report.contracts_collected == 0
    produce(burrow, clock, 5)
    report = burrow.gc_stale(min_age_blocks=3)
    assert report.contracts_collected == 1


def test_replay_rejected_after_gc(moved_world):
    # Fig. 2 attack against a *collected* source: contract goes
    # B1 -> B2, B1 collects, contract returns B2 -> B1, attacker
    # replays the original (pre-GC) Move2 on B2.
    burrow, ethereum, clock, addr = moved_world
    receipt1 = run_tx(
        ethereum, clock, ALICE, Move1Payload(contract=addr, target_chain=burrow.chain_id)
    )
    inclusion = receipt1.block_height
    while ethereum.height < ethereum.proof_ready_height(inclusion):
        produce(ethereum, clock)
    bundle_back = ethereum.prove_contract_at(addr, inclusion)

    burrow.gc_stale()  # collect the stale copy before the return lands
    back = run_tx(burrow, clock, BOB, Move2Payload(bundle=bundle_back))
    assert back.success, back.error
    assert burrow.view(addr, "get_value", 1) == 100

    # Now Ethereum holds a stale tombstone; collect it too and replay
    # the contract's *first* outbound bundle there: must still abort.
    ethereum.gc_stale()
    # Rebuild the original first-move bundle path: we saved none, so
    # derive a stale bundle by reusing the back-move proof on the wrong
    # chain — location check fires first; the nonce path is covered by
    # test below.
    replay = run_tx(ethereum, clock, BOB, Move2Payload(bundle=bundle_back))
    assert not replay.success


def test_stale_move2_nonce_rejected_after_gc():
    # Full nonce-path check: keep the first bundle, GC everywhere,
    # replay it at its original (correct-location) target.
    burrow, ethereum = make_chain_pair()
    clock = ManualClock()
    addr = deploy_store(burrow, clock, ALICE)
    run_tx(burrow, clock, ALICE, CallPayload(addr, "put", (1, 7)))

    receipt1 = run_tx(
        burrow, clock, ALICE, Move1Payload(contract=addr, target_chain=ethereum.chain_id)
    )
    inclusion = receipt1.block_height
    while burrow.height < burrow.proof_ready_height(inclusion):
        produce(burrow, clock)
    first_bundle = burrow.prove_contract_at(addr, inclusion)
    assert run_tx(ethereum, clock, ALICE, Move2Payload(bundle=first_bundle)).success

    # Round trip back to burrow, then GC ethereum's stale copy.
    assert full_move(ethereum, burrow, clock, ALICE, addr).success
    report = ethereum.gc_stale()
    assert report.contracts_collected == 1

    # Replay of the first bundle on ethereum: tombstone nonce wins.
    replay = run_tx(ethereum, clock, BOB, Move2Payload(bundle=first_bundle))
    assert not replay.success
    assert "ReplayError" in replay.error


def test_gc_blocks_pending_proof_construction(moved_world):
    # Collecting too early makes a dangling move unprovable from this
    # chain — the age gate exists exactly for this; verify the failure
    # is explicit, not silent corruption.
    burrow, ethereum, clock, addr = moved_world
    receipt = run_tx(
        ethereum, clock, ALICE, Move1Payload(contract=addr, target_chain=burrow.chain_id)
    )
    inclusion = receipt.block_height
    ethereum.gc_stale()  # reckless: collects while the move dangles
    while ethereum.height < ethereum.proof_ready_height(inclusion):
        produce(ethereum, clock)
    with pytest.raises(ProofError):
        ethereum.prove_contract_at(addr, inclusion)


def test_snapshot_retention_bounds_growth_automatically():
    # With a small retention horizon, _post_roots/_tree_snapshots stay
    # bounded as blocks flow — no manual prune_snapshots() call needed.
    registry = ChainRegistry()
    burrow = Chain(burrow_params(1, snapshot_retention=5), registry)
    clock = ManualClock()
    deploy_store(burrow, clock, ALICE)
    produce(burrow, clock, 20)
    live = [h for h in burrow._tree_snapshots if h > 0]
    assert min(live) == burrow.height - 5
    # genesis fallback plus the inclusive retention window survive
    assert len(burrow._tree_snapshots) == 5 + 2
    assert len(burrow._post_roots) == 5 + 2
    # heights inside the horizon still serve proofs
    burrow.prove_contract_at(
        next(iter(burrow.state.contracts)), burrow.height - 2
    )


def test_zero_retention_disables_auto_pruning():
    registry = ChainRegistry()
    burrow = Chain(burrow_params(1, snapshot_retention=0), registry)
    clock = ManualClock()
    produce(burrow, clock, 10)
    assert len(burrow._post_roots) == burrow.height + 1  # every block kept


def test_prune_snapshots_keeps_recent_window():
    burrow, _ethereum = make_chain_pair()
    clock = ManualClock()
    deploy_store(burrow, clock, ALICE)
    produce(burrow, clock, 10)
    dropped = burrow.prune_snapshots(keep_last=3)
    assert dropped > 0
    # Recent heights still provable-serving; old ones gone.
    assert burrow.height - 3 in burrow._tree_snapshots
    assert 1 not in burrow._tree_snapshots
    assert 0 in burrow._tree_snapshots  # genesis fallback retained
