"""Units for the source-side replication delta log."""

import pytest

from repro.errors import ProofError
from repro.replicate.log import ReplicationLog


def test_base_image_drops_empty_values():
    log = ReplicationLog(5, {b"a": b"1", b"b": b""})
    assert log.image_at(5) == {b"a": b"1"}
    assert log.head_height == 5


def test_append_and_image_at_each_height():
    log = ReplicationLog(0, {b"a": b"1"})
    log.append(1, {b"b": b"2"})
    log.append(2, {b"a": b"9", b"c": b"3"})
    log.append(3, {b"b": b""})  # delete
    assert log.head_height == 3
    assert log.image_at(0) == {b"a": b"1"}
    assert log.image_at(1) == {b"a": b"1", b"b": b"2"}
    assert log.image_at(2) == {b"a": b"9", b"b": b"2", b"c": b"3"}
    assert log.image_at(3) == {b"a": b"9", b"c": b"3"}


def test_image_at_outside_window_raises():
    log = ReplicationLog(10, {})
    log.append(11, {b"x": b"1"})
    with pytest.raises(ProofError):
        log.image_at(9)
    with pytest.raises(ProofError):
        log.image_at(12)


def test_delta_between_merges_contiguous_blocks():
    log = ReplicationLog(0, {})
    log.append(1, {b"a": b"1"})
    log.append(2, {b"a": b"2", b"b": b"1"})
    log.append(3, {b"b": b""})
    assert log.delta_between(0, 3) == {b"a": b"2", b"b": b""}
    assert log.delta_between(1, 2) == {b"a": b"2", b"b": b"1"}
    assert log.delta_between(2, 2) == {}


def test_delta_between_returns_none_outside_coverage():
    log = ReplicationLog(5, {})
    log.append(6, {b"a": b"1"})
    # since predates the base: the caller must full-sync instead.
    assert log.delta_between(3, 6) is None
    # upto beyond the head: not yet recorded.
    assert log.delta_between(5, 7) is None


def test_trim_folds_old_deltas_into_base():
    log = ReplicationLog(0, {b"a": b"1"})
    for height in range(1, 6):
        log.append(height, {f"k{height}".encode(): b"v"})
    log.trim(3)
    assert log.base_height == 3
    # Heights at or below the horizon are gone...
    assert log.delta_between(1, 5) is None
    # ...but the folded base still reproduces newer heights exactly.
    assert log.image_at(3) == {
        b"a": b"1", b"k1": b"v", b"k2": b"v", b"k3": b"v"
    }
    assert log.delta_between(3, 5) == {b"k4": b"v", b"k5": b"v"}


def test_rebase_clears_history_and_counts():
    log = ReplicationLog(0, {b"a": b"1"})
    log.append(1, {b"b": b"2"})
    log.rebase(7, {b"z": b"9"})
    assert log.rebases == 1
    assert log.base_height == 7
    assert log.head_height == 7
    assert log.image_at(7) == {b"z": b"9"}
    assert log.delta_between(0, 7) is None
