"""Unit tests for rolling-window SLOs and multi-window burn-rate
alerting: spec validation, burn arithmetic, fire/resolve latching and
the deterministic alert-log serialization."""

import json

import pytest

from repro.health import probes
from repro.health.slo import SloEvaluator, SloSpec, default_slos


def _spec(**overrides):
    base = dict(
        name="test-slo",
        kind=probes.CHAIN_LIVENESS,
        objective=0.75,
        fast_window=30.0,
        slow_window=60.0,
        fast_burn=2.0,
        slow_burn=1.0,
    )
    base.update(overrides)
    return SloSpec(**base)


class TestSloSpec:
    def test_budget_is_one_minus_objective(self):
        assert _spec(objective=0.75).budget == 0.25

    def test_objective_must_be_a_fraction(self):
        with pytest.raises(ValueError):
            _spec(objective=1.0)
        with pytest.raises(ValueError):
            _spec(objective=0.0)

    def test_windows_must_nest(self):
        with pytest.raises(ValueError):
            _spec(fast_window=60.0, slow_window=30.0)
        with pytest.raises(ValueError):
            _spec(fast_window=0.0)

    def test_default_slos_cover_every_probe_kind(self):
        kinds = {spec.kind for spec in default_slos()}
        assert kinds == {
            probes.CHAIN_LIVENESS,
            probes.RELAY_LAG,
            probes.REPLICA_STALENESS,
            probes.GATEWAY,
            probes.MEMPOOL_DEPTH,
            probes.CONFLICT_RATE,
            probes.REBALANCER,
        }


def _feed(evaluator, kind, target, healthy_flags, start=0.0, step=5.0):
    """Observe + evaluate one sample per flag; returns all transitions."""
    transitions = []
    now = start
    for healthy in healthy_flags:
        evaluator.observe(now, kind, target, healthy)
        transitions.extend(evaluator.evaluate(now))
        now += step
    return transitions


class TestBurnRateAlerting:
    def test_all_healthy_never_fires(self):
        evaluator = SloEvaluator([_spec()])
        assert _feed(evaluator, probes.CHAIN_LIVENESS, "chain:1", [True] * 30) == []
        assert evaluator.firing() == []

    def test_sustained_badness_fires_once(self):
        evaluator = SloEvaluator([_spec()])
        flags = [True] * 6 + [False] * 8
        transitions = _feed(evaluator, probes.CHAIN_LIVENESS, "chain:1", flags)
        firing = [t for t in transitions if t["state"] == "firing"]
        assert len(firing) == 1  # latched: one transition, not per-tick spam
        alert = firing[0]
        assert alert["slo"] == "test-slo"
        assert alert["target"] == "chain:1"
        assert alert["burn_fast"] >= 2.0
        assert alert["burn_slow"] >= 1.0
        assert evaluator.firing() == [
            {"slo": "test-slo", "target": "chain:1", "severity": "page"}
        ]

    def test_recovery_resolves(self):
        evaluator = SloEvaluator([_spec()])
        flags = [True] * 6 + [False] * 8 + [True] * 12
        transitions = _feed(evaluator, probes.CHAIN_LIVENESS, "chain:1", flags)
        assert [t["state"] for t in transitions] == ["firing", "resolved"]
        assert evaluator.firing() == []

    def test_short_blip_suppressed_by_slow_window(self):
        # Two bad samples spike the fast burn but not the slow one.
        evaluator = SloEvaluator([_spec()])
        flags = [True] * 10 + [False] * 2 + [True] * 10
        assert _feed(evaluator, probes.CHAIN_LIVENESS, "chain:1", flags) == []

    def test_series_are_per_target(self):
        evaluator = SloEvaluator([_spec()])
        for i in range(14):
            now = i * 5.0
            evaluator.observe(now, probes.CHAIN_LIVENESS, "chain:1", i < 6)
            evaluator.observe(now, probes.CHAIN_LIVENESS, "chain:2", True)
            evaluator.evaluate(now)
        assert [a["target"] for a in evaluator.alerts] == ["chain:1"]

    def test_kind_mismatch_is_ignored(self):
        evaluator = SloEvaluator([_spec(kind=probes.RELAY_LAG)])
        assert _feed(evaluator, probes.CHAIN_LIVENESS, "chain:1", [False] * 20) == []

    def test_samples_pruned_beyond_slow_window(self):
        evaluator = SloEvaluator([_spec(slow_window=60.0)])
        for i in range(100):
            evaluator.observe(i * 5.0, probes.CHAIN_LIVENESS, "chain:1", True)
        (series,) = evaluator._series.values()
        assert series.samples[0][0] >= 99 * 5.0 - 60.0


class TestAlertLogSerialization:
    def test_log_is_canonical_json_lines(self):
        evaluator = SloEvaluator([_spec()])
        _feed(evaluator, probes.CHAIN_LIVENESS, "chain:1", [True] * 6 + [False] * 8)
        text = evaluator.alert_log_json()
        assert text.endswith("\n")
        (line,) = text.splitlines()
        entry = json.loads(line)
        assert entry["state"] == "firing"
        # canonical: sorted keys, compact separators
        assert line == json.dumps(entry, sort_keys=True, separators=(",", ":"))

    def test_empty_log_serializes_empty(self):
        assert SloEvaluator([_spec()]).alert_log_json() == ""

    def test_identical_feeds_give_identical_bytes(self):
        logs = set()
        for _ in range(2):
            evaluator = SloEvaluator([_spec()])
            flags = [True] * 6 + [False] * 9 + [True] * 10
            _feed(evaluator, probes.CHAIN_LIVENESS, "chain:1", flags)
            logs.add(evaluator.alert_log_json())
        assert len(logs) == 1
