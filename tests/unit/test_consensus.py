"""Unit tests for the consensus engines over the simulated WAN."""

import pytest

from repro.chain.chain import Chain
from repro.chain.params import burrow_params, ethereum_params
from repro.consensus.pow import PowEngine
from repro.consensus.tendermint import TendermintEngine
from repro.net.latency import LatencyModel
from repro.net.sim import Simulator
from repro.net.transport import Network


def make_tendermint(seed=1, validators=10):
    sim = Simulator(seed=seed)
    net = Network(sim)
    chain = Chain(burrow_params(1), verify_signatures=False)
    model = LatencyModel()
    regions = model.assign_regions(validators, sim.rng)
    engine = TendermintEngine(sim, net, chain, regions)
    return sim, net, chain, engine


def test_tendermint_produces_blocks_at_interval():
    sim, _net, chain, engine = make_tendermint()
    engine.start()
    sim.run(until=60.0)
    # 5s interval + commit latency: expect ~10-11 blocks in 60 s.
    assert 9 <= chain.height <= 12


def test_tendermint_block_latency_slightly_above_interval():
    # Paper Section VI: "the observed latency being slightly higher
    # than" the 5-second configured wait.
    sim, _net, chain, engine = make_tendermint()
    engine.start()
    sim.run(until=300.0)
    gaps = [
        b.header.timestamp - a.header.timestamp
        for a, b in zip(chain.blocks[1:], chain.blocks[2:])
    ]
    mean_gap = sum(gaps) / len(gaps)
    assert 5.0 < mean_gap < 6.5


def test_tendermint_quorum_size():
    _sim, _net, _chain, engine = make_tendermint(validators=10)
    assert engine.quorum_size() == 7
    _sim, _net, _chain, engine2 = make_tendermint(validators=4)
    assert engine2.quorum_size() == 3


def test_tendermint_proposer_rotates():
    _sim, _net, _chain, engine = make_tendermint()
    proposers = {engine.proposer_for(h) for h in range(10)}
    assert len(proposers) == 10


def test_tendermint_executes_mempool():
    from repro.chain.tx import TransferPayload, sign_transaction
    from repro.crypto.keys import KeyPair

    sim, _net, chain, engine = make_tendermint()
    alice, bob = KeyPair.from_name("a"), KeyPair.from_name("b")
    chain.fund({alice.address: 100})
    engine.start()
    tx = sign_transaction(alice, TransferPayload(to=bob.address, amount=7))
    sim.schedule(1.0, lambda: chain.submit(tx))
    sim.run(until=15.0)
    assert chain.receipts[tx.tx_id].success
    assert chain.balance_of(bob.address) == 7


def test_tendermint_stop_halts_production():
    sim, _net, chain, engine = make_tendermint()
    engine.start()
    sim.run(until=20.0)
    height = chain.height
    engine.stop()
    sim.run(until=60.0)
    assert chain.height == height


def test_pow_mean_interval_approximates_target():
    sim = Simulator(seed=3)
    net = Network(sim)
    chain = Chain(ethereum_params(2), verify_signatures=False)
    regions = LatencyModel().assign_regions(10, sim.rng)
    engine = PowEngine(sim, net, chain, regions)
    engine.start()
    sim.run(until=3000.0)
    count = chain.height
    # Exponential with mean 15 s: ~200 blocks in 3000 s, generous band.
    assert 150 <= count <= 260
    gaps = [
        b.header.timestamp - a.header.timestamp
        for a, b in zip(chain.blocks[1:], chain.blocks[2:])
    ]
    mean_gap = sum(gaps) / len(gaps)
    assert 12.0 < mean_gap < 18.0


def test_pow_intervals_are_memoryless_spread():
    sim = Simulator(seed=4)
    net = Network(sim)
    chain = Chain(ethereum_params(2), verify_signatures=False)
    engine = PowEngine(sim, net, chain, LatencyModel().assign_regions(5, sim.rng))
    engine.start()
    sim.run(until=6000.0)
    gaps = sorted(
        b.header.timestamp - a.header.timestamp
        for a, b in zip(chain.blocks[1:], chain.blocks[2:])
    )
    # Exponential distribution: median ~ ln(2)*15 ~ 10.4, clearly below mean.
    median = gaps[len(gaps) // 2]
    assert median < 13.0


def test_pow_respects_hash_power_weights():
    sim = Simulator(seed=5)
    net = Network(sim)
    chain = Chain(ethereum_params(2), verify_signatures=False)
    regions = LatencyModel().assign_regions(2, sim.rng)
    engine = PowEngine(sim, net, chain, regions, hash_powers=[9.0, 1.0])
    engine.start()
    sim.run(until=9000.0)
    wins = [b.header.proposer for b in chain.blocks[1:]]
    share = wins.count(engine.miners[0]) / len(wins)
    assert share > 0.8


def test_pow_stop():
    sim = Simulator(seed=6)
    net = Network(sim)
    chain = Chain(ethereum_params(2), verify_signatures=False)
    engine = PowEngine(sim, net, chain, LatencyModel().assign_regions(3, sim.rng))
    engine.start()
    sim.run(until=100.0)
    engine.stop()
    height = chain.height
    sim.run(until=300.0)
    assert chain.height == height
