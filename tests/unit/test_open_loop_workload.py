"""Unit tests for the open-loop (Poisson) workload generator."""

import pytest

from repro.sharding.cluster import ShardedCluster
from repro.workload.generators import OpenLoopTransferWorkload


def run(rate, duration=200.0, capacity=130, seed=41):
    cluster = ShardedCluster(num_shards=1, seed=seed, max_block_txs=capacity)
    workload = OpenLoopTransferWorkload(cluster, offered_rate=rate, seed=7)
    return workload.run(duration, warmup=30.0)


def test_underload_achieves_offered_rate():
    report = run(rate=8.0)
    assert abs(report.achieved_rate - 8.0) < 1.5
    assert report.backlog_at_end < 30
    assert report.mean_latency < 8.0


def test_overload_clamps_at_capacity():
    report = run(rate=80.0, capacity=50)
    capacity_tps = 50 / 5.4
    assert 0.6 * capacity_tps < report.achieved_rate < capacity_tps * 1.2
    assert report.backlog_at_end > 500
    # Latency samples cover in-window submissions; under this much
    # overload few (possibly none) complete — if any did, they queued.
    if report.latency.all_samples():
        assert report.mean_latency > 10.0


def test_submission_counts_are_poisson_scale():
    report = run(rate=10.0, duration=300.0)
    # ~3000 expected submissions in the window; allow wide Poisson band.
    assert 2500 < report.submitted < 3500


def test_reports_are_reproducible():
    a = run(rate=6.0, seed=9)
    b = run(rate=6.0, seed=9)
    assert a.submitted == b.submitted
    assert a.completed == b.completed
    assert a.mean_latency == b.mean_latency
