"""Unit tests for optimistic parallel block execution.

Covers the three pipeline stages in isolation — footprint speculation,
wave scheduling, speculative execution + ordered commit — plus the
fallback paths that guarantee a wrong footprint can cost time but never
correctness: mis-speculation re-execution, the
:class:`SpeculationUnsupported` serial escape, and aborted
transactions inside waves.  End-to-end worker-count equivalence over
whole chains lives in ``tests/property/test_parallel_determinism.py``.
"""

import pytest

from repro.apps.scoin import SCoin
from repro.chain.chain import Chain
from repro.chain.params import burrow_params
from repro.chain.tx import (
    CallPayload,
    DeployPayload,
    Move1Payload,
    TransferPayload,
    sign_transaction,
)
from repro.crypto.keys import Address, KeyPair
from repro.errors import SpeculationUnsupported
from repro.parallel import Footprint, footprint_of, is_barrier, schedule_block
from repro.parallel.executor import ParallelBlockReport
from repro.parallel.pools import SignatureVerifierPool
from repro.statedb.state import SpeculationFrame, WorldState
from repro.merkle.iavl import IAVLTree

ALICE = KeyPair.from_name("par-alice")
BOB = KeyPair.from_name("par-bob")
CAROL = KeyPair.from_name("par-carol")
USERS = [KeyPair.from_name(f"par-user-{i}") for i in range(8)]


def transfer(sender: KeyPair, to: Address, amount: int = 1, nonce: int = 0, meta=None):
    tx = sign_transaction(sender, TransferPayload(to=to, amount=amount), nonce=nonce)
    if meta:
        tx.meta.update(meta)
    return tx


# ----------------------------------------------------------------------
# Footprints
# ----------------------------------------------------------------------


class TestFootprints:
    def test_transfer_footprint_is_exact(self):
        tx = transfer(ALICE, BOB.address, 5)
        fp = footprint_of(tx)
        assert ("b", ALICE.address) in fp.reads
        assert ("b", ALICE.address) in fp.writes
        assert ("b", BOB.address) in fp.writes
        assert ("b", BOB.address) not in fp.reads

    def test_call_footprint_covers_address_arguments(self):
        target = Address(b"\x01" * 20)
        counterparty = Address(b"\x02" * 20)
        tx = sign_transaction(
            ALICE, CallPayload(target, "transfer_tokens", (counterparty, 1)), nonce=0
        )
        fp = footprint_of(tx)
        for contract in (target, counterparty):
            assert ("s*", contract) in fp.writes
            assert ("c", contract) in fp.reads

    def test_declared_footprint_wins_over_speculation(self):
        tx = transfer(ALICE, BOB.address)
        tx.meta["footprint"] = {"reads": [("s", b"x", b"k")], "writes": []}
        fp = footprint_of(tx)
        assert fp.reads == {("s", b"x", b"k")}
        assert fp.writes == frozenset()

    def test_gas_price_adds_fee_keys(self):
        tx = transfer(ALICE, BOB.address)
        fp = footprint_of(tx, gas_price=1)
        fee_pool = Address(b"\xfe" * 20)
        assert ("b", fee_pool) in fp.writes

    def test_balance_write_overlap_alone_is_not_a_conflict(self):
        # Two credits to the same account commute (pure deltas).
        a = Footprint(frozenset(), frozenset({("b", BOB.address)}))
        b = Footprint(frozenset(), frozenset({("b", BOB.address)}))
        assert not a.conflicts_with(b)

    def test_read_vs_write_overlap_is_a_conflict(self):
        a = Footprint(frozenset({("b", BOB.address)}), frozenset())
        b = Footprint(frozenset(), frozenset({("b", BOB.address)}))
        assert a.conflicts_with(b)
        assert b.conflicts_with(a)

    def test_storage_wildcard_matches_concrete_slot(self):
        contract = Address(b"\x03" * 20)
        wild = Footprint(frozenset({("s*", contract)}), frozenset())
        concrete = Footprint(frozenset(), frozenset({("s", contract, b"slot")}))
        assert wild.conflicts_with(concrete)
        other = Footprint(frozenset(), frozenset({("s", Address(b"\x04" * 20), b"slot")}))
        assert not wild.conflicts_with(other)

    def test_barriers(self):
        move1 = sign_transaction(
            ALICE, Move1Payload(contract=Address(b"\x05" * 20), target_chain=2), nonce=0
        )
        deploy = sign_transaction(ALICE, DeployPayload(code_hash=b"\x00" * 32), nonce=1)
        plain = transfer(ALICE, BOB.address)
        forced = transfer(ALICE, BOB.address, meta={"barrier": True})
        traced = transfer(ALICE, BOB.address, meta={"telemetry": ("t", "s")})
        assert is_barrier(move1)
        assert is_barrier(deploy)
        assert is_barrier(forced)
        assert is_barrier(traced)
        assert not is_barrier(plain)


# ----------------------------------------------------------------------
# Scheduler
# ----------------------------------------------------------------------


class TestScheduler:
    def test_disjoint_transfers_share_one_wave(self):
        txs = [transfer(USERS[2 * i], USERS[2 * i + 1].address) for i in range(4)]
        schedule = schedule_block(txs)
        assert schedule.wave_count == 1
        assert schedule.items[0].wave == [0, 1, 2, 3]

    def test_conflicting_chain_serializes_in_order(self):
        # B's debit reads the balance A credits: strict wave chain.
        txs = [
            transfer(ALICE, BOB.address, nonce=1),
            transfer(BOB, CAROL.address, nonce=2),
            transfer(CAROL, ALICE.address, nonce=3),
        ]
        schedule = schedule_block(txs)
        assert [item.wave for item in schedule.items] == [[0], [1], [2]]

    def test_barrier_flushes_and_runs_alone(self):
        barrier = sign_transaction(ALICE, DeployPayload(code_hash=b"\x00" * 32), nonce=9)
        txs = [
            transfer(USERS[0], USERS[1].address),
            barrier,
            transfer(USERS[2], USERS[3].address),
        ]
        schedule = schedule_block(txs)
        kinds = [("serial" if item.serial is not None else "wave") for item in schedule.items]
        assert kinds == ["wave", "serial", "wave"]
        assert schedule.items[1].serial == 1

    def test_placement_is_monotone_in_block_order(self):
        # tx2 conflicts with nothing open at wave 1, but must not land
        # below tx1's wave: cross-wave commits are only safe when wave
        # order refines block order (see the scheduler docstring).
        txs = [
            transfer(ALICE, BOB.address, nonce=1),   # wave 0
            transfer(BOB, CAROL.address, nonce=2),   # conflicts -> wave 1
            transfer(USERS[0], USERS[1].address, nonce=3),  # independent
        ]
        schedule = schedule_block(txs)
        wave_of = {}
        for position, item in enumerate(schedule.items):
            for index in item.wave or []:
                wave_of[index] = position
        assert wave_of[2] >= wave_of[1] > wave_of[0]

    def test_unknown_payload_footprint_serializes(self):
        tx = transfer(ALICE, BOB.address)
        tx.payload = None  # unknown to speculation
        schedule = schedule_block([tx])
        assert schedule.items[0].serial == 0


# ----------------------------------------------------------------------
# Speculation frames
# ----------------------------------------------------------------------


class TestSpeculationFrame:
    def make_state(self):
        state = WorldState(1, IAVLTree)
        state.add_balance(ALICE.address, 100)
        state.commit()
        return state

    def test_buffered_ops_do_not_touch_shared_state(self):
        state = self.make_state()
        frame = SpeculationFrame()
        state.begin_speculation(frame)
        try:
            state.sub_balance(ALICE.address, 30)
            state.add_balance(BOB.address, 30)
            assert state.balance_of(ALICE.address) == 70  # overlay view
        finally:
            state.end_speculation()
        assert state.balance_of(ALICE.address) == 100  # shared untouched
        assert ("b", ALICE.address) in frame.reads
        assert ("b", BOB.address) in frame.writes

    def test_apply_replays_through_the_journal(self):
        state = self.make_state()
        frame = SpeculationFrame()
        state.begin_speculation(frame)
        try:
            state.sub_balance(ALICE.address, 30)
            state.add_balance(BOB.address, 30)
        finally:
            state.end_speculation()
        snap = state.snapshot()
        state.apply_speculation(frame)
        assert state.balance_of(BOB.address) == 30
        state.revert(snap)  # the replay is journaled like serial ops
        assert state.balance_of(BOB.address) == 0

    def test_frame_snapshot_revert_restores_overlay(self):
        state = self.make_state()
        frame = SpeculationFrame()
        state.begin_speculation(frame)
        try:
            state.sub_balance(ALICE.address, 10)
            snap = state.snapshot()
            state.sub_balance(ALICE.address, 50)
            state.revert(snap)
            assert state.balance_of(ALICE.address) == 90
        finally:
            state.end_speculation()
        assert frame.balance_delta(ALICE.address) == -10

    def test_unsupported_operations_raise(self):
        state = self.make_state()
        frame = SpeculationFrame()
        state.begin_speculation(frame)
        try:
            with pytest.raises(SpeculationUnsupported):
                state.create_contract(Address(b"\x06" * 20), b"\x00" * 32, b"")
            with pytest.raises(SpeculationUnsupported):
                state.account(ALICE.address)
        finally:
            state.end_speculation()


# ----------------------------------------------------------------------
# Parallel block executor (end-to-end on one chain)
# ----------------------------------------------------------------------


def make_chain(workers: int) -> Chain:
    chain = Chain(burrow_params(1, executor_workers=workers), verify_signatures=True)
    chain.fund({kp.address: 10**9 for kp in [ALICE, BOB, CAROL] + USERS})
    return chain


def receipts_signature(chain: Chain, txs):
    return [
        (
            chain.receipts[tx.tx_id].success,
            chain.receipts[tx.tx_id].gas_used,
            chain.receipts[tx.tx_id].error,
            chain.receipts[tx.tx_id].gas_by_category,
        )
        for tx in txs
    ]


class TestParallelBlockExecutor:
    def run_block(self, workers: int, txs):
        chain = make_chain(workers)
        for tx in txs:
            chain.submit(tx)
        chain.produce_block(timestamp=1.0)
        return chain

    def block_txs(self):
        txs = [transfer(USERS[2 * i], USERS[2 * i + 1].address, 7, nonce=i) for i in range(4)]
        txs.append(transfer(ALICE, BOB.address, 10**18, nonce=99))  # fails: broke
        txs.append(sign_transaction(ALICE, DeployPayload(code_hash=SCoin.CODE_HASH), nonce=100))
        txs.append(transfer(BOB, CAROL.address, 3, nonce=101))
        return txs

    def test_parallel_matches_serial_receipts_and_root(self):
        txs = self.block_txs()
        serial = self.run_block(0, txs)
        expected = receipts_signature(serial, txs)
        for workers in (1, 2, 4):
            chain = self.run_block(workers, [tx for tx in txs])
            assert receipts_signature(chain, txs) == expected
            assert chain.state.committed_root == serial.state.committed_root
            report = chain.last_parallel_report
            assert report.tx_count == len(txs)
            assert report.barrier_count == 1  # the deploy
            assert report.committed + report.reexecuted + report.unsupported + report.barrier_count >= len(txs)

    def test_wrong_declared_footprint_triggers_reexecution(self):
        # Both txs move ALICE -> BOB money but *declare* disjoint empty
        # footprints, so the scheduler waves them together; validation
        # must catch the overlap and re-run the second serially.
        lie = {"footprint": {"reads": [], "writes": []}}
        t1 = transfer(ALICE, BOB.address, 50, nonce=1, meta=dict(lie))
        t2 = transfer(BOB, CAROL.address, 25, nonce=2, meta=dict(lie))
        serial = self.run_block(0, [transfer(ALICE, BOB.address, 50, nonce=1),
                                    transfer(BOB, CAROL.address, 25, nonce=2)])
        chain = self.run_block(2, [t1, t2])
        report = chain.last_parallel_report
        assert report.wave_count == 1 and report.max_wave_size == 2
        assert report.reexecuted >= 1
        assert chain.state.committed_root == serial.state.committed_root
        assert chain.balance_of(CAROL.address) == serial.balance_of(CAROL.address)

    def test_unsupported_operations_fall_back_serially(self):
        # new_account_for creates a contract mid-call: unspeculatable.
        chain = make_chain(2)
        deploy = sign_transaction(ALICE, DeployPayload(code_hash=SCoin.CODE_HASH), nonce=1)
        chain.submit(deploy)
        chain.produce_block(timestamp=1.0)
        token = chain.receipts[deploy.tx_id].return_value
        txs = [
            sign_transaction(kp, CallPayload(token, "new_account_for", (kp.address,)), nonce=10 + i)
            for i, kp in enumerate(USERS[:3])
        ]
        for tx in txs:
            chain.submit(tx)
        chain.produce_block(timestamp=2.0)
        assert all(chain.receipts[tx.tx_id].success for tx in txs)
        report = chain.last_parallel_report
        assert report.unsupported >= 1
        # Account contracts exist despite the serial fallback.
        for tx in txs:
            account, _salt = chain.receipts[tx.tx_id].return_value
            assert chain.state.contract(account) is not None

    def test_aborted_transactions_inside_waves_match_serial(self):
        txs = [
            transfer(USERS[0], USERS[1].address, 5, nonce=1),
            transfer(USERS[2], USERS[3].address, 10**18, nonce=2),  # aborts
            transfer(USERS[4], USERS[5].address, 5, nonce=3),
        ]
        serial = self.run_block(0, txs)
        chain = self.run_block(4, [tx for tx in txs])
        assert receipts_signature(chain, txs) == receipts_signature(serial, txs)
        assert not chain.receipts[txs[1].tx_id].success
        assert chain.state.committed_root == serial.state.committed_root

    def test_parallel_metrics_are_worker_count_independent(self):
        from repro.telemetry.exporters import registry_to_prometheus

        def run(workers):
            from repro.telemetry import Telemetry

            telemetry = Telemetry.enabled()
            chain = Chain(
                burrow_params(1, executor_workers=workers),
                verify_signatures=True,
                telemetry=telemetry,
            )
            chain.fund({kp.address: 10**9 for kp in USERS})
            for i in range(4):
                chain.submit(transfer(USERS[2 * i], USERS[2 * i + 1].address, nonce=i))
            chain.produce_block(timestamp=1.0)
            # The measured wall-clock instruments are real time and
            # therefore the one deliberately nondeterministic part of
            # the family (docs/PERFORMANCE.md); everything else must be
            # byte-identical across worker counts.
            return "\n".join(
                line
                for line in registry_to_prometheus(telemetry.metrics).splitlines()
                if "executor_parallel_measured_" not in line
            )

        assert run(1) == run(2) == run(4)


# ----------------------------------------------------------------------
# Report model
# ----------------------------------------------------------------------


class TestReportModel:
    def test_lane_model_arithmetic(self):
        report = ParallelBlockReport(
            workers=4,
            sequential_seconds=1.0,
            wave_costs=[[1.0, 1.0, 1.0, 1.0]],
        )
        assert report.modeled_seconds(4) == pytest.approx(2.0)
        assert report.modeled_serial_seconds() == pytest.approx(5.0)
        assert report.modeled_speedup(4) == pytest.approx(2.5)
        # More lanes than work: bounded by the largest single cost.
        assert report.modeled_seconds(16) == pytest.approx(2.0)

    def test_absorb_accumulates(self):
        a = ParallelBlockReport(workers=2, tx_count=3, wave_count=1, committed=3,
                                sequential_seconds=0.5, wave_costs=[[0.1, 0.2]])
        b = ParallelBlockReport(workers=2, tx_count=2, wave_count=1, reexecuted=1,
                                sequential_seconds=0.25, wave_costs=[[0.3]])
        a.absorb(b)
        assert a.tx_count == 5 and a.wave_count == 2 and a.reexecuted == 1
        assert a.sequential_seconds == pytest.approx(0.75)
        assert a.wave_costs == [[0.1, 0.2], [0.3]]


# ----------------------------------------------------------------------
# Signature verifier pool
# ----------------------------------------------------------------------


class TestSignatureVerifierPool:
    def test_prewarm_seeds_the_verify_cache(self):
        txs = [transfer(USERS[i], USERS[(i + 1) % 8].address, nonce=i) for i in range(8)]
        with SignatureVerifierPool(workers=2) as pool:
            verdicts = pool.prewarm(txs)
        assert verdicts == [True] * len(txs)
        for tx in txs:
            assert tx._verify_cache is not None
            assert tx.verify() is True  # cache hit, same verdict

    def test_prewarm_flags_tampered_signatures(self):
        good = transfer(ALICE, BOB.address, nonce=1)
        bad = transfer(BOB, CAROL.address, nonce=2)
        bad.signature = b"\x00" * len(bad.signature)
        with SignatureVerifierPool(workers=2) as pool:
            verdicts = pool.prewarm([good, bad])
        assert verdicts == [True, False]
        assert bad.verify() is False
