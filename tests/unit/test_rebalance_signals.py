"""Signal-layer tests: monitor registration, hotness, plane composition."""

import pytest

from repro.chain.tx import CallPayload, TransferPayload, sign_transaction
from repro.crypto.keys import Address, KeyPair
from repro.errors import ConfigError
from repro.gateway import Gateway, GatewayLimits
from repro.node import Node
from repro.chain.params import burrow_params
from repro.rebalance.signals import (
    ConflictRateSignal,
    ContractHotnessSignal,
    GatewayQueueSignal,
    LoadSignal,
    SignalPlane,
)
from repro.sharding.balancer import ShardLoadMonitor
from repro.sharding.cluster import ShardedCluster
from tests.helpers import ALICE, ManualClock, StoreContract, deploy_store, produce


def addr(n: int) -> Address:
    return Address(bytes([n]) * 20)


def load_shard(cluster, index, count, clock):
    """Fill one block on a shard with ``count`` plain transfers."""
    sender = KeyPair.from_name("signal-sender")
    cluster.fund_all({sender.address: 1_000_000})
    for _ in range(count):
        cluster.shard(index).submit(
            sign_transaction(sender, TransferPayload(to=addr(9), amount=1))
        )
    cluster.shard(index).produce_block(clock.tick())


# ----------------------------------------------------------------------
# ShardLoadMonitor: late registration + protocol conformance
# ----------------------------------------------------------------------


def test_monitor_accepts_late_shard_registration():
    cluster = ShardedCluster(num_shards=2, seed=3, max_block_txs=10)
    clock = ManualClock()
    monitor = ShardLoadMonitor()  # no shards at construction
    assert monitor.shard_values() == {}
    assert monitor.register_shard(cluster.shard(0)) == 0
    load_shard(cluster, 0, 8, clock)
    assert monitor.utilization(0) == pytest.approx(0.8)
    # A shard registered after blocks already flowed starts clean.
    assert monitor.register_shard(cluster.shard(1)) == 1
    assert monitor.utilization(1) == 0.0
    load_shard(cluster, 1, 2, clock)
    assert monitor.shard_values() == {
        0: pytest.approx(0.8),
        1: pytest.approx(0.2),
    }


def test_monitor_is_a_load_signal():
    monitor = ShardLoadMonitor()
    assert isinstance(monitor, LoadSignal)
    assert monitor.name == "utilization"
    assert monitor.contract_values() == {}


# ----------------------------------------------------------------------
# Per-contract hotness
# ----------------------------------------------------------------------


def test_hotness_ranks_contracts_and_feeds_metrics():
    cluster = ShardedCluster(num_shards=1, seed=5, max_block_txs=50)
    chain = cluster.shard(0)
    clock = ManualClock()
    hot_store = deploy_store(chain, clock, ALICE)
    cold_store = deploy_store(chain, clock, ALICE)
    signal = ContractHotnessSignal(window_blocks=4)
    signal.watch(0, chain)
    callers = [KeyPair.from_name(f"caller-{i}") for i in range(4)]
    cluster.fund_all({kp.address: 1_000_000 for kp in callers})
    for _round in range(4):
        for i, kp in enumerate(callers):
            chain.submit(
                sign_transaction(kp, CallPayload(hot_store, "put", (i, 1)))
            )
        chain.submit(
            sign_transaction(callers[0], CallPayload(cold_store, "put", (0, 1)))
        )
        produce(chain, clock)
    values = signal.contract_values()
    assert values[hot_store] > values[cold_store] > 0.0
    assert signal.tx_rate(hot_store) == pytest.approx(4.0)
    # The signal doubles as the per-contract metrics producer.
    metrics = chain.telemetry.metrics
    assert metrics.value(
        "contract_txs_total", chain=chain.chain_id, contract=hot_store.hex
    ) == 16
    assert metrics.value(
        "contract_gas_total", chain=chain.chain_id, contract=hot_store.hex
    ) > 0


def test_hotness_window_slides():
    cluster = ShardedCluster(num_shards=1, seed=5, max_block_txs=50)
    chain = cluster.shard(0)
    clock = ManualClock()
    store = deploy_store(chain, clock, ALICE)
    signal = ContractHotnessSignal(window_blocks=2)
    signal.watch(0, chain)
    caller = KeyPair.from_name("slider")
    cluster.fund_all({caller.address: 1_000_000})
    chain.submit(sign_transaction(caller, CallPayload(store, "put", (1, 1))))
    produce(chain, clock)
    assert signal.tx_rate(store) > 0.0
    # Two empty blocks push the activity out of the window entirely.
    produce(chain, clock, count=2)
    assert signal.tx_rate(store) == 0.0


# ----------------------------------------------------------------------
# Plane composition
# ----------------------------------------------------------------------


class _StubSignal:
    def __init__(self, name, shard_values, contract_values=None):
        self.name = name
        self._shard = shard_values
        self._contract = contract_values or {}

    def shard_values(self):
        return self._shard

    def contract_values(self):
        return self._contract


def test_plane_composes_weighted_pressure():
    placement = {addr(1): 0}
    plane = SignalPlane(
        weights={"utilization": 1.0, "conflict": 0.5},
        locate=placement.get,
    )
    plane.attach(_StubSignal("utilization", {0: 0.8, 1: 0.2}))
    plane.attach(_StubSignal("conflict", {0: 0.4}, {addr(1): 3.0}))
    view = plane.sample(now=12.0)
    assert view.at == 12.0
    assert view.pressure(0) == pytest.approx(0.8 + 0.5 * 0.4)
    assert view.pressure(1) == pytest.approx(0.2)
    assert view.pressure(99) == 0.0
    assert view.shard_ids() == [0, 1]
    assert view.coolest() == 1
    assert view.contract_hotness == {addr(1): 3.0}
    assert view.hottest_contracts(0) == [(addr(1), 3.0)]
    assert view.hottest_contracts(1) == []


def test_plane_rejects_duplicate_signal_names():
    plane = SignalPlane()
    plane.attach(_StubSignal("utilization", {}))
    with pytest.raises(ConfigError):
        plane.attach(_StubSignal("utilization", {}))
    assert plane.signal_names() == ["utilization"]
    assert plane.signal("utilization") is not None
    assert plane.signal("missing") is None


def test_cluster_load_plane_is_fully_wired():
    cluster = ShardedCluster(num_shards=2, seed=3, max_block_txs=10)
    clock = ManualClock()
    plane = cluster.load_plane()
    assert plane.signal_names() == ["utilization", "hotness", "conflict"]
    store = deploy_store(cluster.shard(0), clock, ALICE)
    caller = KeyPair.from_name("plane-caller")
    cluster.fund_all({caller.address: 1_000_000})
    for _round in range(4):
        for key in range(8):
            cluster.shard(0).submit(
                sign_transaction(caller, CallPayload(store, "put", (key, 1)))
            )
        cluster.shard(0).produce_block(clock.tick())
        cluster.shard(1).produce_block(clock.now)
    view = plane.sample(cluster.sim.now)
    assert view.pressure(0) > view.pressure(1)
    assert view.contract_shard[store] == 0
    assert view.hottest_contracts(0)[0][0] == store


# ----------------------------------------------------------------------
# Conflict and gateway signals
# ----------------------------------------------------------------------


def test_conflict_signal_is_zero_without_speculation():
    cluster = ShardedCluster(num_shards=2, seed=3, executor_workers=0)
    signal = ConflictRateSignal()
    for index in range(2):
        signal.watch(index, cluster.shard(index))
    assert signal.shard_values() == {0: 0.0, 1: 0.0}


def test_gateway_queue_signal_normalizes_depth():
    node = Node([burrow_params(1), burrow_params(2, name="two")], seed=1)
    gateway = Gateway(
        node, GatewayLimits(max_queue_depth=10, max_blocked=10)
    )
    signal = GatewayQueueSignal(gateway)
    # Default mapping: chain id - 1 (the cluster convention).
    assert signal.shard_values() == {0: 0.0, 1: 0.0}
    # Explicit mapping drops unmapped chains instead of guessing.
    scoped = GatewayQueueSignal(gateway, chain_to_shard={2: 7})
    assert scoped.shard_values() == {7: 0.0}
