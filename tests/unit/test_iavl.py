"""Unit tests for the Tendermint-style IAVL tree."""

import pytest

from repro.merkle.iavl import EMPTY_ROOT, IAVLTree
from repro.merkle.proof import verify_proof


def key(i):
    return f"k{i:04d}".encode()


def test_empty_root():
    assert IAVLTree().root_hash == EMPTY_ROOT


def test_set_get_overwrite():
    tree = IAVLTree()
    tree.set(b"a", b"1")
    assert tree.get(b"a") == b"1"
    tree.set(b"a", b"2")
    assert tree.get(b"a") == b"2"
    assert tree.get(b"missing") is None


def test_contains_and_len():
    tree = IAVLTree()
    for i in range(10):
        tree.set(key(i), b"v")
    assert key(3) in tree
    assert key(99) not in tree
    assert len(tree) == 10


def test_items_sorted():
    tree = IAVLTree()
    for i in [5, 1, 9, 3, 7]:
        tree.set(key(i), str(i).encode())
    assert [k for k, _ in tree.items()] == [key(i) for i in [1, 3, 5, 7, 9]]


def test_delete():
    tree = IAVLTree()
    for i in range(8):
        tree.set(key(i), b"v")
    assert tree.delete(key(3))
    assert tree.get(key(3)) is None
    assert not tree.delete(key(3))
    assert len(tree) == 7


def test_root_is_deterministic_for_same_op_sequence():
    # Like Tendermint's IAVL, the root hash is history-dependent (tree
    # shape depends on rotation order) but fully deterministic: all
    # replicas applying the same ordered writes commit the same root.
    a = IAVLTree()
    b = IAVLTree()
    for i in [5, 1, 9, 3, 7, 2]:
        a.set(key(i), str(i).encode())
        b.set(key(i), str(i).encode())
    assert a.root_hash == b.root_hash


def test_balanced_height():
    tree = IAVLTree()
    for i in range(256):  # sorted insertion: worst case for a plain BST
        tree.set(key(i), b"v")
    # AVL height bound: 1.44 * log2(n) ~ 11.5 for 256 leaves
    assert tree.height() <= 12


def test_proofs_verify():
    tree = IAVLTree()
    for i in range(64):
        tree.set(key(i), str(i).encode())
    for i in range(64):
        proof = tree.prove(key(i))
        assert proof.value == str(i).encode()
        assert verify_proof(proof, tree.root_hash)


def test_proof_of_missing_key_raises():
    tree = IAVLTree()
    tree.set(b"a", b"1")
    with pytest.raises(KeyError):
        tree.prove(b"b")


def test_proof_invalidated_by_later_write():
    tree = IAVLTree()
    for i in range(16):
        tree.set(key(i), b"v")
    proof = tree.prove(key(0))
    old_root = tree.root_hash
    tree.set(key(5), b"changed")
    assert verify_proof(proof, old_root)
    assert not verify_proof(proof, tree.root_hash)


def test_snapshot_is_stable_and_forks():
    tree = IAVLTree()
    for i in range(16):
        tree.set(key(i), b"v")
    snap = tree.snapshot()
    frozen_root = snap.root_hash
    tree.set(key(3), b"changed")
    assert snap.root_hash == frozen_root  # live writes don't leak in
    assert tree.root_hash != frozen_root
    assert snap.get(key(3)) == b"v"
    snap.set(key(3), b"forked")  # writing the snapshot forks it
    assert tree.get(key(3)) == b"changed"


def test_history_independence_flag():
    assert IAVLTree.history_independent is False


def test_proof_length_logarithmic():
    tree = IAVLTree()
    for i in range(1024):
        tree.set(key(i), b"v")
    assert len(tree.prove(key(512))) <= 15
