"""Unit tests for the IBC bridge choreography and phase accounting."""

import pytest

from repro.chain.chain import Chain
from repro.chain.params import burrow_params
from repro.chain.tx import CallPayload, DeployPayload, sign_transaction
from repro.core.registry import ChainRegistry
from repro.crypto.keys import KeyPair
from repro.ibc.bridge import IBCBridge, MovePhases
from repro.ibc.headers import connect_chains
from repro.net.sim import Simulator
from tests.helpers import ALICE, BOB, StoreContract


@pytest.fixture
def bridge_world():
    """Two Burrow-flavoured chains with block production driven by
    simple simulator ticks (no consensus engine needed here)."""
    sim = Simulator(seed=5)
    registry = ChainRegistry()
    a = Chain(burrow_params(1), registry, verify_signatures=False)
    b = Chain(burrow_params(2), registry, verify_signatures=False)
    connect_chains([a, b])

    def tick(chain):
        def produce():
            chain.produce_block(sim.now)
            sim.schedule(5.0, produce)
        return produce

    sim.schedule(5.0, tick(a))
    sim.schedule(5.0, tick(b))
    bridge = IBCBridge(sim, [a, b])
    return sim, a, b, bridge


def deploy(sim, chain, bridge):
    tx = sign_transaction(ALICE, DeployPayload(code_hash=StoreContract.CODE_HASH))
    done = []
    chain.wait_for(tx.tx_id, done.append)
    chain.submit(tx)
    while not done:
        sim.run(until=sim.now + 5.0)
    assert done[0].success
    return done[0].return_value


def test_move_phases_fill_in_order(bridge_world):
    sim, a, b, bridge = bridge_world
    addr = deploy(sim, a, bridge)
    done = []
    phases = bridge.move_contract(ALICE, addr, 1, 2, on_done=done.append)
    assert phases.move1_included_at is None  # nothing happened yet
    sim.run(until=sim.now + 200.0)
    assert done and done[0].success
    p = done[0]
    assert p.started_at <= p.move1_included_at <= p.proof_ready_at
    assert p.proof_ready_at <= p.move2_included_at == p.completed_at
    assert p.total_time > 0
    assert p.gas.get("move1", 0) > 0
    assert p.gas.get("move2", 0) > 0
    assert b.location_of(addr) == b.chain_id


def test_completions_run_and_are_metered(bridge_world):
    sim, a, b, bridge = bridge_world
    addr = deploy(sim, a, bridge)

    def completion(mover: KeyPair):
        return sign_transaction(mover, CallPayload(addr, "put", (1, 42)))

    done = []
    bridge.move_contract(ALICE, addr, 1, 2, completions=(completion,), on_done=done.append)
    sim.run(until=sim.now + 300.0)
    assert done and done[0].success
    assert done[0].gas.get("complete", 0) >= 21_000
    assert done[0].completed_at > done[0].move2_included_at
    assert b.view(addr, "get_value", 1) == 42


def test_failed_move1_reports_failure(bridge_world):
    sim, a, _b, bridge = bridge_world
    addr = deploy(sim, a, bridge)
    done = []
    # BOB is not the owner: the moveTo hook reverts.
    bridge.move_contract(BOB, addr, 1, 2, on_done=done.append)
    sim.run(until=sim.now + 100.0)
    assert done and not done[0].success
    assert "owner" in done[0].error
    assert done[0].move2_included_at is None


def test_failed_completion_reports_failure(bridge_world):
    sim, a, b, bridge = bridge_world
    addr = deploy(sim, a, bridge)

    def bad_completion(mover: KeyPair):
        return sign_transaction(mover, CallPayload(addr, "no_such_method"))

    done = []
    bridge.move_contract(ALICE, addr, 1, 2, completions=(bad_completion,), on_done=done.append)
    sim.run(until=sim.now + 300.0)
    assert done and not done[0].success
    # The move itself landed; only the completion failed.
    assert done[0].move2_included_at is not None
    assert b.location_of(addr) == b.chain_id


def test_move_phases_gas_bucketing():
    phases = MovePhases(
        contract=None, source_chain=1, target_chain=2, started_at=0.0
    )
    phases.add_gas({"move1": 10, "execution": 5}, fallback="move1")
    phases.add_gas({"create": 7, "code_deposit": 3, "move2": 4}, fallback="move2")
    phases.add_gas({"complete": 2, "execution": 1}, fallback="complete")
    assert phases.gas == {"move1": 15, "create": 10, "move2": 4, "complete": 3}
