"""Unit tests for the telemetry subsystem: metrics registry label
handling, histogram percentiles, tracer/span mechanics and the three
exporter formats."""

import json

import pytest

from repro.telemetry import (
    MemorySink,
    MetricsRegistry,
    NullSink,
    Telemetry,
    Tracer,
)
from repro.telemetry.exporters import (
    chrome_trace_json,
    registry_to_prometheus,
    spans_to_chrome_trace,
    spans_to_jsonl,
)
from repro.telemetry.phases import (
    PHASES,
    aggregate_phases,
    breakdown_rows,
    slowest_traces,
    trace_phases,
)
from repro.telemetry.tracer import (
    NULL_SPAN,
    current_span,
    pop_span,
    push_span,
)


# ----------------------------------------------------------------------
# MetricsRegistry
# ----------------------------------------------------------------------


class TestRegistryLabels:
    def test_same_labels_same_instrument(self):
        registry = MetricsRegistry()
        a = registry.counter("txs_total", chain=1, status="ok")
        b = registry.counter("txs_total", status="ok", chain=1)  # order-free
        assert a is b
        a.inc()
        assert b.value == 1

    def test_different_labels_different_instruments(self):
        registry = MetricsRegistry()
        ok = registry.counter("txs_total", status="ok")
        failed = registry.counter("txs_total", status="failed")
        assert ok is not failed
        ok.inc(3)
        failed.inc()
        assert registry.value("txs_total", status="ok") == 3
        assert registry.value("txs_total", status="failed") == 1
        assert registry.total("txs_total") == 4

    def test_kind_collision_rejected(self):
        registry = MetricsRegistry()
        registry.counter("depth", chain=1)
        with pytest.raises(TypeError):
            registry.gauge("depth", chain=1)

    def test_counter_rejects_negative(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.counter("ops").inc(-1)

    def test_gauge_set_inc_dec(self):
        gauge = MetricsRegistry().gauge("depth")
        gauge.set(10)
        gauge.inc(2)
        gauge.dec(5)
        assert gauge.value == 7


class TestHistogramPercentiles:
    def test_percentiles_match_cdf_convention(self):
        from repro.metrics.cdf import percentile

        histogram = MetricsRegistry().histogram("latency")
        samples = [5.0, 1.0, 3.0, 2.0, 4.0]
        for s in samples:
            histogram.observe(s)
        for q in (0.0, 0.5, 0.9, 0.99, 1.0):
            assert histogram.percentile(q) == percentile(samples, q)

    def test_count_sum_mean(self):
        histogram = MetricsRegistry().histogram("latency")
        for s in (1.0, 2.0, 3.0):
            histogram.observe(s)
        assert histogram.count == 3
        assert histogram.sum == 6.0
        assert histogram.mean == 2.0

    def test_empty_percentile_raises(self):
        with pytest.raises(ValueError):
            MetricsRegistry().histogram("empty").percentile(0.5)


# ----------------------------------------------------------------------
# Tracer and spans
# ----------------------------------------------------------------------


def _clocked_tracer():
    clock = [0.0]
    tracer = Tracer(clock=lambda: clock[0], sink=MemorySink())
    return clock, tracer


class TestTracer:
    def test_disabled_tracer_returns_null_span(self):
        tracer = Tracer(sink=NullSink())
        assert tracer.start_trace("move") is NULL_SPAN
        assert tracer.start_span("child", NULL_SPAN) is NULL_SPAN
        assert tracer.span_from_meta("tx", {"telemetry": (1, 2)}) is NULL_SPAN
        assert not tracer.enabled

    def test_span_tree_and_durations(self):
        clock, tracer = _clocked_tracer()
        root = tracer.start_trace("move", source_chain=1)
        clock[0] = 2.0
        child = tracer.start_span("move1", root, chain=1)
        clock[0] = 5.0
        child.end(success=True)
        clock[0] = 7.0
        root.end(success=True)
        assert child.trace_id == root.trace_id
        assert child.parent_id == root.span_id
        assert child.duration == 3.0
        assert root.duration == 7.0

    def test_meta_propagation(self):
        _clock, tracer = _clocked_tracer()
        root = tracer.start_trace("move")
        meta = {}
        Tracer.inject(root, meta)
        span = tracer.span_from_meta("tx.exec", meta, chain=2)
        assert span.trace_id == root.trace_id
        assert span.parent_id == root.span_id
        tracer.meta_event(meta, "mempool.admit", chain=2)
        assert [e.name for e in root.events] == ["mempool.admit"]

    def test_active_span_stack(self):
        _clock, tracer = _clocked_tracer()
        span = tracer.start_trace("move")
        assert current_span() is NULL_SPAN
        push_span(span)
        assert current_span() is span
        current_span().event("inside")
        pop_span()
        assert current_span() is NULL_SPAN
        assert span.events[0].name == "inside"

    def test_header_watch_attribution(self):
        _clock, tracer = _clocked_tracer()
        root = tracer.start_trace("move", source_chain=1, target_chain=2)
        tracer.watch_header(root, source_chain=1, height=5, observer=2)
        tracer.header_relayed(1, 2, 4)  # below the watch height: ignored
        tracer.header_relayed(1, 2, 5)
        tracer.header_accepted(2, 1, 5)
        assert [e.name for e in root.events] == ["relay.forward", "lightclient.accept"]
        assert not tracer.has_watches()  # both halves fired

    def test_watches_dropped_when_trace_ends(self):
        _clock, tracer = _clocked_tracer()
        root = tracer.start_trace("move", source_chain=1)
        tracer.watch_header(root, source_chain=1, height=5)
        root.end(success=False)
        assert not tracer.has_watches()

    def test_fault_event_scoping(self):
        _clock, tracer = _clocked_tracer()
        touched = tracer.start_trace("move", source_chain=1, target_chain=2)
        untouched = tracer.start_trace("move", source_chain=3, target_chain=4)
        tracer.fault_event("crash", chain=2)
        tracer.fault_event("drop", chain=0)  # network-wide: tags both
        assert [e.attrs["kind"] for e in touched.events] == ["crash", "drop"]
        assert [e.attrs["kind"] for e in untouched.events] == ["drop"]


# ----------------------------------------------------------------------
# Exporters
# ----------------------------------------------------------------------


def _sample_spans():
    clock, tracer = _clocked_tracer()
    root = tracer.start_trace("move", source_chain=1, target_chain=2)
    clock[0] = 1.0
    child = tracer.start_span("move1", root, chain=1)
    child.event("mempool.admit")
    clock[0] = 3.0
    child.end(success=True)
    clock[0] = 4.0
    root.end(success=True)
    return tracer.finished_spans()


class TestExporters:
    def test_jsonl_shape(self):
        lines = spans_to_jsonl(_sample_spans()).splitlines()
        assert len(lines) == 2
        records = [json.loads(line) for line in lines]
        root = next(r for r in records if r["parent"] is None)
        child = next(r for r in records if r["parent"] is not None)
        assert root["name"] == "move"
        assert child["name"] == "move1"
        assert child["trace"] == root["trace"]
        assert child["events"][0]["name"] == "mempool.admit"

    def test_chrome_trace_shape(self):
        document = spans_to_chrome_trace(_sample_spans())
        events = document["traceEvents"]
        assert document["displayTimeUnit"] == "ms"
        phases = {}
        for event in events:
            phases.setdefault(event["ph"], []).append(event)
        # one process-name metadata record per trace
        assert [e["name"] for e in phases["M"]] == ["process_name"]
        # complete ("X") events carry microsecond ts/dur and tid=chain
        complete = {e["name"]: e for e in phases["X"]}
        assert complete["move1"]["ts"] == 1_000_000
        assert complete["move1"]["dur"] == 2_000_000
        assert complete["move1"]["tid"] == 1
        # instants ("i") for span events
        assert phases["i"][0]["name"] == "mempool.admit"
        # the full document round-trips as deterministic JSON
        parsed = json.loads(chrome_trace_json(_sample_spans()))
        assert len(parsed["traceEvents"]) == len(events)

    def test_prometheus_exposition(self):
        registry = MetricsRegistry()
        registry.counter("txs_total", chain=1, status="ok").inc(5)
        registry.gauge("depth").set(2)
        histogram = registry.histogram("lat", chain=1)
        for v in (1.0, 2.0, 3.0, 4.0):
            histogram.observe(v)
        text = registry_to_prometheus(registry)
        assert "# TYPE txs_total counter" in text
        assert 'txs_total{chain="1",status="ok"} 5' in text
        assert "depth 2" in text
        assert "# TYPE lat summary" in text
        # nearest-rank convention (repro.metrics.cdf): p50 of 1..4 is 3
        assert 'lat{chain="1",quantile="0.5"} 3' in text
        assert 'lat_count{chain="1"} 4' in text
        assert 'lat_sum{chain="1"} 10' in text


# ----------------------------------------------------------------------
# Phase analysis
# ----------------------------------------------------------------------


def _move_trace(tracer, clock, durations, success=True):
    root = tracer.start_trace("move", source_chain=1, target_chain=2)
    for phase, duration in zip(PHASES, durations):
        span = tracer.start_span(phase, root, chain=1)
        clock[0] += duration
        span.end(success=True)
    root.end(success=success)
    return root


class TestPhases:
    def test_trace_phases_and_aggregate(self):
        clock, tracer = _clocked_tracer()
        _move_trace(tracer, clock, (1.0, 10.0, 0.5, 3.0, 2.0))
        _move_trace(tracer, clock, (3.0, 20.0, 0.5, 5.0, 0.0))
        traces = trace_phases(tracer.finished_spans())
        assert len(traces) == 2
        assert traces[0].phase("confirm.wait") == 10.0
        assert traces[0].total == 16.5
        means = aggregate_phases(traces)
        assert means["move1"] == 2.0
        assert means["confirm.wait"] == 15.0

    def test_open_traces_excluded(self):
        clock, tracer = _clocked_tracer()
        tracer.start_trace("move")  # never ended
        assert trace_phases(tracer.finished_spans()) == []

    def test_breakdown_confirm_wait_is_separate(self):
        clock, tracer = _clocked_tracer()
        _move_trace(tracer, clock, (1.0, 10.0, 0.5, 3.0, 2.0))
        rows = breakdown_rows(trace_phases(tracer.finished_spans()))
        by_phase = {row[0]: row for row in rows}
        assert set(by_phase) == set(PHASES) | {"total"}
        assert by_phase["confirm.wait"][1] == 10.0
        assert by_phase["move2"][1] == 3.0

    def test_slowest_traces_order(self):
        clock, tracer = _clocked_tracer()
        _move_trace(tracer, clock, (1.0, 5.0, 0.0, 1.0, 0.0))
        _move_trace(tracer, clock, (1.0, 50.0, 0.0, 1.0, 0.0))
        traces = trace_phases(tracer.finished_spans())
        slowest = slowest_traces(traces, top=1)
        assert len(slowest) == 1
        assert slowest[0].trace_id == traces[1].trace_id


# ----------------------------------------------------------------------
# Telemetry bundle
# ----------------------------------------------------------------------


def test_bundle_defaults_disabled():
    bundle = Telemetry.disabled()
    assert not bundle.enabled_tracing
    assert Telemetry().enabled_tracing is False
    assert Telemetry.enabled().enabled_tracing is True


def test_bundle_bind_clock():
    clock = [7.0]
    bundle = Telemetry.enabled()
    bundle.bind_clock(lambda: clock[0])
    span = bundle.tracer.start_trace("move")
    assert span.start == 7.0


# ----------------------------------------------------------------------
# Histogram memory bound
# ----------------------------------------------------------------------


class TestHistogramBound:
    def test_cap_keeps_count_sum_mean_exact(self):
        from repro.telemetry.metrics import Histogram

        histogram = Histogram("latency", (), max_samples=5)
        for i in range(1, 11):  # 1..10, only 1..5 retained
            histogram.observe(float(i))
        assert histogram.count == 10
        assert histogram.sum == 55.0
        assert histogram.mean == 5.5
        assert histogram.dropped == 5
        assert histogram.samples() == (1.0, 2.0, 3.0, 4.0, 5.0)

    def test_percentiles_rank_over_retained_prefix(self):
        from repro.telemetry.metrics import Histogram

        histogram = Histogram("latency", (), max_samples=5)
        for i in range(1, 11):
            histogram.observe(float(i))
        assert histogram.percentile(1.0) == 5.0  # 6..10 were dropped

    def test_nothing_dropped_below_cap(self):
        from repro.telemetry.metrics import DEFAULT_MAX_SAMPLES

        histogram = MetricsRegistry().histogram("latency")
        assert histogram.max_samples == DEFAULT_MAX_SAMPLES
        histogram.observe(1.0)
        assert histogram.dropped == 0

    def test_cap_must_be_positive(self):
        from repro.telemetry.metrics import Histogram

        with pytest.raises(ValueError):
            Histogram("latency", (), max_samples=0)

    def test_dropped_sample_in_exposition_only_when_nonzero(self):
        from repro.telemetry.metrics import Histogram

        registry = MetricsRegistry()
        registry.histogram("latency", chain=1).observe(1.0)
        assert "latency_dropped" not in registry_to_prometheus(registry)
        # force drops through a tiny private histogram
        tiny = Histogram("tiny", (("chain", "1"),), max_samples=1)
        tiny.observe(1.0)
        tiny.observe(2.0)
        registry._instruments[("tiny", (("chain", "1"),))] = tiny
        text = registry_to_prometheus(registry)
        assert 'tiny_dropped{chain="1"} 1' in text
        assert 'tiny_count{chain="1"} 2' in text


# ----------------------------------------------------------------------
# Prometheus label escaping
# ----------------------------------------------------------------------


class TestPrometheusEscaping:
    def test_quote_backslash_newline_escaped(self):
        registry = MetricsRegistry()
        registry.counter("ops_total", detail='say "hi"\\now\n').inc()
        text = registry_to_prometheus(registry)
        assert 'detail="say \\"hi\\"\\\\now\\n"' in text
        assert "\n\n" not in text  # the raw newline never leaks

    def test_escaped_line_round_trips(self):
        # Parse the exposition line back the way a Prometheus scraper
        # would and recover the original label value.
        original = 'tricky "value" with \\ and\nnewline'
        registry = MetricsRegistry()
        registry.counter("ops_total", detail=original).inc()
        (line,) = [
            l
            for l in registry_to_prometheus(registry).splitlines()
            if l.startswith("ops_total{")
        ]
        escaped = line[len('ops_total{detail="') : line.rindex('"')]
        unescaped = (
            escaped.replace("\\\\", "\x00")
            .replace('\\"', '"')
            .replace("\\n", "\n")
            .replace("\x00", "\\")
        )
        assert unescaped == original

    def test_plain_labels_unchanged(self):
        registry = MetricsRegistry()
        registry.counter("ops_total", chain=1, status="ok").inc(2)
        assert 'ops_total{chain="1",status="ok"} 2' in registry_to_prometheus(
            registry
        )
