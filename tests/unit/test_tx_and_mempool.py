"""Unit tests for transactions, canonical encoding and the mempool."""

import pytest

from repro.chain.mempool import Mempool
from repro.chain.tx import (
    CallPayload,
    DeployPayload,
    Move1Payload,
    TransferPayload,
    canonical_encode,
    sign_transaction,
)
from repro.crypto.keys import Address, KeyPair

ALICE = KeyPair.from_name("alice")
BOB = KeyPair.from_name("bob")
TARGET = Address(b"\x01" * 20)


def test_canonical_encode_is_injective_on_basic_shapes():
    samples = [
        1, "1", b"1", True, None, (1, 2), ((1,), 2), {"a": 1}, Address(b"\x02" * 20),
        1.5, (1, (2,)),
    ]
    encoded = [canonical_encode(s) for s in samples]
    assert len(set(encoded)) == len(encoded)


def test_canonical_encode_dict_order_insensitive():
    assert canonical_encode({"a": 1, "b": 2}) == canonical_encode({"b": 2, "a": 1})


def test_canonical_encode_rejects_unknown():
    with pytest.raises(TypeError):
        canonical_encode(object())


def test_sign_and_verify_roundtrip():
    tx = sign_transaction(ALICE, TransferPayload(to=TARGET, amount=5))
    assert tx.verify()
    assert tx.sender == ALICE.address
    assert tx.tx_id


def test_tampered_payload_fails_verification():
    tx = sign_transaction(ALICE, TransferPayload(to=TARGET, amount=5))
    tx.payload = TransferPayload(to=TARGET, amount=500)
    assert not tx.verify()


def test_wrong_sender_fails_verification():
    tx = sign_transaction(ALICE, TransferPayload(to=TARGET, amount=5))
    tx.sender = BOB.address
    assert not tx.verify()


def test_identical_payloads_get_distinct_ids():
    a = sign_transaction(ALICE, TransferPayload(to=TARGET, amount=5))
    b = sign_transaction(ALICE, TransferPayload(to=TARGET, amount=5))
    assert a.tx_id != b.tx_id  # process-unique nonce differentiates


def test_all_payload_kinds_signable():
    for payload in [
        TransferPayload(to=TARGET, amount=1),
        DeployPayload(code_hash=b"\x00" * 32, args=(1, TARGET), salt=4),
        CallPayload(target=TARGET, method="m", args=(b"x",), value=2),
        Move1Payload(contract=TARGET, target_chain=9),
    ]:
        assert sign_transaction(ALICE, payload).verify()


def test_mempool_fifo_and_dedup():
    pool = Mempool()
    txs = [sign_transaction(ALICE, TransferPayload(to=TARGET, amount=i)) for i in range(5)]
    for tx in txs:
        assert pool.add(tx)
    assert not pool.add(txs[0])  # duplicate
    assert len(pool) == 5
    taken = pool.take(3)
    assert [t.tx_id for t in taken] == [t.tx_id for t in txs[:3]]
    assert len(pool) == 2


def test_mempool_take_more_than_available():
    pool = Mempool()
    tx = sign_transaction(ALICE, TransferPayload(to=TARGET, amount=1))
    pool.add(tx)
    assert len(pool.take(10)) == 1
    assert pool.take(10) == []


def test_mempool_remove():
    pool = Mempool()
    tx = sign_transaction(ALICE, TransferPayload(to=TARGET, amount=1))
    pool.add(tx)
    assert pool.remove(tx.tx_id) is tx
    assert pool.remove(tx.tx_id) is None
    assert tx.tx_id not in pool


def test_mempool_sender_index_queries():
    pool = Mempool()
    mine = [sign_transaction(ALICE, TransferPayload(to=TARGET, amount=i)) for i in range(3)]
    other = sign_transaction(BOB, TransferPayload(to=TARGET, amount=9))
    for tx in mine + [other]:
        pool.add(tx)
    assert pool.pending_count_of(ALICE.address) == 3
    assert pool.pending_count_of(BOB.address) == 1
    assert pool.has_pending_nonce(ALICE.address, mine[0].nonce)
    assert not pool.has_pending_nonce(ALICE.address, other.nonce)
    pool.remove(mine[0].tx_id)
    assert pool.pending_count_of(ALICE.address) == 2
    assert not pool.has_pending_nonce(ALICE.address, mine[0].nonce)
    pool.take(10)
    assert pool.pending_count_of(ALICE.address) == 0
    assert pool.pending_count_of(BOB.address) == 0


class _IterationCountingDict(dict):
    """A dict that counts every whole-structure traversal.

    Membership tests, gets and single-key inserts stay uncounted — the
    point is to prove mempool admission never *scans* the pool.
    """

    def __init__(self):
        super().__init__()
        self.traversals = 0

    def __iter__(self):
        self.traversals += 1
        return super().__iter__()

    def keys(self):
        self.traversals += 1
        return super().keys()

    def values(self):
        self.traversals += 1
        return super().values()

    def items(self):
        self.traversals += 1
        return super().items()


def test_mempool_admission_never_scans_at_depth_10k():
    """The admission-path satellite: with 10 000 transactions already
    pending, admitting, probing and rejecting must not traverse the
    pool — O(1) dict work only, which is better than the O(log n)
    requirement."""
    pool = Mempool()
    spy = _IterationCountingDict()
    pool._pending = spy  # OrderedDict-compatible for add/`in`
    senders = [KeyPair.from_name(f"mp-{i % 50}") for i in range(50)]
    txs = [
        sign_transaction(senders[i % 50], TransferPayload(to=TARGET, amount=i))
        for i in range(10_000)
    ]
    for tx in txs:
        assert pool.add(tx)
    assert len(pool) == 10_000
    spy.traversals = 0
    probe = sign_transaction(ALICE, TransferPayload(to=TARGET, amount=1))
    assert pool.add(probe)            # admission at depth 10k
    assert not pool.add(probe)        # duplicate rejection at depth 10k
    assert pool.pending_count_of(senders[0].address) == 200
    assert pool.has_pending_nonce(ALICE.address, probe.nonce)
    assert not pool.has_pending_nonce(BOB.address, probe.nonce)
    assert spy.traversals == 0, "admission path iterated over the pool"
