"""Statistical validation of the simulation's stochastic models.

Uses scipy to test distributional claims rather than eyeballing means:
PoW inter-block times must be exponential (the memoryless property
behind confirmation-depth math), Tendermint block gaps must be tightly
concentrated just above the configured interval, and the latency
model's jitter must stay log-normal-shaped around the base.
"""

import numpy as np
import pytest
from scipy import stats

from repro.chain.chain import Chain
from repro.chain.params import burrow_params, ethereum_params
from repro.consensus.pow import PowEngine
from repro.consensus.tendermint import TendermintEngine
from repro.net.latency import LatencyModel
from repro.net.sim import Simulator
from repro.net.transport import Network


def pow_gaps(seed, horizon=20_000.0):
    sim = Simulator(seed=seed)
    net = Network(sim)
    chain = Chain(ethereum_params(2), verify_signatures=False)
    engine = PowEngine(sim, net, chain, LatencyModel().assign_regions(5, sim.rng))
    engine.start()
    sim.run(until=horizon)
    times = [b.header.timestamp for b in chain.blocks[1:]]
    return np.diff(np.array(times))


def test_pow_interblock_times_are_exponential():
    gaps = pow_gaps(seed=11)
    assert len(gaps) > 800
    # Kolmogorov-Smirnov against Exp(mean): must not reject at 1%.
    result = stats.kstest(gaps, "expon", args=(0, gaps.mean()))
    assert result.pvalue > 0.01
    # Mean close to the configured 15 s.
    assert 14.0 < gaps.mean() < 16.0
    # Memorylessness spot check: P(X > 30 | X > 15) ~ P(X > 15).
    p_tail = (gaps > 15).mean()
    p_cond = (gaps > 30).sum() / max((gaps > 15).sum(), 1)
    assert abs(p_tail - p_cond) < 0.1


def test_pow_confirmation_wait_matches_erlang():
    # Waiting p blocks is an Erlang(p, 1/15) sum: mean p*15, and its
    # coefficient of variation is 1/sqrt(p) — the statistical reason a
    # deeper p gives *relatively* steadier waits.
    gaps = pow_gaps(seed=12)
    p = 6
    n = (len(gaps) // p) * p
    waits = gaps[:n].reshape(-1, p).sum(axis=1)
    assert abs(waits.mean() - p * 15.0) < 7.0
    cv = waits.std() / waits.mean()
    assert abs(cv - 1 / np.sqrt(p)) < 0.12


def test_tendermint_gaps_concentrated_above_interval():
    sim = Simulator(seed=13)
    net = Network(sim)
    chain = Chain(burrow_params(1), verify_signatures=False)
    engine = TendermintEngine(sim, net, chain, LatencyModel().assign_regions(10, sim.rng))
    engine.start()
    sim.run(until=3_000.0)
    gaps = np.diff(np.array([b.header.timestamp for b in chain.blocks[1:]]))
    assert len(gaps) > 400
    # Every gap exceeds the configured 5 s wait...
    assert gaps.min() > 5.0
    # ...by a small quorum-round-trip margin, with tiny dispersion
    # (nothing like the exponential spread of PoW).
    assert gaps.mean() < 6.0
    assert gaps.std() < 0.5
    # Formally: a KS test against an exponential of the same mean must
    # strongly reject.
    result = stats.kstest(gaps, "expon", args=(0, gaps.mean()))
    assert result.pvalue < 1e-6


def test_latency_jitter_is_lognormal_around_base():
    import random

    model = LatencyModel()
    rng = random.Random(17)
    base = model.base_latency("us-east-1", "ap-northeast-1")
    samples = np.array(
        [model.sample("us-east-1", "ap-northeast-1", rng) for _ in range(3_000)]
    )
    logs = np.log(samples / base)
    # log of the multiplier ~ Normal(0, 0.06)
    assert abs(logs.mean()) < 0.01
    assert abs(logs.std() - 0.06) < 0.01
    result = stats.kstest(logs, "norm", args=(0, 0.06))
    assert result.pvalue > 0.01


def test_region_assignment_is_uniform():
    import random

    model = LatencyModel()
    assigned = model.assign_regions(14_000, random.Random(23))
    counts = np.array([assigned.count(name) for name in model.region_names])
    chi2 = ((counts - 1000.0) ** 2 / 1000.0).sum()
    # 13 dof; 1% critical value ~ 27.7
    assert chi2 < 27.7
