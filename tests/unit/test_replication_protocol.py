"""Units for the replica-update wire format and verification rules.

Updates are built by a real source chain (so the account proofs come
from the same retained snapshots Move2 uses) and verified against a
real peer's light client — the exact trust path a replication relay
exercises, minus the relay.
"""

import dataclasses

import pytest

from repro.crypto.hashing import keccak
from repro.errors import ProofError, UnknownRootError
from repro.replicate.protocol import parse_contract_leaf
from tests.helpers import (
    ALICE,
    BOB,
    CallPayload,
    ManualClock,
    deploy_store,
    make_chain_pair,
    produce,
    run_tx,
)


def _provable(chain) -> int:
    """The newest height whose proof header is p-confirmed on a peer
    that has seen every header (what a relay computes as ``desired``)."""
    return (
        chain.height
        - chain.params.confirmation_depth
        - chain.params.state_root_lag
    )


def _replicated_store():
    """A StoreContract on burrow (chain 1), replication-enabled, with
    one committed write and enough blocks for a provable height."""
    burrow, ethereum, clock = *make_chain_pair(), ManualClock()
    address = deploy_store(burrow, clock, ALICE)
    burrow.enable_replication(address)
    receipt = run_tx(burrow, clock, ALICE, CallPayload(address, "put", (1, 42)))
    assert receipt.success, receipt.error
    # Confirmation headroom: the proof header must be p-confirmed on
    # the peer (instant relays keep the peer's store at our head).
    produce(burrow, clock, 3)
    return burrow, ethereum, clock, address


def test_full_update_verifies_and_yields_the_committed_image():
    burrow, ethereum, clock, address = _replicated_store()
    update = burrow.build_replica_update(address, upto=_provable(burrow))
    assert update.is_full
    assert update.source_chain == 1
    assert update.proof_height == update.state_height + burrow.params.state_root_lag
    leaf, image = update.verify(
        ethereum.light_client, burrow.params.tree_factory
    )
    assert leaf.location == burrow.chain_id
    assert leaf.code_hash == keccak(update.code)
    record = burrow.state.contract(address)
    assert image == dict(record.storage)


def test_delta_update_applies_on_top_of_the_base_image():
    burrow, ethereum, clock, address = _replicated_store()
    first = burrow.build_replica_update(address, upto=_provable(burrow))
    _leaf, base = first.verify(ethereum.light_client, burrow.params.tree_factory)

    receipt = run_tx(burrow, clock, ALICE, CallPayload(address, "put", (2, 7)))
    assert receipt.success
    produce(burrow, clock, 3)
    update = burrow.build_replica_update(
        address, since=first.state_height, upto=_provable(burrow)
    )
    assert not update.is_full
    leaf, image = update.verify(
        ethereum.light_client, burrow.params.tree_factory, base_image=base
    )
    assert image == dict(burrow.state.contract(address).storage)
    assert leaf.storage_root != first.account_proof.value[81:113]


def test_delta_update_without_base_image_is_rejected():
    burrow, ethereum, clock, address = _replicated_store()
    first = burrow.build_replica_update(address, upto=_provable(burrow))
    first.verify(ethereum.light_client, burrow.params.tree_factory)
    run_tx(burrow, clock, ALICE, CallPayload(address, "put", (3, 9)))
    produce(burrow, clock, 3)
    update = burrow.build_replica_update(
        address, since=first.state_height, upto=_provable(burrow)
    )
    with pytest.raises(ProofError, match="without a base image"):
        update.verify(ethereum.light_client, burrow.params.tree_factory)


def test_torn_image_cannot_reproduce_the_proven_root():
    burrow, ethereum, clock, address = _replicated_store()
    update = burrow.build_replica_update(address, upto=_provable(burrow))
    torn = dict(update.image)
    victim = next(iter(torn))
    torn[victim] = b"\x00tampered"
    forged = dataclasses.replace(update, image=torn)
    with pytest.raises(ProofError, match="does not reproduce"):
        forged.verify(ethereum.light_client, burrow.params.tree_factory)


def test_tampered_code_is_rejected_against_the_proven_hash():
    burrow, ethereum, clock, address = _replicated_store()
    update = burrow.build_replica_update(address, upto=_provable(burrow))
    forged = dataclasses.replace(update, code=b"class Evil: pass")
    with pytest.raises(ProofError, match="code"):
        forged.verify(ethereum.light_client, burrow.params.tree_factory)


def test_unconfirmed_height_fails_vs_not_integrity():
    """An update at the newest height is not yet p-confirmed on the
    peer: VS must fail closed (UnknownRootError), distinct from the
    integrity failures that halt a mirror."""
    burrow, ethereum, clock, address = _replicated_store()
    newest = burrow.height - burrow.params.state_root_lag
    update = burrow.build_replica_update(address, upto=newest)
    with pytest.raises(UnknownRootError):
        update.verify(ethereum.light_client, burrow.params.tree_factory)


def test_update_for_a_foreign_light_client_fails_vs():
    """A verifier that never observed the source chain rejects the
    update outright."""
    burrow, _ethereum, clock, address = _replicated_store()
    lonely, _peer = make_chain_pair()  # fresh world, no burrow headers
    update = burrow.build_replica_update(address, upto=_provable(burrow))
    with pytest.raises(UnknownRootError):
        update.verify(lonely.light_client, burrow.params.tree_factory)


def test_size_bytes_counts_payload_code_and_proof():
    burrow, _ethereum, clock, address = _replicated_store()
    update = burrow.build_replica_update(address, upto=_provable(burrow))
    slots = sum(len(k) + len(v) for k, v in update.image.items())
    expected = slots + len(update.code) + update.account_proof.size_bytes()
    assert update.size_bytes() == expected


def test_parse_contract_leaf_rejects_foreign_shapes():
    with pytest.raises(ProofError):
        parse_contract_leaf(b"A" + b"\x00" * 112)  # account leaf tag
    with pytest.raises(ProofError):
        parse_contract_leaf(b"C" + b"\x00" * 40)  # truncated


def test_parse_contract_leaf_roundtrips_the_proven_fields():
    burrow, _ethereum, clock, address = _replicated_store()
    update = burrow.build_replica_update(address, upto=_provable(burrow))
    leaf = parse_contract_leaf(update.account_proof.value)
    record = burrow.state.contract(address)
    assert leaf.balance == record.balance
    assert leaf.location == burrow.chain_id
    assert leaf.move_nonce == record.move_nonce
    assert leaf.code_hash == record.code_hash
