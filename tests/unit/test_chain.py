"""Unit tests for the Chain facade: blocks, receipts, header roots."""

import pytest

from repro.chain.block import transactions_root
from repro.chain.chain import Chain
from repro.chain.params import burrow_params, ethereum_params
from repro.chain.tx import CallPayload, DeployPayload, TransferPayload, sign_transaction
from repro.crypto.keys import KeyPair
from tests.helpers import ALICE, BOB, ManualClock, StoreContract, deploy_store, produce, run_tx


@pytest.fixture
def burrow():
    return Chain(burrow_params(1))


@pytest.fixture
def ethereum():
    return Chain(ethereum_params(2))


def test_genesis_block(burrow):
    assert burrow.height == 0
    assert burrow.head.header.height == 0
    assert burrow.head.header.proposer == "genesis"


def test_fund_updates_root_and_balance(burrow):
    root_before = burrow.head.header.state_root
    burrow.fund({ALICE.address: 100})
    assert burrow.balance_of(ALICE.address) == 100
    assert burrow.state.committed_root != root_before


def test_transfer_through_block(burrow):
    burrow.fund({ALICE.address: 100})
    clock = ManualClock()
    receipt = run_tx(burrow, clock, ALICE, TransferPayload(to=BOB.address, amount=40))
    assert receipt.success
    assert receipt.block_height == 1
    assert burrow.balance_of(BOB.address) == 40
    assert burrow.balance_of(ALICE.address) == 60


def test_failed_tx_reverts_and_reports(burrow):
    clock = ManualClock()
    receipt = run_tx(burrow, clock, ALICE, TransferPayload(to=BOB.address, amount=40))
    assert not receipt.success
    assert "insufficient" in receipt.error
    assert burrow.balance_of(BOB.address) == 0


def test_signature_verification_enforced(burrow):
    burrow.fund({ALICE.address: 100})
    clock = ManualClock()
    tx = sign_transaction(ALICE, TransferPayload(to=BOB.address, amount=1))
    tx.signature = b"\x00" * 32
    burrow.submit(tx)
    produce(burrow, clock)
    assert not burrow.receipts[tx.tx_id].success
    assert "signature" in burrow.receipts[tx.tx_id].error


def test_block_respects_max_txs():
    params = burrow_params(7, max_block_txs=2)
    chain = Chain(params)
    chain.fund({ALICE.address: 100})
    for i in range(5):
        chain.submit(sign_transaction(ALICE, TransferPayload(to=BOB.address, amount=1)))
    block = chain.produce_block(5.0)
    assert len(block.transactions) == 2
    assert len(chain.mempool) == 3


def test_duplicate_submit_rejected(burrow):
    tx = sign_transaction(ALICE, TransferPayload(to=BOB.address, amount=1))
    assert burrow.submit(tx)
    assert not burrow.submit(tx)


def test_header_state_root_lag_burrow(burrow):
    # Burrow: header n carries the post-state root of block n-1.
    burrow.fund({ALICE.address: 100})
    clock = ManualClock()
    run_tx(burrow, clock, ALICE, TransferPayload(to=BOB.address, amount=1))
    produce(burrow, clock)
    h1 = burrow.blocks[1].header
    h2 = burrow.blocks[2].header
    assert h1.state_root == burrow._post_roots[0]
    assert h2.state_root == burrow._post_roots[1]


def test_header_state_root_immediate_ethereum(ethereum):
    ethereum.fund({ALICE.address: 100})
    clock = ManualClock()
    run_tx(ethereum, clock, ALICE, TransferPayload(to=BOB.address, amount=1))
    h1 = ethereum.blocks[1].header
    assert h1.state_root == ethereum._post_roots[1]


def test_proof_height_helpers():
    burrow = Chain(burrow_params(1))
    ethereum = Chain(ethereum_params(2))
    # Burrow: lag 1 + depth 1 = the paper's two-block wait — a tx at
    # height n is provable to peers once head >= n+2.
    assert burrow.proof_header_height(10) == 11
    assert burrow.proof_ready_height(10) == 12
    # Ethereum: lag 0, p 6 -> head >= n+6.
    assert ethereum.proof_header_height(10) == 10
    assert ethereum.proof_ready_height(10) == 16


def test_wait_for_fires_on_inclusion_and_immediately(burrow):
    burrow.fund({ALICE.address: 10})
    clock = ManualClock()
    tx = sign_transaction(ALICE, TransferPayload(to=BOB.address, amount=1))
    seen = []
    burrow.wait_for(tx.tx_id, seen.append)
    burrow.submit(tx)
    produce(burrow, clock)
    assert len(seen) == 1 and seen[0].success
    # Already-included: callback fires synchronously.
    burrow.wait_for(tx.tx_id, seen.append)
    assert len(seen) == 2


def test_subscribe_and_unsubscribe(burrow):
    clock = ManualClock()
    calls = []

    def listener(block, receipts):
        calls.append(block.height)

    burrow.subscribe(listener)
    produce(burrow, clock, 2)
    burrow.unsubscribe(listener)
    produce(burrow, clock)
    assert calls == [1, 2]


def test_deploy_and_view_through_chain(burrow):
    clock = ManualClock()
    addr = deploy_store(burrow, clock, ALICE)
    receipt = run_tx(burrow, clock, ALICE, CallPayload(addr, "put", (3, 30)))
    assert receipt.success
    assert burrow.view(addr, "get_value", 3) == 30
    assert burrow.location_of(addr) == burrow.chain_id


def test_transactions_root_commits_order():
    t1 = sign_transaction(ALICE, TransferPayload(to=BOB.address, amount=1))
    t2 = sign_transaction(ALICE, TransferPayload(to=BOB.address, amount=2))
    assert transactions_root([t1, t2]) != transactions_root([t2, t1])
    assert transactions_root([]) == transactions_root([])


def test_gas_breakdown_in_receipts(burrow):
    clock = ManualClock()
    tx = sign_transaction(ALICE, DeployPayload(code_hash=StoreContract.CODE_HASH))
    tx.meta["gas_category"] = "complete"
    burrow.submit(tx)
    produce(burrow, clock)
    receipt = burrow.receipts[tx.tx_id]
    assert receipt.success
    assert receipt.gas_by_category.get("create", 0) > 0
    assert receipt.gas_by_category.get("complete", 0) > 0  # tx base landed here
    # Burrow charges no per-byte code deposit (Section VIII).
    assert receipt.gas_by_category.get("code_deposit", 0) == 0
