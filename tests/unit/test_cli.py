"""Unit tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


def run_cli(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out


def test_info(capsys):
    code, out = run_cli(capsys, "info")
    assert code == 0
    assert "repro.core" in out
    assert "Move1/Move2" in out


def test_move_demo(capsys):
    code, out = run_cli(capsys, "move-demo")
    assert code == 0
    assert "Move1 included" in out
    assert "Move2 executed" in out
    assert "locked" in out


def test_relay_demo(capsys):
    code, out = run_cli(capsys, "relay-demo")
    assert code == 0
    assert "minted 700 pegged units" in out
    assert "redeemed 700 native units" in out


def test_trace_command(capsys):
    code, out = run_cli(capsys, "trace", "--shards", "2", "--ops", "300", "--series")
    assert code == 0
    assert "throughput" in out
    assert "cross-shard" in out
    assert "0 failures" in out


def test_scoin_command(capsys):
    code, out = run_cli(
        capsys, "scoin", "--shards", "2", "--clients", "8",
        "--cross", "0.1", "--duration", "150",
    )
    assert code == 0
    assert "ops/s" in out
    assert "single-shard" in out


def test_ibc_command(capsys):
    code, out = run_cli(capsys, "ibc", "--app", "store1", "--direction", "b2e")
    assert code == 0
    assert "wait + proof" in out
    assert "Mgas" in out


def test_unknown_command_rejected():
    with pytest.raises(SystemExit):
        main(["definitely-not-a-command"])


def test_parser_defaults():
    parser = build_parser()
    args = parser.parse_args(["scoin"])
    assert args.shards == 4
    assert args.cross == pytest.approx(0.10)
    assert not args.retry
