"""Unit tests for the chain statistics collector."""

import pytest

from repro.chain.stats import collect_chain_stats
from repro.chain.tx import CallPayload, TransferPayload, sign_transaction
from tests.helpers import (
    ALICE,
    BOB,
    ManualClock,
    StoreContract,
    deploy_store,
    full_move,
    make_chain_pair,
    produce,
    run_tx,
)


@pytest.fixture
def busy_chain():
    burrow, ethereum = make_chain_pair()
    clock = ManualClock()
    burrow.fund({ALICE.address: 1_000})
    addr = deploy_store(burrow, clock, ALICE)
    run_tx(burrow, clock, ALICE, CallPayload(addr, "put", (1, 10)))
    run_tx(burrow, clock, ALICE, TransferPayload(to=BOB.address, amount=5))
    failing = run_tx(burrow, clock, BOB, TransferPayload(to=ALICE.address, amount=10**9))
    assert not failing.success
    assert full_move(burrow, ethereum, clock, ALICE, addr).success
    return burrow, ethereum


def test_stats_counts_txs_and_kinds(busy_chain):
    burrow, _ethereum = busy_chain
    stats = collect_chain_stats(burrow)
    assert stats.total_txs == stats.tx_kinds.get("deploy", 0) + sum(
        v for k, v in stats.tx_kinds.items() if k != "deploy"
    )
    assert stats.tx_kinds["deploy"] == 1
    assert stats.tx_kinds["call"] == 1
    assert stats.tx_kinds["transfer"] == 2
    assert stats.tx_kinds["move1"] == 1
    assert stats.failed_txs == 1
    assert 0 < stats.success_rate < 1


def test_stats_tracks_moves(busy_chain):
    burrow, ethereum = busy_chain
    source = collect_chain_stats(burrow)
    target = collect_chain_stats(ethereum)
    assert source.moves_out == 1
    assert source.moves_in == 0
    assert target.moves_in == 1
    assert source.contracts_locked == 1
    assert target.contracts_active == 1


def test_stats_block_metrics(busy_chain):
    burrow, _ethereum = busy_chain
    stats = collect_chain_stats(burrow)
    assert stats.height == len(burrow.blocks) - 1
    assert stats.mean_block_interval == pytest.approx(5.0)
    assert 0 < stats.mean_block_fill < 1
    assert stats.total_gas > 0
    assert stats.storage_slots > 0


def test_stats_empty_chain():
    burrow, _ethereum = make_chain_pair()
    stats = collect_chain_stats(burrow)
    assert stats.total_txs == 0
    assert stats.success_rate == 1.0
    assert stats.mean_block_interval is None
    assert stats.contracts_total == 0


def test_stats_lines_render(busy_chain):
    burrow, _ethereum = busy_chain
    text = "\n".join(collect_chain_stats(burrow).lines())
    assert "chain 1" in text
    assert "tx mix" in text
    assert "moves" in text
