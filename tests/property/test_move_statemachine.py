"""Rule-based stateful testing of the Move protocol.

Hypothesis drives a random interleaving of writes, Move1s, proof
extractions, Move2s (including deliberately stale ones), garbage
collections and block production across two chains, checking the
protocol's global invariants after every step:

* **single residency** — at most one chain considers the contract
  active; the other's record (if any) points at it;
* **state fidelity** — the active copy's storage equals the model (the
  last accepted writes), always;
* **replay safety** — a stale bundle is never accepted;
* **liveness** — a pending (locked, unproven) move can always be
  completed with a fresh proof.
"""

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, precondition, rule

from repro.chain.tx import (
    CallPayload,
    DeployPayload,
    Move1Payload,
    Move2Payload,
    sign_transaction,
)
from tests.helpers import ALICE, ManualClock, StoreContract, make_chain_pair


class MoveProtocolMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.chains = dict(zip((1, 2), make_chain_pair()))
        self.clock = ManualClock()
        self.model = {}  # key -> value, the expected storage
        self.active = 1  # chain id where the contract should be active
        self.pending_bundle = None  # extracted but unsubmitted proof
        self.stale_bundles = []
        self.locked_since = None  # inclusion height of an in-flight Move1
        self.write_key = 0

        receipt = self._tx(
            1, sign_transaction(ALICE, DeployPayload(code_hash=StoreContract.CODE_HASH))
        )
        assert receipt.success
        self.contract = receipt.return_value

    # ------------------------------------------------------------------

    def _tx(self, chain_id, tx):
        chain = self.chains[chain_id]
        chain.submit(tx)
        self.clock.tick()
        chain.produce_block(self.clock.now)
        return chain.receipts[tx.tx_id]

    def _produce(self, chain_id, count=1):
        for _ in range(count):
            self.clock.tick()
            self.chains[chain_id].produce_block(self.clock.now)

    @property
    def is_locked(self):
        return self.locked_since is not None

    # ------------------------------------------------------------------
    # Rules
    # ------------------------------------------------------------------

    @precondition(lambda self: not self.is_locked)
    @rule(value=st.integers(0, 1000))
    def write(self, value):
        self.write_key += 1
        receipt = self._tx(
            self.active,
            sign_transaction(ALICE, CallPayload(self.contract, "put", (self.write_key, value))),
        )
        assert receipt.success, receipt.error
        self.model[self.write_key] = value

    @precondition(lambda self: not self.is_locked)
    @rule()
    def start_move(self):
        target = 2 if self.active == 1 else 1
        receipt = self._tx(
            self.active,
            sign_transaction(ALICE, Move1Payload(contract=self.contract, target_chain=target)),
        )
        assert receipt.success, receipt.error
        self.locked_since = receipt.block_height

    @precondition(lambda self: self.is_locked and self.pending_bundle is None)
    @rule()
    def extract_proof(self):
        source = self.chains[self.active]
        while source.height < source.proof_ready_height(self.locked_since):
            self._produce(self.active)
        self.pending_bundle = source.prove_contract_at(self.contract, self.locked_since)

    @precondition(lambda self: self.pending_bundle is not None)
    @rule()
    def complete_move(self):
        bundle = self.pending_bundle
        target = 2 if self.active == 1 else 1
        receipt = self._tx(target, sign_transaction(ALICE, Move2Payload(bundle=bundle)))
        assert receipt.success, receipt.error
        self.stale_bundles.append(bundle)
        self.pending_bundle = None
        self.locked_since = None
        self.active = target

    @precondition(lambda self: self.stale_bundles)
    @rule(target_chain=st.sampled_from([1, 2]), data=st.data())
    def replay_stale_bundle(self, target_chain, data):
        bundle = data.draw(st.sampled_from(self.stale_bundles))
        receipt = self._tx(
            target_chain, sign_transaction(ALICE, Move2Payload(bundle=bundle)))
        assert not receipt.success, "stale bundle must never be accepted"

    @precondition(lambda self: not self.is_locked)
    @rule(chain_id=st.sampled_from([1, 2]))
    def garbage_collect(self, chain_id):
        # GC only where the contract is NOT active (and no move is
        # dangling) — the documented safe window.
        if chain_id != self.active:
            self.chains[chain_id].gc_stale()

    @rule(chain_id=st.sampled_from([1, 2]), count=st.integers(1, 3))
    def produce_blocks(self, chain_id, count):
        self._produce(chain_id, count)

    @precondition(lambda self: not self.is_locked)
    @rule()
    def locked_writes_fail_elsewhere(self):
        other = 2 if self.active == 1 else 1
        if self.chains[other].state.contract(self.contract) is None:
            return
        receipt = self._tx(
            other,
            sign_transaction(ALICE, CallPayload(self.contract, "put", (999_999, 1))),
        )
        assert not receipt.success

    # ------------------------------------------------------------------
    # Invariants
    # ------------------------------------------------------------------

    @invariant()
    def single_residency(self):
        active_copies = [
            chain_id
            for chain_id, chain in self.chains.items()
            if chain.location_of(self.contract) == chain_id
        ]
        if self.is_locked:
            # Mid-move: the source is locked, the target may not have
            # it yet — zero active copies is legal only now.
            assert len(active_copies) == 0
        else:
            assert active_copies == [self.active]
        # Every record that exists points at the contract's location.
        for chain_id, chain in self.chains.items():
            location = chain.location_of(self.contract)
            if location is not None and chain_id != self.active and not self.is_locked:
                assert location == self.active

    @invariant()
    def state_fidelity(self):
        if self.is_locked:
            return
        chain = self.chains[self.active]
        for key, value in self.model.items():
            assert chain.view(self.contract, "get_value", key) == value

    def teardown(self):
        # Liveness: any dangling move can always be completed.
        if self.is_locked:
            if self.pending_bundle is None:
                self.extract_proof()
            self.complete_move()
        self.state_fidelity()
        self.single_residency()


MoveProtocolMachine.TestCase.settings = settings(
    max_examples=12, stateful_step_count=25, deadline=None
)
TestMoveProtocol = MoveProtocolMachine.TestCase
