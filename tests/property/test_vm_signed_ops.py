"""Property tests: signed/bitwise opcodes match EVM (two's-complement)
semantics as modelled with Python integers."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.vm.stack import WORD_MASK
from tests.property.test_vm_properties import run_binary

words = st.integers(min_value=0, max_value=WORD_MASK)
shifts = st.integers(min_value=0, max_value=300)


def signed(word):
    return word - (1 << 256) if word >> 255 else word


def unsigned(value):
    return value & WORD_MASK


@given(words, words)
@settings(max_examples=80, deadline=None)
def test_sdiv_truncates_toward_zero(a, b):
    sa, sb = signed(a), signed(b)
    if sb == 0:
        expected = 0
    else:
        expected = unsigned(abs(sa) // abs(sb) * (1 if (sa < 0) == (sb < 0) else -1))
    assert run_binary("SDIV", a, b) == expected


@given(words, words)
@settings(max_examples=80, deadline=None)
def test_smod_takes_dividend_sign(a, b):
    sa, sb = signed(a), signed(b)
    if sb == 0:
        expected = 0
    else:
        expected = unsigned((abs(sa) % abs(sb)) * (1 if sa >= 0 else -1))
    assert run_binary("SMOD", a, b) == expected


@given(words, words)
@settings(max_examples=80, deadline=None)
def test_slt_sgt(a, b):
    assert run_binary("SLT", a, b) == (1 if signed(a) < signed(b) else 0)
    assert run_binary("SGT", a, b) == (1 if signed(a) > signed(b) else 0)


@given(shifts, words)
@settings(max_examples=80, deadline=None)
def test_shifts(shift, value):
    assert run_binary("SHL", shift, value) == (
        0 if shift >= 256 else (value << shift) & WORD_MASK
    )
    assert run_binary("SHR", shift, value) == (0 if shift >= 256 else value >> shift)
    sv = signed(value)
    if shift >= 256:
        expected_sar = WORD_MASK if sv < 0 else 0
    else:
        expected_sar = unsigned(sv >> shift)
    assert run_binary("SAR", shift, value) == expected_sar


@given(st.integers(0, 40), words)
@settings(max_examples=80, deadline=None)
def test_byte_extracts_big_endian(index, value):
    expected = (value >> (8 * (31 - index))) & 0xFF if index < 32 else 0
    assert run_binary("BYTE", index, value) == expected


@given(st.integers(0, 40), words)
@settings(max_examples=80, deadline=None)
def test_signextend(size, value):
    if size < 31:
        bits = 8 * (size + 1)
        truncated = value & ((1 << bits) - 1)
        if truncated >> (bits - 1):
            expected = unsigned(truncated - (1 << bits))
        else:
            expected = truncated
    else:
        expected = value
    assert run_binary("SIGNEXTEND", size, value) == expected


@given(words, words, words)
@settings(max_examples=60, deadline=None)
def test_addmod_mulmod(a, b, n):
    from repro.vm.assembler import assemble
    from repro.vm.machine import MemoryContext
    from tests.property.test_vm_properties import MACHINE

    for mnemonic, func in (("ADDMOD", lambda: (a + b) % n if n else 0),
                           ("MULMOD", lambda: (a * b) % n if n else 0)):
        source = (
            f"PUSH32 {n}\nPUSH32 {b}\nPUSH32 {a}\n{mnemonic}\n"
            "PUSH1 0\nMSTORE\nPUSH1 32\nPUSH1 0\nRETURN"
        )
        result = MACHINE.execute(assemble(source), MemoryContext())
        assert result.success
        assert int.from_bytes(result.return_data, "big") == func()


def test_mstore8_and_msize():
    from repro.vm.assembler import assemble
    from repro.vm.machine import MemoryContext
    from tests.property.test_vm_properties import MACHINE

    source = (
        "PUSH2 0x1234\nPUSH1 5\nMSTORE8\n"   # stores 0x34 at offset 5
        "PUSH1 0\nMLOAD\n"
        "PUSH1 0\nMSTORE\nPUSH1 32\nPUSH1 0\nRETURN"
    )
    result = MACHINE.execute(assemble(source), MemoryContext())
    assert result.success
    word = int.from_bytes(result.return_data, "big")
    assert (word >> (8 * (31 - 5))) & 0xFF == 0x34

    source = "MSIZE\nPUSH1 0\nMSTORE\nPUSH1 32\nPUSH1 0\nRETURN"
    result = MACHINE.execute(assemble(source), MemoryContext())
    assert int.from_bytes(result.return_data, "big") == 0  # untouched memory
