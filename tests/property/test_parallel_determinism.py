"""Property: parallel block execution is byte-identical to serial.

The optimistic executor's whole contract is that ``executor_workers``
is *unobservable*: for any block — any conflict pattern, any declared
or mis-declared footprint, any abort — receipts, gas accounting, state
roots, chain statistics and telemetry must match the serial loop
exactly, for every worker count.  Hypothesis drives randomized
workloads over a single chain; the PR2 chaos seed matrix then replays
whole multi-chain fault schedules (consensus, relays, Move1/Move2,
invariant checks) at several worker counts and compares the full run
reports field by field.
"""

from dataclasses import asdict

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.apps.scoin import SCoin
from repro.chain.chain import Chain
from repro.chain.params import burrow_params
from repro.chain.stats import collect_chain_stats
from repro.chain.tx import CallPayload, DeployPayload, TransferPayload, sign_transaction
from repro.crypto.keys import KeyPair
from repro.faults.chaos import run_chaos

USERS = [KeyPair.from_name(f"det-user-{i}") for i in range(10)]
WORKER_COUNTS = (1, 2, 4)


# ----------------------------------------------------------------------
# Randomized single-chain blocks
# ----------------------------------------------------------------------


def build_and_run(workers: int, ops, backend: str = "thread"):
    """One chain, one SCoin deployment, then the drawn blocks."""
    chain = Chain(
        burrow_params(1, executor_workers=workers, executor_backend=backend),
        verify_signatures=True,
    )
    chain.fund({kp.address: 10**9 for kp in USERS})
    deploy = sign_transaction(USERS[0], DeployPayload(code_hash=SCoin.CODE_HASH), nonce=1)
    chain.submit(deploy)
    chain.produce_block(timestamp=1.0)
    token = chain.receipts[deploy.tx_id].return_value
    setup = []
    for i, kp in enumerate(USERS):
        setup.append(
            sign_transaction(kp, CallPayload(token, "new_account_for", (kp.address,)), nonce=10 + i)
        )
    for tx in setup:
        chain.submit(tx)
    chain.produce_block(timestamp=2.0)
    accounts = [chain.receipts[tx.tx_id].return_value[0] for tx in setup]
    mints = [
        sign_transaction(USERS[0], CallPayload(token, "mint_to", (a, 500)), nonce=100 + i)
        for i, a in enumerate(accounts)
    ]
    for tx in mints:
        chain.submit(tx)
    chain.produce_block(timestamp=3.0)

    timestamp = 4.0
    all_txs = []
    nonce = 1000
    for block in ops:
        for kind, src, dst, amount, lie in block:
            if kind == "transfer":
                tx = sign_transaction(
                    USERS[src], TransferPayload(to=USERS[dst].address, amount=amount), nonce=nonce
                )
            else:
                tx = sign_transaction(
                    USERS[src],
                    CallPayload(accounts[src], "transfer_tokens", (accounts[dst], 1)),
                    nonce=nonce,
                )
            if lie:
                # Deliberately wrong declaration: forces waves together
                # and makes validation + re-execution do the work.
                tx.meta["footprint"] = {"reads": [], "writes": []}
            nonce += 1
            all_txs.append(tx)
            chain.submit(tx)
        chain.produce_block(timestamp=timestamp)
        timestamp += 5.0

    receipts = [
        (r.success, r.gas_used, r.error, r.fee_paid, tuple(sorted(r.gas_by_category.items())))
        for r in (chain.receipts[tx.tx_id] for tx in all_txs)
    ]
    stats = collect_chain_stats(chain).to_dict()
    report = chain.last_parallel_report
    return chain.state.committed_root, receipts, stats, report


op_strategy = st.tuples(
    st.sampled_from(["transfer", "call"]),
    st.integers(min_value=0, max_value=9),       # src user index
    st.integers(min_value=0, max_value=9),       # dst user index
    st.sampled_from([1, 7, 10**18]),             # amount (10**18 aborts)
    st.booleans(),                               # lie about the footprint
)
blocks_strategy = st.lists(
    st.lists(op_strategy, min_size=1, max_size=12), min_size=1, max_size=3
)


@given(ops=blocks_strategy)
@settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_any_workload_is_worker_count_invariant(ops):
    root0, receipts0, stats0, _ = build_and_run(0, ops)
    for workers in WORKER_COUNTS:
        root, receipts, stats, report = build_and_run(workers, ops)
        assert root == root0
        assert receipts == receipts0
        assert stats == stats0
        assert report is not None
        # Everything speculated was accounted for exactly once.
        assert (
            report.committed + report.reexecuted + report.unsupported
            == report.speculated
        )


@pytest.mark.parametrize("backend", ["thread", "process"])
def test_self_transfer_and_hot_account_conflicts_stay_serial_equivalent(backend):
    # Everyone hammers user 0's balance and account: maximal conflict.
    ops = [[("transfer", i, 0, 7, False) for i in range(1, 10)]
           + [("call", i, 0, 1, False) for i in range(1, 10)]]
    root0, receipts0, stats0, _ = build_and_run(0, ops)
    for workers in WORKER_COUNTS:
        root, receipts, stats, _ = build_and_run(workers, ops, backend=backend)
        assert (root, receipts, stats) == (root0, receipts0, stats0)


@pytest.mark.parametrize("backend", ["thread", "process"])
def test_universally_lying_footprints_stay_serial_equivalent(backend):
    # Every declaration is wrong — the validation/re-execution backstop
    # carries the whole block.
    ops = [[("call", i, (i + 1) % 10, 1, True) for i in range(10)] * 2]
    root0, receipts0, stats0, _ = build_and_run(0, ops)
    for workers in WORKER_COUNTS:
        root, receipts, stats, report = build_and_run(workers, ops, backend=backend)
        assert (root, receipts, stats) == (root0, receipts0, stats0)
        # The lies actually forced the backstop: thread frames read live
        # state and fail validation (reexecuted); process workers get an
        # empty coverage snapshot and bail out up front (unsupported).
        # Either way every lying tx went through the serial path.
        assert report.reexecuted + report.unsupported > 0


def test_process_backend_is_worker_count_and_backend_invariant():
    # A conflict-light mixed block (native transfers + token calls +
    # deliberate aborts): the process workers must speculate it across
    # pickled wave snapshots and still land byte-identical to serial
    # AND to the thread backend at every worker count.
    ops = [
        [("call", i, (i + 3) % 10, 1, False) for i in range(10)]
        + [("transfer", i, (i + 5) % 10, 7, False) for i in range(10)]
        + [("transfer", 0, 1, 10**18, False), ("call", 2, 2, 1, True)],
        [("call", i, (i + 1) % 10, 1, False) for i in range(10)],
    ]
    root0, receipts0, stats0, _ = build_and_run(0, ops)
    for workers in WORKER_COUNTS:
        for backend in ("thread", "process"):
            root, receipts, stats, report = build_and_run(
                workers, ops, backend=backend
            )
            assert (root, receipts, stats) == (root0, receipts0, stats0), (
                f"{backend} backend diverged at {workers} workers"
            )
            assert (
                report.committed + report.reexecuted + report.unsupported
                == report.speculated
            )


# ----------------------------------------------------------------------
# Whole-system replay: the PR2 chaos seed matrix at several worker
# counts (consensus + relays + faults + Move lifecycle + invariants)
# ----------------------------------------------------------------------

SEED_MATRIX = [
    pytest.param(1, "scoin", False, id="seed1_scoin"),
    pytest.param(7, "scoin", True, id="seed7_scoin_pow"),
    pytest.param(11, "kitties", False, id="seed11_kitties"),
    pytest.param(23, "scoin", False, id="seed23_scoin"),
    pytest.param(42, "kitties", True, id="seed42_kitties_pow"),
]


@pytest.mark.parametrize("seed,workload,pow_peer", SEED_MATRIX)
def test_chaos_seed_matrix_is_worker_count_invariant(seed, workload, pow_peer):
    reports = {
        workers: run_chaos(
            seed=seed,
            duration=120.0,
            workload=workload,
            intensity=1.5,
            pow_peer=pow_peer,
            executor_workers=workers,
        )
        for workers in (0, 2, 4)
    }
    serial = asdict(reports[0])
    assert serial["final_roots"], "chaos run produced no final roots"
    for workers in (2, 4):
        assert asdict(reports[workers]) == serial, (
            f"chaos seed {seed} diverged at {workers} workers"
        )


def test_chaos_replay_is_backend_invariant():
    # One full fault schedule replayed serial / thread / process: the
    # speculation backend must be as unobservable as the worker count,
    # and the process pools must not outlive the run.
    import multiprocessing

    reports = {
        label: run_chaos(
            seed=1,
            duration=60.0,
            workload="scoin",
            intensity=1.5,
            executor_workers=workers,
            executor_backend=backend,
        )
        for label, workers, backend in (
            ("serial", 0, "thread"),
            ("thread", 2, "thread"),
            ("process", 2, "process"),
        )
    }
    serial = asdict(reports["serial"])
    assert serial["final_roots"], "chaos run produced no final roots"
    assert asdict(reports["thread"]) == serial
    assert asdict(reports["process"]) == serial
    assert multiprocessing.active_children() == []
