"""Property: the gateway is execution-transparent and bounded.

Two contracts from ISSUE/ROADMAP:

1. **Transparency** — a fixed-seed workload routed through the gateway
   (bounded queues, micro-batch flushes, the timer block driver) must
   produce *byte-identical* state roots, receipts and chain statistics
   to the same transactions submitted straight into the mempool with
   manual block production.  Admission order in, canonical order out —
   serving adds no nondeterminism.
2. **Boundedness** — 64 concurrent clients pushing past capacity never
   grow the admission queue past its bound or the mempool past its
   headroom; the overflow is shed with machine-readable codes; and the
   whole saturation run replays identically from its seed.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.api import (
    Gateway,
    GatewayLimits,
    Node,
    TransferPayload,
    burrow_params,
    sign_transaction,
)
from repro.chain.stats import collect_chain_stats
from repro.crypto.keys import KeyPair
from repro.workload.gateway import GatewayWorkload

USERS = [KeyPair.from_name(f"gwdet-{i}") for i in range(6)]
PARAMS = dict(max_block_txs=10, block_interval=5.0)


def make_txs(plan):
    """The drawn workload as signed transactions (deterministic)."""
    txs = []
    for nonce, (sender, to, amount) in enumerate(plan, start=1):
        txs.append(
            sign_transaction(
                USERS[sender],
                TransferPayload(to=USERS[to].address, amount=amount),
                nonce=nonce,
            )
        )
    return txs


def fund(node):
    node.chain(1).fund({kp.address: 10**9 for kp in USERS})


def run_direct(plan):
    """Reference run: straight into the mempool, manual blocks."""
    node = Node(burrow_params(1, **PARAMS), seed=3, verify_signatures=False)
    fund(node)
    chain = node.chain(1)
    for tx in make_txs(plan):
        chain.submit(tx)
    t = 0.0
    while len(chain.mempool):
        t += 5.0
        chain.produce_block(t, proposer="node-1")
    return node


def run_gateway(plan):
    """Same transactions through admission queues + timer driver."""
    node = Node(burrow_params(1, **PARAMS), seed=3, verify_signatures=False)
    fund(node)
    gateway = Gateway(
        node,
        GatewayLimits(max_queue_depth=4096, batch_size=64, mempool_headroom=4),
    )
    gateway.start()
    handles = [gateway.submit(tx, 1) for tx in make_txs(plan)]
    node.run_until(lambda: all(h.done for h in handles), max_time=10_000.0)
    assert all(h.ok for h in handles)
    gateway.stop()
    return node


def fingerprint(node):
    chain = node.chain(1)
    receipts = {
        tx_id: (r.success, r.gas_used, r.block_height, r.fee_paid, repr(r.return_value))
        for tx_id, r in chain.receipts.items()
    }
    stats = collect_chain_stats(chain).to_dict()
    return chain.head.header.state_root.hex(), receipts, stats


@given(
    plan=st.lists(
        st.tuples(
            st.integers(0, len(USERS) - 1),
            st.integers(0, len(USERS) - 1),
            st.integers(1, 10**6),
        ),
        min_size=1,
        max_size=60,
    )
)
@settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_gateway_path_is_byte_identical_to_direct(plan):
    direct_root, direct_receipts, direct_stats = fingerprint(run_direct(plan))
    gw_root, gw_receipts, gw_stats = fingerprint(run_gateway(plan))
    assert gw_root == direct_root
    assert gw_receipts == direct_receipts
    assert gw_stats == direct_stats


def saturation_report(seed=42):
    workload = GatewayWorkload(
        clients=64,
        rate_per_client=3.0,  # ~192/s offered into a 20/s chain
        seed=seed,
        limits=GatewayLimits(max_queue_depth=128),
        max_block_txs=100,
    )
    report = workload.run(duration=60.0, drain=60.0)
    return workload, report


def test_sixty_four_clients_bounded_and_typed():
    workload, report = saturation_report()
    assert report.clients == 64
    assert report.submitted > 5_000
    # The queue never grew past its bound and the mempool never past
    # its headroom — overload lives in typed sheds, not in memory.
    assert report.peak_queue_depth <= 128
    assert len(workload.node.chain(1).mempool) <= 4 * 100
    assert report.shed_total > 0
    assert set(report.shed) <= {"queue_full", "rate_limited"}
    assert report.confirmed > 0
    assert report.unresolved == 0  # everything drained or was shed


def test_saturation_replays_byte_identically_from_seed():
    _, first = saturation_report(seed=7)
    _, second = saturation_report(seed=7)
    assert first.to_dict() == second.to_dict()
    _, other = saturation_report(seed=8)
    assert other.to_dict() != first.to_dict()
