"""Property tests for the incremental storage commitment.

The consensus-critical invariant of the incremental commit path
(`WorldState._commit_storage`): whatever interleaving of writes,
deletes, transaction snapshot/reverts, bulk loads and block commits a
contract's storage goes through, the committed storage root is
**bit-identical** to the canonical sorted rebuild
(`compute_storage_root`) that every Move2 verifier performs — for both
tree flavours — and slot proofs extracted from the live trie verify
against that root.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.hashing import keccak
from repro.crypto.keys import Address
from repro.merkle.iavl import IAVLTree
from repro.merkle.proof import verify_proof
from repro.merkle.trie import MerklePatriciaTrie
from repro.statedb.state import WorldState, compute_storage_root

CONTRACT = Address(b"\x11" * 20)
CODE = b"commitment-property-code"
CODE_HASH = keccak(CODE)

KEYS = [bytes([k]) * 2 for k in range(1, 9)]

# Interleavings: slot writes/deletes, transaction-level snapshot/revert
# pairs, block commits, and the Move2-style bulk load.
ops = st.lists(
    st.one_of(
        st.tuples(
            st.just("set"),
            st.integers(0, len(KEYS) - 1),
            st.binary(min_size=1, max_size=8),
        ),
        st.tuples(st.just("delete"), st.integers(0, len(KEYS) - 1), st.none()),
        st.tuples(st.just("snapshot"), st.none(), st.none()),
        st.tuples(st.just("revert"), st.none(), st.none()),
        st.tuples(st.just("commit"), st.none(), st.none()),
        st.tuples(
            st.just("load"),
            st.none(),
            st.dictionaries(
                st.sampled_from(KEYS), st.binary(min_size=1, max_size=4), max_size=6
            ),
        ),
    ),
    max_size=40,
)

FLAVOURS = [
    pytest.param(IAVLTree, id="iavl"),
    pytest.param(MerklePatriciaTrie, id="trie"),
]


def drive(state: WorldState, operations) -> None:
    snaps = []
    for kind, idx, payload in operations:
        if kind == "set":
            state.storage_set(CONTRACT, KEYS[idx], payload)
        elif kind == "delete":
            state.storage_set(CONTRACT, KEYS[idx], b"")
        elif kind == "snapshot":
            snaps.append(state.snapshot())
        elif kind == "revert":
            if snaps:
                state.revert(snaps.pop())
        elif kind == "commit":
            state.commit()
            snaps.clear()  # commit finalizes the block: journal is gone
        elif kind == "load":
            state.load_storage(CONTRACT, payload)


def assert_incremental_matches_canonical(state: WorldState, factory) -> None:
    state.commit()
    record = state.require_contract(CONTRACT)
    canonical = compute_storage_root(factory, record.storage)
    assert state.committed_storage_root(CONTRACT) == canonical
    # Slot proofs extracted from the live trie verify against the root
    # every Move2/attestation verifier would reconstruct.
    for key, value in record.storage.items():
        proof = state.prove_storage(CONTRACT, key)
        assert proof.value == value
        assert verify_proof(proof, canonical)


@pytest.mark.parametrize("factory", FLAVOURS)
@given(operations=ops)
@settings(max_examples=80, deadline=None)
def test_incremental_root_matches_canonical_rebuild(factory, operations):
    state = WorldState(chain_id=1, tree_factory=factory)
    state.create_contract(CONTRACT, CODE_HASH, CODE)
    state.commit()
    drive(state, operations)
    assert_incremental_matches_canonical(state, factory)


@pytest.mark.parametrize("factory", FLAVOURS)
@given(operations=ops, more=ops)
@settings(max_examples=40, deadline=None)
def test_equivalence_survives_multiple_blocks(factory, operations, more):
    """The live trie must stay canonical across commits, not just one."""
    state = WorldState(chain_id=1, tree_factory=factory)
    state.create_contract(CONTRACT, CODE_HASH, CODE)
    drive(state, operations)
    assert_incremental_matches_canonical(state, factory)
    drive(state, more)
    assert_incremental_matches_canonical(state, factory)


@pytest.mark.parametrize("factory", FLAVOURS)
@given(
    base=st.dictionaries(
        st.sampled_from(KEYS), st.binary(min_size=1, max_size=4), max_size=8
    ),
    overwrites=st.lists(
        st.tuples(st.sampled_from(KEYS), st.binary(min_size=1, max_size=4)),
        max_size=12,
    ),
)
@settings(max_examples=40, deadline=None)
def test_overwrite_only_blocks_never_refold(factory, base, overwrites):
    """Value overwrites of committed slots — the hot path the O(dirty)
    commit targets — keep the incremental root canonical."""
    state = WorldState(chain_id=1, tree_factory=factory)
    state.create_contract(CONTRACT, CODE_HASH, CODE)
    state.load_storage(CONTRACT, base)
    state.commit()
    for key, value in overwrites:
        if state.storage_get(CONTRACT, key):
            state.storage_set(CONTRACT, key, value)
    assert_incremental_matches_canonical(state, factory)
