"""Property: value is conserved under arbitrary workloads.

Two conservation laws the Move protocol must never break:

* **token conservation** — SCoin tokens across all account contracts
  (counting only each contract's *active* copy) equal the minted total,
  under any interleaving of transfers, approvals, delegated transfers
  and cross-chain moves;
* **currency conservation** — native currency on a chain is constant
  under transfers, and a contract's balance travels with it on a move
  (the stale copy's locked balance is never spendable).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.scoin import SCoin
from repro.chain.tx import CallPayload, DeployPayload
from tests.helpers import (
    ALICE,
    BOB,
    CAROL,
    ManualClock,
    full_move,
    make_chain_pair,
    run_tx,
)

USERS = [ALICE, BOB, CAROL]

# op: (kind, actor_idx, target_idx, amount)
token_ops = st.lists(
    st.tuples(
        st.sampled_from(["transfer", "move", "approve", "transfer_from"]),
        st.integers(0, 2),
        st.integers(0, 2),
        st.integers(0, 40),
    ),
    max_size=12,
)


@given(token_ops)
@settings(max_examples=25, deadline=None)
def test_token_conservation_across_chains(operations):
    burrow, ethereum = make_chain_pair()
    chains = {1: burrow, 2: ethereum}
    clock = ManualClock()
    token = run_tx(burrow, clock, ALICE, DeployPayload(code_hash=SCoin.CODE_HASH)).return_value
    accounts = {}
    location = {}
    for index, user in enumerate(USERS):
        receipt = run_tx(burrow, clock, user, CallPayload(token, "new_account"))
        accounts[index], _ = receipt.return_value
        location[index] = 1
        run_tx(burrow, clock, ALICE, CallPayload(token, "mint_to", (accounts[index], 100)))
    total_minted = 300

    for kind, actor, target, amount in operations:
        actor_kp = USERS[actor]
        if kind == "move":
            src = location[actor]
            dst = 2 if src == 1 else 1
            receipt = full_move(chains[src], chains[dst], clock, actor_kp, accounts[actor])
            assert receipt.success, receipt.error
            location[actor] = dst
        elif kind == "transfer":
            chain = chains[location[actor]]
            run_tx(
                chain, clock, actor_kp,
                CallPayload(accounts[actor], "transfer_tokens", (accounts[target], amount)),
            )  # may fail (wrong chain / insufficient) — that's fine
        elif kind == "approve":
            chain = chains[location[actor]]
            run_tx(
                chain, clock, actor_kp,
                CallPayload(accounts[actor], "approve", (USERS[target].address, amount)),
            )
        elif kind == "transfer_from":
            chain = chains[location[target]]
            run_tx(
                chain, clock, USERS[actor],
                CallPayload(accounts[target], "transfer_from", (accounts[actor], amount)),
            )

    # Conservation over ACTIVE copies only.
    total = 0
    for index in range(3):
        chain = chains[location[index]]
        assert chain.location_of(accounts[index]) == chain.chain_id
        total += chain.view(accounts[index], "token_balance")
    assert total == total_minted


currency_ops = st.lists(
    st.tuples(st.integers(0, 2), st.integers(0, 2), st.integers(0, 50)),
    max_size=15,
)


@given(currency_ops)
@settings(max_examples=25, deadline=None)
def test_native_currency_conserved_under_transfers(transfers):
    from repro.chain.tx import TransferPayload

    burrow, _ethereum = make_chain_pair()
    clock = ManualClock()
    burrow.fund({u.address: 200 for u in USERS})
    for sender, receiver, amount in transfers:
        run_tx(
            burrow, clock, USERS[sender],
            TransferPayload(to=USERS[receiver].address, amount=amount),
        )  # failures (insufficient funds) revert cleanly
    total = sum(burrow.balance_of(u.address) for u in USERS)
    assert total == 600
