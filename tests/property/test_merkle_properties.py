"""Property-based tests on the authenticated data structures.

Invariants checked:
* trees behave exactly like a dict under arbitrary set/delete sequences;
* every present key yields a proof that verifies against the live root;
* any bit-flip in a proof value breaks verification;
* roots are independent of operation interleaving (state-determined);
* IAVL stays AVL-balanced.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.merkle.binary import BinaryMerkleTree
from repro.merkle.iavl import IAVLTree
from repro.merkle.proof import MembershipProof, verify_proof
from repro.merkle.trie import MerklePatriciaTrie

keys = st.binary(min_size=1, max_size=8)
values = st.binary(min_size=1, max_size=16)

# op: (key, value) = set, (key, None) = delete
ops = st.lists(st.tuples(keys, st.one_of(st.none(), values)), max_size=60)


def apply_ops(tree, operations):
    model = {}
    for key, value in operations:
        if value is None:
            assert tree.delete(key) == (key in model)
            model.pop(key, None)
        else:
            tree.set(key, value)
            model[key] = value
    return model


@given(ops)
@settings(max_examples=60, deadline=None)
def test_iavl_matches_dict_model(operations):
    tree = IAVLTree()
    model = apply_ops(tree, operations)
    assert dict(tree.items()) == model
    for key, value in model.items():
        assert tree.get(key) == value
        proof = tree.prove(key)
        assert proof.value == value
        assert verify_proof(proof, tree.root_hash)


@given(ops)
@settings(max_examples=60, deadline=None)
def test_trie_matches_dict_model(operations):
    trie = MerklePatriciaTrie()
    model = apply_ops(trie, operations)
    assert dict(trie.items()) == model
    for key, value in model.items():
        assert trie.get(key) == value
        proof = trie.prove(key)
        assert verify_proof(proof, trie.root_hash)


@given(st.dictionaries(keys, values, max_size=40), st.randoms(use_true_random=False))
@settings(max_examples=40, deadline=None)
def test_trie_root_is_insertion_order_independent(mapping, rnd):
    """The Patricia trie commits to content, not history."""
    items = list(mapping.items())
    shuffled = items[:]
    rnd.shuffle(shuffled)
    a, b = MerklePatriciaTrie(), MerklePatriciaTrie()
    for k, v in items:
        a.set(k, v)
    for k, v in shuffled:
        b.set(k, v)
    assert a.root_hash == b.root_hash


@given(ops)
@settings(max_examples=40, deadline=None)
def test_iavl_root_is_replica_deterministic(operations):
    """Two replicas applying the same op sequence agree on the root
    (IAVL roots are history-dependent but deterministic)."""
    a, b = IAVLTree(), IAVLTree()
    apply_ops(a, operations)
    apply_ops(b, operations)
    assert a.root_hash == b.root_hash


@given(st.dictionaries(keys, values, min_size=1, max_size=40), st.data())
@settings(max_examples=40, deadline=None)
def test_tampered_proofs_rejected(mapping, data):
    tree = IAVLTree()
    for k, v in mapping.items():
        tree.set(k, v)
    key = data.draw(st.sampled_from(sorted(mapping)))
    proof = tree.prove(key)
    bit = data.draw(st.integers(min_value=0, max_value=len(proof.value) * 8 - 1))
    tampered_value = bytearray(proof.value)
    tampered_value[bit // 8] ^= 1 << (bit % 8)
    forged = MembershipProof(
        key=proof.key,
        value=bytes(tampered_value),
        leaf_prefix=proof.leaf_prefix,
        steps=proof.steps,
    )
    assert not verify_proof(forged, tree.root_hash)


@given(st.lists(keys, unique=True, min_size=1, max_size=200))
@settings(max_examples=40, deadline=None)
def test_iavl_balance_invariant(insert_keys):
    import math

    tree = IAVLTree()
    for k in insert_keys:
        tree.set(k, b"v")
    n = len(insert_keys)
    # AVL bound: height <= 1.44 * log2(n + 2)
    assert tree.height() <= int(1.45 * math.log2(n + 2)) + 1


@given(st.lists(st.binary(min_size=1, max_size=12), min_size=1, max_size=50))
@settings(max_examples=60, deadline=None)
def test_binary_tree_all_leaves_provable(leaves):
    tree = BinaryMerkleTree(leaves)
    for i, leaf in enumerate(leaves):
        proof = tree.prove(i)
        assert proof.value == leaf
        assert verify_proof(proof, tree.root)
