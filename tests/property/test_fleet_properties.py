"""Properties of the fleet's weighted-fair, classed admission plane.

Three contracts from ISSUE 10:

1. **Starvation-freedom** — under deficit round-robin, every backlogged
   client is served within a bounded number of popped entries, no
   matter how lopsided the arrival pattern: one client queueing 10×
   more work cannot push another's first entry past
   ``clients × quantum`` positions in the drain order.
2. **No priority inversion** — an entry never flushes while a
   higher-priority entry is queued at the same replica/chain.  Strict
   priority holds across arbitrary interleavings of pushes and
   budget-limited pops.
3. **Worker-count invariance** — the fleet-routed workload commits the
   same state root and the same admission-log digest whether the
   executor runs sequentially or with 2 or 4 parallel workers:
   parallelism never leaks into admission, flush, or commit order.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gateway.classes import FLUSH_ORDER, PriorityClass
from repro.gateway.fairqueue import ClassedFairQueue, QueueEntry

CLASSES = list(PriorityClass)


def entry(cls, client, tag):
    return QueueEntry(tx=tag, handle=None, cls=cls, client=client)


# ----------------------------------------------------------------------
# 1. Starvation-freedom
# ----------------------------------------------------------------------

backlogs = st.dictionaries(
    keys=st.sampled_from([f"c{i}" for i in range(6)]),
    values=st.integers(min_value=1, max_value=40),
    min_size=1,
    max_size=6,
)


@given(backlogs=backlogs, quantum=st.integers(min_value=1, max_value=8))
@settings(max_examples=60, deadline=None)
def test_drr_serves_every_backlogged_client_within_a_round(backlogs, quantum):
    queue = ClassedFairQueue(bound=10**9, quantum=quantum)
    for client, n in backlogs.items():
        for tag in range(n):
            queue.push(entry(PriorityClass.BULK, client, f"{client}-{tag}"))
    drained = queue.pop(10**9)
    # Everything drains, per-client FIFO order intact.
    assert len(drained) == sum(backlogs.values())
    for client, n in backlogs.items():
        mine = [e.tx for e in drained if e.client == client]
        assert mine == [f"{client}-{tag}" for tag in range(n)]
    # Bounded wait: each client's first entry appears within one full
    # round — no later than (number of clients) × quantum positions in.
    first_round = len(backlogs) * quantum
    for client in backlogs:
        first = next(i for i, e in enumerate(drained) if e.client == client)
        assert first < first_round


@given(
    hog_backlog=st.integers(min_value=10, max_value=200),
    quantum=st.integers(min_value=1, max_value=8),
    budget=st.integers(min_value=1, max_value=7),
)
@settings(max_examples=60, deadline=None)
def test_drr_micro_batches_cannot_starve_the_meek_client(
    hog_backlog, quantum, budget
):
    """Fairness must hold across budget-cut pops, not just within one:
    the meek client's single entry drains within the first two quanta
    of popped work even when every pop is budget-limited."""
    queue = ClassedFairQueue(bound=10**9, quantum=quantum)
    for tag in range(hog_backlog):
        queue.push(entry(PriorityClass.BULK, "hog", f"h{tag}"))
    queue.push(entry(PriorityClass.BULK, "meek", "m0"))
    popped = 0
    served_meek = None
    while queue.depth:
        for popped_entry in queue.pop(budget):
            if popped_entry.client == "meek":
                served_meek = popped
            popped += 1
    assert served_meek is not None
    assert served_meek <= 2 * quantum


# ----------------------------------------------------------------------
# 2. No priority inversion
# ----------------------------------------------------------------------

operations = st.lists(
    st.one_of(
        st.tuples(
            st.just("push"),
            st.sampled_from(CLASSES),
            st.sampled_from(["a", "b", "c"]),
        ),
        st.tuples(st.just("pop"), st.integers(min_value=1, max_value=5)),
    ),
    min_size=1,
    max_size=80,
)


@given(ops=operations)
@settings(max_examples=100, deadline=None)
def test_no_priority_inversion_under_interleaved_push_pop(ops):
    queue = ClassedFairQueue(bound=16, quantum=3)
    tag = 0
    for op in ops:
        if op[0] == "push":
            _, cls, client = op
            queue.push(entry(cls, client, tag))
            tag += 1
        else:
            drained = queue.pop(op[1])
            # Within one pop the output is ordered by class...
            classes = [e.cls for e in drained]
            assert classes == sorted(classes)
            # ...and nothing left behind outranks anything popped.
            remaining = [
                cls for cls in FLUSH_ORDER if queue.class_depth[cls] > 0
            ]
            if drained and remaining:
                assert min(remaining) >= max(classes)


@given(ops=operations)
@settings(max_examples=100, deadline=None)
def test_shed_never_evicts_equal_or_better_class(ops):
    queue = ClassedFairQueue(bound=8, quantum=3)
    tag = 0
    for op in ops:
        if op[0] == "push":
            _, cls, client = op
            result = queue.push(entry(cls, client, tag))
            tag += 1
            if result.victim is not None:
                assert result.victim.cls > cls
            if not result.admitted:
                # Refusal is only legal when no strictly lower class
                # was backlogged to give up a slot.
                assert all(
                    queue.class_depth[lower] == 0
                    for lower in FLUSH_ORDER
                    if lower > cls
                )
        else:
            queue.pop(op[1])
        assert queue.depth <= queue.bound


def test_gateway_never_flushes_bulk_past_queued_moves():
    """End-to-end inversion check at the gateway layer: with a budget
    smaller than the queue, every flush batch is exhausted in strict
    class order."""
    from repro.api import (
        Gateway,
        GatewayLimits,
        Node,
        TransferPayload,
        burrow_params,
        sign_transaction,
    )
    from repro.crypto.keys import KeyPair

    kp = KeyPair.from_name("inversion")
    node = Node(
        burrow_params(1, max_block_txs=100), verify_signatures=False
    )
    node.chain(1).fund({kp.address: 10**9})
    gateway = Gateway(
        node, GatewayLimits(max_queue_depth=64, batch_size=4)
    )
    order = ["bulk", "move", "view", "bulk", "move", "view", "bulk", "move"]
    for nonce, label in enumerate(order, start=1):
        tx = sign_transaction(
            kp, TransferPayload(to=kp.address, amount=1), nonce=nonce
        )
        gateway.submit(tx, 1, client_id="c", priority=label)
    while gateway.queue_depth(1):
        before = dict(gateway.class_depths(1))
        flushed = gateway.flush()
        after = dict(gateway.class_depths(1))
        # A class only drains after every better class already has.
        for better, worse in (("move", "view"), ("view", "bulk")):
            if after[better] > 0:
                assert after[worse] == before[worse]
        assert flushed > 0


# ----------------------------------------------------------------------
# 3. Worker-count invariance for fleet-routed traffic
# ----------------------------------------------------------------------


def test_fleet_workload_invariant_across_executor_workers():
    from repro.workload.fleet import FleetWorkload

    outcomes = {}
    for workers in (0, 2, 4):
        workload = FleetWorkload(
            clients=24,
            replicas=3,
            total_rate=30.0,
            seed=7,
            executor_workers=workers,
        )
        report = workload.run(duration=20.0, drain=10.0)
        outcomes[workers] = (report.final_root, report.log_digest)
        assert report.confirmed > 0
    assert outcomes[0] == outcomes[2] == outcomes[4]
