"""Property: no seeded fault schedule makes the Move protocol unsafe.

Hypothesis draws (seed, intensity, workload) triples; each triple fully
determines a chaos run — deployment, consensus timing, network jitter,
fault schedule, fault dice and workload choices all derive from the
seed — over which the :class:`InvariantChecker` re-asserts the paper's
four safety invariants at every block of every chain.  A failing
example therefore IS its own reproduction: re-running
``run_chaos(seed, ...)`` with the printed arguments replays the run
byte-for-byte, and ``FaultPlan.from_seed(seed)`` re-derives the exact
fault schedule for a bug report.

A fixed seed matrix (exercised by the CI chaos job) pins a handful of
runs permanently, so a regression in any faulted code path fails the
same seed on every machine.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.faults import FaultPlan
from repro.faults.chaos import run_chaos

CHAOS_SETTINGS = settings(
    max_examples=5,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


# ----------------------------------------------------------------------
# Plan reproducibility: the seed is the whole bug report
# ----------------------------------------------------------------------


@given(
    seed=st.integers(min_value=0, max_value=2**32 - 1),
    duration=st.sampled_from([120.0, 300.0, 600.0]),
    intensity=st.sampled_from([0.5, 1.0, 2.0]),
)
@settings(max_examples=50, deadline=None)
def test_fault_plans_reproduce_byte_identically(seed, duration, intensity):
    first = FaultPlan.from_seed(seed, duration=duration, intensity=intensity)
    second = FaultPlan.from_seed(seed, duration=duration, intensity=intensity)
    assert first.encode() == second.encode()
    assert first.events == second.events


@given(seed=st.integers(min_value=0, max_value=2**32 - 1))
@settings(max_examples=50, deadline=None)
def test_fault_plans_are_survivable_by_construction(seed):
    plan = FaultPlan.from_seed(seed, duration=300.0, intensity=2.0)
    busy = {}
    for event in plan.events:
        assert event.time <= 0.70 * plan.duration
        assert event.time + event.duration <= 0.85 * plan.duration + 1e-9
        if event.kind in ("crash", "stall_proposer"):
            # At most one validator per chain down at a time (f = 1).
            assert event.time >= busy.get(event.chain, 0.0)
            busy[event.chain] = event.time + event.duration
        if event.kind == "partition":
            # Partitions isolate a single validator: quorum survives.
            assert "," not in event.target


# ----------------------------------------------------------------------
# Randomized chaos runs (small, Hypothesis-driven)
# ----------------------------------------------------------------------


@given(
    seed=st.integers(min_value=0, max_value=2**16),
    workload=st.sampled_from(["scoin", "kitties"]),
)
@CHAOS_SETTINGS
def test_invariants_hold_under_random_fault_schedules(seed, workload):
    report = run_chaos(seed=seed, duration=120.0, workload=workload)
    # The run completing IS the safety assertion (violations raise);
    # make sure it actually exercised something.
    assert report.invariant_checks > 0
    assert all(height > 0 for height in report.blocks.values())


@given(seed=st.integers(min_value=0, max_value=2**16))
@CHAOS_SETTINGS
def test_chaos_runs_reproduce_exactly(seed):
    first = run_chaos(seed=seed, duration=90.0, workload="scoin")
    second = run_chaos(seed=seed, duration=90.0, workload="scoin")
    assert first.blocks == second.blocks
    assert first.injected == second.injected
    assert first.moves_completed == second.moves_completed
    assert first.actions_completed == second.actions_completed
    assert first.invariant_checks == second.invariant_checks


# ----------------------------------------------------------------------
# Fixed seed matrix: the CI chaos job's fast subset
# ----------------------------------------------------------------------

SEED_MATRIX = [
    pytest.param(1, "scoin", False, False, id="seed1_scoin"),
    # pow_peer: with the PoW bystander chain (reorg faults live)
    pytest.param(7, "scoin", True, False, id="seed7_scoin_pow"),
    pytest.param(11, "kitties", False, False, id="seed11_kitties"),
    pytest.param(23, "scoin", False, False, id="seed23_scoin"),
    pytest.param(42, "kitties", True, False, id="seed42_kitties_pow"),
    # replicate: mirrors under chaos — partitions, withheld relays and
    # equivocation must never let a replica serve orphaned/torn state
    pytest.param(5, "scoin", False, True, id="seed5_scoin_replicate"),
    pytest.param(13, "scoin", True, True, id="seed13_scoin_pow_replicate"),
    pytest.param(31, "kitties", False, True, id="seed31_kitties_replicate"),
]


@pytest.mark.parametrize("seed,workload,pow_peer,replicate", SEED_MATRIX)
def test_chaos_seed_matrix(seed, workload, pow_peer, replicate):
    report = run_chaos(
        seed=seed,
        duration=200.0,
        workload=workload,
        intensity=1.5,
        pow_peer=pow_peer,
        replicate=replicate,
    )
    assert report.invariant_checks > 0
    # Both workload chains made progress despite the schedule.
    for chain_id in (1, 2):
        assert report.blocks[chain_id] > 5
    # The schedule actually injected faults.
    assert sum(report.plan_counts.values()) >= 4
    assert report.moves_started > 0
    if replicate:
        # The run actually exercised replication: mirrors synced and
        # the per-block safety predicate ran (it raising is the fail).
        assert report.replica_updates > 0
        assert report.replica_checks > 0
        # Moving a replicated contract tombstones its mirrors.
        if report.moves_completed > 0:
            assert report.replica_tombstones > 0


@pytest.mark.parametrize(
    "seed", [5, 13], ids=["seed5_replicate", "seed13_replicate_pow"]
)
def test_chaos_replication_reproduces_exactly(seed):
    """A replicated chaos run is still a pure function of its seed."""
    import dataclasses

    pow_peer = seed == 13
    first = run_chaos(
        seed=seed, duration=120.0, workload="scoin", pow_peer=pow_peer, replicate=True
    )
    second = run_chaos(
        seed=seed, duration=120.0, workload="scoin", pow_peer=pow_peer, replicate=True
    )
    assert dataclasses.asdict(first) == dataclasses.asdict(second)
