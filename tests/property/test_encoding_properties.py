"""Property-based tests for the canonical encodings.

Signing safety hinges on injectivity: two different payloads must never
share a canonical encoding (a collision would let one signed intent be
replayed as another).  Storage-slot encode/decode must round-trip.
"""

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.chain.tx import canonical_encode
from repro.crypto.keys import Address
from repro.runtime.contract import decode_value, encode_key, encode_value

addresses = st.binary(min_size=20, max_size=20).map(Address)

scalars = st.one_of(
    st.integers(min_value=-(10**30), max_value=10**30),
    st.text(max_size=12),
    st.binary(max_size=12),
    st.booleans(),
    st.none(),
    addresses,
)

values = st.recursive(
    scalars,
    lambda children: st.one_of(
        st.lists(children, max_size=4).map(tuple),
        st.dictionaries(st.text(max_size=6), children, max_size=3),
    ),
    max_leaves=12,
)


def normalize(value):
    """Encoding-equivalence classes: tuples and lists encode alike."""
    if isinstance(value, (tuple, list)):
        return tuple(normalize(v) for v in value)
    if isinstance(value, dict):
        return tuple(sorted((k, normalize(v)) for k, v in value.items()))
    if isinstance(value, bool):
        return ("bool", value)
    if isinstance(value, int):
        return ("int", value)
    return value


@given(values, values)
@settings(max_examples=200, deadline=None)
def test_canonical_encode_is_injective(a, b):
    assume(normalize(a) != normalize(b))
    assert canonical_encode(a) != canonical_encode(b)


@given(values)
@settings(max_examples=100, deadline=None)
def test_canonical_encode_is_deterministic(value):
    assert canonical_encode(value) == canonical_encode(value)


@given(st.integers(min_value=0, max_value=2**256 - 1))
@settings(max_examples=80, deadline=None)
def test_int_slot_roundtrip(value):
    assert decode_value(encode_value(value), int) == value


@given(st.booleans())
def test_bool_slot_roundtrip(value):
    assert decode_value(encode_value(value), bool) == value


@given(st.binary(max_size=64))
@settings(max_examples=60, deadline=None)
def test_bytes_slot_roundtrip(value):
    assert decode_value(encode_value(value), bytes) == value


@given(addresses)
@settings(max_examples=60, deadline=None)
def test_address_slot_roundtrip(value):
    assert decode_value(encode_value(value), Address) == value


@given(
    st.one_of(st.integers(0, 2**64), st.binary(max_size=16), st.text(max_size=8), addresses),
    st.one_of(st.integers(0, 2**64), st.binary(max_size=16), st.text(max_size=8), addresses),
)
@settings(max_examples=120, deadline=None)
def test_map_keys_unique_per_value(a, b):
    def norm(v):
        # str and equal-bytes encode identically (documented overlap is
        # acceptable within one declared key type; across types we only
        # require determinism). Compare on the encoded domain.
        return encode_key(v)

    if a != b and norm(a) == norm(b):
        # overlapping encodings must come from the documented text/bytes
        # overlap, never from two ints or two addresses
        assert not (isinstance(a, int) and isinstance(b, int))
        assert not (isinstance(a, Address) and isinstance(b, Address))
