"""Property-based tests for the journaled world state.

Core invariant: any mutation sequence bracketed by snapshot/revert
leaves the state byte-identical to the snapshot point — including
committed roots — no matter how the operations interleave or nest.
"""

import copy

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.hashing import keccak
from repro.crypto.keys import Address
from repro.errors import StateError
from repro.merkle.iavl import IAVLTree
from repro.statedb.state import WorldState

ADDRESSES = [Address(bytes([i]) * 20) for i in range(1, 7)]
CODE = b"property-code"
CODE_HASH = keccak(CODE)

address_idx = st.integers(min_value=0, max_value=len(ADDRESSES) - 1)

ops = st.lists(
    st.one_of(
        st.tuples(st.just("credit"), address_idx, st.integers(1, 100)),
        st.tuples(st.just("debit"), address_idx, st.integers(1, 100)),
        st.tuples(st.just("create"), address_idx, st.integers(0, 0)),
        st.tuples(st.just("sstore"), address_idx, st.integers(0, 5)),
        st.tuples(st.just("locate"), address_idx, st.integers(2, 4)),
        st.tuples(st.just("nonce"), address_idx, st.integers(0, 0)),
    ),
    max_size=30,
)


def apply_op(state: WorldState, op) -> None:
    kind, idx, arg = op
    address = ADDRESSES[idx]
    try:
        if kind == "credit":
            state.add_balance(address, arg)
        elif kind == "debit":
            state.sub_balance(address, arg)
        elif kind == "create":
            state.create_contract(address, CODE_HASH, CODE)
        elif kind == "sstore":
            state.storage_set(address, bytes([arg]), b"v" * (arg + 1))
        elif kind == "locate":
            state.set_location(address, arg)
        elif kind == "nonce":
            state.bump_move_nonce(address)
    except StateError:
        pass  # illegal transitions (debit too much, missing contract) are fine


def observable(state: WorldState):
    return (
        {a: (r.balance, r.nonce) for a, r in state.accounts.items()},
        {
            a: (r.balance, r.location, r.move_nonce, dict(r.storage))
            for a, r in state.contracts.items()
        },
    )


@given(ops, ops)
@settings(max_examples=80, deadline=None)
def test_revert_restores_exact_state(prefix, suffix):
    state = WorldState(chain_id=1, tree_factory=IAVLTree)
    for op in prefix:
        apply_op(state, op)
    snapshot_view = copy.deepcopy(observable(state))
    snap = state.snapshot()
    for op in suffix:
        apply_op(state, op)
    state.revert(snap)
    assert observable(state) == snapshot_view


@given(ops, ops, ops)
@settings(max_examples=50, deadline=None)
def test_nested_reverts_compose(a, b, c):
    state = WorldState(chain_id=1, tree_factory=IAVLTree)
    for op in a:
        apply_op(state, op)
    view_a = copy.deepcopy(observable(state))
    snap_a = state.snapshot()
    for op in b:
        apply_op(state, op)
    view_b = copy.deepcopy(observable(state))
    snap_b = state.snapshot()
    for op in c:
        apply_op(state, op)
    state.revert(snap_b)
    assert observable(state) == view_b
    state.revert(snap_a)
    assert observable(state) == view_a


@given(ops)
@settings(max_examples=60, deadline=None)
def test_replicas_commit_identical_roots(operations):
    replica_a = WorldState(chain_id=1, tree_factory=IAVLTree)
    replica_b = WorldState(chain_id=1, tree_factory=IAVLTree)
    for op in operations:
        apply_op(replica_a, op)
        apply_op(replica_b, op)
    assert replica_a.commit() == replica_b.commit()


@given(ops, ops)
@settings(max_examples=60, deadline=None)
def test_reverted_suffix_does_not_change_committed_root(prefix, suffix):
    """A transaction that aborts must leave no trace in the root."""
    clean = WorldState(chain_id=1, tree_factory=IAVLTree)
    dirty = WorldState(chain_id=1, tree_factory=IAVLTree)
    for op in prefix:
        apply_op(clean, op)
        apply_op(dirty, op)
    snap = dirty.snapshot()
    for op in suffix:
        apply_op(dirty, op)
    dirty.revert(snap)
    assert clean.commit() == dirty.commit()
