"""Property: a replica only ever serves committed source states.

Hypothesis drives a random interleaving of contract writes, empty
blocks and (in the fork property) injected reorgs against a replicated
StoreContract, and after **every** block re-asserts the sync
protocol's contract:

* a ``LIVE`` mirror's image equals the source's committed storage at
  exactly one height — byte-for-byte, so a reader can never observe a
  torn half-applied update;
* that height is never more than the staleness bound (``p +
  state_root_lag`` source blocks) behind the source head, and never
  regresses;
* reads served off the replica return the values the source had
  committed at the synced height;
* when the branch a mirror's proofs lived on is orphaned, the mirror
  is ``HALTED`` and its storage wiped — fork-only state is never
  served, not even transiently.

The whole run is a pure function of the drawn operation list, so a
failing example shrinks to a minimal write/block/fork schedule.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chain.block import BlockHeader
from repro.chain.chain import Chain
from repro.chain.params import burrow_params
from repro.core.registry import ChainRegistry
from repro.crypto.hashing import keccak
from repro.ibc.headers import connect_chains
from repro.replicate.mirror import HALTED, LIVE
from repro.replicate.relay import ReplicationRelay
from tests.helpers import ALICE, CallPayload, ManualClock, deploy_store, run_tx

#: burrow staleness bound: confirmation_depth (1) + state_root_lag (1)
BOUND = 2

# Operation alphabet: None = empty block, (key, value) = a put + block.
_WRITE = st.tuples(st.integers(0, 5), st.integers(0, 1000))
OPS = st.lists(st.one_of(st.none(), _WRITE), min_size=4, max_size=20)
# Fork property adds rare "fork" ops (reorg injection).
FORK_OPS = st.lists(
    st.one_of(st.none(), _WRITE, st.just("fork")), min_size=6, max_size=20
)


def _setup(fork_aware: bool = False):
    registry = ChainRegistry()
    source = Chain(burrow_params(1), registry)
    target = Chain(burrow_params(2), registry)
    connect_chains([source, target], fork_aware=fork_aware)
    clock = ManualClock()
    address = deploy_store(source, clock, ALICE)
    relay = ReplicationRelay(source, target)
    relay.start()
    mirror = relay.add_contract(address)
    return source, target, clock, address, relay, mirror


class _Oracle:
    """Committed source state per height: raw storage + decoded model."""

    def __init__(self, source, address):
        self.source = source
        self.address = address
        self.storage = {}  # height -> raw slot dict (bytes -> bytes)
        self.model = {}  # height -> {key: value} as a client sees it
        self.kv = {}

    def record(self, writes=None):
        if writes:
            self.kv.update(writes)
        record = self.source.state.contract(self.address)
        self.storage[self.source.height] = dict(record.storage)
        self.model[self.source.height] = dict(self.kv)


def _check(source, target, address, mirror, oracle, prev_synced):
    if mirror.status == LIVE:
        height = mirror.synced_height
        # Within the bound, never regressing.
        assert mirror.staleness(source.height) <= BOUND
        assert height >= prev_synced
        # The image IS a committed state: byte-identical to what the
        # source had at exactly that height (no tearing, no mixing).
        assert height in oracle.storage
        assert mirror.image == oracle.storage[height]
        # And reads decode to the values committed at that height.
        for key, value in oracle.model[height].items():
            assert target.view(address, "get_value", key) == value
        return height
    return prev_synced if mirror.status != HALTED else -1


@given(ops=OPS)
@settings(max_examples=25, deadline=None)
def test_live_mirror_equals_a_committed_source_state_within_bound(ops):
    source, target, clock, address, relay, mirror = _setup()
    oracle = _Oracle(source, address)
    oracle.record()
    prev = -1
    for op in ops:
        if op is None:
            source.produce_block(clock.tick())
            oracle.record()
        else:
            key, value = op
            receipt = run_tx(
                source, clock, ALICE, CallPayload(address, "put", (key, value))
            )
            assert receipt.success, receipt.error
            oracle.record(writes={key: value})
        prev = _check(source, target, address, mirror, oracle, prev)
    # Liveness: with writes committed and headers flowing, the mirror
    # is LIVE by the end of any schedule long enough to confirm them.
    if len(ops) >= 4:
        assert mirror.status == LIVE


@given(ops=OPS)
@settings(max_examples=10, deadline=None)
def test_replication_runs_are_a_pure_function_of_the_schedule(ops):
    traces = []
    for _ in range(2):
        source, _target, clock, address, relay, mirror = _setup()
        trace = []
        for op in ops:
            if op is None:
                source.produce_block(clock.tick())
            else:
                run_tx(source, clock, ALICE, CallPayload(address, "put", op))
            trace.append(
                (mirror.status, mirror.synced_height, relay.updates, dict(mirror.image))
            )
        traces.append(trace)
    assert traces[0] == traces[1]


def _forge_reorg(store, mirror):
    """Graft a longer branch below the mirror's applied header."""
    applied = mirror.applied_header
    parent = store.header_at(applied.height - 1)
    for offset in range(store.head_height - applied.height + 3):
        parent = BlockHeader(
            chain_id=parent.chain_id,
            height=parent.height + 1,
            parent_hash=parent.hash(),
            state_root=keccak(f"forged-{parent.height}-{offset}".encode()),
            txs_root=keccak(b"txs"),
            timestamp=float(parent.height + 1),
            proposer="forger",
        )
        store.add_header(parent)


@given(ops=FORK_OPS)
@settings(max_examples=15, deadline=None)
def test_fork_only_state_is_never_served(ops):
    source, target, clock, address, relay, mirror = _setup(fork_aware=True)
    store = target.light_client.store_for(source.chain_id)
    oracle = _Oracle(source, address)
    oracle.record()
    prev = -1
    for op in ops:
        if op == "fork":
            if mirror.status == LIVE:
                _forge_reorg(store, mirror)
                relay.sync_all()
                # Orphaned immediately: unavailable and wiped, with
                # nothing left for a raw chain.view to serve either.
                assert mirror.status == HALTED
                assert mirror.image == {}
                assert not target.state.is_mirror(address)
                prev = -1
            continue
        if op is None:
            source.produce_block(clock.tick())
            oracle.record()
        else:
            run_tx(source, clock, ALICE, CallPayload(address, "put", op))
            oracle.record(writes={op[0]: op[1]})
        # Whatever branch won, a serving mirror sits on the canonical
        # one and reproduces a committed (real) source state.
        if mirror.status == LIVE:
            assert store.is_canonical(mirror.applied_header)
        prev = _check(source, target, address, mirror, oracle, prev)
