"""The detection-coverage gate: chaos runs with the health plane on.

Three properties over the seed matrix:

1. **Determinism** — the alert log and the postmortem bundle are
   byte-identical across executor worker counts (0, 2, 4), because the
   chaos monitor's probe set and snapshot whitelist are worker-count
   independent by construction.
2. **No false alarms** — every firing alert in a faulted run is
   attributable to an injected fault whose window (plus grace) covers
   the alert and whose kind can plausibly degrade the alert's target;
   and a fault-free run of the same worlds stays completely silent.
3. **No vacuous silence** — the matrix as a whole detects at least one
   injected fault, and two targeted single-fault scenarios (a long
   header withhold, a quorum-killing double crash) each produce the
   specific alert their fault should cause, with a resolve entry after
   the fault lifts.
"""

import json

import pytest

from repro.chain.params import ethereum_params
from repro.faults.chaos import POW_CHAIN, run_chaos
from repro.faults.plan import FaultEvent, FaultPlan
from repro.health.coverage import detection_coverage

DURATION = 200.0
INTENSITY = 1.5
WORKERS = (0, 2, 4)

#: (seed, workload, pow_peer, replicate) — same shape as the
#: parallel-determinism matrix, extended with replication entries so
#: the replica-staleness probe sees real mirrors under fault
SEED_MATRIX = [
    (1, "scoin", False, False),
    (7, "scoin", True, False),
    (11, "kitties", False, False),
    (23, "scoin", False, False),
    (42, "kitties", True, False),
    (5, "scoin", False, True),
    (13, "scoin", True, True),
    (31, "kitties", False, True),
]


def _plan(seed: int, pow_peer: bool) -> FaultPlan:
    """The exact plan ``run_chaos`` would derive — built explicitly so
    the coverage join runs over the same ground truth."""
    pow_chains = (
        {POW_CHAIN: ethereum_params(POW_CHAIN).confirmation_depth}
        if pow_peer
        else None
    )
    return FaultPlan.from_seed(
        seed, duration=DURATION, pow_chains=pow_chains, intensity=INTENSITY
    )


def _run(seed, workload, pow_peer, replicate, plan, workers=0):
    return run_chaos(
        seed,
        duration=DURATION,
        workload=workload,
        plan=plan,
        intensity=INTENSITY,
        pow_peer=pow_peer,
        executor_workers=workers,
        replicate=replicate,
        health=True,
    )


def _alerts(report):
    return [json.loads(line) for line in report.alert_log.splitlines()]


class TestDetectionGate:
    @pytest.mark.parametrize("seed,workload,pow_peer,replicate", SEED_MATRIX)
    def test_alerts_attributed_and_replay_byte_identical(
        self, seed, workload, pow_peer, replicate
    ):
        plan = _plan(seed, pow_peer)
        reports = [
            _run(seed, workload, pow_peer, replicate, plan, workers=w)
            for w in WORKERS
        ]
        base = reports[0]
        for other in reports[1:]:
            assert other.alert_log == base.alert_log
            assert other.postmortem_bundle == base.postmortem_bundle
            assert other.health_states == base.health_states
        coverage = detection_coverage(plan.events, _alerts(base))
        assert coverage.all_alerts_attributed, (
            f"seed {seed}: unattributed firing alerts "
            f"{[_alerts(base)[i] for i in coverage.unattributed]}"
        )

    def test_matrix_detects_at_least_one_fault(self):
        covered = 0
        for seed, workload, pow_peer, replicate in SEED_MATRIX:
            plan = _plan(seed, pow_peer)
            report = _run(seed, workload, pow_peer, replicate, plan)
            covered += len(
                detection_coverage(plan.events, _alerts(report)).covered
            )
        assert covered >= 1

    @pytest.mark.parametrize("seed,workload,pow_peer,replicate", SEED_MATRIX)
    def test_fault_free_worlds_stay_silent(
        self, seed, workload, pow_peer, replicate
    ):
        report = _run(
            seed, workload, pow_peer, replicate, FaultPlan(seed, DURATION)
        )
        assert report.alerts_fired == 0
        assert report.alert_log == ""


class TestTargetedScenarios:
    def test_long_withhold_fires_relay_lag(self):
        # Pause chain 1's header relay for 80 s: its observers' stores
        # stop advancing while the source keeps committing, so the
        # relay-lag SLO must fire — and resolve once headers flow again.
        plan = FaultPlan(
            0,
            DURATION,
            (FaultEvent(50.0, "withhold_headers", chain=1, duration=80.0),),
        )
        report = _run(0, "scoin", False, False, plan)
        alerts = _alerts(report)
        firing = [a for a in alerts if a["state"] == "firing"]
        assert firing, "80 s header withhold produced no alert"
        assert any(
            a["slo"] == "relay-lag" and a["target"].startswith("relay:1->")
            for a in firing
        ), f"no relay-lag alert in {firing}"
        assert any(
            a["state"] == "resolved" and a["slo"] == "relay-lag"
            for a in alerts
        ), "relay-lag alert never resolved after the withhold lifted"
        coverage = detection_coverage(plan.events, alerts)
        assert coverage.covered == (0,)
        assert coverage.all_alerts_attributed
        assert report.postmortem_bundle != ""

    def test_quorum_loss_fires_chain_liveness(self):
        # Crash two of chain 2's four validators at once: Tendermint
        # quorum (3 of 4) is gone, the chain stalls past its budget and
        # chain liveness must page — then resolve after both recover.
        plan = FaultPlan(
            0,
            DURATION,
            (
                FaultEvent(50.0, "crash", chain=2, target="val-2-0", duration=60.0),
                FaultEvent(50.0, "crash", chain=2, target="val-2-1", duration=60.0),
            ),
        )
        report = _run(0, "scoin", False, False, plan)
        alerts = _alerts(report)
        assert any(
            a["state"] == "firing"
            and a["slo"] == "chain-liveness"
            and a["target"] == "chain:2"
            for a in alerts
        ), f"quorum loss did not page chain liveness: {alerts}"
        assert any(
            a["state"] == "resolved" and a["target"] == "chain:2"
            for a in alerts
        ), "chain:2 alert never resolved after recovery"
        assert detection_coverage(plan.events, alerts).all_alerts_attributed
