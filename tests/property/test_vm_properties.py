"""Property-based tests for the bytecode VM.

The VM's arithmetic must agree with Python's integers mod 2^256; the
stack must behave as a straightforward list model under arbitrary
PUSH/DUP/SWAP/POP programs; memory must be a flat byte array.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.vm.assembler import assemble, disassemble
from repro.vm.gas import ETHEREUM_SCHEDULE
from repro.vm.machine import Machine, MemoryContext
from repro.vm.memory import Memory
from repro.vm.stack import WORD_MASK, Stack

words = st.integers(min_value=0, max_value=WORD_MASK)
small_words = st.integers(min_value=0, max_value=2**64 - 1)

MACHINE = Machine(ETHEREUM_SCHEDULE)


def run_binary(op: str, a: int, b: int) -> int:
    """Execute `a <op> b` (a pushed first, popped first) and return the
    result word."""
    source = (
        f"PUSH32 {b}\nPUSH32 {a}\n{op}\n"
        "PUSH1 0\nMSTORE\nPUSH1 32\nPUSH1 0\nRETURN"
    )
    result = MACHINE.execute(assemble(source), MemoryContext())
    assert result.success, result.error
    return int.from_bytes(result.return_data, "big")


@given(words, words)
@settings(max_examples=80, deadline=None)
def test_add_sub_mul_match_python(a, b):
    assert run_binary("ADD", a, b) == (a + b) & WORD_MASK
    assert run_binary("MUL", a, b) == (a * b) & WORD_MASK
    assert run_binary("SUB", a, b) == (a - b) & WORD_MASK


@given(words, words)
@settings(max_examples=80, deadline=None)
def test_div_mod_match_python(a, b):
    assert run_binary("DIV", a, b) == (a // b if b else 0)
    assert run_binary("MOD", a, b) == (a % b if b else 0)


@given(small_words, st.integers(min_value=0, max_value=64))
@settings(max_examples=40, deadline=None)
def test_exp_matches_python(a, b):
    assert run_binary("EXP", a, b) == pow(a, b, 1 << 256)


@given(words, words)
@settings(max_examples=80, deadline=None)
def test_comparisons_and_bitwise(a, b):
    assert run_binary("LT", a, b) == (1 if a < b else 0)
    assert run_binary("GT", a, b) == (1 if a > b else 0)
    assert run_binary("EQ", a, b) == (1 if a == b else 0)
    assert run_binary("AND", a, b) == a & b
    assert run_binary("OR", a, b) == a | b
    assert run_binary("XOR", a, b) == a ^ b


@given(st.lists(st.sampled_from(["push", "pop", "dup", "swap"]), max_size=40), st.data())
@settings(max_examples=80, deadline=None)
def test_stack_matches_list_model(ops, data):
    from repro.errors import StackUnderflow

    stack = Stack()
    model = []
    for op in ops:
        if op == "push":
            value = data.draw(words)
            stack.push(value)
            model.append(value)
        elif op == "pop":
            if model:
                assert stack.pop() == model.pop()
            else:
                try:
                    stack.pop()
                    assert False, "expected underflow"
                except StackUnderflow:
                    pass
        elif op == "dup" and model:
            n = data.draw(st.integers(min_value=1, max_value=len(model)))
            stack.dup(n)
            model.append(model[-n])
        elif op == "swap" and len(model) >= 2:
            n = data.draw(st.integers(min_value=1, max_value=len(model) - 1))
            stack.swap(n)
            model[-1], model[-1 - n] = model[-1 - n], model[-1]
    assert len(stack) == len(model)
    for depth, expected in enumerate(reversed(model)):
        assert stack.peek(depth) == expected


@given(st.lists(st.tuples(st.integers(0, 500), st.binary(min_size=1, max_size=40)), max_size=20))
@settings(max_examples=60, deadline=None)
def test_memory_matches_bytearray_model(writes):
    memory = Memory()
    model = bytearray()
    for offset, payload in writes:
        memory.store(offset, payload)
        if len(model) < offset + len(payload):
            needed = offset + len(payload)
            words_needed = (needed + 31) // 32
            model.extend(b"\x00" * (words_needed * 32 - len(model)))
        model[offset:offset + len(payload)] = payload
    assert memory.load(0, len(model)) == bytes(model)


@given(st.binary(max_size=60))
@settings(max_examples=80, deadline=None)
def test_disassembler_total_on_arbitrary_bytes(blob):
    rows = disassemble(blob)
    # Every byte is accounted for and offsets are strictly increasing.
    offsets = [offset for offset, _text in rows]
    assert offsets == sorted(set(offsets))
    if blob:
        assert offsets[0] == 0


@given(st.lists(st.sampled_from(
    ["ADD", "MUL", "SUB", "POP", "CALLER", "ADDRESS", "CHAINID", "ISZERO", "NOT"]
), max_size=25), st.lists(words, min_size=30, max_size=30))
@settings(max_examples=60, deadline=None)
def test_vm_never_crashes_on_wellformed_programs(mnemonics, seeds):
    """Any program of stack-safe ops either succeeds or fails with a
    reported error — never an unhandled exception (fuzz harness)."""
    lines = [f"PUSH32 {seeds[i]}" for i in range(5)]  # seed operands
    lines += list(mnemonics)
    code = assemble("\n".join(lines))
    try:
        MACHINE.execute(code, MemoryContext())
    except Exception as exc:  # noqa: BLE001 - stack faults are expected
        from repro.errors import VMError

        assert isinstance(exc, VMError)
