"""Gene mixing for ScalableKitties.

CryptoKitties' real ``geneScience`` contract is closed-source; this is
the usual open reimplementation shape: a 256-bit genome of 4-bit genes,
each child gene drawn from one of the parents with occasional mutation,
all derived deterministically from a seed so replicas agree.
"""

from __future__ import annotations

from repro.crypto.hashing import keccak

GENOME_BITS = 256
GENE_BITS = 4
GENE_COUNT = GENOME_BITS // GENE_BITS
_GENE_MASK = (1 << GENE_BITS) - 1

#: 1-in-16 chance a gene mutates instead of inheriting
_MUTATION_ONE_IN = 16


def mix_genes(matron_genes: int, sire_genes: int, seed: int) -> int:
    """Deterministically combine two genomes.

    Every replica executing ``giveBirth`` derives the same child genome
    from the same on-chain seed (block height + kitty ids in practice).
    """
    entropy = keccak(
        matron_genes.to_bytes(32, "big"),
        sire_genes.to_bytes(32, "big"),
        seed.to_bytes(32, "big"),
    )
    child = 0
    for i in range(GENE_COUNT):
        byte = entropy[i % len(entropy)]
        roll = (byte + i) % _MUTATION_ONE_IN
        matron_gene = (matron_genes >> (i * GENE_BITS)) & _GENE_MASK
        sire_gene = (sire_genes >> (i * GENE_BITS)) & _GENE_MASK
        if roll == 0:
            gene = (matron_gene + sire_gene + byte) & _GENE_MASK  # mutation
        elif byte % 2 == 0:
            gene = matron_gene
        else:
            gene = sire_gene
        child |= gene << (i * GENE_BITS)
    return child


def promo_genes(index: int) -> int:
    """Deterministic genome for promotional (generation-0) cats."""
    return int.from_bytes(keccak(b"promo-kitty", index.to_bytes(8, "big")), "big")
