"""The paper's applications (Section V) plus the state-transfer probes.

* :mod:`repro.apps.scoin` — **SCoin**: a movable ERC20-style token with
  one ``SAccount`` contract per user and create2-salt origin
  attestation between sibling accounts;
* :mod:`repro.apps.kitties` — **ScalableKitties**: the CryptoKitties
  clone whose cats are individual movable contracts that breed across
  shards; gene mixing in :mod:`repro.apps.genes`, the sale auction in
  :mod:`repro.apps.auction`;
* :mod:`repro.apps.store` — **Store 1/10/100**: contracts holding N
  32-byte state variables, the state-transfer workload of Section VIII.
"""

from repro.apps.auction import ClockAuction
from repro.apps.kitties import Kitty, KittyRegistry
from repro.apps.scoin import SAccount, SCoin
from repro.apps.store import StateStore, make_store_deploy_args

__all__ = [
    "SCoin",
    "SAccount",
    "Kitty",
    "KittyRegistry",
    "ClockAuction",
    "StateStore",
    "make_store_deploy_args",
]
