"""SCoin: the paper's scalable, movable token (Section V-A).

Classic ERC20 keeps every balance in one map inside one contract — a
shape that cannot be shared across chains, since a contract lives on
exactly one chain at a time.  SCoin instead mints **one account
contract per user** (``SAccount``); accounts move between chains freely
and transfer tokens only to accounts on the same chain.

Origin attestation.  When accounts ``A`` and ``B`` meet on some chain,
how does ``A`` know ``B`` is a genuine sibling and not a forgery whose
``debit`` mints tokens out of thin air?  SCoin creates accounts with
CREATE2 and a monotonically increasing **salt** stored in each
account's state: given ``B``'s claimed salt, ``A`` recomputes
``create2(parent_chain, parent, salt, code_hash)`` — one cheap hash —
and compares it with ``B``'s address.  The code hash pins the exact
``SAccount`` code, the parent pins the factory, so a match proves ``B``
was created by the same SCoin with the same code.  ``debit`` runs the
same check against its *caller* before crediting.
"""

from __future__ import annotations

from typing import Tuple

from repro.crypto.hashing import keccak
from repro.crypto.keys import Address, create2_address
from repro.lang.movable import MovableContract
from repro.runtime.contract import MapSlot, Slot, external, payable, require, view
from repro.runtime.registry import register_contract


@register_contract
class SAccount(MovableContract):
    """One user's token account — a movable contract.

    ``owner`` (inherited) is the controlling user; ``parent`` /
    ``parent_chain`` / ``salt`` pin this account's provenance and move
    with it, so attestation works on any chain the account visits.
    """

    parent = Slot(Address)
    parent_chain = Slot(int)
    salt = Slot(int)
    token_count = Slot(int)
    allowances = MapSlot(Address, int)

    def init(self, user: Address, salt: int) -> None:
        """Bind the account to its user, parent and CREATE2 salt."""
        self.owner = user
        self.parent = self.msg.sender  # the SCoin factory
        self.parent_chain = self.chain_id
        self.salt = salt

    # -- views ---------------------------------------------------------

    @view
    def token_balance(self) -> int:
        """Tokens held by this account."""
        return self.token_count

    @view
    def origin_salt(self) -> int:
        """The CREATE2 salt — siblings read it to attest this account."""
        return self.salt

    @view
    def allowance(self, spender: Address) -> int:
        """Remaining allowance granted to ``spender``."""
        return self.allowances[spender]

    # -- origin attestation ---------------------------------------------

    def _attest_sibling(self, address: Address, claimed_salt: int) -> bool:
        expected = create2_address(
            self.parent_chain, self.parent, claimed_salt, type(self).CODE_HASH
        )
        return expected == address

    # -- token movement ---------------------------------------------------

    def _send(self, to: Address, tokens: int) -> bool:
        require(tokens >= 0, "negative amount")
        require(self.token_count >= tokens, "insufficient tokens")
        to_salt = self.call(to, "origin_salt")
        require(self._attest_sibling(to, to_salt), "destination is not a sibling account")
        self.token_count -= tokens
        proof = int(self.salt).to_bytes(32, "big")
        require(self.call(to, "debit", tokens, proof), "debit refused")
        self.emit("Transfer", to=to.hex, tokens=tokens)
        return True

    @external
    def transfer_tokens(self, to: Address, tokens: int) -> bool:
        """Owner-initiated transfer to a sibling on the same chain."""
        require(self.msg.sender == self.owner, "only the owner transfers")
        return self._send(to, tokens)

    @external
    def approve(self, spender: Address, tokens: int) -> bool:
        """Grant ``spender`` an allowance (ERC20 approve)."""
        require(self.msg.sender == self.owner, "only the owner approves")
        self.allowances[spender] = tokens
        self.emit("Approval", spender=spender.hex, tokens=tokens)
        return True

    @external
    def transfer_from(self, to: Address, tokens: int) -> bool:
        """Spend an allowance granted to ``msg.sender``."""
        allowed = self.allowances[self.msg.sender]
        require(allowed >= tokens, "allowance exceeded")
        self.allowances[self.msg.sender] = allowed - tokens
        return self._send(to, tokens)

    @external
    def debit(self, tokens: int, proof: bytes) -> bool:
        """Credit this account; the caller must prove sibling origin.

        ``proof`` is the calling account's salt: we recompute its
        CREATE2 address and compare with ``msg.sender`` (Section V-A:
        "holding a proof in B that it was created by the same contract
        that created A").
        """
        sender_salt = int.from_bytes(proof, "big")
        require(
            self._attest_sibling(self.msg.sender, sender_salt),
            "caller is not a sibling account",
        )
        self.token_count += tokens
        return True

    @external
    def mint(self, tokens: int) -> bool:
        """Credit freshly minted tokens — only callable by the parent
        SCoin (on the account's home chain)."""
        require(self.msg.sender == self.parent, "only the parent mints")
        self.token_count += tokens
        return True

    # -- generic (Merkle-proof) attestation --------------------------------
    #
    # Section V-A: "A more generic method could be devised using Merkle
    # proofs with the same proposed interfaces."  Instead of recomputing
    # a CREATE2 address, the sibling presents a proof that the parent
    # SCoin's ``accounts`` map contains it, verified against the parent
    # chain's p-confirmed headers through the light-client builtin.
    # Useful when accounts meet on a chain whose runtime cannot
    # recompute the source chain's address scheme.

    def _check_membership_proof(self, proof, salt: int, member: Address) -> None:
        require(proof.container == self.parent, "proof is not about the parent")
        require(proof.chain_id == self.parent_chain, "proof is for the wrong chain")
        require(
            proof.key == SCoin.account_map_key(salt), "proof is for a different salt"
        )
        require(proof.value == member.raw, "proof names a different account")
        require(self.verify_remote_state(proof), "remote proof rejected")

    @external
    def debit_with_proof(self, tokens: int, salt: int, proof) -> bool:
        """Credit this account; the caller proves sibling origin with a
        Merkle proof of the parent's accounts map."""
        self._check_membership_proof(proof, salt, self.msg.sender)
        self.token_count += tokens
        return True

    @external
    def transfer_tokens_with_proofs(
        self, to: Address, tokens: int,
        to_salt: int, to_proof, my_salt: int, my_proof,
    ) -> bool:
        """Proof-attested transfer: the sender verifies the receiver's
        membership proof, then hands the receiver a proof of its own."""
        require(self.msg.sender == self.owner, "only the owner transfers")
        require(tokens >= 0, "negative amount")
        require(self.token_count >= tokens, "insufficient tokens")
        self._check_membership_proof(to_proof, to_salt, to)
        self.token_count -= tokens
        require(
            self.call(to, "debit_with_proof", tokens, my_salt, my_proof),
            "debit refused",
        )
        self.emit("Transfer", to=to.hex, tokens=tokens)
        return True


@register_contract
class SCoin(MovableContract):
    """The token factory implementing ``STokenI``.

    Lives on its home chain; accounts it creates roam.  ``owner`` (the
    deployer) controls minting, mirroring promotional issuance.
    """

    supply = Slot(int)
    next_salt = Slot(int)
    accounts = MapSlot(int, Address)  # salt -> account address

    @view
    def total_supply(self) -> int:
        """Tokens minted across all accounts (Listing 2)."""
        return self.supply

    def _new_account(self, user: Address) -> Tuple[Address, int]:
        salt = self.next_salt
        self.next_salt = salt + 1
        account = self.create(SAccount, user, salt, salt=salt)
        self.accounts[salt] = account
        self.emit("CreatedAccount", account=account.hex, salt=salt)
        return account, salt

    @payable
    def new_account(self) -> Tuple[Address, int]:
        """Create an account owned by the caller (Listing 2)."""
        return self._new_account(self.msg.sender)

    @payable
    def new_account_for(self, for_addr: Address) -> Tuple[Address, int]:
        """Create an account owned by ``for_addr`` (Listing 2)."""
        return self._new_account(for_addr)

    @external
    def mint_to(self, account: Address, tokens: int) -> bool:
        """Issue tokens to an account contract (deployer only)."""
        require(self.msg.sender == self.owner, "only the token owner mints")
        require(self.call(account, "mint", tokens), "mint refused")
        self.supply += tokens
        return True

    @view
    def account_of(self, salt: int) -> Address:
        """The account contract created with ``salt``."""
        return self.accounts[salt]

    @staticmethod
    def account_map_key(salt: int) -> bytes:
        """Storage key of ``accounts[salt]`` — what a membership proof
        of the map must target (clients and verifying siblings both
        derive it from the declared slot layout)."""
        from repro.runtime.contract import encode_key

        return keccak(SCoin.accounts.base, encode_key(salt))
