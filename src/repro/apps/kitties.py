"""ScalableKitties: the CryptoKitties clone of Section V-B.

The original CryptoKitties is one monolithic contract owning every cat;
moving it would drag the entire cattery along.  ScalableKitties applies
the paper's programming model — *smart contracts as first-class movable
objects* — so **each cat is its own contract** and migrates alone.

Function mapping (only breeding can go cross-chain):

* promotional creation — ``KittyRegistry.create_promo_kitty`` (owner
  only), generation-0 cats;
* siring approval — ``Kitty.approve_siring`` (the sire owner permits a
  matron);
* breeding — ``Kitty.breed_with`` on the matron, requiring the sire on
  the *same* chain (if not, the client first moves one cat — the only
  source of cross-shard transactions in the Fig. 5 replay);
* birth — ``Kitty.give_birth`` creates the child contract;
* ownership transfer — ``Kitty.transfer_ownership`` (also how the sale
  auction of :mod:`repro.apps.auction` settles).
"""

from __future__ import annotations

from repro.apps.genes import mix_genes, promo_genes
from repro.crypto.hashing import keccak
from repro.crypto.keys import Address
from repro.lang.movable import MovableContract
from repro.runtime.contract import MapSlot, Slot, external, require, view
from repro.runtime.registry import register_contract


def derive_kitty_id(matron_id: int, sire_id: int, height: int, chain_id: int) -> int:
    """Registry-free unique kitten id (64-bit, collision-negligible)."""
    digest = keccak(
        b"kitty-id",
        matron_id.to_bytes(32, "big"),
        sire_id.to_bytes(32, "big"),
        height.to_bytes(8, "big"),
        chain_id.to_bytes(8, "big"),
    )
    return int.from_bytes(digest[:8], "big")


@register_contract
class Kitty(MovableContract):
    """One cat: genes, lineage, pregnancy state — all movable."""

    #: seconds a matron must rest after giving birth (CryptoKitties'
    #: breeding cooldown; 0 by default so the paper's replay pacing is
    #: driven purely by the dependency DAG)
    BREED_COOLDOWN: float = 0.0

    kitty_id = Slot(int)
    genes = Slot(int)
    generation = Slot(int)
    matron_id = Slot(int)  # 0 for generation-0 cats
    sire_id = Slot(int)
    birth_time = Slot(int)
    registry = Slot(Address)
    # pregnancy
    pregnant_with_sire = Slot(int)  # sire kitty id, 0 = not pregnant
    sire_genes_snapshot = Slot(int)
    last_birth_at = Slot(int)
    # siring permission: matron owner allowed to use this cat as sire
    siring_approved_for = Slot(Address)

    def init(
        self,
        owner: Address,
        kitty_id: int,
        genes: int,
        generation: int,
        matron_id: int,
        sire_id: int,
        registry: Address,
    ) -> None:
        """Set the cat's genes, lineage and owner at birth."""
        self.owner = owner
        self.kitty_id = kitty_id
        self.genes = genes
        self.generation = generation
        self.matron_id = matron_id
        self.sire_id = sire_id
        self.registry = registry
        self.birth_time = int(self.now)

    # -- views -----------------------------------------------------------

    @view
    def get_genes(self) -> int:
        """The 256-bit genome."""
        return self.genes

    @view
    def get_owner(self) -> Address:
        """The controlling user."""
        return self.owner

    @view
    def lineage(self) -> tuple:
        """(id, matron id, sire id, generation)."""
        return (self.kitty_id, self.matron_id, self.sire_id, self.generation)

    @view
    def is_pregnant(self) -> bool:
        """Bred but not yet delivered?"""
        return self.pregnant_with_sire != 0

    @view
    def siring_info(self) -> tuple:
        """(kitty_id, genes, generation, matron_id, sire_id) — what a
        matron needs from a sire to breed."""
        return (self.kitty_id, self.genes, self.generation, self.matron_id, self.sire_id)

    # -- ownership ---------------------------------------------------------

    @external
    def transfer_ownership(self, new_owner: Address) -> None:
        """Hand the cat to a new owner (clears siring approval)."""
        require(self.msg.sender == self.owner, "only the owner transfers")
        self.owner = new_owner
        self.siring_approved_for = None
        self.emit("Transfer", kitty=self.kitty_id, to=new_owner.hex)

    # -- breeding ------------------------------------------------------------

    @external
    def approve_siring(self, matron_owner: Address) -> None:
        """The sire's owner permits ``matron_owner`` to breed with it."""
        require(self.msg.sender == self.owner, "only the owner approves siring")
        self.siring_approved_for = matron_owner

    @external
    def consume_siring(self, matron_owner: Address) -> tuple:
        """Called by a sibling matron during breeding: check permission,
        clear it, and hand back this sire's breeding info."""
        require(
            self.owner == matron_owner or self.siring_approved_for == matron_owner,
            "siring not approved",
        )
        if self.siring_approved_for == matron_owner:
            self.siring_approved_for = None
        return (self.kitty_id, self.genes, self.generation, self.matron_id, self.sire_id)

    @external
    def breed_with(self, sire: Address) -> None:
        """Mate this matron with a sire **on the same chain**.

        Aborts when the sire lives elsewhere (no record / locked) — the
        caller must move one of the cats first.  Sibling cats cannot
        mate (Section V-B's example rule).
        """
        require(self.msg.sender == self.owner, "only the matron's owner breeds")
        require(self.pregnant_with_sire == 0, "already pregnant")
        require(
            self.last_birth_at == 0
            or self.now - self.last_birth_at >= self.BREED_COOLDOWN,
            "breeding cooldown not elapsed",
        )
        sire_id, sire_genes, _sire_gen, sire_matron, sire_sire = self.call(
            sire, "consume_siring", self.owner
        )
        require(sire_id != self.kitty_id, "cannot breed with itself")
        if self.generation > 0 and _sire_gen > 0:
            same_parents = (
                self.matron_id == sire_matron and self.sire_id == sire_sire
            )
            require(not same_parents, "sibling cats cannot mate")
        self.pregnant_with_sire = sire_id
        self.sire_genes_snapshot = sire_genes
        self.emit("Pregnant", matron=self.kitty_id, sire=sire_id)

    @external
    def give_birth(self) -> Address:
        """Deliver the kitten: a brand-new movable contract.

        The child id is derived from the parents and block height
        rather than allocated by the registry — a moved cat must be
        able to give birth on a chain where the registry does not live.
        """
        require(self.pregnant_with_sire != 0, "not pregnant")
        sire_id = self.pregnant_with_sire
        child_genes = mix_genes(
            self.genes, self.sire_genes_snapshot, seed=self.env.height + self.kitty_id
        )
        self.pregnant_with_sire = 0
        self.sire_genes_snapshot = 0
        self.last_birth_at = int(self.now)
        child_id = derive_kitty_id(self.kitty_id, sire_id, self.env.height, self.chain_id)
        child = self.create(
            Kitty,
            self.owner,
            child_id,
            child_genes,
            self.generation + 1,
            self.kitty_id,
            sire_id,
            self.registry,
            salt=child_id,
        )
        self.emit("Birth", kitty=child_id, matron=self.kitty_id, sire=sire_id)
        return child


@register_contract
class KittyRegistry(MovableContract):
    """Global counters and promo-cat issuance (one per deployment).

    Unlike cats, the registry stays put; cats only need it for unique
    id allocation, which keeps cross-chain breeding independent of it
    when ids are pre-allocated (the trace replayer does exactly that).
    """

    kitties_created = Slot(int)
    promo_created = Slot(int)

    @external
    def next_kitty_id(self) -> int:
        """Allocate the next sequential id (registry-local)."""
        new_id = self.kitties_created + 1
        self.kitties_created = new_id
        return new_id

    @external
    def create_promo_kitty(self, to: Address) -> Address:
        """Generation-0 cat issued by the registry owner (Section V-B:
        "cats were first generated by the contract's owner").

        Ids are chain-qualified (Section III-G: identifiers must stay
        unique system-wide) so cats minted by different registries can
        meet and breed after moving.
        """
        require(self.msg.sender == self.owner, "only the registry owner")
        counter = self.kitties_created + 1
        self.kitties_created = counter
        self.promo_created += 1
        kitty_id = derive_kitty_id(0, counter, 0, self.chain_id)
        kitty = self.create(
            Kitty, to, kitty_id, promo_genes(kitty_id), 0, 0, 0, self.address,
            salt=kitty_id,
        )
        self.emit("PromoKitty", kitty=kitty_id, owner=to.hex)
        return kitty

    @view
    def total_kitties(self) -> int:
        """Cats this registry has counted."""
        return self.kitties_created
