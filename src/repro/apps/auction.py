"""Clock auction for selling kitties.

CryptoKitties sells both promotional and bred cats through a
descending-price ("clock") auction contract (Section V-B).  The seller
escrows the cat by transferring its ownership to the auction contract;
a bid at or above the current price buys it.  The price interpolates
linearly from ``start_price`` to ``end_price`` over ``duration``
seconds and stays at ``end_price`` afterwards.
"""

from __future__ import annotations

from repro.crypto.keys import Address
from repro.runtime.contract import Contract, MapSlot, Slot, external, payable, require, view
from repro.runtime.registry import register_contract


@register_contract
class ClockAuction(Contract):
    """One auction house; many concurrent listings keyed by cat address."""

    # listing fields, keyed by the cat contract's address
    seller = MapSlot(Address, Address)
    start_price = MapSlot(Address, int)
    end_price = MapSlot(Address, int)
    duration = MapSlot(Address, int)
    started_at = MapSlot(Address, int)

    @external
    def create_auction(
        self, kitty: Address, start_price: int, end_price: int, duration: int
    ) -> None:
        """List a cat.  The seller must have transferred the cat's
        ownership to this auction contract beforehand (escrow)."""
        require(duration > 0, "duration must be positive")
        require(start_price >= end_price, "clock auctions descend")
        require(self.seller[kitty] is None, "already listed")
        cat_owner = self.call(kitty, "get_owner")
        require(cat_owner == self.address, "cat not escrowed to the auction")
        self.seller[kitty] = self.msg.sender
        self.start_price[kitty] = start_price
        self.end_price[kitty] = end_price
        self.duration[kitty] = duration
        self.started_at[kitty] = int(self.now)
        self.emit("AuctionCreated", kitty=kitty.hex, start=start_price, end=end_price)

    @view
    def current_price(self, kitty: Address) -> int:
        """The descending clock price right now."""
        require(self.seller[kitty] is not None, "not listed")
        elapsed = int(self.now) - self.started_at[kitty]
        total = self.duration[kitty]
        if elapsed >= total:
            return self.end_price[kitty]
        span = self.start_price[kitty] - self.end_price[kitty]
        return self.start_price[kitty] - (span * elapsed) // total

    @payable
    def bid(self, kitty: Address) -> None:
        """Buy at the current clock price; overpayment is refunded."""
        price = self.current_price(kitty)
        require(self.msg.value >= price, "bid below the clock price")
        seller = self.seller[kitty]
        self._delist(kitty)
        self.call(kitty, "transfer_ownership", self.msg.sender)
        if price:
            self.transfer(seller, price)
        overpay = self.msg.value - price
        if overpay:
            self.transfer(self.msg.sender, overpay)
        self.emit("AuctionSuccessful", kitty=kitty.hex, price=price, winner=self.msg.sender.hex)

    @external
    def cancel_auction(self, kitty: Address) -> None:
        """The seller reclaims an unsold cat."""
        seller = self.seller[kitty]
        require(seller is not None, "not listed")
        require(self.msg.sender == seller, "only the seller cancels")
        self._delist(kitty)
        self.call(kitty, "transfer_ownership", seller)
        self.emit("AuctionCancelled", kitty=kitty.hex)

    def _delist(self, kitty: Address) -> None:
        del self.seller[kitty]
        del self.start_price[kitty]
        del self.end_price[kitty]
        del self.duration[kitty]
        del self.started_at[kitty]
