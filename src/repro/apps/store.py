"""Store 1 / Store 10 / Store 100: the state-transfer probes.

Section VIII moves contracts holding 1, 10 and 100 32-byte state
variables between Ethereum and Burrow to measure how move latency and
gas scale with state size (Figs. 8 and 9: Move2's SSTORE recreation
grows linearly, Store 100 ≈ 2 Mgas).
"""

from __future__ import annotations

from typing import Tuple

from repro.crypto.hashing import keccak
from repro.lang.movable import MovableContract
from repro.runtime.contract import MapSlot, Slot, external, require, view
from repro.runtime.registry import register_contract


@register_contract
class StateStore(MovableContract):
    """A movable contract holding ``slot_count`` 32-byte variables."""

    slot_count = Slot(int)
    data = MapSlot(int, bytes)

    def init(self, slot_count: int) -> None:
        """Fill ``slot_count`` 32-byte variables deterministically."""
        self.owner = self.msg.sender
        self.slot_count = slot_count
        for i in range(slot_count):
            self.data[i] = keccak(b"store-value", i.to_bytes(8, "big"))

    @view
    def value_at(self, index: int) -> bytes:
        """The 32-byte value in slot ``index``."""
        return self.data[index]

    @view
    def size(self) -> int:
        """The declared number of variables."""
        return self.slot_count

    @external
    def rewrite(self, index: int, value: bytes) -> None:
        """Owner-only overwrite of one variable."""
        require(self.msg.sender == self.owner, "only the owner writes")
        require(index < self.slot_count, "index out of range")
        require(len(value) == 32, "values are 32 bytes")
        self.data[index] = value


def make_store_deploy_args(n: int) -> Tuple[int]:
    """Constructor args for a Store-N contract (paper uses 1/10/100)."""
    return (n,)
