"""Command-line interface: run the paper's experiments from a shell.

::

    python -m repro info
    python -m repro move-demo
    python -m repro relay-demo
    python -m repro gateway --clients 64 --rate 2.0 --duration 120
    python -m repro trace  --shards 4 --ops 2000
    python -m repro scoin  --shards 4 --clients 40 --cross 0.10 --duration 300
    python -m repro ibc    --app store10 --direction e2b
    python -m repro telemetry breakdown --workload scoin --duration 300
    python -m repro telemetry slowest   --top 5
    python -m repro telemetry export    --format chrome --out trace.json
    python -m repro obs status     --seed 11 --duration 300
    python -m repro obs slo        --seed 11 --json
    python -m repro obs postmortem --seed 11 --out bundle.json

``info``, ``gateway``, ``ibc``, ``trace --inspect`` and the
``telemetry``/``obs`` analyses accept ``--json`` for machine-readable
output.

The CLI builds everything through the stable :mod:`repro.api` facade —
the same front door applications use.  Every command prints the same
quantities the paper's corresponding section reports; heavier,
assertion-checked versions of these runs live in ``benchmarks/``.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional


def _print_json(payload) -> None:
    print(json.dumps(payload, indent=2, sort_keys=True))


def _cmd_info(args) -> int:
    inventory = [
        ("repro.api", "the stable public facade (Node, Gateway, Client, errors)"),
        ("repro.node", "long-running node runtime: chains + relays + block timer"),
        ("repro.gateway", "batched admission, backpressure, rate limits, futures"),
        ("repro.core", "Move1/Move2, proof bundles, replay guard, relay, swap, GC"),
        ("repro.vm", "EVM-flavoured VM + gas schedule + OP_MOVE"),
        ("repro.merkle", "binary Merkle / IAVL / Patricia trie + {v} -> m proofs"),
        ("repro.consensus", "Tendermint-style BFT + Nakamoto PoW over simulated WAN"),
        ("repro.apps", "SCoin, ScalableKitties, Store-N"),
        ("repro.traces", "synthetic CryptoKitties trace + dependency-DAG replay"),
        ("repro.sharding", "hash partitioning, N-shard clusters, load balancer"),
        ("repro.ibc", "header relays, cross-chain bridge, Fig. 8/9 scenarios"),
        ("repro.telemetry", "move-lifecycle tracing, metrics registry, exporters"),
        ("repro.faults", "seeded fault plans, chaos runs, safety invariants"),
    ]
    if getattr(args, "json", False):
        _print_json({
            "paper": "Smart Contracts on the Move (DSN 2020)",
            "subsystems": {name: what for name, what in inventory},
        })
        return 0
    print("Smart Contracts on the Move — DSN 2020 reproduction")
    print()
    for name, what in inventory:
        print(f"  {name:17s} {what}")
    print()
    print("benchmarks: pytest benchmarks/ --benchmark-only")
    print("tests:      pytest tests/")
    return 0


def _demo_world():
    from repro import api

    registry = api.ChainRegistry()
    burrow = api.Chain(api.burrow_params(1), registry)
    ethereum = api.Chain(api.ethereum_params(2), registry)
    api.connect_chains([burrow, ethereum])
    return burrow, ethereum


def _demo_tx(chain, keypair, payload, clock):
    from repro.api import sign_transaction

    tx = sign_transaction(keypair, payload)
    chain.submit(tx)
    clock[0] += 5.0
    chain.produce_block(clock[0])
    receipt = chain.receipts[tx.tx_id]
    if not receipt.success:
        raise SystemExit(f"demo transaction failed: {receipt.error}")
    return receipt


def _cmd_move_demo(_args) -> int:
    from repro import api
    from repro.apps.store import StateStore

    # The served path: a node owning both chains, the gateway in front,
    # one client driving the whole Move protocol through futures.
    node = api.Node([api.burrow_params(1), api.ethereum_params(2)])
    gateway = api.Gateway(node)
    alice = api.Client(api.InProcessTransport(gateway), name="alice")
    gateway.start()

    receipt = alice.wait(alice.deploy(StateStore, args=(3,), chain=1))
    store = receipt.return_value
    print(f"deployed Store-3 at {store} on chain 1 (Burrow-flavoured), via gateway")

    handle = alice.move(store, source_chain=1, target_chain=2)
    node.run_until(lambda: handle.stage != "move1")
    print(f"Move1 included at height "
          f"{handle.phases.move1_included_at and node.chain(1).height}: "
          f"contract locked, L_c = {node.chain(1).location_of(store)}")

    phases = alice.wait(handle)
    if not phases.success:
        raise SystemExit(f"move failed: {phases.error}")
    print(f"proof waited {phases.wait_proof_time:.0f}s "
          f"(p = {node.chain(1).params.confirmation_depth} + root lag)")
    print(f"Move2 executed on chain 2 ({phases.gas.get('move2', 0):,} gas); "
          "contract active there:")
    print(f"  value_at(0) = {alice.view(store, 'value_at', 0, chain=2).hex()[:16]}…")
    print(f"  source copy locked, reads still served "
          f"(L_c = {node.chain(1).location_of(store)})")
    return 0


def _cmd_relay_demo(_args) -> int:
    from repro.api import CallPayload, DeployPayload, KeyPair, Move1Payload, Move2Payload
    from repro.core.relay import CurrencyRelay

    burrow, ethereum = _demo_world()
    client1, client2 = KeyPair.from_name("client1"), KeyPair.from_name("client2")
    clock = [0.0]
    burrow.fund({client1.address: 1_000})

    relay = _demo_tx(burrow, client1, DeployPayload(code_hash=CurrencyRelay.CODE_HASH), clock).return_value
    receipt = _demo_tx(
        burrow, client1, CallPayload(relay, "create", (2, client2.address), value=700), clock
    )
    escrow = receipt.return_value
    print(f"locked 700 units on chain 1 in escrow {escrow} (born locked toward chain 2)")

    inclusion = receipt.block_height
    while burrow.height < burrow.proof_ready_height(inclusion):
        clock[0] += 5.0
        burrow.produce_block(clock[0])
    _demo_tx(ethereum, client2, Move2Payload(bundle=burrow.prove_contract_at(escrow, inclusion)), clock)
    minted = _demo_tx(ethereum, client2, CallPayload(escrow, "mint"), clock).return_value
    print(f"client2 minted {minted} pegged units on chain 2, provably backed by chain 1")

    _demo_tx(ethereum, client2, CallPayload(escrow, "burn"), clock)
    move1 = _demo_tx(ethereum, client2, Move1Payload(contract=escrow, target_chain=1), clock)
    while ethereum.height < ethereum.proof_ready_height(move1.block_height):
        clock[0] += 5.0
        ethereum.produce_block(clock[0])
    _demo_tx(burrow, client2, Move2Payload(
        bundle=ethereum.prove_contract_at(escrow, move1.block_height)), clock)
    redeemed = _demo_tx(burrow, client2, CallPayload(escrow, "redeem"), clock).return_value
    print(f"escrow returned home; client2 redeemed {redeemed} native units "
          f"(balance: {burrow.balance_of(client2.address)})")
    return 0


def _cmd_gateway(args) -> int:
    from repro.api import GatewayLimits
    from repro.metrics.cdf import percentile
    from repro.workload.gateway import GatewayWorkload

    if args.replicas > 1:
        return _cmd_gateway_fleet(args)
    limits = GatewayLimits(
        max_queue_depth=args.queue,
        rate_limit=args.rate_limit,
        shed_policy=args.policy,
    )
    workload = GatewayWorkload(
        clients=args.clients,
        rate_per_client=args.rate,
        seed=args.seed,
        limits=limits,
    )
    report = workload.run(duration=args.duration)
    if args.json:
        _print_json(report.to_dict())
        return 0
    print(f"{report.clients} clients x {args.rate:.2f} tx/s offered "
          f"({report.offered_rate:.0f}/s aggregate) for {report.duration:.0f}s, "
          f"queue bound {args.queue}, policy {args.policy}")
    print(f"  submitted  : {report.submitted}")
    print(f"  confirmed  : {report.confirmed} ({report.throughput:.1f} tx/s)")
    shed = ", ".join(f"{code}={n}" for code, n in sorted(report.shed.items())) or "none"
    print(f"  shed       : {report.shed_total} ({report.shed_rate * 100:.1f}%) — {shed}")
    print(f"  unresolved : {report.unresolved}")
    print(f"  peak queue : {report.peak_queue_depth} (bound {args.queue})")
    samples = report.latency.all_samples()
    if samples:
        print(f"  latency    : mean {sum(samples) / len(samples):5.1f}s "
              f"p50 {percentile(samples, 0.5):5.1f}s "
              f"p99 {percentile(samples, 0.99):6.1f}s")
    print(f"  blocks     : {report.blocks}, final root {report.final_root[:16]}…")
    return 0


def _cmd_gateway_fleet(args) -> int:
    from repro.api import GatewayLimits
    from repro.workload.fleet import CLASS_LABELS, FleetWorkload

    limits = GatewayLimits(
        max_queue_depth=args.queue,
        batch_size=16,
        flush_interval=0.5,
        rate_limit=args.rate_limit,
        shed_policy=args.policy,
        mempool_headroom=4,
    )
    workload = FleetWorkload(
        clients=args.clients,
        replicas=args.replicas,
        total_rate=args.clients * args.rate,
        seed=args.seed,
        limits=limits,
    )
    report = workload.run(duration=args.duration)
    if args.json:
        _print_json(report.to_dict())
        return 0
    print(f"{report.clients} Zipf clients through {report.replicas} replicas, "
          f"{report.offered_rate:.0f} tx/s aggregate for {report.duration:.0f}s, "
          f"queue bound {args.queue}/replica, policy {args.policy}")
    print(f"  submitted  : {report.submitted}")
    print(f"  confirmed  : {report.confirmed} ({report.throughput:.1f} tx/s)")
    shed = ", ".join(
        f"{cls}={n}" for cls, n in sorted(report.shed_by_class.items())
    ) or "none"
    print(f"  shed       : {report.shed_total} by victim class — {shed}")
    for label in CLASS_LABELS:
        p99 = report.latency_p99(label)
        print(f"  {label:<5} p99  : "
              + (f"{p99:6.2f}s" if p99 is not None else "     —")
              + f"  ({report.confirmed_by_class.get(label, 0)}"
              f"/{report.offered_by_class.get(label, 0)} confirmed)")
    print(f"  unresolved : {report.unresolved}")
    print(f"  peak queue : {report.peak_queue_depth} (bound {args.queue})")
    print(f"  blocks     : {report.blocks}, final root {report.final_root[:16]}…")
    print(f"  log digest : {report.log_digest[:16]}… (replay witness)")
    return 0


def _cmd_trace(args) -> int:
    from repro.metrics.report import format_series
    from repro.sharding.cluster import ShardedCluster
    from repro.traces.cryptokitties import TraceConfig, generate_trace
    from repro.traces.dag import DependencyDAG
    from repro.traces.io import load_trace, save_trace
    from repro.traces.replay import KittiesReplayer

    if args.load:
        trace = load_trace(args.load)
        print(f"loaded trace from {args.load}")
    else:
        config = TraceConfig(
            n_ops=args.ops,
            n_promo=max(args.ops // 10, 50),
            n_users=max(args.ops // 20, 30),
            seed=args.seed,
        )
        trace = generate_trace(config)
    if args.save:
        save_trace(trace, args.save)
        print(f"saved trace to {args.save}")
    dag = DependencyDAG(trace)
    print(f"trace: {len(trace)} ops, DAG depth {dag.depth()}, {dag.ready_count()} leaves")
    cluster = ShardedCluster(num_shards=args.shards, seed=args.seed, max_block_txs=130)
    replayer = KittiesReplayer(cluster, trace=trace, outstanding_limit=args.outstanding)
    report = replayer.run(max_time=200_000)
    print(f"replayed on {args.shards} shard(s) in {report.finished_at:.0f} sim-seconds")
    print(f"  committed txs : {report.txs_committed} ({report.failed_txs} failures)")
    print(f"  throughput    : {report.avg_throughput():.1f} tx/s")
    print(f"  cross-shard   : {report.cross_rate * 100:.2f}% of operations")
    if args.series:
        print(format_series(
            report.throughput.series(bucket=30.0, end=report.finished_at),
            x_label="time (s)", y_label="tx/s", width=40,
        ))
    if args.inspect:
        from repro.chain.stats import collect_chain_stats

        stats = [collect_chain_stats(shard) for shard in cluster.shards]
        if args.json:
            _print_json([s.to_dict() for s in stats])
        else:
            for s in stats:
                print("\n".join(s.lines()))
    return 0


def _cmd_scoin(args) -> int:
    from repro.metrics.cdf import percentile
    from repro.sharding.cluster import ShardedCluster
    from repro.workload.clients import ScoinWorkload

    cluster = ShardedCluster(num_shards=args.shards, seed=args.seed)
    workload = ScoinWorkload(
        cluster,
        clients_per_shard=args.clients,
        cross_rate=args.cross,
        retry_mode=args.retry,
        seed=args.seed,
    )
    report = workload.run(args.duration, warmup=args.duration * 0.15)
    print(f"{args.shards} shard(s) x {args.clients} clients, "
          f"{args.cross * 100:.0f}% cross-shard"
          + (", retry mode" if args.retry else " (oracle mode)"))
    print(f"  throughput : {report.ops_per_second:.1f} ops/s "
          f"({report.ops_completed} ops in {report.duration:.0f}s)")
    print(f"  cross mix  : {report.observed_cross_rate * 100:.1f}% observed")
    for kind in sorted(report.latency.kinds()):
        samples = report.latency.samples(kind)
        print(f"  {kind:13s}: mean {report.latency.mean(kind):5.1f}s "
              f"p50 {percentile(samples, 0.5):5.1f}s p99 {percentile(samples, 0.99):6.1f}s")
    if args.retry:
        hist = report.retry_histogram()
        print(f"  conflicts  : {report.failures}; retry histogram: "
              f"{dict(sorted(hist.items()))}")
    return 0


def _cmd_ibc(args) -> int:
    from repro.ibc.costs import gas_to_mgas, gas_to_usd
    from repro.ibc.scenarios import APPS, BURROW_ID, ETHEREUM_ID, IBCExperiment

    if args.direction == "b2e":
        src, dst, label = BURROW_ID, ETHEREUM_ID, "Burrow -> Ethereum"
    else:
        src, dst, label = ETHEREUM_ID, BURROW_ID, "Ethereum -> Burrow"
    experiment = IBCExperiment(seed=args.seed)
    phases = experiment.run_app(args.app, src, dst)
    total_gas = sum(phases.gas.values())
    if args.json:
        _print_json({
            "app": args.app,
            "direction": label,
            "phases": {
                "move1": phases.move1_time,
                "wait_proof": phases.wait_proof_time,
                "move2": phases.move2_time,
                "complete": phases.complete_time,
                "total": phases.total_time,
            },
            "gas": dict(sorted(phases.gas.items())),
            "gas_total": total_gas,
            "usd": gas_to_usd(total_gas),
        })
        return 0
    print(f"{args.app} {label}")
    print(f"  move1        : {phases.move1_time:7.1f} s")
    print(f"  wait + proof : {phases.wait_proof_time:7.1f} s")
    print(f"  move2        : {phases.move2_time:7.1f} s")
    print(f"  complete     : {phases.complete_time:7.1f} s")
    print(f"  total        : {phases.total_time:7.1f} s")
    print(f"  gas          : {gas_to_mgas(total_gas):.2f} Mgas  (${gas_to_usd(total_gas):.2f})")
    for bucket, amount in sorted(phases.gas.items()):
        print(f"    {bucket:8s}: {amount:>10,}")
    return 0


def _traced_chaos(args):
    """Run one traced chaos workload; returns (telemetry, report)."""
    from repro.faults.chaos import run_chaos
    from repro.faults.plan import FaultPlan
    from repro.telemetry import Telemetry

    telemetry = Telemetry.enabled()
    plan = None
    if getattr(args, "no_faults", False):
        plan = FaultPlan(seed=args.seed, duration=args.duration, events=())
    report = run_chaos(
        args.seed,
        duration=args.duration,
        workload=args.workload,
        plan=plan,
        intensity=args.intensity,
        telemetry=telemetry,
    )
    return telemetry, report


def _cmd_telemetry_breakdown(args) -> int:
    from repro.telemetry.phases import breakdown_rows, trace_phases

    telemetry, report = _traced_chaos(args)
    traces = trace_phases(telemetry.tracer.finished_spans())
    rows = breakdown_rows(traces)
    if args.json:
        _print_json({
            "seed": args.seed,
            "workload": args.workload,
            "traces": len(traces),
            "moves_completed": report.moves_completed,
            "breakdown": [t.to_dict() for t in traces],
            "phases": {
                row[0]: {"mean": row[1], "p50": row[2], "p99": row[3]}
                for row in rows
                if row[0] != "total"
            },
        })
        return 0
    print(
        f"{args.workload} under chaos (seed {args.seed}, {args.duration:.0f}s): "
        f"{len(traces)} move traces, {report.moves_completed} completed"
    )
    print(f"  {'phase':<14}{'mean (s)':>10}{'p50 (s)':>10}{'p99 (s)':>10}{'share':>8}")
    for phase, mean, p50, p99, share in rows:
        print(f"  {phase:<14}{mean:>10}{p50:>10}{p99:>10}{share:>8}")
    return 0


def _cmd_telemetry_slowest(args) -> int:
    from repro.telemetry.phases import PHASES, slowest_traces, trace_phases

    telemetry, _report = _traced_chaos(args)
    traces = trace_phases(telemetry.tracer.finished_spans())
    slowest = slowest_traces(traces, top=args.top)
    if args.json:
        _print_json([t.to_dict() for t in slowest])
        return 0
    print(f"slowest {len(slowest)} of {len(traces)} move traces:")
    for t in slowest:
        phase_text = " ".join(f"{p}={t.phase(p):.1f}" for p in PHASES if t.phase(p))
        status = "ok" if t.attrs.get("success") else "failed"
        print(
            f"  trace {t.trace_id:>3}  {t.total:7.1f}s  "
            f"{t.attrs.get('source_chain')}->{t.attrs.get('target_chain')} "
            f"[{status}]  {phase_text}"
        )
    return 0


def _cmd_telemetry_export(args) -> int:
    from repro.telemetry.exporters import (
        chrome_trace_json,
        registry_to_prometheus,
        spans_to_jsonl,
    )

    telemetry, _report = _traced_chaos(args)
    spans = telemetry.tracer.finished_spans()
    if args.format == "jsonl":
        text = spans_to_jsonl(spans)
    elif args.format == "chrome":
        text = chrome_trace_json(spans)
    else:
        text = registry_to_prometheus(telemetry.metrics)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            fh.write(text)
        print(f"wrote {len(spans)} spans to {args.out} ({args.format})")
    else:
        sys.stdout.write(text)
    return 0


def _health_chaos(args):
    """Run one health-monitored chaos workload; returns
    ``(monitor, report)``.  ``report`` is None when an invariant
    violation aborted the run — the monitor (and its postmortem of the
    violation) survives the abort via the ``on_monitor`` hook."""
    from repro.errors import InvariantViolation
    from repro.faults.chaos import run_chaos
    from repro.faults.plan import FaultPlan

    plan = None
    if getattr(args, "no_faults", False):
        plan = FaultPlan(seed=args.seed, duration=args.duration, events=())
    holder = {}
    try:
        report = run_chaos(
            args.seed,
            duration=args.duration,
            workload=args.workload,
            plan=plan,
            intensity=args.intensity,
            pow_peer=getattr(args, "pow_peer", False),
            replicate=getattr(args, "replicate", False),
            health=True,
            on_monitor=lambda m: holder.__setitem__("monitor", m),
        )
    except InvariantViolation as violation:
        print(f"invariant violation aborted the run: {violation}", file=sys.stderr)
        report = None
    monitor = holder["monitor"]
    monitor.stop()
    return monitor, report


def _cmd_obs_status(args) -> int:
    monitor, report = _health_chaos(args)
    status = monitor.status()
    if args.json:
        _print_json(status)
        return 0 if report is not None else 1
    print(
        f"{args.workload} under chaos (seed {args.seed}, {args.duration:.0f}s): "
        f"{status['ticks']} health ticks over {status['probes']} probes, "
        f"{len(status['targets'])} targets"
    )
    for target, state in status["targets"].items():
        marker = "!!" if state == "unhealthy" else "ok"
        print(f"  {marker}  {target:<28s} {state}")
    if status["firing"]:
        print("firing alerts:")
        for alert in status["firing"]:
            print(f"  [{alert['severity']}] {alert['slo']} on {alert['target']}")
    else:
        print("firing alerts: none")
    print(
        f"alert transitions logged: {status['alerts_logged']}, "
        f"health transitions: {status['transitions']}, "
        f"postmortems: {status['postmortems']}"
    )
    return 0 if report is not None else 1


def _cmd_obs_slo(args) -> int:
    monitor, report = _health_chaos(args)
    log = monitor.alert_log()
    if args.json:
        _print_json({
            "seed": args.seed,
            "workload": args.workload,
            "slos": [
                {
                    "name": spec.name,
                    "kind": spec.kind,
                    "objective": spec.objective,
                    "fast_window": spec.fast_window,
                    "slow_window": spec.slow_window,
                    "severity": spec.severity,
                }
                for spec in monitor.evaluator.specs
            ],
            "alerts": log,
            "firing": monitor.firing(),
        })
        return 0 if report is not None else 1
    print(f"{len(monitor.evaluator.specs)} SLOs, {len(log)} alert transitions:")
    for entry in log:
        print(
            f"  t={entry['at']:>8.1f}  {entry['state']:<9s} "
            f"[{entry['severity']}] {entry['slo']} on {entry['target']} "
            f"(burn fast {entry['burn_fast']:.2f} / slow {entry['burn_slow']:.2f})"
        )
    if not log:
        print("  (none — every SLO stayed within budget)")
    return 0 if report is not None else 1


def _cmd_obs_postmortem(args) -> int:
    monitor, report = _health_chaos(args)
    text = monitor.last_postmortem_json()
    if not text:
        # Nothing tripped the recorder — dump the final state on demand.
        monitor.postmortem("manual")
        text = monitor.last_postmortem_json()
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            fh.write(text + "\n")
        print(f"wrote postmortem bundle to {args.out}")
    else:
        print(text)
    return 0 if report is not None else 1


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser with every subcommand."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Smart Contracts on the Move' (DSN 2020).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    info = sub.add_parser("info", help="system inventory")
    info.add_argument("--json", action="store_true", help="machine-readable output")
    info.set_defaults(fn=_cmd_info)
    sub.add_parser("move-demo", help="move a contract between two chains").set_defaults(
        fn=_cmd_move_demo
    )
    sub.add_parser("relay-demo", help="Fig. 3 currency relay walkthrough").set_defaults(
        fn=_cmd_relay_demo
    )

    gateway = sub.add_parser(
        "gateway", help="open-loop client fleet against the request gateway"
    )
    gateway.add_argument("--clients", type=int, default=64)
    gateway.add_argument("--rate", type=float, default=1.0, help="tx/s per client")
    gateway.add_argument("--duration", type=float, default=120.0)
    gateway.add_argument("--seed", type=int, default=0)
    gateway.add_argument("--queue", type=int, default=1024, help="admission queue bound")
    gateway.add_argument("--rate-limit", type=float, default=0.0,
                         help="per-client sustained tx/s (0 disables)")
    gateway.add_argument("--policy", choices=["shed", "block"], default="shed")
    gateway.add_argument("--replicas", type=int, default=1,
                         help="gateway replicas (>1 runs the Zipf fleet workload)")
    gateway.add_argument("--json", action="store_true", help="machine-readable output")
    gateway.set_defaults(fn=_cmd_gateway)

    trace = sub.add_parser("trace", help="replay a synthetic CryptoKitties trace")
    trace.add_argument("--shards", type=int, default=2)
    trace.add_argument("--ops", type=int, default=2_000)
    trace.add_argument("--outstanding", type=int, default=250)
    trace.add_argument("--seed", type=int, default=5)
    trace.add_argument("--series", action="store_true", help="print tx/s over time")
    trace.add_argument("--save", metavar="PATH", help="write the trace as JSON")
    trace.add_argument("--load", metavar="PATH", help="replay a saved trace")
    trace.add_argument("--inspect", action="store_true", help="per-shard statistics")
    trace.add_argument("--json", action="store_true", help="emit --inspect stats as JSON")
    trace.set_defaults(fn=_cmd_trace)

    scoin = sub.add_parser("scoin", help="closed-loop SCoin workload (Fig. 6/7)")
    scoin.add_argument("--shards", type=int, default=4)
    scoin.add_argument("--clients", type=int, default=40, help="per shard")
    scoin.add_argument("--cross", type=float, default=0.10)
    scoin.add_argument("--duration", type=float, default=300.0)
    scoin.add_argument("--retry", action="store_true", help="conflict/retry mode")
    scoin.add_argument("--seed", type=int, default=7)
    scoin.set_defaults(fn=_cmd_scoin)

    ibc = sub.add_parser("ibc", help="one cross-chain application run (Fig. 8/9)")
    from repro.ibc.scenarios import APPS

    ibc.add_argument("--app", choices=APPS, default="store10")
    ibc.add_argument("--direction", choices=["b2e", "e2b"], default="b2e")
    ibc.add_argument("--seed", type=int, default=1)
    ibc.add_argument("--json", action="store_true", help="machine-readable output")
    ibc.set_defaults(fn=_cmd_ibc)

    tele = sub.add_parser(
        "telemetry", help="traced chaos run: phase breakdown, slowest traces, export"
    )
    tsub = tele.add_subparsers(dest="telemetry_command", required=True)

    def _chaos_args(p) -> None:
        p.add_argument("--seed", type=int, default=11)
        p.add_argument("--duration", type=float, default=300.0)
        p.add_argument("--workload", choices=["scoin", "kitties"], default="scoin")
        p.add_argument("--intensity", type=float, default=1.0)
        p.add_argument("--no-faults", action="store_true", help="empty fault plan")

    breakdown = tsub.add_parser(
        "breakdown", help="per-phase latency table over all move traces"
    )
    _chaos_args(breakdown)
    breakdown.add_argument("--json", action="store_true")
    breakdown.set_defaults(fn=_cmd_telemetry_breakdown)

    slowest = tsub.add_parser("slowest", help="the slowest move traces")
    _chaos_args(slowest)
    slowest.add_argument("--top", type=int, default=10)
    slowest.add_argument("--json", action="store_true")
    slowest.set_defaults(fn=_cmd_telemetry_slowest)

    export = tsub.add_parser(
        "export", help="dump spans (JSONL / Chrome trace) or metrics (Prometheus)"
    )
    _chaos_args(export)
    export.add_argument(
        "--format", choices=["jsonl", "chrome", "prometheus"], default="jsonl"
    )
    export.add_argument("--out", metavar="PATH", help="write to a file (default stdout)")
    export.set_defaults(fn=_cmd_telemetry_export)

    obs = sub.add_parser(
        "obs", help="health-monitored chaos run: states, SLO alerts, postmortem"
    )
    osub = obs.add_subparsers(dest="obs_command", required=True)

    def _obs_args(p) -> None:
        _chaos_args(p)
        p.add_argument("--pow-peer", action="store_true",
                       help="add the PoW bystander chain")
        p.add_argument("--replicate", action="store_true",
                       help="mirror contracts cross-chain (staleness probes)")

    status = osub.add_parser("status", help="final per-target health map")
    _obs_args(status)
    status.add_argument("--json", action="store_true")
    status.set_defaults(fn=_cmd_obs_status)

    slo = osub.add_parser("slo", help="SLO specs + the deterministic alert log")
    _obs_args(slo)
    slo.add_argument("--json", action="store_true")
    slo.set_defaults(fn=_cmd_obs_slo)

    postmortem = osub.add_parser(
        "postmortem", help="the last flight-recorder bundle (canonical JSON)"
    )
    _obs_args(postmortem)
    postmortem.add_argument(
        "--out", metavar="PATH", help="write the bundle to a file (default stdout)"
    )
    postmortem.set_defaults(fn=_cmd_obs_postmortem)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
