"""Measurement utilities shared by the experiment harnesses.

Collectors accumulate per-event samples in simulated time; reporters
render the same tables and series the paper's figures plot.
"""

from repro.metrics.cdf import cdf_points, percentile
from repro.metrics.collector import LatencySampler, ThroughputCollector
from repro.metrics.report import format_series, format_table

__all__ = [
    "ThroughputCollector",
    "LatencySampler",
    "cdf_points",
    "percentile",
    "format_table",
    "format_series",
]
