"""Throughput and latency collectors (simulated-time aware)."""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Optional, Sequence, Tuple


class ThroughputCollector:
    """Counts committed operations; reports rates over time windows."""

    def __init__(self) -> None:
        self._times: List[float] = []

    def record(self, time: float, count: int = 1) -> None:
        """Record ``count`` completed operations at ``time``."""
        for _ in range(count):
            self._times.append(time)

    @property
    def total(self) -> int:
        return len(self._times)

    def rate(self, start: float, end: float) -> float:
        """Average ops/second within ``[start, end)``."""
        if end <= start:
            return 0.0
        hits = sum(1 for t in self._times if start <= t < end)
        return hits / (end - start)

    def series(self, bucket: float = 10.0, end: Optional[float] = None) -> List[Tuple[float, float]]:
        """``(bucket_start, ops/s)`` pairs — Fig. 5 (right)'s series."""
        if not self._times and end is None:
            return []
        horizon = end if end is not None else max(self._times)
        buckets: Dict[int, int] = defaultdict(int)
        for t in self._times:
            buckets[int(t // bucket)] += 1
        out: List[Tuple[float, float]] = []
        index = 0
        while index * bucket < horizon:
            out.append((index * bucket, buckets.get(index, 0) / bucket))
            index += 1
        return out


class LatencySampler:
    """Latency samples, tagged by kind (single-shard / cross-shard)."""

    def __init__(self) -> None:
        self._samples: Dict[str, List[float]] = defaultdict(list)

    def add(self, kind: str, latency: float) -> None:
        """Record one latency sample under ``kind``."""
        if latency < 0:
            raise ValueError("negative latency")
        self._samples[kind].append(latency)

    def samples(self, kind: str) -> Sequence[float]:
        """All samples of one kind (empty tuple if none)."""
        return tuple(self._samples.get(kind, ()))

    def all_samples(self) -> Sequence[float]:
        """Samples of every kind combined (the aggregated CDF)."""
        out: List[float] = []
        for values in self._samples.values():
            out.extend(values)
        return tuple(out)

    def kinds(self) -> Sequence[str]:
        """The kinds that have at least one sample."""
        return tuple(self._samples)

    def mean(self, kind: str) -> float:
        """Mean latency of a kind (ValueError when empty)."""
        values = self._samples.get(kind)
        if not values:
            raise ValueError(f"no samples of kind {kind!r}")
        return sum(values) / len(values)

    def count(self, kind: str) -> int:
        """Number of samples of a kind."""
        return len(self._samples.get(kind, ()))
