"""Throughput and latency collectors (simulated-time aware)."""

from __future__ import annotations

import bisect
from collections import defaultdict
from typing import Dict, List, Optional, Sequence, Tuple


class ThroughputCollector:
    """Counts committed operations; reports rates over time windows.

    Batched recordings are stored as ``(time, count)`` pairs — a block
    committing 500 transactions is one entry, not 500 — so memory and
    record cost are O(recordings), and windowed queries run on a
    lazily sorted prefix-sum index via :mod:`bisect`.
    """

    def __init__(self) -> None:
        self._entries: List[Tuple[float, int]] = []
        self._total = 0
        #: lazily rebuilt query index: sorted times + prefix counts
        self._times: Optional[List[float]] = None
        self._prefix: List[int] = []

    def record(self, time: float, count: int = 1) -> None:
        """Record ``count`` completed operations at ``time``."""
        if count <= 0:
            if count == 0:
                return
            raise ValueError("negative count")
        self._entries.append((time, count))
        self._total += count
        self._times = None

    def _index(self) -> List[float]:
        if self._times is None:
            self._entries.sort(key=lambda e: e[0])
            self._times = [t for t, _ in self._entries]
            prefix = [0]
            for _, count in self._entries:
                prefix.append(prefix[-1] + count)
            self._prefix = prefix
        return self._times

    @property
    def total(self) -> int:
        """Total operations recorded."""
        return self._total

    def rate(self, start: float, end: float) -> float:
        """Average ops/second within ``[start, end)``."""
        if end <= start:
            return 0.0
        times = self._index()
        lo = bisect.bisect_left(times, start)
        hi = bisect.bisect_left(times, end)
        hits = self._prefix[hi] - self._prefix[lo]
        return hits / (end - start)

    def series(self, bucket: float = 10.0, end: Optional[float] = None) -> List[Tuple[float, float]]:
        """``(bucket_start, ops/s)`` pairs — Fig. 5 (right)'s series."""
        if not self._entries and end is None:
            return []
        horizon = end if end is not None else max(t for t, _ in self._entries)
        buckets: Dict[int, int] = defaultdict(int)
        for t, count in self._entries:
            buckets[int(t // bucket)] += count
        out: List[Tuple[float, float]] = []
        index = 0
        while index * bucket < horizon:
            out.append((index * bucket, buckets.get(index, 0) / bucket))
            index += 1
        return out


class LatencySampler:
    """Latency samples, tagged by kind (single-shard / cross-shard)."""

    def __init__(self) -> None:
        self._samples: Dict[str, List[float]] = defaultdict(list)

    def add(self, kind: str, latency: float) -> None:
        """Record one latency sample under ``kind``."""
        if latency < 0:
            raise ValueError("negative latency")
        self._samples[kind].append(latency)

    def samples(self, kind: str) -> Sequence[float]:
        """All samples of one kind (empty tuple if none)."""
        return tuple(self._samples.get(kind, ()))

    def all_samples(self) -> Sequence[float]:
        """Samples of every kind combined (the aggregated CDF)."""
        out: List[float] = []
        for values in self._samples.values():
            out.extend(values)
        return tuple(out)

    def kinds(self) -> Sequence[str]:
        """The kinds that have at least one sample."""
        return tuple(self._samples)

    def mean(self, kind: str) -> float:
        """Mean latency of a kind (ValueError when empty)."""
        values = self._samples.get(kind)
        if not values:
            raise ValueError(f"no samples of kind {kind!r}")
        return sum(values) / len(values)

    def count(self, kind: str) -> int:
        """Number of samples of a kind."""
        return len(self._samples.get(kind, ()))
