"""ASCII rendering of tables and series, paper-figure style."""

from __future__ import annotations

from typing import Any, List, Sequence, Tuple


def format_table(headers: Sequence[str], rows: Sequence[Sequence[Any]]) -> str:
    """Render an aligned text table."""
    def cell(value: Any) -> str:
        if isinstance(value, float):
            return f"{value:.2f}"
        return str(value)

    text_rows = [[cell(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in text_rows:
        for i, value in enumerate(row):
            widths[i] = max(widths[i], len(value))
    lines = [
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)),
        "  ".join("-" * w for w in widths),
    ]
    for row in text_rows:
        lines.append("  ".join(v.ljust(widths[i]) for i, v in enumerate(row)))
    return "\n".join(lines)


def format_series(
    series: Sequence[Tuple[float, float]],
    x_label: str = "t",
    y_label: str = "value",
    width: int = 50,
) -> str:
    """Render an (x, y) series as a horizontal ASCII bar plot."""
    if not series:
        return "(empty series)"
    peak = max(y for _x, y in series) or 1.0
    lines = [f"{x_label:>10}  {y_label}"]
    for x, y in series:
        bar = "#" * int(round(width * y / peak))
        lines.append(f"{x:>10.0f}  {y:>8.2f} {bar}")
    return "\n".join(lines)
