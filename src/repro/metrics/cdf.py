"""Cumulative distribution helpers (Fig. 7 plots latency CDFs)."""

from __future__ import annotations

from typing import List, Sequence, Tuple


def cdf_points(samples: Sequence[float], points: int = 100) -> List[Tuple[float, float]]:
    """Return ``(value, cumulative_fraction)`` pairs.

    ``points`` caps the output length by downsampling evenly over the
    sorted samples (the last sample, fraction 1.0, is always included).
    """
    if not samples:
        return []
    ordered = sorted(samples)
    n = len(ordered)
    if n <= points:
        return [(value, (i + 1) / n) for i, value in enumerate(ordered)]
    out: List[Tuple[float, float]] = []
    step = n / points
    index = step
    while index <= n:
        i = min(int(round(index)) - 1, n - 1)
        out.append((ordered[i], (i + 1) / n))
        index += step
    if out[-1][1] < 1.0:
        out.append((ordered[-1], 1.0))
    return out


def percentile(samples: Sequence[float], q: float) -> float:
    """The ``q``-quantile (0..1) by nearest-rank."""
    if not samples:
        raise ValueError("no samples")
    if not 0.0 <= q <= 1.0:
        raise ValueError("q must be within [0, 1]")
    ordered = sorted(samples)
    rank = min(int(q * len(ordered)), len(ordered) - 1)
    return ordered[rank]
