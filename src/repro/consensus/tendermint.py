"""Tendermint-style BFT block production over the simulated network.

Per height: the round-robin proposer broadcasts a proposal; every
validator that receives it broadcasts a *prevote*; a validator holding
prevotes from more than two-thirds of the set broadcasts a *precommit*;
when the proposer holds a two-thirds precommit quorum the block commits
— the chain executes the mempool contents at that simulated instant —
and the next proposal is scheduled ``block_interval`` later (Tendermint's
``timeout_commit``, 5 s in the paper's configuration).

Every vote travels through :class:`~repro.net.transport.Network`, so
commit latency reflects the emulated WAN: proposal + prevote +
precommit ≈ three one-way quorum latencies on top of the interval.

Validators here always vote for valid proposals (no Byzantine behaviour
is exercised by the paper's performance evaluation); safety-relevant
quorum arithmetic is still enforced and unit-tested.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.chain.chain import Chain
from repro.net.sim import Simulator
from repro.net.transport import Network


@dataclass(frozen=True)
class _Proposal:
    height: int
    round: int = 0
    kind: str = "proposal"


@dataclass(frozen=True)
class _Vote:
    height: int
    kind: str  # "prevote" | "precommit"
    voter: str
    round: int = 0


@dataclass(frozen=True)
class _Commit:
    height: int
    kind: str = "commit"


class TendermintEngine:
    """Drives one chain with a simulated validator set."""

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        chain: Chain,
        regions: Sequence[str],
        name_prefix: Optional[str] = None,
    ):
        self.sim = sim
        self.network = network
        self.chain = chain
        self.interval = chain.params.block_interval
        prefix = name_prefix or f"val-{chain.chain_id}"
        self.validators = [f"{prefix}-{i}" for i in range(len(regions))]
        self._validator_set = frozenset(self.validators)
        self._quorum = (2 * len(self.validators)) // 3 + 1
        self._prevotes: Dict[Tuple[str, int], Set[str]] = {}
        self._precommits: Dict[Tuple[str, int], Set[str]] = {}
        self._proposed_txs: Dict[int, list] = {}
        self._precommit_sent: Set[Tuple[str, int]] = set()
        self._prevoted: Set[Tuple[str, int]] = set()
        self._committed_height = 0
        self._running = False
        self.commit_times: List[float] = []
        #: validators currently crashed (fail-stop; messages neither
        #: sent nor processed).  The protocol tolerates f < n/3.
        self.crashed: Set[str] = set()
        #: how long validators wait for a height to commit before
        #: advancing to the next round with the next proposer
        self.round_timeout = max(3.0, self.interval)
        self.rounds_advanced = 0
        metrics = chain.telemetry.metrics
        self._m_commits = metrics.counter(
            "consensus_commits_total", chain=chain.chain_id, engine="tendermint"
        )
        self._m_rounds = metrics.counter(
            "consensus_rounds_total", chain=chain.chain_id
        )
        self._m_interval = metrics.histogram(
            "consensus_commit_interval_seconds", chain=chain.chain_id
        )
        for validator, region in zip(self.validators, regions):
            network.attach(
                validator, region, lambda src, msg, me=validator: self._on_message(me, src, msg)
            )

    # ------------------------------------------------------------------

    def quorum_size(self) -> int:
        """Votes needed for a 2/3+ quorum."""
        return self._quorum

    def proposer_for(self, height: int, round: int = 0) -> str:
        """Round-robin proposer rotation (advances with failed rounds)."""
        return self.validators[(height + round) % len(self.validators)]

    def crash(self, validator: str) -> None:
        """Fail-stop a validator (it stops sending and processing)."""
        self.crashed.add(validator)

    def recover(self, validator: str) -> None:
        """Bring a crashed validator back (it rejoins at new rounds)."""
        self.crashed.discard(validator)

    def stall(self, validator: str, duration: float) -> None:
        """Stall a validator for ``duration`` simulated seconds.

        Models a proposer that freezes (GC pause, disk stall) and later
        resumes: a crash followed by a scheduled recovery.  While
        stalled, its proposal slots cost the set one round timeout each.
        """
        self.crash(validator)
        self.sim.schedule(duration, lambda: self.recover(validator))

    def start(self) -> None:
        """Schedule the first proposal one interval from now."""
        self._running = True
        self.sim.schedule(self.interval, lambda: self._propose(self.chain.height + 1))
    def stop(self) -> None:
        """Halt block production (pending timers become no-ops)."""
        self._running = False

    # ------------------------------------------------------------------

    def _propose(self, height: int, round: int = 0) -> None:
        if not self._running or height <= self._committed_height:
            return
        proposer = self.proposer_for(height, round)
        if proposer not in self.crashed:
            # Tendermint fixes the block contents at proposal time; a
            # transaction arriving during the vote rounds waits for the
            # next height (or the next round, if this one fails).
            if height not in self._proposed_txs:
                self._proposed_txs[height] = self.chain.mempool.take(
                    self.chain.params.max_block_txs
                )
            payload = _Proposal(height=height, round=round)
            self.network.broadcast(proposer, self.validators, payload, size_bytes=1024)
            # The proposer processes its own proposal immediately.
            self._on_message(proposer, proposer, payload)
        # Round timeout: if the height has not committed by then (a
        # crashed proposer, or votes lost to crashed validators), the
        # next round's proposer takes over.
        def on_timeout() -> None:
            if self._running and height > self._committed_height:
                self.rounds_advanced += 1
                self._m_rounds.inc()
                self._propose(height, round + 1)

        self.sim.schedule(self.round_timeout, on_timeout)

    def _on_message(self, me: str, src: str, msg: object) -> None:
        if not self._running or me in self.crashed:
            return
        if isinstance(msg, _Vote) and msg.voter not in self._validator_set:
            # Quorum arithmetic must only ever count members of the
            # validator set: a faulty network that duplicates, replays
            # or mis-routes traffic (or an outright forged vote) must
            # not be able to manufacture a 2/3+ quorum.
            return
        if isinstance(msg, _Proposal):
            if msg.height <= self._committed_height:
                return
            if (me, msg.height, msg.round) in self._prevoted:
                return  # one prevote per round (crash faults only)
            # Votes are round-scoped: a fresh round (after a timeout)
            # makes every live validator vote again, which is how
            # recovered validators catch up on quorums whose earlier
            # votes they missed.  Vote *counting* stays per height and
            # deduplicates by voter, so re-votes never double-count.
            self._prevoted.add((me, msg.height, msg.round))
            vote = _Vote(height=msg.height, kind="prevote", voter=me, round=msg.round)
            self.network.broadcast(me, self.validators, vote, size_bytes=128)
            self._on_message(me, me, vote)
            return
        if isinstance(msg, _Vote):
            if msg.height <= self._committed_height:
                return
            if msg.kind == "prevote":
                seen = self._prevotes.setdefault((me, msg.height), set())
                seen.add(msg.voter)
                key = (me, msg.height, msg.round)
                if len(seen) >= self._quorum and key not in self._precommit_sent:
                    self._precommit_sent.add(key)
                    vote = _Vote(
                        height=msg.height, kind="precommit", voter=me, round=msg.round
                    )
                    self.network.broadcast(me, self.validators, vote, size_bytes=128)
                    self._on_message(me, me, vote)
            else:  # precommit
                seen = self._precommits.setdefault((me, msg.height), set())
                seen.add(msg.voter)
                # Each live validator commits locally once it holds a
                # 2/3+ precommit quorum; the simulation materializes
                # the block at the earliest such event, and the height
                # guard prevents double commits.
                if (
                    len(seen) >= self._quorum
                    and msg.height == self._committed_height + 1
                ):
                    self._commit(me, msg.height)
            return
        if isinstance(msg, _Commit):
            self._committed_height = max(self._committed_height, msg.height)

    def _commit(self, proposer: str, height: int) -> None:
        self._committed_height = height
        txs = self._proposed_txs.pop(height, None)
        self.chain.produce_block(self.sim.now, proposer=proposer, txs=txs)
        self._m_commits.inc()
        if self.commit_times:
            self._m_interval.observe(self.sim.now - self.commit_times[-1])
        self.commit_times.append(self.sim.now)
        self.network.broadcast(
            proposer, self.validators, _Commit(height=height), size_bytes=256
        )
        self._gc(height)
        if self._running:
            self.sim.schedule(self.interval, lambda: self._propose(height + 1))

    def _gc(self, height: int) -> None:
        """Drop vote bookkeeping for committed heights."""
        for table in (self._prevotes, self._precommits):
            stale = [key for key in table if key[1] <= height]
            for key in stale:
                del table[key]
        self._precommit_sent = {k for k in self._precommit_sent if k[1] > height}
        self._prevoted = {k for k in self._prevoted if k[1] > height}
