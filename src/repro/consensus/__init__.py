"""Consensus engines driving block production over the simulated WAN.

Two engines mirror the two systems modified in the paper:

* :class:`~repro.consensus.tendermint.TendermintEngine` — Burrow's
  consensus: a proposer broadcasts, validators prevote then precommit,
  the block commits on a 2/3 quorum; a configurable wait (5 s in the
  paper) separates consecutive blocks.  Observed block latency is the
  wait plus the quorum round-trips — "slightly higher" than 5 s, as the
  paper reports.
* :class:`~repro.consensus.pow.PowEngine` — Nakamoto-style mining with
  exponentially distributed inter-block times (mean 15 s), the fork
  window being the reason Ethereum's confirmation depth is p = 6.
"""

from repro.consensus.pow import PowEngine
from repro.consensus.tendermint import TendermintEngine

__all__ = ["TendermintEngine", "PowEngine"]
