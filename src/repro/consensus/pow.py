"""Nakamoto-style proof-of-work block production.

Mining is a memoryless race: with total network hash power normalized,
the next block arrives after an exponentially distributed delay with
mean ``block_interval`` (15 s for the Ethereum-flavoured chain), won by
a miner drawn proportionally to hash power.  The winning block
propagates to the other miners over the simulated WAN; when two miners
find blocks within the propagation window a short fork occurs — we
count it (``fork_events``) and keep the first find as canonical, which
is exactly why peers wait ``p = 6`` confirmations before trusting a
header (Section IV-A).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.chain.chain import Chain
from repro.net.sim import Simulator
from repro.net.transport import Network


class PowEngine:
    """Drives one chain with simulated miners."""

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        chain: Chain,
        regions: Sequence[str],
        hash_powers: Optional[Sequence[float]] = None,
        name_prefix: Optional[str] = None,
    ):
        self.sim = sim
        self.network = network
        self.chain = chain
        self.interval = chain.params.block_interval
        prefix = name_prefix or f"miner-{chain.chain_id}"
        self.miners = [f"{prefix}-{i}" for i in range(len(regions))]
        powers = list(hash_powers) if hash_powers is not None else [1.0] * len(self.miners)
        total = sum(powers)
        self._weights = [p / total for p in powers]
        self._running = False
        self._mining_handle = None
        self.commit_times: List[float] = []
        self.fork_events = 0
        #: a find within this window of the previous one would have
        #: raced its propagation — counted as a (resolved) short fork
        self.propagation_window = 0.3
        metrics = chain.telemetry.metrics
        self._m_commits = metrics.counter(
            "consensus_commits_total", chain=chain.chain_id, engine="pow"
        )
        self._m_forks = metrics.counter(
            "pow_fork_events_total", chain=chain.chain_id
        )
        self._m_interval = metrics.histogram(
            "consensus_commit_interval_seconds", chain=chain.chain_id
        )
        for miner, region in zip(self.miners, regions):
            network.attach(
                miner, region, lambda src, msg, me=miner: self._on_message(me, src, msg)
            )

    def start(self) -> None:
        """Begin mining (first find after an exponential delay)."""
        self._running = True
        self._schedule_next_find()

    def stop(self) -> None:
        """Stop mining and cancel the pending find."""
        self._running = False
        if self._mining_handle is not None:
            self._mining_handle.cancel()

    # ------------------------------------------------------------------

    def _schedule_next_find(self) -> None:
        delay = self.sim.rng.expovariate(1.0 / self.interval)
        self._mining_handle = self.sim.schedule(delay, self._find_block)

    def _find_block(self) -> None:
        if not self._running:
            return
        winner = self.sim.rng.choices(self.miners, weights=self._weights)[0]
        if self.commit_times and self.sim.now - self.commit_times[-1] < self.propagation_window:
            self.fork_events += 1  # raced the previous block's propagation
            self._m_forks.inc()
        height = self.chain.height + 1
        block = self.chain.produce_block(self.sim.now, proposer=winner)
        self._m_commits.inc()
        if self.commit_times:
            self._m_interval.observe(self.sim.now - self.commit_times[-1])
        self.commit_times.append(self.sim.now)
        self.network.broadcast(
            winner, self.miners, ("block", height, block.hash()), size_bytes=32_768
        )
        self._schedule_next_find()

    def _on_message(self, me: str, src: str, msg: object) -> None:
        # Miners track peer blocks to restart mining on the new head; in
        # this model the race is resolved at find time, so delivery is
        # informational (it still exercises the WAN with block-sized
        # payloads).
        return
