"""DAG-driven trace replay against a sharded cluster (Section VII-A).

The replayer mirrors the paper's client host: the whole dependency DAG
is pre-processed in memory; leaf operations are broadcast to their
shards, each shard's in-flight window capped at the configured
outstanding-transaction limit; every committed transaction updates the
DAG and newly freed operations are submitted — until the trace drains.

Operation → transaction expansion:

* ``promo``  — one ``create_promo_kitty`` on the shard that hash
  partitioning assigns to the cat id;
* ``approve`` — one ``approve_siring`` on the sire's current shard;
* ``transfer`` — one ``transfer_ownership`` on the cat's shard;
* ``breed`` — if matron and sire share a shard: ``breed_with`` then
  ``give_birth`` (two transactions); otherwise a **cross-shard**
  operation: Move1(sire) → wait p blocks → Move2 → ``breed_with`` →
  ``give_birth``.  The child is created on the matron's shard, so load
  distributes organically; the sire stays where it bred.

The report captures the Fig. 5 quantities: aggregate committed-tx/s
over time, the cross-shard operation rate (paper: 5.86 / 7.93 / 7.85 %
for 2/4/8 shards), and the first time each shard runs out of ready
transactions ("Limit reached" marks in Fig. 5 right).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional

from repro.apps.kitties import KittyRegistry
from repro.chain.tx import CallPayload, DeployPayload, sign_transaction
from repro.crypto.keys import Address, KeyPair
from repro.errors import StateError
from repro.ibc.bridge import IBCBridge
from repro.metrics.collector import ThroughputCollector
from repro.sharding.cluster import ShardedCluster
from repro.sharding.partition import shard_of_int
from repro.traces.cryptokitties import TraceConfig, generate_trace
from repro.traces.dag import DependencyDAG
from repro.traces.events import APPROVE, BREED, PROMO, TRANSFER, TraceOp


@dataclass
class ReplayReport:
    """Outcome of one trace replay."""

    num_shards: int
    trace_ops: int
    throughput: ThroughputCollector = field(default_factory=ThroughputCollector)
    ops_completed: int = 0
    txs_committed: int = 0
    cross_shard_ops: int = 0
    failed_txs: int = 0
    finished_at: Optional[float] = None
    #: first simulated time each shard had spare window but nothing
    #: ready to send (Fig. 5 right's dashed "Limit reached" marks)
    starved_at: Dict[int, float] = field(default_factory=dict)

    @property
    def cross_rate(self) -> float:
        return self.cross_shard_ops / self.ops_completed if self.ops_completed else 0.0

    def avg_throughput(self) -> float:
        """Committed transactions per simulated second."""
        if not self.finished_at:
            return 0.0
        return self.txs_committed / self.finished_at


@dataclass
class _CatState:
    address: Optional[Address] = None
    shard: int = 0
    owner: int = 0  # user index


class KittiesReplayer:
    """Replays a synthetic CryptoKitties trace on a cluster."""

    def __init__(
        self,
        cluster: ShardedCluster,
        trace: Optional[List[TraceOp]] = None,
        config: Optional[TraceConfig] = None,
        outstanding_limit: int = 250,
    ):
        self.cluster = cluster
        self.trace = trace if trace is not None else generate_trace(config or TraceConfig())
        self.dag = DependencyDAG(self.trace)
        self.outstanding_limit = outstanding_limit
        self.bridge = IBCBridge(cluster.sim, cluster.shards)
        self.users = {
            index: KeyPair.from_name(f"kitty-user-{index}")
            for index in self._user_indices()
        }
        self.game_owner = KeyPair.from_name("kitty-game-owner")
        self.registries: List[Optional[Address]] = [None] * cluster.num_shards
        self.cats: Dict[int, _CatState] = {}
        self._outstanding = [0] * cluster.num_shards
        self._waiting: List[Deque[int]] = [deque() for _ in range(cluster.num_shards)]
        self._reached_limit = [False] * cluster.num_shards
        self.report = ReplayReport(
            num_shards=cluster.num_shards, trace_ops=len(self.trace)
        )

    def _user_indices(self):
        indices = set()
        for op in self.trace:
            for key in ("owner", "matron_owner", "new_owner"):
                if key in op.params:
                    indices.add(op.params[key])
        return indices

    # ------------------------------------------------------------------
    # Driving
    # ------------------------------------------------------------------

    def run(self, max_time: float = 100_000.0) -> ReplayReport:
        """Replay until the DAG drains (or ``max_time`` sim-seconds)."""
        sim = self.cluster.sim
        self.cluster.start()
        self._deploy_registries()
        while not self.dag.done and sim.now < max_time:
            if sim.run(until=sim.now + 50.0, max_events=None) == 0 and not self.dag.done:
                if sim.pending() == 0:
                    raise StateError("replay stalled with pending operations")
        self.report.finished_at = sim.now if self.dag.done else None
        return self.report

    def _deploy_registries(self) -> None:
        pending = [self.cluster.num_shards]

        def after(index: int, receipt) -> None:
            assert receipt.success, receipt.error
            self.registries[index] = receipt.return_value
            pending[0] -= 1
            if pending[0] == 0:
                self._dispatch(self.dag.take_ready())

        for index in range(self.cluster.num_shards):
            tx = sign_transaction(
                self.game_owner, DeployPayload(code_hash=KittyRegistry.CODE_HASH)
            )
            self.cluster.shard(index).wait_for(tx.tx_id, lambda r, i=index: after(i, r))
            self.cluster.submit(index, tx)

    # ------------------------------------------------------------------
    # Scheduling with the outstanding-transaction window
    # ------------------------------------------------------------------

    def _primary_shard(self, op: TraceOp) -> int:
        if op.kind == PROMO:
            return shard_of_int(op.params["cat"], self.cluster.num_shards)
        if op.kind == APPROVE:
            return self.cats[op.params["sire"]].shard
        if op.kind == TRANSFER:
            return self.cats[op.params["cat"]].shard
        return self.cats[op.params["matron"]].shard  # breed

    def _dispatch(self, op_ids: List[int]) -> None:
        for op_id in op_ids:
            op = self.dag.ops[op_id]
            shard = self._primary_shard(op)
            if self._outstanding[shard] >= self.outstanding_limit:
                self._waiting[shard].append(op_id)
            else:
                self._execute(op, shard)

    def _drain_waiting(self, shard: int) -> None:
        queue = self._waiting[shard]
        while queue and self._outstanding[shard] < self.outstanding_limit:
            op = self.dag.ops[queue.popleft()]
            # The op's primary shard may have changed while it waited
            # (its cat moved); re-route if so.
            current = self._primary_shard(op)
            if current != shard:
                self._dispatch([op.op_id])
            else:
                self._execute(op, shard)

    def _note_starvation(self) -> None:
        """Record the first time each shard's window can no longer be
        kept full (Fig. 5 right: "the point when each one of the eight
        shards had less outgoing transactions than established at the
        beginning").  A shard must have filled its window once before
        it can be considered starved."""
        now = self.cluster.sim.now
        for shard in range(self.cluster.num_shards):
            if self._outstanding[shard] >= self.outstanding_limit:
                self._reached_limit[shard] = True
            if shard in self.report.starved_at or not self._reached_limit[shard]:
                continue
            if self._outstanding[shard] < self.outstanding_limit and not self._waiting[shard]:
                self.report.starved_at[shard] = now

    # ------------------------------------------------------------------
    # Transaction plumbing
    # ------------------------------------------------------------------

    def _submit(self, shard: int, keypair: KeyPair, payload, on_receipt) -> None:
        tx = sign_transaction(keypair, payload)
        self._outstanding[shard] += 1

        def callback(receipt) -> None:
            self._outstanding[shard] -= 1
            self.report.txs_committed += 1
            self.report.throughput.record(self.cluster.sim.now)
            if not receipt.success:
                self.report.failed_txs += 1
            on_receipt(receipt)
            self._drain_waiting(shard)

        self.cluster.shard(shard).wait_for(tx.tx_id, callback)
        self.cluster.submit(shard, tx)

    def _complete_op(self, op: TraceOp) -> None:
        self.report.ops_completed += 1
        freed = self.dag.complete(op.op_id)
        self._dispatch(freed)
        self._note_starvation()

    # ------------------------------------------------------------------
    # Op execution
    # ------------------------------------------------------------------

    def _execute(self, op: TraceOp, shard: int) -> None:
        if op.kind == PROMO:
            self._run_promo(op, shard)
        elif op.kind == APPROVE:
            self._run_approve(op, shard)
        elif op.kind == TRANSFER:
            self._run_transfer(op, shard)
        else:
            self._run_breed(op, shard)

    def _run_promo(self, op: TraceOp, shard: int) -> None:
        owner = self.users[op.params["owner"]]
        registry = self.registries[shard]

        def done(receipt) -> None:
            assert receipt.success, f"promo failed: {receipt.error}"
            self.cats[op.params["cat"]] = _CatState(
                address=receipt.return_value, shard=shard, owner=op.params["owner"]
            )
            self._complete_op(op)

        self._submit(
            shard,
            self.game_owner,
            CallPayload(registry, "create_promo_kitty", (owner.address,)),
            done,
        )

    def _run_approve(self, op: TraceOp, shard: int) -> None:
        sire = self.cats[op.params["sire"]]
        sire_owner = self.users[sire.owner]
        matron_owner = self.users[op.params["matron_owner"]]

        def done(receipt) -> None:
            assert receipt.success, f"approve failed: {receipt.error}"
            self._complete_op(op)

        self._submit(
            shard,
            sire_owner,
            CallPayload(sire.address, "approve_siring", (matron_owner.address,)),
            done,
        )

    def _run_transfer(self, op: TraceOp, shard: int) -> None:
        cat = self.cats[op.params["cat"]]
        old_owner = self.users[cat.owner]
        new_owner_index = op.params["new_owner"]
        new_owner = self.users[new_owner_index]

        def done(receipt) -> None:
            assert receipt.success, f"transfer failed: {receipt.error}"
            cat.owner = new_owner_index
            self._complete_op(op)

        self._submit(
            shard,
            old_owner,
            CallPayload(cat.address, "transfer_ownership", (new_owner.address,)),
            done,
        )

    def _run_breed(self, op: TraceOp, shard: int) -> None:
        matron = self.cats[op.params["matron"]]
        sire = self.cats[op.params["sire"]]
        owner = self.users[op.params["owner"]]
        if sire.shard == matron.shard:
            self._breed_here(op, matron, sire, owner)
            return
        # Cross-shard: move the sire to the matron's shard first.
        self.report.cross_shard_ops += 1
        sire_owner = self.users[sire.owner]
        source_shard = sire.shard
        self._outstanding[source_shard] += 1  # Move1 occupies the source window
        self._outstanding[matron.shard] += 1  # Move2 occupies the target window

        def after_move(phases) -> None:
            self._outstanding[source_shard] -= 1
            self._outstanding[matron.shard] -= 1
            assert phases.success, f"move failed: {phases.error}"
            self.report.txs_committed += 2  # Move1 + Move2
            self.report.throughput.record(self.cluster.sim.now, count=2)
            sire.shard = matron.shard
            self._drain_waiting(source_shard)
            self._breed_here(op, matron, sire, owner)

        self.bridge.move_contract(
            sire_owner,
            sire.address,
            source_id=source_shard + 1,
            target_id=matron.shard + 1,
            on_done=after_move,
        )

    def _breed_here(self, op: TraceOp, matron: _CatState, sire: _CatState, owner) -> None:
        def after_breed(receipt) -> None:
            assert receipt.success, f"breed failed: {receipt.error}"
            self._submit(
                matron.shard,
                owner,
                CallPayload(matron.address, "give_birth"),
                after_birth,
            )

        def after_birth(receipt) -> None:
            assert receipt.success, f"give_birth failed: {receipt.error}"
            self.cats[op.params["child"]] = _CatState(
                address=receipt.return_value,
                shard=matron.shard,
                owner=op.params["owner"],
            )
            self._complete_op(op)

        self._submit(
            matron.shard,
            owner,
            CallPayload(matron.address, "breed_with", (sire.address,)),
            after_breed,
        )
