"""The dependency DAG of Fig. 4.

Vertices are trace operations; an operation depends on the most recent
earlier operation touching each of its objects (cats).  Leaves — ops
with no unresolved dependencies — can execute in parallel; completing
an op may free its successors, just as Tx4 becomes executable once Tx1
and Tx3 finish in the paper's example.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Set

from repro.errors import StateError
from repro.traces.events import TraceOp


class DependencyDAG:
    """Tracks readiness of trace operations during replay."""

    def __init__(self, ops: Sequence[TraceOp]):
        self.ops: Dict[int, TraceOp] = {op.op_id: op for op in ops}
        self._blockers: Dict[int, Set[int]] = {}
        self._dependents: Dict[int, List[int]] = {}
        self._completed: Set[int] = set()
        self._ready: List[int] = []
        last_toucher: Dict[int, int] = {}
        for op in ops:
            deps = set()
            for obj in op.objects:
                if obj in last_toucher:
                    deps.add(last_toucher[obj])
            for obj in op.objects:
                last_toucher[obj] = op.op_id
            self._blockers[op.op_id] = deps
            for dep in deps:
                self._dependents.setdefault(dep, []).append(op.op_id)
            if not deps:
                self._ready.append(op.op_id)

    # ------------------------------------------------------------------

    def take_ready(self) -> List[int]:
        """Drain the currently-ready op ids (in trace order)."""
        out, self._ready = self._ready, []
        return out

    def ready_count(self) -> int:
        """How many ops are ready right now."""
        return len(self._ready)

    def complete(self, op_id: int) -> List[int]:
        """Mark an op done; returns newly freed op ids."""
        if op_id in self._completed:
            raise StateError(f"op {op_id} completed twice")
        if self._blockers.get(op_id):
            raise StateError(f"op {op_id} completed with open dependencies")
        self._completed.add(op_id)
        freed: List[int] = []
        for dependent in self._dependents.get(op_id, ()):
            blockers = self._blockers[dependent]
            blockers.discard(op_id)
            if not blockers:
                freed.append(dependent)
        self._ready.extend(freed)
        return freed

    @property
    def done(self) -> bool:
        return len(self._completed) == len(self.ops)

    def pending_count(self) -> int:
        """Ops not yet completed."""
        return len(self.ops) - len(self._completed)

    def depth(self) -> int:
        """Longest dependency chain — bounds replay parallelism.

        Computed iteratively in op-id order, which is topological
        because dependencies always precede dependents in the trace.
        """
        initial: Dict[int, Set[int]] = {op_id: set() for op_id in self.ops}
        for dep, dependents in self._dependents.items():
            for dependent in dependents:
                initial[dependent].add(dep)
        depth: Dict[int, int] = {}
        for op_id in sorted(self.ops):
            depth[op_id] = 1 + max((depth[b] for b in initial[op_id]), default=0)
        return max(depth.values(), default=0)
