"""Trace (de)serialization.

Traces are plain JSON — one object per operation — so workloads can be
generated once, archived, shared and replayed reproducibly (the
stand-in for the paper's scanned-from-mainnet trace file).
"""

from __future__ import annotations

import json
import pathlib
from typing import List, Union

from repro.traces.events import TraceOp

FORMAT_VERSION = 1


def trace_to_json(ops: List[TraceOp]) -> str:
    """Serialize a trace to a JSON document."""
    payload = {
        "format": "scontracts-move-trace",
        "version": FORMAT_VERSION,
        "ops": [
            {
                "id": op.op_id,
                "kind": op.kind,
                "objects": list(op.objects),
                "params": op.params,
            }
            for op in ops
        ],
    }
    return json.dumps(payload, indent=None, separators=(",", ":"))


def trace_from_json(text: str) -> List[TraceOp]:
    """Parse a trace document (validates format and version)."""
    payload = json.loads(text)
    if payload.get("format") != "scontracts-move-trace":
        raise ValueError("not a trace file")
    if payload.get("version") != FORMAT_VERSION:
        raise ValueError(f"unsupported trace version {payload.get('version')}")
    return [
        TraceOp(
            op_id=item["id"],
            kind=item["kind"],
            objects=tuple(item["objects"]),
            params=dict(item["params"]),
        )
        for item in payload["ops"]
    ]


def save_trace(ops: List[TraceOp], path: Union[str, pathlib.Path]) -> None:
    """Write a trace to disk."""
    pathlib.Path(path).write_text(trace_to_json(ops))


def load_trace(path: Union[str, pathlib.Path]) -> List[TraceOp]:
    """Read a trace from disk."""
    return trace_from_json(pathlib.Path(path).read_text())
