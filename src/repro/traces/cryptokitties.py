"""Synthetic CryptoKitties trace generator.

Substitute for the real 4M-transaction trace the paper scanned from
Ethereum mainnet (see DESIGN.md §2).  The generator preserves the
properties the experiment actually depends on:

* the operation mix — breeding dominates, with ownership transfers and
  a trickle of promotional mints (the real contract's profile);
* object reuse — cats are drawn per-user, users drawn from a Zipf-like
  skew, so popular cats/users create dependency chains (Fig. 4);
* the siring-approval flow — breeding with another user's cat requires
  a prior ``approve`` touching the sire, adding exactly the dependency
  the paper describes ("c2's owner agrees with the breeding with Tx3");
* bounded parallelism — later operations increasingly target bred
  (trace-internal) cats, so the DAG narrows as the replay progresses,
  which is what starves shards in the paper's 8-shard run (Fig. 5).

Cross-shard rate is *emergent*: it depends on hash placement and the
fraction of breeds whose parents live on different shards, landing in
the paper's reported 5–8 % band for 2–8 shards.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Set, Tuple

from repro.traces.events import APPROVE, BREED, PROMO, TRANSFER, TraceOp


@dataclass(frozen=True)
class TraceConfig:
    """Knobs of the synthetic workload."""

    n_users: int = 100
    n_promo: int = 120          # initial generation-0 mints
    n_ops: int = 2_000          # operations after the initial mints
    breed_fraction: float = 0.45
    transfer_fraction: float = 0.25
    promo_fraction: float = 0.05  # late promos keep arriving
    #: probability a breed uses another user's sire (requires approval,
    #: and makes same-shard co-location unlikely -> cross-shard moves)
    foreign_sire_fraction: float = 0.12
    #: probability a breed reuses a pair that bred before — the real
    #: trace's dominant pattern (collections bred repeatedly).  Pairs
    #: are disjoint (a cat breeds in at most one pair), so a reused
    #: pair is guaranteed co-located after its first move — this is
    #: what keeps the cross-shard rate in the paper's 5-8 % band
    #: instead of the ``1 - 1/s`` of uniformly random pairing.
    repeat_pair_fraction: float = 0.8
    #: Zipf-like exponent for user popularity
    skew: float = 0.7
    seed: int = 42


def _zipf_weights(n: int, skew: float) -> List[float]:
    return [1.0 / (rank + 1) ** skew for rank in range(n)]


def generate_trace(config: TraceConfig = TraceConfig()) -> List[TraceOp]:
    """Produce a dependency-consistent operation list."""
    rng = random.Random(config.seed)
    weights = _zipf_weights(config.n_users, config.skew)
    ops: List[TraceOp] = []
    next_cat = 1
    next_op = 0
    cats_of: Dict[int, List[int]] = {u: [] for u in range(config.n_users)}
    parents: Dict[int, Tuple[int, int]] = {}  # cat -> (matron, sire)

    def emit(kind: str, objects: Tuple[int, ...], **params) -> None:
        nonlocal next_op
        ops.append(TraceOp(op_id=next_op, kind=kind, objects=objects, params=params))
        next_op += 1

    def pick_user() -> int:
        return rng.choices(range(config.n_users), weights=weights)[0]

    def mint(owner: int) -> int:
        nonlocal next_cat
        cat = next_cat
        next_cat += 1
        cats_of[owner].append(cat)
        parents[cat] = (0, 0)
        emit(PROMO, (cat,), cat=cat, owner=owner)
        return cat

    for _ in range(config.n_promo):
        mint(pick_user())

    def are_siblings(a: int, b: int) -> bool:
        pa, pb = parents[a], parents[b]
        return pa != (0, 0) and pa == pb

    pairs_of: Dict[int, List[Tuple[int, int]]] = {u: [] for u in range(config.n_users)}
    paired: Set[int] = set()  # cats currently committed to a pair

    def try_breed() -> bool:
        owner = pick_user()
        if not cats_of[owner]:
            return False
        # Repeat pairing first: pairs are disjoint, so once its first
        # breed co-located the two cats nothing else moves them — every
        # repeat breed is single-shard at replay time.  This is the
        # locality structure of the real trace (collections bred over
        # and over).
        pairs = pairs_of[owner]
        if pairs and rng.random() < config.repeat_pair_fraction:
            matron, sire = rng.choice(pairs)
            if matron in cats_of[owner] and sire in cats_of[owner]:
                _child(owner, matron, sire)
                return True
        unpaired = [c for c in cats_of[owner] if c not in paired]
        if not unpaired:
            return False
        matron = rng.choice(unpaired)
        foreign = rng.random() < config.foreign_sire_fraction
        sire = None
        if foreign:
            others = [u for u in range(config.n_users) if u != owner and cats_of[u]]
            if others:
                sire_owner = rng.choice(others)
                candidates = [
                    c for c in cats_of[sire_owner]
                    if c not in paired and c != matron and not are_siblings(matron, c)
                ]
                if candidates:
                    sire = rng.choice(candidates)
                    emit(APPROVE, (sire,), sire=sire, matron_owner=owner)
        if sire is None:
            own = [
                c for c in unpaired if c != matron and not are_siblings(matron, c)
            ]
            if not own:
                return False
            sire = rng.choice(own)
        pairs_of[owner].append((matron, sire))
        paired.add(matron)
        paired.add(sire)
        _child(owner, matron, sire)
        return True

    def _child(owner: int, matron: int, sire: int) -> int:
        nonlocal next_cat
        child = next_cat
        next_cat += 1
        cats_of[owner].append(child)
        parents[child] = (matron, sire)
        emit(
            BREED,
            (matron, sire, child),
            matron=matron,
            sire=sire,
            child=child,
            owner=owner,
        )
        return child

    def try_transfer() -> bool:
        owner = pick_user()
        if not cats_of[owner]:
            return False
        # Owners sell spare cats, not their active breeding pairs.
        spares = [c for c in cats_of[owner] if c not in paired]
        cat = rng.choice(spares if spares else cats_of[owner])
        new_owner = pick_user()
        if new_owner == owner:
            return False
        cats_of[owner].remove(cat)
        cats_of[new_owner].append(cat)
        if cat in paired:
            paired.discard(cat)
            kept = []
            for matron, sire in pairs_of[owner]:
                if cat in (matron, sire):
                    paired.discard(matron)
                    paired.discard(sire)
                else:
                    kept.append((matron, sire))
            pairs_of[owner] = kept
        emit(TRANSFER, (cat,), cat=cat, new_owner=new_owner)
        return True

    produced = 0
    while produced < config.n_ops:
        roll = rng.random()
        if roll < config.breed_fraction:
            done = try_breed()
        elif roll < config.breed_fraction + config.transfer_fraction:
            done = try_transfer()
        elif roll < config.breed_fraction + config.transfer_fraction + config.promo_fraction:
            mint(pick_user())
            done = True
        else:
            # Filler ops modelled as transfers (auctions etc. touch one cat).
            done = try_transfer()
        if done:
            produced += 1
    return ops


def trace_owner_of(ops: List[TraceOp]) -> Dict[int, int]:
    """Final owner (user index) of every cat after the trace."""
    owner: Dict[int, int] = {}
    for op in ops:
        if op.kind == PROMO:
            owner[op.params["cat"]] = op.params["owner"]
        elif op.kind == BREED:
            owner[op.params["child"]] = op.params["owner"]
        elif op.kind == TRANSFER:
            owner[op.params["cat"]] = op.params["new_owner"]
    return owner
