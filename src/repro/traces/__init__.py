"""Trace generation and dependency-respecting replay (Section VII-A).

The paper scanned every transaction of the real CryptoKitties contract
(over four million) and replayed them against ScalableKitties through a
dependency DAG.  The real trace is not redistributable, so
:mod:`repro.traces.cryptokitties` synthesizes one with the same
operation mix and object-reuse structure (see DESIGN.md's substitution
table); :mod:`repro.traces.dag` builds the Fig. 4 dependency DAG; and
:mod:`repro.traces.replay` replays it against a sharded cluster with
the paper's 250-outstanding-transaction window.
"""

from repro.traces.cryptokitties import TraceConfig, generate_trace
from repro.traces.dag import DependencyDAG
from repro.traces.events import TraceOp
from repro.traces.io import load_trace, save_trace
from repro.traces.replay import KittiesReplayer, ReplayReport

__all__ = [
    "TraceOp",
    "TraceConfig",
    "generate_trace",
    "DependencyDAG",
    "KittiesReplayer",
    "ReplayReport",
    "save_trace",
    "load_trace",
]
