"""Trace records.

A trace is an ordered list of logical CryptoKitties operations; the
dependency DAG derives edges from the cat ids each operation touches
(``objects``), exactly like the object pointers in the paper's Fig. 4.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Tuple

#: operation kinds
PROMO = "promo"        # owner mints a generation-0 cat
APPROVE = "approve"    # sire owner approves a matron owner for siring
BREED = "breed"        # matron breeds with sire; child is born
TRANSFER = "transfer"  # cat changes owner

KINDS = (PROMO, APPROVE, BREED, TRANSFER)


@dataclass(frozen=True)
class TraceOp:
    """One logical operation of the workload.

    ``objects`` lists the logical cat ids the operation reads/writes —
    the DAG serializes operations sharing an object.  ``params`` holds
    kind-specific fields:

    * promo: ``cat``, ``owner`` (user index)
    * approve: ``sire``, ``matron_owner`` (user index)
    * breed: ``matron``, ``sire``, ``child`` (logical id), ``owner``
    * transfer: ``cat``, ``new_owner`` (user index)
    """

    op_id: int
    kind: str
    objects: Tuple[int, ...]
    params: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ValueError(f"unknown trace op kind {self.kind!r}")
