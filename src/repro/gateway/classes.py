"""Priority classes for gateway admission.

The serving tier separates traffic into three classes ordered by how
badly the protocol suffers when they stall (docs/SERVING.md):

* :attr:`PriorityClass.MOVE` — Move1/Move2/confirmation transactions.
  A stalled move strands a contract in its locked state on the source
  chain, so moves preempt everything else at the front door;
* :attr:`PriorityClass.VIEW` — read-path traffic: subscription
  bookkeeping and explicitly view-tagged requests.  Latency-sensitive
  but droppable without protocol damage;
* :attr:`PriorityClass.BULK` — everything else (transfers, deploys,
  ordinary calls).  Throughput traffic: first to shed, last to flush.

Classification is *default-by-payload, override-by-caller*: Move1 and
Move2 payloads classify as ``MOVE`` automatically, everything else as
``BULK``, and every submit path accepts ``priority=`` to re-tag a
request (a wallet may ship an urgent transfer as ``MOVE``-adjacent
``VIEW``, a crawler may volunteer its calls as ``BULK``).

Lower numeric value = higher priority, so ``sorted(PriorityClass)``
is flush order and ``reversed(...)`` is shed-search order.
"""

from __future__ import annotations

from enum import IntEnum
from typing import Union

from repro.chain.tx import Move1Payload, Move2Payload, Transaction
from repro.errors import ConfigError


class PriorityClass(IntEnum):
    """Admission priority of one request; lower value flushes first."""

    MOVE = 0
    VIEW = 1
    BULK = 2

    @property
    def label(self) -> str:
        """Lower-case name used in metric labels and wire payloads."""
        return self.name.lower()

    @classmethod
    def coerce(cls, value: Union["PriorityClass", str, int]) -> "PriorityClass":
        """Accept a member, its label or its value; :class:`ConfigError`
        (naming the field) on anything else."""
        if isinstance(value, cls):
            return value
        if isinstance(value, str):
            try:
                return cls[value.upper()]
            except KeyError:
                pass
        elif isinstance(value, int) and not isinstance(value, bool):
            try:
                return cls(value)
            except ValueError:
                pass
        raise ConfigError(
            f"priority must be one of {[c.label for c in cls]} "
            f"(or a PriorityClass), got {value!r}"
        )


#: classes in flush order (highest priority first)
FLUSH_ORDER = tuple(PriorityClass)
#: classes in shed-search order (lowest priority first)
SHED_ORDER = tuple(reversed(FLUSH_ORDER))


def classify(tx: Transaction) -> PriorityClass:
    """Default class of a transaction nobody tagged explicitly."""
    if isinstance(tx.payload, (Move1Payload, Move2Payload)):
        return PriorityClass.MOVE
    return PriorityClass.BULK
