"""Futures for gateway requests on a discrete-event clock.

There are no threads to block, so "awaiting" a request means holding a
handle that the gateway resolves as simulation events fire.  A
:class:`RequestHandle` tracks one transaction from admission to its
receipt; a :class:`MoveHandle` tracks a whole cross-chain move (Move1 →
confirmation wait → proof → Move2 → completions) and resolves to the
same :class:`~repro.ibc.bridge.MovePhases` record the lockstep bridge
produces, so Fig. 8-style phase analysis works identically on served
moves.

Gateway-level failures (shed, rate limit, timeout, malformed request)
are stored as typed :class:`~repro.errors.GatewayError` instances and
re-raised by :meth:`RequestHandle.result` — callers never see a bare
``KeyError`` or a stringly-typed rejection.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional

from repro.errors import GatewayError
from repro.statedb.receipts import Receipt

#: request lifecycle states
PENDING = "pending"      # created; not yet admitted (e.g. in network transit)
QUEUED = "queued"        # admitted into a gateway queue (or parked)
SUBMITTED = "submitted"  # flushed into the chain's mempool
CONFIRMED = "confirmed"  # executed in a block; receipt available
FAILED = "failed"        # gateway-level failure; typed error available


class RequestHandle:
    """One submitted transaction's future."""

    def __init__(
        self,
        chain_id: int,
        client_id: str = "",
        idempotency_key: Optional[str] = None,
    ):
        self.chain_id = chain_id
        self.client_id = client_id
        self.idempotency_key = idempotency_key
        self.status = PENDING
        self.tx_id: Optional[str] = None
        self.receipt: Optional[Receipt] = None
        self.error: Optional[GatewayError] = None
        self.admitted_at: Optional[float] = None
        self.resolved_at: Optional[float] = None
        self._callbacks: List[Callable[["RequestHandle"], None]] = []
        self._late_callbacks: List[Callable[["RequestHandle"], None]] = []
        #: bound by the gateway at admission; lets ``wait`` drive the sim
        self._node = None

    # -- observation ---------------------------------------------------

    @property
    def done(self) -> bool:
        """Resolved, one way or the other."""
        return self.status in (CONFIRMED, FAILED)

    @property
    def ok(self) -> bool:
        """Executed *and* the transaction itself succeeded."""
        return self.status == CONFIRMED and bool(self.receipt and self.receipt.success)

    def result(self) -> Receipt:
        """The receipt; raises the typed gateway error on failure.

        A :class:`GatewayError` with code ``"pending"`` is raised when
        the handle has not resolved yet — drive the node (or use
        :meth:`Client.wait`) before asking for the result.
        """
        if self.error is not None:
            raise self.error
        if not self.done:
            raise GatewayError(
                f"request still {self.status}; run the node until handle.done",
                code="pending",
            )
        return self.receipt

    def on_done(self, callback: Callable[["RequestHandle"], None]) -> None:
        """Invoke ``callback(handle)`` at resolution (immediately if done)."""
        if self.done:
            callback(self)
            return
        self._callbacks.append(callback)

    def wait(self, timeout: Optional[float] = None) -> Receipt:
        """Drive the node until this handle resolves; return the receipt.

        ``timeout`` bounds the *simulated* driving from now; it composes
        with the gateway's admission deadline — whichever fires first
        wins, and either way the caller gets a typed
        :class:`~repro.errors.RequestTimeout` (the gateway's from
        :meth:`result`, this one raised directly).  Only handles that
        went through a gateway can wait (the gateway binds the node at
        admission).
        """
        return _wait(self, timeout)

    # -- resolution (gateway-internal) ---------------------------------

    def _settle(self) -> None:
        callbacks, self._callbacks = self._callbacks, []
        for callback in callbacks:
            callback(self)

    def _resolve(self, receipt: Receipt, now: Optional[float] = None) -> None:
        if self.done:
            return
        self.status = CONFIRMED
        self.receipt = receipt
        self.resolved_at = now
        self._settle()

    def _fail(self, error: GatewayError, now: Optional[float] = None) -> None:
        if self.done:
            return
        self.status = FAILED
        self.error = error
        self.resolved_at = now
        self._settle()

    def _record_late(self, receipt: Receipt, now: Optional[float] = None) -> None:
        """Attach the receipt that arrived *after* this handle already
        failed with a timeout.  The handle stays FAILED (its caller saw
        the typed error), but the receipt becomes observable and
        idempotent retries reattach to it via :meth:`on_late_receipt`."""
        if self.receipt is not None:
            return
        self.receipt = receipt
        self.resolved_at = now
        callbacks, self._late_callbacks = self._late_callbacks, []
        for callback in callbacks:
            callback(self)

    def on_late_receipt(self, callback: Callable[["RequestHandle"], None]) -> None:
        """Invoke ``callback(handle)`` once a receipt is available for a
        timed-out request (immediately if it already arrived)."""
        if self.receipt is not None:
            callback(self)
            return
        self._late_callbacks.append(callback)

    def _mirror(self, original: "RequestHandle") -> None:
        """Make this handle track ``original`` (idempotent retry: the
        retry attaches to the first submission's outcome)."""
        self.tx_id = original.tx_id
        # Only pre-copy in-flight states; terminal ones must go through
        # _resolve/_fail below so the receipt/error lands with them.
        if original.status in (QUEUED, SUBMITTED):
            self.status = original.status

        def copy(src: "RequestHandle") -> None:
            self.tx_id = src.tx_id
            if src.error is not None:
                self._fail(src.error, src.resolved_at)
            else:
                self._resolve(src.receipt, src.resolved_at)

        original.on_done(copy)


class MoveHandle:
    """One cross-chain move's future (the served-path Fig. 8 record).

    Resolves to a :class:`~repro.ibc.bridge.MovePhases`; protocol-level
    failures (a reverted Move1, a stale proof) are recorded inside the
    phases (``success`` / ``error``) exactly like the bridge records
    them, while *gateway*-level failures (a shed mid-move, an unknown
    chain) raise from :meth:`result` as typed errors.
    """

    #: coarse progress states, in order
    STAGES = ("move1", "confirm", "proof", "move2", "complete", "done", "failed")

    def __init__(self, phases: Any, idempotency_key: Optional[str] = None):
        #: the live MovePhases record (fills in as the simulation runs)
        self.phases = phases
        self.idempotency_key = idempotency_key
        self.stage = "move1"
        self.error: Optional[GatewayError] = None
        self._callbacks: List[Callable[["MoveHandle"], None]] = []
        self._stage_callbacks: List[Callable[[str], None]] = []
        #: stages already traversed, in order (subscriptions replay these)
        self.stage_history: List[str] = ["move1"]
        #: bound by the gateway at admission; lets ``wait`` drive the sim
        self._node = None

    @property
    def done(self) -> bool:
        return self.stage in ("done", "failed")

    @property
    def ok(self) -> bool:
        """Finished and the protocol-level move succeeded."""
        return self.stage == "done" and self.phases.success

    def result(self) -> Any:
        """The final :class:`MovePhases`; raises typed gateway errors."""
        if self.error is not None:
            raise self.error
        if not self.done:
            raise GatewayError(
                f"move still in stage {self.stage!r}; run the node until handle.done",
                code="pending",
            )
        return self.phases

    def on_done(self, callback: Callable[["MoveHandle"], None]) -> None:
        """Invoke ``callback(handle)`` at resolution (immediately if done)."""
        if self.done:
            callback(self)
            return
        self._callbacks.append(callback)

    def on_stage(self, callback: Callable[[str], None]) -> None:
        """Invoke ``callback(stage)`` for every stage this move has
        already traversed (replayed in order) and every future
        transition, terminal ``done``/``failed`` included.  This is the
        hook :meth:`~repro.gateway.gateway.Gateway.watch_move` pushes
        subscription events from."""
        for stage in self.stage_history:
            callback(stage)
        if not self.done:
            self._stage_callbacks.append(callback)

    def wait(self, timeout: Optional[float] = None) -> Any:
        """Drive the node until the move resolves; return its
        :class:`~repro.ibc.bridge.MovePhases`.  ``timeout`` bounds the
        simulated driving and composes with per-request deadlines the
        same way :meth:`RequestHandle.wait` does."""
        return _wait(self, timeout)

    # -- resolution (gateway-internal) ---------------------------------

    def _advance(self, stage: str) -> None:
        if not self.done:
            self.stage = stage
            self._note_stage(stage)

    def _note_stage(self, stage: str) -> None:
        self.stage_history.append(stage)
        for callback in list(self._stage_callbacks):
            callback(stage)

    def _settle(self) -> None:
        self._note_stage(self.stage)
        self._stage_callbacks = []
        callbacks, self._callbacks = self._callbacks, []
        for callback in callbacks:
            callback(self)

    def _finish(self) -> None:
        if self.done:
            return
        self.stage = "done"
        self._settle()

    def _fail(self, error: Optional[GatewayError] = None) -> None:
        if self.done:
            return
        self.stage = "failed"
        self.error = error
        self._settle()


def _wait(handle, timeout: Optional[float]):
    """Shared driver behind both handles' ``wait``."""
    node = handle._node
    if node is None:
        raise GatewayError(
            "handle is not bound to a node (it never went through a "
            "gateway); drive the simulation yourself or use Client.wait",
            code="pending",
        )
    from repro.errors import RequestTimeout

    deadline = None if timeout is None else node.now + timeout
    resolved = node.run_until(lambda: handle.done, max_time=deadline)
    if not resolved:
        raise RequestTimeout(
            f"handle unresolved after timeout={timeout}s of simulated driving"
        )
    return handle.result()
