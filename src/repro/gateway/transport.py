"""Transports: how client requests reach the gateway.

Two implementations, one contract:

* :class:`InProcessTransport` — the request hits the gateway at the
  current simulated instant (a client co-located with the node);
* :class:`SimNetTransport` — the request takes a deterministic
  simulated-network hop first: base latency plus jitter drawn from the
  *simulator's* seeded RNG, so a chaos seed replays the exact same
  admission order byte-identically.

Both return the request's future immediately — on a discrete-event
clock there is nothing to block on; the gateway resolves the handle as
events fire.  A transport's ``gateway`` may equally be a
:class:`~repro.gateway.fleet.GatewayFleet` — the fleet exposes the
same serving surface and routes each client to its pinned replica.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.chain.tx import Transaction
from repro.crypto.keys import Address, KeyPair
from repro.errors import ConfigError
from repro.gateway.gateway import Gateway, PriorityLike
from repro.gateway.handles import MoveHandle, RequestHandle
from repro.gateway.subscription import Subscription
from repro.ibc.bridge import CompletionFactory


class InProcessTransport:
    """Synchronous, zero-latency path into the gateway (or fleet)."""

    def __init__(self, gateway: Gateway):
        self.gateway = gateway

    def submit(
        self,
        tx: Transaction,
        chain_id: int,
        client_id: str = "",
        idempotency_key: Optional[str] = None,
        priority: Optional[PriorityLike] = None,
    ) -> RequestHandle:
        """Hand the transaction to the gateway now; returns its future."""
        return self.gateway.submit(
            tx,
            chain_id,
            client_id=client_id,
            idempotency_key=idempotency_key,
            priority=priority,
        )

    def move(
        self,
        mover: KeyPair,
        contract: Address,
        source_chain: int,
        target_chain: int,
        completions: Sequence[CompletionFactory] = (),
        client_id: str = "",
        idempotency_key: Optional[str] = None,
    ) -> MoveHandle:
        """Start a cross-chain move now; returns its future."""
        return self.gateway.move(
            mover,
            contract,
            source_chain,
            target_chain,
            completions=completions,
            client_id=client_id,
            idempotency_key=idempotency_key,
        )

    def watch_contract(
        self, chain_id: int, target: Address, client_id: str = ""
    ) -> Subscription:
        """Subscribe to a contract's committed events (push, not poll)."""
        return self.gateway.watch_contract(chain_id, target, client_id)

    def watch_move(self, handle: MoveHandle, client_id: str = "") -> Subscription:
        """Subscribe to a move's stage stream (push, not poll)."""
        return self.gateway.watch_move(handle, client_id)

    def health(self) -> dict:
        """The gateway's serving/degraded status (see
        :meth:`~repro.gateway.gateway.Gateway.health`)."""
        return self.gateway.health()


class SimNetTransport:
    """A deterministic simulated network hop in front of the gateway.

    Per-request delay = ``latency + U(0, jitter)`` with the uniform
    draw taken from the node simulator's seeded RNG — reproducible
    run-to-run, and reproducible under chaos seeds.
    """

    def __init__(self, gateway: Gateway, latency: float = 0.05, jitter: float = 0.0):
        if latency < 0 or jitter < 0:
            raise ConfigError(
                f"transport latency/jitter must be >= 0, got {latency}/{jitter}"
            )
        self.gateway = gateway
        self.latency = latency
        self.jitter = jitter

    def _delay(self) -> float:
        sim = self.gateway.node.sim
        return self.latency + (sim.rng.uniform(0.0, self.jitter) if self.jitter else 0.0)

    def submit(
        self,
        tx: Transaction,
        chain_id: int,
        client_id: str = "",
        idempotency_key: Optional[str] = None,
        priority: Optional[PriorityLike] = None,
    ) -> RequestHandle:
        """Submit after a seeded network delay; the future exists now."""
        handle = RequestHandle(
            chain_id, client_id=client_id, idempotency_key=idempotency_key
        )
        handle._node = self.gateway.node
        self.gateway.node.sim.schedule(
            self._delay(),
            lambda: self.gateway.submit(
                tx,
                chain_id,
                client_id=client_id,
                idempotency_key=idempotency_key,
                handle=handle,
                priority=priority,
            ),
        )
        return handle

    def move(
        self,
        mover: KeyPair,
        contract: Address,
        source_chain: int,
        target_chain: int,
        completions: Sequence[CompletionFactory] = (),
        client_id: str = "",
        idempotency_key: Optional[str] = None,
    ) -> MoveHandle:
        """Start a move after a seeded network delay; the future exists now."""
        # The move's own future must exist before the hop completes, so
        # the gateway-made handle is bridged through a proxy that starts
        # mirroring once the request arrives.
        from repro.ibc.bridge import MovePhases

        proxy = MoveHandle(
            MovePhases(
                contract=contract,
                source_chain=source_chain,
                target_chain=target_chain,
                started_at=self.gateway.node.now,
            ),
            idempotency_key=idempotency_key,
        )
        proxy._node = self.gateway.node

        def deliver() -> None:
            real = self.gateway.move(
                mover,
                contract,
                source_chain,
                target_chain,
                completions=completions,
                client_id=client_id,
                idempotency_key=idempotency_key,
            )
            proxy.phases = real.phases

            def forward(stage: str) -> None:
                # Mirror intermediate stage transitions onto the proxy
                # (the replayed "move1" it already holds and the
                # terminal stage, which copy() below settles, excluded)
                # so watch_move on the client-side handle streams too.
                if stage in ("done", "failed") or stage == proxy.stage:
                    return
                proxy._advance(stage)

            real.on_stage(forward)

            def copy(done_handle: MoveHandle) -> None:
                proxy.phases = done_handle.phases
                proxy.stage = done_handle.stage
                proxy.error = done_handle.error
                proxy._settle()

            real.on_done(copy)

        self.gateway.node.sim.schedule(self._delay(), deliver)
        return proxy

    def watch_contract(
        self, chain_id: int, target: Address, client_id: str = ""
    ) -> Subscription:
        """Subscribe to a contract's committed events.  Registration is
        immediate (a control-plane operation like ``health``): events
        are pushed from block commits either way, so the hop would only
        risk missing the first block after the call."""
        return self.gateway.watch_contract(chain_id, target, client_id)

    def watch_move(self, handle: MoveHandle, client_id: str = "") -> Subscription:
        """Subscribe to a move's stage stream (immediate registration;
        the handle replays stages already traversed)."""
        return self.gateway.watch_move(handle, client_id)

    def health(self) -> dict:
        """The gateway's serving/degraded status.  Served immediately
        (health checks are reads against the current instant; the
        network hop would only report an older now)."""
        return self.gateway.health()
