"""The classed, weighted-fair admission queue (one per chain per replica).

Replaces the PR 5 flat FIFO deque with a two-level structure:

* **priority classes** (:class:`~repro.gateway.classes.PriorityClass`)
  flush in strict priority order — every queued ``MOVE`` leaves before
  any ``VIEW``, every ``VIEW`` before any ``BULK`` — and shed in the
  reverse order: an arrival that finds the queue at bound evicts the
  most recent entry of the *lowest* backlogged class strictly below its
  own, so a burst of bulk transfers can never crowd out a move;
* **deficit round-robin across clients** within each class: each
  backlogged client owns a FIFO lane and the flusher serves lanes in
  arrival-ring order, up to ``quantum`` entries per turn, so one
  aggressive client drains at the same per-round rate as everyone else
  (starvation-freedom is property-tested in
  ``tests/property/test_fleet_properties.py``).

Everything is deterministic: no RNG, ties broken by queue length then
client id, partial turns resume exactly where they stopped.  The queue
itself does no metrics or handle bookkeeping — it returns the evicted
victim to the caller, which is what lets the gateway attribute
``gateway_queue_shed_total`` to the entry that was actually dropped
rather than to the enqueuer.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Tuple

from repro.gateway.classes import FLUSH_ORDER, SHED_ORDER, PriorityClass


@dataclass
class QueueEntry:
    """One admitted-but-unflushed request."""

    tx: object
    handle: object
    cls: PriorityClass
    client: str
    #: simulated admission instant (victim attribution reports it)
    at: float = 0.0


@dataclass
class PushResult:
    """Outcome of one :meth:`ClassedFairQueue.push`."""

    admitted: bool
    #: the entry evicted to make room (class-aware shed); None when the
    #: push fit under the bound or was itself refused
    victim: Optional[QueueEntry] = None


class ClassedFairQueue:
    """Bounded, classed, per-client-fair admission queue."""

    def __init__(self, bound: int, quantum: int = 8):
        self.bound = bound
        self.quantum = quantum
        #: class -> client -> FIFO lane
        self._lanes: Dict[PriorityClass, Dict[str, Deque[QueueEntry]]] = {
            cls: {} for cls in FLUSH_ORDER
        }
        #: class -> round-robin ring of backlogged clients
        self._rings: Dict[PriorityClass, Deque[str]] = {
            cls: deque() for cls in FLUSH_ORDER
        }
        self.depth = 0
        self.peak_depth = 0
        self.class_depth: Dict[PriorityClass, int] = {c: 0 for c in FLUSH_ORDER}
        self.class_peak: Dict[PriorityClass, int] = {c: 0 for c in FLUSH_ORDER}
        #: class -> (client, remaining quantum) when a pop budget cut a
        #: turn short — the deficit the next pop owes that client
        self._carry: Dict[PriorityClass, Optional[Tuple[str, int]]] = {
            c: None for c in FLUSH_ORDER
        }

    def __len__(self) -> int:
        return self.depth

    # ------------------------------------------------------------------
    # Admission
    # ------------------------------------------------------------------

    def push(self, entry: QueueEntry) -> PushResult:
        """Admit ``entry`` under the bound.

        At the bound, the shed policy is class-aware: the most recent
        entry of the lowest backlogged class *strictly below*
        ``entry.cls`` is evicted and returned as the victim (its handle
        is still live — the caller fails it with the typed
        :class:`~repro.errors.ShedByClass` and charges the shed to the
        victim's class/client).  If no lower class is backlogged the
        push is refused and the caller sheds the newcomer instead —
        same-class work is never evicted, so admission within a class
        stays FIFO-honest.
        """
        victim = None
        if self.depth >= self.bound:
            victim = self._evict_below(entry.cls)
            if victim is None:
                return PushResult(admitted=False)
        self._append(entry)
        return PushResult(admitted=True, victim=victim)

    def _append(self, entry: QueueEntry) -> None:
        lanes = self._lanes[entry.cls]
        lane = lanes.get(entry.client)
        if lane is None:
            lane = lanes[entry.client] = deque()
        if not lane:
            self._rings[entry.cls].append(entry.client)
        lane.append(entry)
        self.depth += 1
        self.class_depth[entry.cls] += 1
        if self.depth > self.peak_depth:
            self.peak_depth = self.depth
        if self.class_depth[entry.cls] > self.class_peak[entry.cls]:
            self.class_peak[entry.cls] = self.class_depth[entry.cls]

    def _evict_below(self, cls: PriorityClass) -> Optional[QueueEntry]:
        """Drop and return the most recent entry of the lowest
        backlogged class strictly below ``cls`` (None if there is
        none).  Within the class the victim comes off the *tail* of the
        longest lane — the client hogging the most slots gives one
        back, and its oldest (fairest) work survives."""
        for victim_cls in SHED_ORDER:
            if victim_cls <= cls:
                return None
            if self.class_depth[victim_cls] == 0:
                continue
            lanes = self._lanes[victim_cls]
            client = max(lanes, key=lambda c: (len(lanes[c]), c))
            lane = lanes[client]
            victim = lane.pop()
            if not lane:
                del lanes[client]
                self._rings[victim_cls].remove(client)
            self.depth -= 1
            self.class_depth[victim_cls] -= 1
            return victim
        return None

    # ------------------------------------------------------------------
    # Draining (the flush side)
    # ------------------------------------------------------------------

    def pop(self, budget: int) -> List[QueueEntry]:
        """Remove up to ``budget`` entries in flush order.

        Strict priority across classes; deficit round-robin across
        clients within a class (``quantum`` entries per client per
        turn).  A turn cut short by the budget resumes at the same
        client next call, so fairness holds across micro-batches, not
        just within one.
        """
        out: List[QueueEntry] = []
        for cls in FLUSH_ORDER:
            ring = self._rings[cls]
            lanes = self._lanes[cls]
            carry = self._carry[cls]
            self._carry[cls] = None
            while ring and len(out) < budget:
                client = ring.popleft()
                lane = lanes[client]
                turn = self.quantum
                if carry is not None:
                    # An earlier pop's budget cut this client's turn
                    # short; it is owed only the rest of that quantum,
                    # not a fresh one.
                    if carry[0] == client:
                        turn = carry[1]
                    carry = None
                take = min(turn, len(lane), budget - len(out))
                for _ in range(take):
                    out.append(lane.popleft())
                if lane:
                    if len(out) >= budget and take < turn:
                        # Budget cut the turn short: keep this client at
                        # the head so its remaining quantum comes first.
                        ring.appendleft(client)
                        self._carry[cls] = (client, turn - take)
                    else:
                        ring.append(client)
                else:
                    del lanes[client]
            if len(out) >= budget:
                break
        self.depth -= len(out)
        for entry in out:
            self.class_depth[entry.cls] -= 1
        return out

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def backlogged_clients(self, cls: PriorityClass) -> Tuple[str, ...]:
        """Clients with queued work in ``cls``, in ring order."""
        return tuple(self._rings[cls])

    def depths_by_class(self) -> Dict[str, int]:
        """Current depth per class label (stable key order)."""
        return {cls.label: self.class_depth[cls] for cls in FLUSH_ORDER}
