"""The request gateway: one audited front door in front of a node.

Everything a client sends — transfers, deploys, calls, whole
cross-chain moves — enters through :meth:`Gateway.submit` /
:meth:`Gateway.move` and is subject to the same admission discipline:

* **priority classes** — every request carries a
  :class:`~repro.gateway.classes.PriorityClass` (moves/confirms ahead
  of views/subscriptions ahead of bulk transfers).  Classes flush in
  strict priority order and shed in reverse: an arrival that finds the
  queue at bound evicts the most recent entry of the lowest backlogged
  class below its own, so bulk bursts never crowd out a move;
* **weighted-fair admission** — within a class, per-client FIFO lanes
  served deficit-round-robin (``limits.drr_quantum`` per turn) replace
  the PR 5 flat FIFO, so one aggressive client cannot monopolize a
  replica (:mod:`repro.gateway.fairqueue`);
* **bounded queues** — each served chain gets one classed queue bounded
  by ``limits.max_queue_depth``; memory stays bounded no matter how
  many clients pile on;
* **micro-batching** — a flush loop pours queued transactions into the
  chain mempools every ``limits.flush_interval`` simulated seconds, up
  to ``limits.batch_size`` per chain per flush;
* **backpressure** — past the bound the shed policy applies: ``"shed"``
  rejects with a typed :class:`~repro.errors.ShedByClass` attributed to
  the entry actually dropped (victim, not enqueuer); ``"block"`` parks
  the request in a bounded overflow lot that drains as blocks commit.
  Flushes are metered against the chain's mempool headroom — shared
  fleet-wide through an :class:`~repro.gateway.budget.AdmissionBudget`
  when this gateway is a :class:`~repro.gateway.fleet.GatewayFleet`
  replica;
* **rate limiting** — a per-client token bucket
  (:class:`~repro.gateway.limits.TokenBucket`) sheds with
  :class:`~repro.errors.RateLimited` past the configured rate;
* **deadlines + idempotency** — a request admitted with
  ``request_timeout`` fails with :class:`~repro.errors.RequestTimeout`
  if unresolved by then, and a retry carrying the same idempotency key
  reattaches to the original submission instead of double-submitting.
  Keys bind only on successful admission, a retry after a timeout
  resolves to the original transaction's eventual receipt, and records
  are evicted ``limits.idempotency_retention`` seconds after
  resolution (token buckets are LRU-capped at ``limits.max_clients``);
* **subscriptions** — :meth:`watch_contract` / :meth:`watch_move` push
  contract events and move handle-state from the gateway's block
  subscription instead of clients polling
  (:mod:`repro.gateway.subscription`);
* **error boundary** — raw ``KeyError``/``ValueError``/``TypeError``
  escapes are mapped to :class:`~repro.errors.InvalidRequest`, so every
  outcome a client can observe is a :class:`~repro.errors.ReproError`
  subclass carrying a machine-readable reason code.

The gateway also owns block production: ``start()`` starts the node's
driver and the flush loop together, so "serving" is one call (a fleet
replica instead starts with its fleet).  Telemetry rides along —
admissions, flushes and sheds feed the shared
:class:`~repro.telemetry.metrics.MetricsRegistry` with per-class
``gateway_class_*`` series, and traced transactions get
``gateway.admit`` / ``gateway.flush`` events on their move traces
(docs/OBSERVABILITY.md lists the names; docs/SERVING.md the tier).
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Dict, Optional, Sequence, Tuple, Union

from repro.chain.chain import Chain
from repro.chain.tx import (
    BytecodeCallPayload,
    CallPayload,
    Move1Payload,
    Move2Payload,
    Transaction,
    sign_transaction,
)
from repro.crypto.keys import Address, KeyPair
from repro.errors import (
    CodeNotFound,
    GatewayError,
    InvalidRequest,
    ProofError,
    RateLimited,
    ReadOnlyReplicaError,
    RequestTimeout,
    ShedByClass,
)
from repro.gateway.budget import AdmissionBudget
from repro.gateway.classes import FLUSH_ORDER, PriorityClass, classify
from repro.gateway.fairqueue import ClassedFairQueue, QueueEntry
from repro.gateway.handles import (
    QUEUED,
    SUBMITTED,
    MoveHandle,
    RequestHandle,
)
from repro.gateway.limits import GatewayLimits, TokenBucket
from repro.gateway.subscription import Subscription, SubscriptionHub
from repro.ibc.bridge import CompletionFactory, MovePhases
from repro.node.node import Node
from repro.statedb.receipts import Receipt
from repro.telemetry import Telemetry

#: accepted spellings of a priority override
PriorityLike = Union[PriorityClass, str, int]


class Gateway:
    """Batched, rate-limited, backpressured, classed admission to a node."""

    def __init__(
        self,
        node: Node,
        limits: Optional[GatewayLimits] = None,
        telemetry: Optional[Telemetry] = None,
    ):
        self.node = node
        self.limits = limits if limits is not None else GatewayLimits()
        self.telemetry = telemetry if telemetry is not None else node.telemetry
        #: per-chain classed fair queues (the bounded stage)
        self._queues: Dict[int, ClassedFairQueue] = {
            chain_id: ClassedFairQueue(
                self.limits.max_queue_depth, self.limits.drr_quantum
            )
            for chain_id in node.chains
        }
        #: per-chain overflow lot for the "block" policy and mid-move txs
        self._blocked: Dict[int, Deque[QueueEntry]] = {
            chain_id: deque() for chain_id in node.chains
        }
        self._buckets: Dict[str, TokenBucket] = {}
        #: (client_id, key) -> original handle, for idempotent retries
        self._by_key: Dict[Tuple[str, str], RequestHandle] = {}
        self._move_by_key: Dict[Tuple[str, str], MoveHandle] = {}
        self._started = False
        #: bumped on every start(); stale flush timers check it and die
        self._epoch = 0
        #: set by GatewayFleet when this gateway serves as a replica
        self.fleet = None
        self.replica_index = 0
        self.subscriptions = SubscriptionHub(self)

        metrics = self.telemetry.metrics
        self._m_requests = {
            c: metrics.counter("gateway_requests_total", chain=c) for c in node.chains
        }
        self._m_admitted = {
            c: metrics.counter("gateway_admitted_total", chain=c) for c in node.chains
        }
        self._m_parked = {
            c: metrics.counter("gateway_parked_total", chain=c) for c in node.chains
        }
        self._m_depth = {
            c: metrics.gauge("gateway_queue_depth", chain=c) for c in node.chains
        }
        self._m_blocked_depth = {
            c: metrics.gauge("gateway_blocked_depth", chain=c) for c in node.chains
        }
        self._m_batches = {
            c: metrics.counter("gateway_batches_total", chain=c) for c in node.chains
        }
        self._m_batch_size = {
            c: metrics.histogram("gateway_batch_size", chain=c) for c in node.chains
        }
        self._m_class_admitted = {
            (c, cls): metrics.counter(
                "gateway_class_admitted_total", chain=c, cls=cls.label
            )
            for c in node.chains
            for cls in FLUSH_ORDER
        }
        self._m_class_depth = {
            (c, cls): metrics.gauge("gateway_class_depth", chain=c, cls=cls.label)
            for c in node.chains
            for cls in FLUSH_ORDER
        }
        self._m_class_flushed = {
            (c, cls): metrics.counter(
                "gateway_class_flushed_total", chain=c, cls=cls.label
            )
            for c in node.chains
            for cls in FLUSH_ORDER
        }
        #: victim-attributed queue sheds: the class/client charged is the
        #: entry actually dropped, whichever path (fresh admission,
        #: class eviction, parked overflow) dropped it
        self._m_class_shed = {
            (c, cls): metrics.counter(
                "gateway_queue_shed_total", chain=c, cls=cls.label
            )
            for c in node.chains
            for cls in FLUSH_ORDER
        }
        self._metrics = metrics
        self._m_idempotent = metrics.counter("gateway_idempotent_hits_total")
        self._m_request_seconds = metrics.histogram("gateway_request_seconds")
        self._m_moves_started = metrics.counter("gateway_moves_total", status="started")
        self._m_moves_ok = metrics.counter("gateway_moves_total", status="ok")
        self._m_moves_failed = metrics.counter("gateway_moves_total", status="failed")

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    @property
    def started(self) -> bool:
        return self._started

    def start(self) -> None:
        """Start serving: block production plus the flush loop.

        Fleet replicas do not start themselves — their fleet owns the
        (single, budget-shared) flush loop.
        """
        if self._started:
            return
        if self.fleet is not None:
            self.fleet.start()
            return
        self._started = True
        self._epoch += 1
        epoch = self._epoch
        self.node.start()
        self.node.sim.schedule(
            self.limits.flush_interval, lambda: self._flush_tick(epoch)
        )

    def stop(self) -> None:
        """Stop the flush loop and block production."""
        if self.fleet is not None:
            self.fleet.stop()
            return
        self._started = False
        self.node.stop()

    # ------------------------------------------------------------------
    # Admission
    # ------------------------------------------------------------------

    def submit(
        self,
        tx: Transaction,
        chain_id: int,
        client_id: str = "",
        idempotency_key: Optional[str] = None,
        handle: Optional[RequestHandle] = None,
        priority: Optional[PriorityLike] = None,
    ) -> RequestHandle:
        """Admit one transaction; never raises — the handle carries the
        typed outcome (``handle.result()`` re-raises rejections).

        ``priority`` re-tags the request's admission class; omitted,
        Move1/Move2 classify as ``MOVE`` and everything else as
        ``BULK`` (:func:`repro.gateway.classes.classify`).  ``handle``
        lets a transport pre-create the future on the client side of a
        simulated network hop; omitted, one is created here.
        """
        if handle is None:
            handle = RequestHandle(
                chain_id, client_id=client_id, idempotency_key=idempotency_key
            )
        handle._node = self.node
        try:
            self._admit(tx, chain_id, client_id, idempotency_key, handle, priority)
        except GatewayError as error:
            self._reject(handle, error)
        except (KeyError, ValueError, TypeError) as error:
            # The taxonomy boundary: nothing rawer than a ReproError
            # subclass may escape to a client.
            self._reject(
                handle,
                InvalidRequest(f"malformed request: {type(error).__name__}: {error}"),
            )
        return handle

    def _admit(
        self,
        tx: Transaction,
        chain_id: int,
        client_id: str,
        idempotency_key: Optional[str],
        handle: RequestHandle,
        priority: Optional[PriorityLike] = None,
    ) -> None:
        now = self.node.now
        chain = self.node.chain(chain_id)  # raises UnknownChainError
        self._m_requests[chain_id].inc()

        key: Optional[Tuple[str, str]] = None
        if idempotency_key is not None:
            key = (client_id, idempotency_key)
            original = self._by_key.get(key)
            if original is not None:
                self._m_idempotent.inc()
                if isinstance(original.error, RequestTimeout):
                    # The original missed its deadline but its
                    # transaction was still flushed: reattach this retry
                    # to the eventual receipt instead of mirroring the
                    # stale timeout, with its own fresh deadline.
                    handle.tx_id = original.tx_id
                    original.on_late_receipt(
                        lambda src: handle._resolve(src.receipt, self.node.now)
                    )
                    if self.limits.request_timeout > 0 and not handle.done:
                        self.node.sim.schedule(
                            self.limits.request_timeout,
                            lambda: self._expire(handle),
                        )
                    return
                handle._mirror(original)
                return

        if not isinstance(tx, Transaction):
            raise InvalidRequest(
                f"expected a signed Transaction, got {type(tx).__name__}"
            )
        if not tx.tx_id or not tx.signature:
            raise InvalidRequest("transaction is unsigned (no tx_id/signature)")
        cls = PriorityClass.coerce(priority) if priority is not None else classify(tx)
        self._check_mirror_write(tx, chain)
        self._charge_rate(client_id, now)

        handle.tx_id = tx.tx_id
        handle.admitted_at = now
        entry = QueueEntry(tx=tx, handle=handle, cls=cls, client=client_id, at=now)
        self._enqueue(entry, chain_id, park=self.limits.shed_policy == "block")
        if key is not None:
            # Bind only after admission succeeded: a shed or rejected
            # request must not wedge its key, so a retry after a
            # transient overload gets a fresh admission.
            self._by_key[key] = handle
            handle.on_done(lambda h: self._retire_key(self._by_key, key, h))
        tracer = self.telemetry.tracer
        if tracer.enabled and tx.meta:
            tracer.meta_event(
                tx.meta, "gateway.admit", chain=chain_id, cls=cls.label,
                replica=self.replica_index,
            )
        if self.limits.request_timeout > 0:
            self.node.sim.schedule(
                self.limits.request_timeout,
                lambda: self._expire(handle),
            )

    def _charge_rate(self, client_id: str, now: float) -> None:
        """Spend one token from the client's bucket (typed shed past the
        rate).  Buckets are LRU-capped at ``limits.max_clients``."""
        if self.limits.rate_limit <= 0:
            return
        # Re-insertion keeps the dict in recency order, so the cap
        # evicts the least-recently-active client's bucket (an idle
        # evictee simply starts over with a full burst allowance).
        bucket = self._buckets.pop(client_id, None)
        if bucket is None:
            while len(self._buckets) >= self.limits.max_clients:
                self._buckets.pop(next(iter(self._buckets)))
            bucket = TokenBucket(
                self.limits.rate_limit, self.limits.rate_burst, now=now
            )
        self._buckets[client_id] = bucket
        if not bucket.take(now):
            raise RateLimited(
                f"client {client_id or '<anonymous>'} exceeded "
                f"{self.limits.rate_limit}/s (burst {self.limits.rate_burst})"
            )

    def _check_mirror_write(self, tx: Transaction, chain: Chain) -> None:
        """Reject writes against read-only replicas at admission.

        Execution would abort them anyway (the runtime raises the same
        :class:`ReadOnlyReplicaError` in-block), but failing fast at the
        front door keeps a doomed transaction out of the queues and
        gives the client the typed rejection immediately.  View-method
        calls pass — mirrors exist to serve reads.
        """
        payload = tx.payload
        if isinstance(payload, CallPayload):
            target = payload.target
            if not chain.state.is_mirror(target):
                return
            from repro.runtime.registry import lookup_code

            record = chain.state.contract(target)
            try:
                fn = getattr(lookup_code(record.code_hash), payload.method, None)
            except CodeNotFound:
                fn = None
            if fn is not None and getattr(fn, "_is_view", False):
                return  # reads are what replicas are for
        elif isinstance(payload, BytecodeCallPayload):
            if not chain.state.is_mirror(payload.target):
                return
            target = payload.target
        elif isinstance(payload, Move1Payload):
            if not chain.state.is_mirror(payload.contract):
                return
            target = payload.contract
        else:
            return
        record = chain.state.contract(target)
        source = record.location if record is not None else "?"
        raise ReadOnlyReplicaError(
            f"contract {target} on chain {chain.chain_id} is a read-only "
            f"replica of chain {source}; submit writes to the active copy"
        )

    def _enqueue(self, entry: QueueEntry, chain_id: int, park: bool) -> None:
        """Classed admission under the bound; ``park=True`` uses the
        overflow lot instead of shedding when even class-aware eviction
        finds no lower-class victim."""
        queue = self._queues[chain_id]
        result = queue.push(entry)
        if not result.admitted:
            blocked = self._blocked[chain_id]
            if not park or len(blocked) >= self.limits.max_blocked:
                # Here the dropped entry IS the newcomer, so the shed
                # metric charges its class/client — the same
                # victim-attribution rule _shed_victim applies when an
                # eviction drops somebody else instead.
                self._m_class_shed[(chain_id, entry.cls)].inc()
                self._note("shed", chain_id, entry)
                raise ShedByClass(
                    f"chain {chain_id} admission queue at bound "
                    f"({self.limits.max_queue_depth} queued"
                    + (f", {len(blocked)} parked" if park else "")
                    + f") with no class below {entry.cls.label} to evict; "
                    "retry after the next flush",
                    shed_class=entry.cls.label,
                    shed_client=entry.client,
                    chain_id=chain_id,
                )
            blocked.append(entry)
            entry.handle.status = QUEUED
            self._m_parked[chain_id].inc()
            self._m_blocked_depth[chain_id].set(len(blocked))
            self._note("park", chain_id, entry)
            return
        if result.victim is not None:
            self._shed_victim(result.victim, chain_id, evicted_by=entry)
        entry.handle.status = QUEUED
        self._m_admitted[chain_id].inc()
        self._m_class_admitted[(chain_id, entry.cls)].inc()
        self._note("admit", chain_id, entry)
        self._note_depth(chain_id)

    def _shed_victim(
        self, victim: QueueEntry, chain_id: int, evicted_by: QueueEntry
    ) -> None:
        """Fail an evicted entry with the shed attributed to *it* — the
        class/client that actually lost the slot — not to the higher-
        class arrival that triggered the eviction.  (The PR 5 parked-
        drain path charged the enqueuer; the classed queue unifies the
        accounting with the peak-depth bookkeeping: whoever leaves the
        queue without flushing is whom the shed metric names.)"""
        self._m_class_shed[(chain_id, victim.cls)].inc()
        self._note("shed", chain_id, victim)
        self._reject(
            victim.handle,
            ShedByClass(
                f"chain {chain_id} queue slot reclaimed by a "
                f"{evicted_by.cls.label}-class arrival "
                f"({self.limits.max_queue_depth} queued); retry after the "
                "next flush",
                shed_class=victim.cls.label,
                shed_client=victim.client,
                chain_id=chain_id,
            ),
        )

    def _note(self, kind: str, chain_id: int, entry: QueueEntry) -> None:
        """Record one admission decision on the fleet's admission log
        (standalone gateways skip this — the log is the fleet's
        replayable evidence)."""
        if self.fleet is not None:
            self.fleet._record(
                kind, self.replica_index, chain_id, entry.cls.label, entry.client
            )

    def _note_depth(self, chain_id: int) -> None:
        """Refresh the depth gauges (total and per class).  Peaks are
        tracked inside the queue itself, so every path that grows or
        shrinks a lane — admission, eviction, parked-drain, flush —
        shares one accounting."""
        queue = self._queues[chain_id]
        self._m_depth[chain_id].set(queue.depth)
        for cls in FLUSH_ORDER:
            self._m_class_depth[(chain_id, cls)].set(queue.class_depth[cls])

    @property
    def peak_queue_depth(self) -> Dict[int, int]:
        """High-water mark per chain queue (bound audits read this)."""
        return {c: q.peak_depth for c, q in self._queues.items()}

    def _retire_key(self, table: Dict, key: Tuple[str, str], handle) -> None:
        """Evict an idempotency record ``idempotency_retention`` seconds
        after its handle resolved (0 retains forever).  The identity
        check keeps a re-admission under the same key alive."""
        retention = self.limits.idempotency_retention
        if retention <= 0:
            return

        def evict() -> None:
            if table.get(key) is handle:
                del table[key]

        self.node.sim.schedule(retention, evict)

    def _reject(self, handle: RequestHandle, error: GatewayError) -> None:
        self._metrics.counter("gateway_rejected_total", reason=error.code).inc()
        handle._fail(error, self.node.now)

    def _expire(self, handle: RequestHandle) -> None:
        if handle.done:
            return
        self._reject(
            handle,
            RequestTimeout(
                f"request missed its {self.limits.request_timeout}s deadline "
                f"(last status: {handle.status}); the transaction may still "
                "execute — retry with the same idempotency key to reattach"
            ),
        )

    # ------------------------------------------------------------------
    # Subscriptions (the push path)
    # ------------------------------------------------------------------

    def watch_contract(
        self, chain_id: int, target: Address, client_id: str = ""
    ) -> Subscription:
        """Subscribe to committed transactions touching ``target``.

        VIEW-class work: creating the subscription spends one token
        from the client's rate bucket (typed :class:`RateLimited` past
        it) — the pushed events themselves are free.
        """
        self.node.chain(chain_id)  # raises UnknownChainError
        self._charge_rate(client_id, self.node.now)
        return self.subscriptions.watch_contract(chain_id, target, client_id)

    def watch_move(self, handle: MoveHandle, client_id: str = "") -> Subscription:
        """Subscribe to a served move's handle-state transitions."""
        self._charge_rate(client_id, self.node.now)
        return self.subscriptions.watch_move(handle, client_id)

    # ------------------------------------------------------------------
    # Micro-batch flushing
    # ------------------------------------------------------------------

    def _flush_tick(self, epoch: int) -> None:
        if not self._started or epoch != self._epoch:
            return  # stopped, or a stale timer from before a restart
        self.flush()
        self.node.sim.schedule(
            self.limits.flush_interval, lambda: self._flush_tick(epoch)
        )

    def flush(self, budget: Optional[AdmissionBudget] = None) -> int:
        """Pour one micro-batch per chain into the mempools; returns the
        number of transactions submitted.

        ``budget`` is the fleet-shared mempool-headroom meter; a
        standalone gateway meters itself (same bound, private meter).
        The running gateway calls this on its own clock; tests may call
        it directly.
        """
        if budget is None:
            budget = AdmissionBudget(self.node, self.limits)
            budget.refresh()
        submitted = 0
        for chain_id in sorted(self._queues):
            queue = self._queues[chain_id]
            blocked = self._blocked[chain_id]
            # Drain the overflow lot into freed queue slots first:
            # parked requests enter their class lanes before this
            # flush's pop, so a parked move still outranks queued bulk.
            self._promote_parked(chain_id)
            chain = self.node.chains[chain_id]
            # End-to-end backpressure: never hold more than the headroom
            # worth of blocks pending in the mempool — the backlog must
            # stay in the bounded queue (and shed), not leak downstream.
            want = min(self.limits.batch_size, queue.depth + len(blocked))
            grant = budget.take(chain_id, want)
            batch = []
            while len(batch) < grant and queue.depth:
                batch.extend(queue.pop(grant - len(batch)))
                # Popping freed slots: promote more parked entries so
                # the overflow lot drains in this same flush (their
                # class lanes still decide the order of the next pop).
                self._promote_parked(chain_id)
            tracer = self.telemetry.tracer
            for entry in batch:
                handle = entry.handle
                if not handle.done:
                    handle.status = SUBMITTED
                # A handle that expired while queued is submitted
                # anyway: its timeout promised "the transaction may
                # still execute", and the late receipt is what a retry
                # under the same idempotency key reattaches to.
                chain.wait_for(
                    entry.tx.tx_id, lambda r, h=handle: self._resolve(h, r)
                )
                chain.submit(entry.tx)
                self._m_class_flushed[(chain_id, entry.cls)].inc()
                if tracer.enabled and entry.tx.meta:
                    tracer.meta_event(
                        entry.tx.meta, "gateway.flush", chain=chain_id,
                        cls=entry.cls.label, replica=self.replica_index,
                    )
            if batch:
                self._m_batches[chain_id].inc()
                self._m_batch_size[chain_id].observe(len(batch))
                if self.fleet is not None:
                    self.fleet._record(
                        "flush", self.replica_index, chain_id, "", "", len(batch)
                    )
            self._note_depth(chain_id)
            submitted += len(batch)
        return submitted

    def _promote_parked(self, chain_id: int) -> None:
        """Move parked entries into free queue slots (FIFO from the lot,
        then their class lanes take over)."""
        blocked = self._blocked[chain_id]
        if not blocked:
            return
        queue = self._queues[chain_id]
        while blocked and queue.depth < self.limits.max_queue_depth:
            entry = blocked.popleft()
            queue.push(entry)
            self._m_admitted[chain_id].inc()
            self._m_class_admitted[(chain_id, entry.cls)].inc()
            self._note("admit", chain_id, entry)
        self._m_blocked_depth[chain_id].set(len(blocked))

    def _resolve(self, handle: RequestHandle, receipt: Receipt) -> None:
        now = self.node.now
        if handle.done:
            if isinstance(handle.error, RequestTimeout):
                # The deadline fired first but the transaction executed
                # after all — record the receipt so retries reattach.
                handle._record_late(receipt, now)
            return
        if handle.admitted_at is not None:
            self._m_request_seconds.observe(now - handle.admitted_at)
        handle._resolve(receipt, now)

    # ------------------------------------------------------------------
    # Cross-chain moves as futures
    # ------------------------------------------------------------------

    def move(
        self,
        mover: KeyPair,
        contract: Address,
        source_chain: int,
        target_chain: int,
        completions: Sequence[CompletionFactory] = (),
        client_id: str = "",
        idempotency_key: Optional[str] = None,
    ) -> MoveHandle:
        """Run a full cross-chain move through the admission path.

        Mirrors :meth:`repro.ibc.bridge.IBCBridge.move_contract` —
        identical phase records and telemetry span names — but every
        transaction goes through queues, batching and backpressure, and
        the caller gets a :class:`MoveHandle` future.  Mid-move
        transactions are ``MOVE``-class (they evict bulk under
        pressure) and use the parking path besides, so a momentary
        burst does not strand a contract in its locked state; if even
        the overflow lot is full, the move fails with the typed shed
        error in ``handle.error``.
        """
        if idempotency_key is not None:
            original = self._move_by_key.get((client_id, idempotency_key))
            if original is not None:
                self._m_idempotent.inc()
                return original
        phases = MovePhases(
            contract=contract,
            source_chain=source_chain,
            target_chain=target_chain,
            started_at=self.node.now,
        )
        handle = MoveHandle(phases, idempotency_key=idempotency_key)
        handle._node = self.node
        try:
            source = self.node.chain(source_chain)
            target = self.node.chain(target_chain)
        except GatewayError as error:
            phases.success = False
            phases.error = str(error)
            self._m_moves_failed.inc()
            handle._fail(error)
            return handle
        if idempotency_key is not None:
            move_key = (client_id, idempotency_key)
            self._move_by_key[move_key] = handle

            def retire_move(h: MoveHandle) -> None:
                if h.error is not None:
                    # Gateway-level failure (e.g. a mid-move shed):
                    # release the key so a retry re-attempts the move.
                    if self._move_by_key.get(move_key) is h:
                        del self._move_by_key[move_key]
                else:
                    self._retire_key(self._move_by_key, move_key, h)

            handle.on_done(retire_move)
        self._m_moves_started.inc()

        tracer = self.telemetry.tracer
        root = tracer.start_trace(
            "move", source_chain=source_chain, target_chain=target_chain
        )
        live = {"span": tracer.start_span("move1", root, chain=source_chain)}

        def finish(success: bool, error: Optional[str] = None) -> None:
            (self._m_moves_ok if success else self._m_moves_failed).inc()
            root.end(success=success, **({} if success else {"error": error}))
            if success:
                handle._finish()

        def fail_protocol(error: str) -> None:
            phases.success = False
            phases.error = error
            live["span"].end(success=False)
            finish(False, error)
            handle._fail()

        def fail_gateway(error: GatewayError) -> None:
            phases.success = False
            phases.error = str(error)
            live["span"].end(success=False)
            finish(False, str(error))
            handle._fail(error)

        def admit_internal(chain_id: int, tx: Transaction, on_receipt) -> None:
            """Admit a mid-move transaction (MOVE class, parked past the
            bound rather than shed)."""
            inner = RequestHandle(chain_id, client_id=client_id)
            inner._node = self.node
            inner.tx_id = tx.tx_id
            inner.admitted_at = self.node.now
            entry = QueueEntry(
                tx=tx,
                handle=inner,
                cls=PriorityClass.MOVE,
                client=client_id,
                at=self.node.now,
            )
            try:
                self._enqueue(entry, chain_id, park=True)
            except GatewayError as error:
                self._metrics.counter(
                    "gateway_rejected_total", reason=error.code
                ).inc()
                fail_gateway(error)
                return
            inner.on_done(
                lambda h: on_receipt(h.receipt) if h.error is None else fail_gateway(h.error)
            )
            self.node.chain(chain_id).wait_for(
                tx.tx_id, lambda r, h=inner: self._resolve(h, r)
            )

        def after_move1(receipt: Receipt) -> None:
            if not receipt.success:
                fail_protocol(receipt.error)
                return
            phases.move1_included_at = self.node.now
            phases.add_gas(receipt.gas_by_category, "move1")
            handle._advance("confirm")
            inclusion = receipt.block_height
            ready_at = source.proof_ready_height(inclusion)
            live["span"].end(success=True)
            live["span"] = tracer.start_span(
                "confirm.wait", root, chain=source_chain, ready_height=ready_at
            )
            tracer.watch_header(root, source_chain, ready_at, observer=target_chain)
            self._when_height(source, ready_at, lambda: send_move2(inclusion))

        def send_move2(inclusion_height: int) -> None:
            phases.proof_ready_at = self.node.now
            handle._advance("proof")
            live["span"].end(success=True)
            live["span"] = tracer.start_span("proof.build", root, chain=source_chain)
            try:
                bundle = source.prove_contract_at(contract, inclusion_height)
            except ProofError as error:
                fail_protocol(str(error))
                return
            live["span"].end(success=True, proof_bytes=bundle.size_bytes())
            live["span"] = tracer.start_span("move2", root, chain=target_chain)
            handle._advance("move2")
            move2 = sign_transaction(mover, Move2Payload(bundle=bundle))
            tracer.inject(live["span"], move2.meta)
            admit_internal(target_chain, move2, after_move2)

        def after_move2(receipt: Receipt) -> None:
            if not receipt.success:
                fail_protocol(receipt.error)
                return
            phases.move2_included_at = self.node.now
            phases.add_gas(receipt.gas_by_category, "move2")
            live["span"].end(success=True)
            live["span"] = tracer.start_span("complete", root, chain=target_chain)
            handle._advance("complete")
            run_completion(0)

        def run_completion(index: int) -> None:
            if index >= len(completions):
                phases.completed_at = self.node.now
                live["span"].end(success=True, txs=len(completions))
                finish(True)
                return
            tx = completions[index](mover)
            tx.meta.setdefault("gas_category", "complete")
            tracer.inject(live["span"], tx.meta)

            def after(receipt: Receipt) -> None:
                if not receipt.success:
                    fail_protocol(receipt.error)
                    return
                phases.add_gas(receipt.gas_by_category, "complete")
                run_completion(index + 1)

            admit_internal(target_chain, tx, after)

        move1 = sign_transaction(
            mover, Move1Payload(contract=contract, target_chain=target_chain)
        )
        tracer.inject(live["span"], move1.meta)
        admit_internal(source_chain, move1, after_move1)
        return handle

    # ------------------------------------------------------------------
    # Reads (replica-routed when a replication manager is attached)
    # ------------------------------------------------------------------

    def view(
        self,
        chain_id: int,
        target: Address,
        method: str,
        *args,
        fallback: bool = True,
    ):
        """Serve a read-only query, preferring the copy on ``chain_id``.

        With a replication manager attached
        (:meth:`~repro.node.node.Node.attach_replication`), the read
        routes to the nearest usable copy — the active contract on
        ``chain_id``, else a ``LIVE`` replica there, else (with
        ``fallback``) the active copy wherever it lives; a replica that
        cannot serve raises a typed
        :class:`~repro.errors.ReplicaUnavailable`, never stale state.
        Without a manager this is exactly ``node.view``.
        """
        manager = self.node.replication
        if manager is None:
            return self.node.view(chain_id, target, method, *args)
        return manager.read(
            target, method, *args, prefer_chain=chain_id, fallback=fallback
        )

    @staticmethod
    def _when_height(chain: Chain, height: int, action: Callable[[], None]) -> None:
        """Run ``action`` as soon as ``chain`` reaches ``height``."""
        if chain.height >= height:
            action()
            return

        def listener(block, _receipts) -> None:
            if block.height >= height:
                chain.unsubscribe(listener)
                action()

        chain.subscribe(listener)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def queue_depth(self, chain_id: int) -> int:
        """Currently queued (unflushed) requests for one chain."""
        return self._queues[chain_id].depth + len(self._blocked[chain_id])

    def class_depths(self, chain_id: int) -> Dict[str, int]:
        """Current queue depth per priority class for one chain."""
        return self._queues[chain_id].depths_by_class()

    def stats(self) -> Dict[str, Dict]:
        """Queue depths, class splits and high-water marks (audits)."""
        return {
            "queued": {c: q.depth for c, q in self._queues.items()},
            "parked": {c: len(q) for c, q in self._blocked.items()},
            "peak_queue_depth": dict(self.peak_queue_depth),
            "classes": {c: q.depths_by_class() for c, q in self._queues.items()},
        }

    def health(self) -> Dict[str, object]:
        """Serving/degraded-mode status a client can poll.

        Always reports the gateway's own view — whether it is serving
        and how full each admission queue is (with the per-class
        split); when the node hosts a
        :class:`~repro.health.monitor.HealthMonitor`
        (:meth:`~repro.node.node.Node.attach_health`), the monitor's
        per-target health map and currently firing alerts ride along.
        ``degraded`` is the one-bit summary: an alert is firing, some
        target is unhealthy, or an admission queue is at its bound
        (i.e. the gateway is shedding).
        """
        bound = self.limits.max_queue_depth
        queues = {c: self.queue_depth(c) for c in sorted(self._queues)}
        classes = {c: self.class_depths(c) for c in sorted(self._queues)}
        monitor = self.node.health
        targets: Dict[str, str] = {}
        alerts: list = []
        if monitor is not None:
            targets = monitor.states_text()
            alerts = monitor.firing()
        degraded = (
            bool(alerts)
            or any(state == "unhealthy" for state in targets.values())
            or any(depth >= bound for depth in queues.values())
        )
        return {
            "serving": self._started,
            "degraded": degraded,
            "queues": queues,
            "classes": classes,
            "queue_bound": bound,
            "targets": targets,
            "alerts": alerts,
        }
