"""The gateway fleet: N replicas, one admission discipline.

A single gateway is a serving bottleneck long before the chains are:
its flush loop pours at most ``batch_size / flush_interval``
transactions per second however much block space is free.  The fleet
scales that horizontally — N :class:`~repro.gateway.gateway.Gateway`
replicas share the serving load — without giving up any of the single
gateway's guarantees:

* **deterministic routing** — each client is pinned to one replica by a
  stable hash of its client id (sha256, *not* the salted builtin
  ``hash``), so a client's requests stay FIFO within its lanes and a
  replay routes byte-identically;
* **shared admission budget** — replicas do not meter mempool headroom
  independently (N replicas × full headroom would relocate the backlog
  downstream).  The fleet refreshes one
  :class:`~repro.gateway.budget.AdmissionBudget` per flush tick and
  threads it through every replica's flush, so the *sum* of the
  fleet's flushes respects the same bound one gateway would.  The
  replica that flushes first rotates tick by tick, so no replica is
  structurally favored when headroom is scarce;
* **one flush clock** — the fleet owns the flush loop; replicas never
  start their own.  Start/stop is epoch-guarded exactly like the
  single gateway's, so a stop/start cycle cannot leave a stale timer
  double-flushing;
* **replayable evidence** — every admit / park / shed / flush decision
  lands on the fleet's admission log as a tuple of primitives;
  :meth:`GatewayFleet.log_digest` hashes the canonical JSON so two runs
  can be compared byte-for-byte (the fleet determinism properties and
  the ``bench_gateway_fleet`` replay gate do exactly that).

The fleet exposes the same serving surface as a single gateway
(``submit`` / ``move`` / ``view`` / ``watch_contract`` / ``watch_move``
/ ``health`` / ``stats``), so both transports and the :class:`Client`
SDK work unchanged whether they are handed a gateway or a fleet.
"""

from __future__ import annotations

import hashlib
import json
from typing import Dict, List, Optional, Sequence, Tuple

from repro.chain.tx import Transaction
from repro.crypto.keys import Address, KeyPair
from repro.errors import ConfigError
from repro.gateway.budget import AdmissionBudget
from repro.gateway.gateway import Gateway, PriorityLike
from repro.gateway.handles import MoveHandle, RequestHandle
from repro.gateway.limits import GatewayLimits
from repro.gateway.subscription import Subscription
from repro.ibc.bridge import CompletionFactory
from repro.node.node import Node
from repro.telemetry import Telemetry

#: one recorded admission decision: (sim time, kind, replica, chain,
#: class label, client id, batch size).  Primitives only — the log must
#: serialize to canonical JSON for the replay digest.
LogRecord = Tuple[float, str, int, int, str, str, int]


class GatewayFleet:
    """N gateway replicas sharing one admission budget and flush clock."""

    def __init__(
        self,
        node: Node,
        replicas: int = 2,
        limits: Optional[GatewayLimits] = None,
        telemetry: Optional[Telemetry] = None,
    ):
        if not isinstance(replicas, int) or isinstance(replicas, bool) or replicas < 1:
            raise ConfigError(
                f"replicas must be an int >= 1, got {replicas!r} — a fleet "
                "needs at least one gateway to serve"
            )
        self.node = node
        self.limits = limits if limits is not None else GatewayLimits()
        self.telemetry = telemetry if telemetry is not None else node.telemetry
        self.replicas: List[Gateway] = []
        for index in range(replicas):
            replica = Gateway(node, self.limits, self.telemetry)
            replica.fleet = self
            replica.replica_index = index
            self.replicas.append(replica)
        self._budget = AdmissionBudget(node, self.limits)
        self._started = False
        self._epoch = 0
        self._tick = 0
        #: replayable admission evidence (see :data:`LogRecord`)
        self.admission_log: List[LogRecord] = []
        metrics = self.telemetry.metrics
        metrics.gauge("gateway_fleet_replicas").set(replicas)
        self._m_ticks = metrics.counter("gateway_fleet_flush_ticks_total")
        self._m_replica_flushed = {
            i: metrics.counter("gateway_fleet_replica_flushed_total", replica=i)
            for i in range(replicas)
        }

    def __len__(self) -> int:
        return len(self.replicas)

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------

    def replica_for(self, client_id: str) -> Gateway:
        """The replica pinned to ``client_id`` (stable across runs and
        processes — sha256 of the id, never the salted builtin hash)."""
        digest = hashlib.sha256(client_id.encode("utf-8")).digest()
        return self.replicas[int.from_bytes(digest[:8], "big") % len(self.replicas)]

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    @property
    def started(self) -> bool:
        return self._started

    def start(self) -> None:
        """Start serving: the node's drivers plus the one fleet flush
        loop (idempotent; replicas are marked serving but never own a
        timer)."""
        if self._started:
            return
        self._started = True
        self._epoch += 1
        epoch = self._epoch
        for replica in self.replicas:
            replica._started = True
        self.node.start()
        self.node.sim.schedule(
            self.limits.flush_interval, lambda: self._flush_tick(epoch)
        )

    def stop(self) -> None:
        """Stop the flush loop and block production."""
        self._started = False
        for replica in self.replicas:
            replica._started = False
        self.node.stop()

    def _flush_tick(self, epoch: int) -> None:
        if not self._started or epoch != self._epoch:
            return  # stopped, or a stale timer from before a restart
        self.flush()
        self.node.sim.schedule(
            self.limits.flush_interval, lambda: self._flush_tick(epoch)
        )

    def flush(self) -> int:
        """One fleet-wide micro-batch: refresh the shared budget once,
        then flush every replica against it, rotating which replica
        goes first so scarce headroom is not always claimed by replica
        0.  Returns the total transactions submitted."""
        self._budget.refresh()
        self._m_ticks.inc()
        count = len(self.replicas)
        start = self._tick % count
        self._tick += 1
        submitted = 0
        for offset in range(count):
            replica = self.replicas[(start + offset) % count]
            n = replica.flush(self._budget)
            self._m_replica_flushed[replica.replica_index].inc(n)
            submitted += n
        return submitted

    # ------------------------------------------------------------------
    # The serving surface (same shape as one Gateway)
    # ------------------------------------------------------------------

    def submit(
        self,
        tx: Transaction,
        chain_id: int,
        client_id: str = "",
        idempotency_key: Optional[str] = None,
        handle: Optional[RequestHandle] = None,
        priority: Optional[PriorityLike] = None,
    ) -> RequestHandle:
        """Admit one transaction via the client's pinned replica."""
        return self.replica_for(client_id).submit(
            tx,
            chain_id,
            client_id=client_id,
            idempotency_key=idempotency_key,
            handle=handle,
            priority=priority,
        )

    def move(
        self,
        mover: KeyPair,
        contract: Address,
        source_chain: int,
        target_chain: int,
        completions: Sequence[CompletionFactory] = (),
        client_id: str = "",
        idempotency_key: Optional[str] = None,
    ) -> MoveHandle:
        """Run a cross-chain move via the client's pinned replica."""
        return self.replica_for(client_id).move(
            mover,
            contract,
            source_chain,
            target_chain,
            completions=completions,
            client_id=client_id,
            idempotency_key=idempotency_key,
        )

    def view(self, chain_id: int, target: Address, method: str, *args, fallback: bool = True):
        """Serve a read (reads are stateless — any replica will do)."""
        return self.replicas[0].view(
            chain_id, target, method, *args, fallback=fallback
        )

    def watch_contract(
        self, chain_id: int, target: Address, client_id: str = ""
    ) -> Subscription:
        """Subscribe to a contract's events via the pinned replica."""
        return self.replica_for(client_id).watch_contract(chain_id, target, client_id)

    def watch_move(self, handle: MoveHandle, client_id: str = "") -> Subscription:
        """Subscribe to a move's stage stream via the pinned replica."""
        return self.replica_for(client_id).watch_move(handle, client_id)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def queue_depth(self, chain_id: int) -> int:
        """Fleet-wide queued (unflushed) requests for one chain."""
        return sum(r.queue_depth(chain_id) for r in self.replicas)

    def class_depths(self, chain_id: int) -> Dict[str, int]:
        """Fleet-wide queue depth per priority class for one chain."""
        totals: Dict[str, int] = {}
        for replica in self.replicas:
            for label, depth in replica.class_depths(chain_id).items():
                totals[label] = totals.get(label, 0) + depth
        return totals

    @property
    def peak_queue_depth(self) -> Dict[int, int]:
        """Per-chain high-water mark, maxed across replicas (the bound
        audit: no replica's queue ever exceeded ``max_queue_depth``)."""
        peaks: Dict[int, int] = {}
        for replica in self.replicas:
            for chain_id, peak in replica.peak_queue_depth.items():
                peaks[chain_id] = max(peaks.get(chain_id, 0), peak)
        return peaks

    def stats(self) -> Dict[str, Dict]:
        """Fleet-wide queue/class stats plus the per-replica split."""
        chains = sorted(self.node.chains)
        return {
            "replicas": len(self.replicas),
            "queued": {c: self.queue_depth(c) for c in chains},
            "classes": {c: self.class_depths(c) for c in chains},
            "peak_queue_depth": dict(self.peak_queue_depth),
            "per_replica": [r.stats() for r in self.replicas],
        }

    def health(self) -> Dict[str, object]:
        """Fleet health: the single-gateway shape with fleet-wide
        queue/class aggregates plus the per-replica queue split, so a
        client polling ``health()`` needs no code change when its
        transport points at a fleet."""
        bound = self.limits.max_queue_depth
        chains = sorted(self.node.chains)
        queues = {c: self.queue_depth(c) for c in chains}
        classes = {c: self.class_depths(c) for c in chains}
        per_replica = [
            {c: r.queue_depth(c) for c in chains} for r in self.replicas
        ]
        monitor = self.node.health
        targets: Dict[str, str] = {}
        alerts: list = []
        if monitor is not None:
            targets = monitor.states_text()
            alerts = monitor.firing()
        degraded = (
            bool(alerts)
            or any(state == "unhealthy" for state in targets.values())
            or any(
                depths[c] >= bound for depths in per_replica for c in chains
            )
        )
        return {
            "serving": self._started,
            "degraded": degraded,
            "replicas": len(self.replicas),
            "queues": queues,
            "classes": classes,
            "per_replica": per_replica,
            "queue_bound": bound,
            "targets": targets,
            "alerts": alerts,
        }

    # ------------------------------------------------------------------
    # The admission log (replay evidence)
    # ------------------------------------------------------------------

    def _record(
        self,
        kind: str,
        replica: int,
        chain_id: int,
        cls: str,
        client: str,
        n: int = 0,
    ) -> None:
        self.admission_log.append(
            (round(self.node.now, 9), kind, replica, chain_id, cls, client, n)
        )

    def log_digest(self) -> str:
        """sha256 over the canonical-JSON admission log — equal digests
        mean byte-identical admission, shed and flush decisions."""
        payload = json.dumps(
            self.admission_log, separators=(",", ":"), sort_keys=False
        )
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()
