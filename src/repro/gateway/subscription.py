"""Push subscriptions: watch a contract or a move instead of polling.

Before the fleet, a client tracking a contract polled ``view`` and a
client tracking a move polled ``handle.stage`` — every poll a request
through admission.  The subscription path inverts the flow: the
gateway already subscribes to each chain's block stream (it needs the
commits for handle resolution), so watching is one admission-time
registration and zero per-event requests afterwards.

* :meth:`SubscriptionHub.watch_contract` — pushes one event per
  committed transaction touching the watched address: ``call`` /
  ``bytecode_call`` / ``deploy`` outcomes, plus the Move lifecycle as
  seen from each chain (``move1`` when the contract locks and departs,
  ``move2`` when it materializes);
* :meth:`SubscriptionHub.watch_move` — pushes the served move's
  handle-state transitions (``move1 → confirm → proof → move2 →
  complete``) the instant the gateway advances them, then a terminal
  ``done`` / ``failed``.

Events are plain dicts (wire-shaped, deterministic field order) and
delivery happens at the block-commit / stage-advance instant on the
simulated clock — byte-identical under replay like every other
admission decision.  Subscriptions are ``VIEW``-class work: creating
one passes through the same per-client rate limiter as a submission.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional

from repro.chain.tx import (
    BytecodeCallPayload,
    CallPayload,
    DeployPayload,
    Move1Payload,
    Move2Payload,
)
from repro.crypto.keys import Address

#: subscription kinds
CONTRACT = "contract"
MOVE = "move"


class Subscription:
    """One client's registration on the gateway's push stream.

    Events accumulate in :attr:`events` (ordered, deterministic) and
    fan out to any callback registered with :meth:`on_event`;
    :meth:`cancel` detaches from the hub — no events after it returns.
    """

    def __init__(self, kind: str, target: str, chain_id: Optional[int], client_id: str):
        self.kind = kind
        self.target = target
        self.chain_id = chain_id
        self.client_id = client_id
        self.events: List[Dict[str, Any]] = []
        self.active = True
        self._callbacks: List[Callable[[Dict[str, Any]], None]] = []
        self._detach: Optional[Callable[["Subscription"], None]] = None

    def on_event(self, callback: Callable[[Dict[str, Any]], None]) -> None:
        """Invoke ``callback(event)`` for every event already received
        and every future one (ordering preserved)."""
        for event in self.events:
            callback(event)
        self._callbacks.append(callback)

    def cancel(self) -> None:
        """Stop receiving events (idempotent)."""
        if not self.active:
            return
        self.active = False
        if self._detach is not None:
            self._detach(self)
            self._detach = None

    # -- hub-internal --------------------------------------------------

    def _push(self, event: Dict[str, Any]) -> None:
        if not self.active:
            return
        self.events.append(event)
        for callback in list(self._callbacks):
            callback(event)


class SubscriptionHub:
    """The gateway-side registry feeding subscriptions from block
    commits and move-handle transitions."""

    def __init__(self, gateway):
        self.gateway = gateway
        #: chain_id -> hex address -> live subscriptions
        self._by_contract: Dict[int, Dict[str, List[Subscription]]] = {}
        #: chains whose block stream we already tap
        self._tapped: Dict[int, Callable] = {}
        metrics = gateway.telemetry.metrics
        self._m_active = metrics.gauge("gateway_subscriptions_active")
        self._m_events = metrics.counter("gateway_subscription_events_total")
        self._active = 0

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------

    def watch_contract(
        self, chain_id: int, target: Address, client_id: str = ""
    ) -> Subscription:
        """Subscribe to every committed transaction touching ``target``
        on ``chain_id`` (the gateway validated chain and rate already)."""
        sub = Subscription(CONTRACT, target.hex, chain_id, client_id)
        per_chain = self._by_contract.setdefault(chain_id, {})
        per_chain.setdefault(target.hex, []).append(sub)
        self._tap(chain_id)
        sub._detach = self._detach_contract
        self._count(+1)
        return sub

    def watch_move(self, handle, client_id: str = "") -> Subscription:
        """Subscribe to a served move's stage transitions."""
        phases = handle.phases
        sub = Subscription(MOVE, phases.contract.hex, None, client_id)
        self._count(+1)

        def on_stage(stage: str) -> None:
            if not sub.active:
                return
            if stage in ("done", "failed"):
                event = {
                    "type": stage,
                    "contract": phases.contract.hex,
                    "ok": bool(handle.ok),
                    "at": self.gateway.node.now,
                }
                if handle.error is not None:
                    event["error"] = handle.error.to_dict()
                elif not phases.success and phases.error:
                    event["error"] = {"code": "move_failed", "message": phases.error}
                self._emit(sub, event)
                sub.active = False
                self._count(-1)
            else:
                self._emit(
                    sub,
                    {
                        "type": "stage",
                        "stage": stage,
                        "contract": phases.contract.hex,
                        "at": self.gateway.node.now,
                    },
                )

        handle.on_stage(on_stage)

        def detach(_sub: Subscription) -> None:
            self._count(-1)

        sub._detach = detach
        return sub

    def _detach_contract(self, sub: Subscription) -> None:
        per_chain = self._by_contract.get(sub.chain_id, {})
        subs = per_chain.get(sub.target, [])
        if sub in subs:
            subs.remove(sub)
        if not subs:
            per_chain.pop(sub.target, None)
        self._count(-1)

    def _count(self, delta: int) -> None:
        self._active += delta
        self._m_active.set(self._active)

    # ------------------------------------------------------------------
    # The push side
    # ------------------------------------------------------------------

    def _tap(self, chain_id: int) -> None:
        if chain_id in self._tapped:
            return
        chain = self.gateway.node.chain(chain_id)

        def on_block(block, receipts) -> None:
            self._on_block(chain_id, block, receipts)

        chain.subscribe(on_block)
        self._tapped[chain_id] = on_block

    def _emit(self, sub: Subscription, event: Dict[str, Any]) -> None:
        self._m_events.inc()
        sub._push(event)

    def _on_block(self, chain_id: int, block, receipts) -> None:
        per_chain = self._by_contract.get(chain_id)
        if not per_chain:
            return
        for tx, receipt in zip(block.transactions, receipts):
            target, kind, extra = self._describe(tx, receipt)
            if target is None:
                continue
            subs = per_chain.get(target)
            if not subs:
                continue
            event = {
                "type": kind,
                "chain": chain_id,
                "height": block.header.height,
                "tx_id": tx.tx_id,
                "ok": receipt.success,
                "at": block.header.timestamp,
            }
            event.update(extra)
            if not receipt.success and receipt.error:
                event["error"] = receipt.error
            for sub in list(subs):
                self._emit(sub, event)

    @staticmethod
    def _describe(tx, receipt):
        """(watched address hex, event type, extra fields) for one
        committed transaction — None target means nothing watchable."""
        payload = tx.payload
        if isinstance(payload, CallPayload):
            return payload.target.hex, "call", {"method": payload.method}
        if isinstance(payload, BytecodeCallPayload):
            return payload.target.hex, "bytecode_call", {}
        if isinstance(payload, Move1Payload):
            return (
                payload.contract.hex,
                "move1",
                {"target_chain": payload.target_chain},
            )
        if isinstance(payload, Move2Payload):
            return (
                payload.bundle.contract.hex,
                "move2",
                {"source_chain": payload.bundle.source_chain},
            )
        if isinstance(payload, DeployPayload) and receipt.success:
            created = receipt.return_value
            if isinstance(created, Address):
                return created.hex, "deploy", {}
        return None, "", {}
