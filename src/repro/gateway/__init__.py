"""The request gateway: batched admission, backpressure, typed sheds.

One audited, instrumented front door in front of a
:class:`~repro.node.Node` — bounded per-chain admission queues,
micro-batched mempool submission, per-client token-bucket rate
limiting, shed-or-block backpressure with machine-readable
:class:`~repro.errors.Overloaded` rejections, request deadlines with
idempotent retry keys, and cross-chain moves tracked as
:class:`MoveHandle` futures.  Two deterministic transports: in-process
(synchronous) and simulated-network (seeded latency, so chaos seeds
replay byte-identically).

The stable import surface for applications is :mod:`repro.api`; this
package is its implementation.
"""

from repro.gateway.client import Client
from repro.gateway.gateway import Gateway
from repro.gateway.handles import (
    CONFIRMED,
    FAILED,
    PENDING,
    QUEUED,
    SUBMITTED,
    MoveHandle,
    RequestHandle,
)
from repro.gateway.limits import GatewayLimits, TokenBucket
from repro.gateway.transport import InProcessTransport, SimNetTransport

__all__ = [
    "Client",
    "Gateway",
    "GatewayLimits",
    "TokenBucket",
    "RequestHandle",
    "MoveHandle",
    "InProcessTransport",
    "SimNetTransport",
    "PENDING",
    "QUEUED",
    "SUBMITTED",
    "CONFIRMED",
    "FAILED",
]
