"""The serving tier: replicated gateways, classed admission, typed sheds.

One audited, instrumented front door in front of a
:class:`~repro.node.Node` — and, with :class:`GatewayFleet`, N of them
sharing one admission budget.  Bounded per-chain classed queues
(:class:`PriorityClass`: moves ahead of views ahead of bulk),
deficit-round-robin fairness across clients, micro-batched mempool
submission, per-client token-bucket rate limiting, shed-or-block
backpressure with machine-readable :class:`~repro.errors.ShedByClass`
rejections attributed to the entry actually dropped, request deadlines
with idempotent retry keys, push subscriptions
(:class:`Subscription` via ``watch_contract`` / ``watch_move``), and
cross-chain moves tracked as :class:`MoveHandle` futures.  Two
deterministic transports: in-process (synchronous) and
simulated-network (seeded latency, so chaos seeds replay
byte-identically).

The stable import surface for applications is :mod:`repro.api`; this
package is its implementation.
"""

from repro.gateway.budget import AdmissionBudget
from repro.gateway.classes import PriorityClass, classify
from repro.gateway.client import Client
from repro.gateway.fairqueue import ClassedFairQueue, QueueEntry
from repro.gateway.fleet import GatewayFleet
from repro.gateway.gateway import Gateway
from repro.gateway.handles import (
    CONFIRMED,
    FAILED,
    PENDING,
    QUEUED,
    SUBMITTED,
    MoveHandle,
    RequestHandle,
)
from repro.gateway.limits import GatewayLimits, TokenBucket
from repro.gateway.subscription import Subscription, SubscriptionHub
from repro.gateway.transport import InProcessTransport, SimNetTransport

__all__ = [
    "AdmissionBudget",
    "Client",
    "ClassedFairQueue",
    "Gateway",
    "GatewayFleet",
    "GatewayLimits",
    "PriorityClass",
    "QueueEntry",
    "Subscription",
    "SubscriptionHub",
    "TokenBucket",
    "RequestHandle",
    "MoveHandle",
    "InProcessTransport",
    "SimNetTransport",
    "classify",
    "PENDING",
    "QUEUED",
    "SUBMITTED",
    "CONFIRMED",
    "FAILED",
]
