"""Admission-control configuration and the per-client token bucket.

Every knob that bounds the gateway's memory or a client's request rate
lives in :class:`GatewayLimits`, validated on construction the same way
:class:`~repro.chain.params.ChainParams` is — a queue bound of zero or
a negative flush interval should fail at assembly time with the field
name, not stall the event loop mid-experiment.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError

#: what the gateway does with a request that finds its queue full
SHED_POLICIES = ("shed", "block")


@dataclass(frozen=True)
class GatewayLimits:
    """Static admission-control configuration of one gateway."""

    #: per-chain bound on queued (not yet flushed) requests; past it the
    #: shed policy applies.  This is the knob that keeps memory bounded
    #: however many clients pile on.
    max_queue_depth: int = 1024
    #: bound on the overflow lot used by the ``"block"`` policy and by
    #: mid-move protocol transactions; past it even blockers are shed
    max_blocked: int = 256
    #: most transactions flushed into one chain's mempool per flush
    batch_size: int = 256
    #: micro-batch period in simulated seconds — admissions are staged
    #: and poured into the mempool together, amortizing per-tx work
    flush_interval: float = 0.25
    #: per-client sustained submissions/second (0 disables rate limiting)
    rate_limit: float = 0.0
    #: per-client token-bucket capacity (burst allowance)
    rate_burst: int = 8
    #: seconds from admission until an unresolved request fails with
    #: :class:`~repro.errors.RequestTimeout` (0 disables deadlines)
    request_timeout: float = 0.0
    #: flush no further than this many *blocks* worth of transactions
    #: into a chain's mempool (``headroom × max_block_txs`` pending).
    #: This is what makes backpressure end-to-end: without it the
    #: bounded admission queue would simply relocate the unbounded
    #: backlog into the mempool.
    mempool_headroom: int = 4
    #: ``"shed"`` rejects with :class:`~repro.errors.ShedByClass` the
    #: instant a queue is at bound; ``"block"`` parks the request in the
    #: bounded overflow lot and admits it as the queue drains
    shed_policy: str = "shed"
    #: simulated seconds an idempotency record outlives its request's
    #: resolution before eviction (0 retains forever).  This is the
    #: replay window: a retry inside it deduplicates; outside it the
    #: retry is a fresh admission.  Keeps the key table bounded on a
    #: long-running gateway where every request carries a unique key.
    idempotency_retention: float = 300.0
    #: most per-client token buckets tracked at once; past it the
    #: least-recently-active client's bucket is evicted (that client
    #: simply starts over with a full burst allowance if it returns)
    max_clients: int = 4096
    #: deficit-round-robin quantum: entries one backlogged client may
    #: pour into a flush before the next client's lane is served.
    #: Small values interleave clients tightly (fairest); large values
    #: amortize per-turn work (fastest).  Per-client FIFO order is
    #: preserved either way.
    drr_quantum: int = 8

    def __post_init__(self) -> None:
        if self.max_queue_depth < 1:
            raise ConfigError(
                f"max_queue_depth must be >= 1, got {self.max_queue_depth} — "
                "a gateway that can queue nothing sheds every request"
            )
        if self.max_blocked < 0:
            raise ConfigError(f"max_blocked must be >= 0, got {self.max_blocked}")
        if self.batch_size < 1:
            raise ConfigError(f"batch_size must be >= 1, got {self.batch_size}")
        if not self.flush_interval > 0:
            raise ConfigError(
                f"flush_interval must be positive, got {self.flush_interval!r} — "
                "a non-positive period would spin the flush loop at one instant"
            )
        if self.rate_limit < 0:
            raise ConfigError(f"rate_limit must be >= 0, got {self.rate_limit}")
        if self.rate_burst < 1:
            raise ConfigError(f"rate_burst must be >= 1, got {self.rate_burst}")
        if self.request_timeout < 0:
            raise ConfigError(
                f"request_timeout must be >= 0 (0 disables), got {self.request_timeout}"
            )
        if self.mempool_headroom < 1:
            raise ConfigError(
                f"mempool_headroom must be >= 1 block, got {self.mempool_headroom} — "
                "a zero headroom would never flush anything into the mempool"
            )
        if self.shed_policy not in SHED_POLICIES:
            raise ConfigError(
                f"shed_policy must be one of {SHED_POLICIES}, got {self.shed_policy!r}"
            )
        if self.idempotency_retention < 0:
            raise ConfigError(
                "idempotency_retention must be >= 0 (0 retains forever), "
                f"got {self.idempotency_retention}"
            )
        if self.max_clients < 1:
            raise ConfigError(f"max_clients must be >= 1, got {self.max_clients}")
        if self.drr_quantum < 1:
            raise ConfigError(
                f"drr_quantum must be >= 1, got {self.drr_quantum} — a zero "
                "quantum would never serve any client's lane"
            )


class TokenBucket:
    """Classic token bucket on the simulated clock.

    Refill happens lazily at each ``take`` from the elapsed simulated
    time, so the bucket costs nothing while a client is idle.
    """

    def __init__(self, rate: float, burst: int, now: float = 0.0):
        self.rate = rate
        self.capacity = float(burst)
        self.tokens = float(burst)
        self._last = now

    def take(self, now: float, n: float = 1.0) -> bool:
        """Try to spend ``n`` tokens at simulated time ``now``."""
        if now > self._last:
            self.tokens = min(self.capacity, self.tokens + (now - self._last) * self.rate)
            self._last = now
        if self.tokens >= n:
            self.tokens -= n
            return True
        return False
