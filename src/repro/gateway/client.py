"""The client SDK over a gateway transport.

A :class:`Client` owns a keypair and a transport, signs payloads, and
exposes the operations applications actually perform — ``transfer`` /
``deploy`` / ``call`` / ``move`` — as futures.  ``wait`` (on the client
or directly on a handle) drives the node until a future resolves, so a
script reads like blocking code:

    handle = client.deploy(GuestBook)
    receipt = handle.wait()
    book = receipt.return_value
    done = client.move(book, target_chain=2).wait()

Every submit path takes ``priority=`` to re-tag the request's admission
class (``"move"`` / ``"view"`` / ``"bulk"``), and ``watch_contract`` /
``watch_move`` subscribe to pushed events instead of polling.

Every rejection surfaces as a typed
:class:`~repro.errors.GatewayError` from ``wait``/``result`` — clients
branch on ``error.code`` (``"queue_full"``, ``"rate_limited"``,
``"timeout"``, …), never on message strings.
"""

from __future__ import annotations

from typing import Any, Optional, Sequence, Tuple, Union

from repro.chain.tx import (
    CallPayload,
    DeployPayload,
    Payload,
    TransferPayload,
    sign_transaction,
)
from repro.crypto.keys import Address, KeyPair
from repro.errors import ConfigError, RequestTimeout
from repro.gateway.gateway import PriorityLike
from repro.gateway.handles import MoveHandle, RequestHandle
from repro.gateway.subscription import Subscription
from repro.ibc.bridge import CompletionFactory


class Client:
    """One application identity submitting through a gateway.

    Configuration is keyword-only past the transport, and every field
    is validated on construction with a :class:`ConfigError` naming the
    offending field — a typo'd identity should fail at assembly, not as
    a cryptic ``AttributeError`` mid-experiment.
    """

    def __init__(
        self,
        transport,
        *,
        keypair: Optional[KeyPair] = None,
        name: Optional[str] = None,
        default_chain: Optional[int] = None,
    ):
        if keypair is not None and not isinstance(keypair, KeyPair):
            raise ConfigError(
                f"keypair must be a KeyPair, got {type(keypair).__name__}"
            )
        if name is not None and not isinstance(name, str):
            raise ConfigError(f"name must be a str, got {type(name).__name__}")
        if default_chain is not None and (
            not isinstance(default_chain, int) or isinstance(default_chain, bool)
        ):
            raise ConfigError(
                f"default_chain must be an int chain id, got {default_chain!r}"
            )
        if keypair is None:
            if name is None:
                raise ConfigError("a Client needs a keypair or a name to derive one")
            keypair = KeyPair.from_name(name)
        self.transport = transport
        self.keypair = keypair
        self.client_id = name if name is not None else keypair.address.hex
        node = transport.gateway.node
        if default_chain is None and len(node.chains) == 1:
            default_chain = next(iter(node.chains))
        self.default_chain = default_chain

    @property
    def address(self) -> Address:
        return self.keypair.address

    @property
    def node(self):
        return self.transport.gateway.node

    def _chain_id(self, chain: Optional[int]) -> int:
        if chain is not None:
            return chain
        if self.default_chain is None:
            raise ConfigError(
                "no default chain on a multi-chain node — pass chain=<id>"
            )
        return self.default_chain

    # ------------------------------------------------------------------
    # Operations (each returns a future)
    # ------------------------------------------------------------------

    def submit_payload(
        self,
        payload: Payload,
        chain: Optional[int] = None,
        key: Optional[str] = None,
        priority: Optional[PriorityLike] = None,
    ) -> RequestHandle:
        """Sign and submit any payload kind; returns its future.

        ``priority`` re-tags the admission class (a
        :class:`~repro.gateway.classes.PriorityClass` or its label,
        e.g. ``"view"``); omitted, the gateway classifies by payload.
        """
        tx = sign_transaction(self.keypair, payload)
        return self.transport.submit(
            tx,
            self._chain_id(chain),
            client_id=self.client_id,
            idempotency_key=key,
            priority=priority,
        )

    def transfer(
        self,
        to: Address,
        amount: int,
        chain: Optional[int] = None,
        key: Optional[str] = None,
        priority: Optional[PriorityLike] = None,
    ) -> RequestHandle:
        """Native-currency transfer (``BULK`` class unless re-tagged)."""
        return self.submit_payload(
            TransferPayload(to=to, amount=amount), chain, key, priority
        )

    def deploy(
        self,
        contract: Union[type, bytes],
        args: Tuple[Any, ...] = (),
        value: int = 0,
        chain: Optional[int] = None,
        key: Optional[str] = None,
        priority: Optional[PriorityLike] = None,
    ) -> RequestHandle:
        """Deploy a registered contract class (or a raw code hash)."""
        code_hash = contract.CODE_HASH if isinstance(contract, type) else contract
        return self.submit_payload(
            DeployPayload(code_hash=code_hash, args=tuple(args), value=value),
            chain,
            key,
            priority,
        )

    def call(
        self,
        target: Address,
        method: str,
        *args: Any,
        value: int = 0,
        chain: Optional[int] = None,
        key: Optional[str] = None,
        priority: Optional[PriorityLike] = None,
    ) -> RequestHandle:
        """Invoke an external contract method."""
        return self.submit_payload(
            CallPayload(target=target, method=method, args=args, value=value),
            chain,
            key,
            priority,
        )

    def move(
        self,
        contract: Address,
        target_chain: int,
        source_chain: Optional[int] = None,
        completions: Sequence[CompletionFactory] = (),
        key: Optional[str] = None,
    ) -> MoveHandle:
        """Move a contract cross-chain; returns the move's future
        (``MOVE`` class throughout — moves are never re-tagged down)."""
        return self.transport.move(
            self.keypair,
            contract,
            self._chain_id(source_chain),
            target_chain,
            completions=completions,
            client_id=self.client_id,
            idempotency_key=key,
        )

    # ------------------------------------------------------------------
    # Subscriptions (push, not poll)
    # ------------------------------------------------------------------

    def watch_contract(
        self, target: Address, chain: Optional[int] = None
    ) -> Subscription:
        """Subscribe to committed transactions touching ``target`` —
        events push from the gateway's block stream; no polling."""
        return self.transport.watch_contract(
            self._chain_id(chain), target, self.client_id
        )

    def watch_move(self, handle: MoveHandle) -> Subscription:
        """Subscribe to a move's stage stream (stages already traversed
        replay immediately, the rest push as the gateway advances them)."""
        return self.transport.watch_move(handle, self.client_id)

    # ------------------------------------------------------------------
    # Reads and awaiting
    # ------------------------------------------------------------------

    def view(self, target: Address, method: str, *args: Any, chain: Optional[int] = None):
        """Read-only contract query at the chain's current head."""
        return self.node.view(self._chain_id(chain), target, method, *args)

    def balance(self, chain: Optional[int] = None) -> int:
        """This client's native balance."""
        return self.node.chain(self._chain_id(chain)).balance_of(self.address)

    def health(self) -> dict:
        """The serving side's health/degraded-mode status (see
        :meth:`~repro.gateway.gateway.Gateway.health`): is the gateway
        serving, how full its queues are and — when the node hosts a
        health monitor — which targets are unhealthy and which alerts
        are firing."""
        return self.transport.health()

    def wait(self, handle, max_time: Optional[float] = None):
        """Drive the node until ``handle`` resolves, then return its
        result (receipt or :class:`~repro.ibc.bridge.MovePhases`).
        Raises the handle's typed error on rejection, or
        :class:`~repro.errors.RequestTimeout` if ``max_time`` simulated
        seconds pass first.  (``handle.wait(timeout=...)`` is the same
        operation on the handle itself.)"""
        deadline = None if max_time is None else self.node.now + max_time
        resolved = self.node.run_until(lambda: handle.done, max_time=deadline)
        if not resolved:
            raise RequestTimeout(
                f"handle unresolved after max_time={max_time}s of simulated driving"
            )
        return handle.result()
