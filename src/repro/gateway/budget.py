"""The shared admission budget: one mempool-headroom meter per tick.

A single gateway meters its own flushes against the chain's mempool
headroom.  A fleet of replicas cannot — each replica flushing its own
``headroom - len(mempool)`` view would multiply the allowance by the
replica count and relocate the backlog downstream, exactly what PR 5's
end-to-end backpressure exists to prevent.  The fleet therefore
refreshes **one** :class:`AdmissionBudget` per flush tick and threads
it through every replica's flush: grants are first-come within the
tick (the fleet rotates which replica flushes first, so no replica is
structurally first every tick) and the *sum* of all replicas' flushes
stays under the same bound one gateway would respect.
"""

from __future__ import annotations

from typing import Dict


class AdmissionBudget:
    """Per-chain flush allowance, shared by every replica in one tick."""

    def __init__(self, node, limits):
        self.node = node
        self.limits = limits
        self._room: Dict[int, int] = {}

    def refresh(self) -> None:
        """Re-measure headroom from the live mempools (once per tick)."""
        headroom_blocks = self.limits.mempool_headroom
        for chain_id, chain in self.node.chains.items():
            room = headroom_blocks * chain.params.max_block_txs - len(chain.mempool)
            self._room[chain_id] = max(0, room)

    def take(self, chain_id: int, want: int) -> int:
        """Grant up to ``want`` flush slots on ``chain_id``; the grant
        is deducted so later takers in the same tick see less."""
        room = self._room.get(chain_id, 0)
        grant = min(want, room)
        self._room[chain_id] = room - grant
        return grant

    def remaining(self, chain_id: int) -> int:
        """Unclaimed slots left on ``chain_id`` this tick."""
        return self._room.get(chain_id, 0)
