"""Compact wave serialization for the process speculation backend.

The thread backend speculates against *shared* state frozen for the
wave; a process worker has no shared memory, so the parent ships each
wave as two blobs:

* a **coverage snapshot** — the pre-wave values of exactly the state
  the wave's footprint union names (balances, account nonces, contract
  records, the named storage slots or the full storage where the
  footprint carries a wildcard, mirror flags, and code for bytecode
  contracts).  The snapshot is primitives-only — raw 20-byte addresses,
  ints, bytes — so the C pickler serializes it in microseconds and the
  blob is shared verbatim by every chunk of the wave;
* a **transaction batch** — per transaction, a primitives-only tuple of
  the signed fields plus the parent's memoized signature verdict (when
  available), from which the worker reconstructs an equivalent
  :class:`~repro.chain.tx.Transaction`.

The worker executes each transaction through the ordinary
:meth:`~repro.chain.executor.TransactionExecutor.execute_speculative`
path against a :class:`_WaveState` — a :class:`WorldState` populated
from the snapshot whose read paths raise
:class:`~repro.errors.SpeculationUnsupported` for anything *outside*
the shipped coverage.  That makes the byte-identity argument the same
as the thread backend's: a covered read observes exactly the pre-wave
value a thread would have observed, and an uncovered read (a footprint
under-approximation, a light-client builtin, a registry miss) aborts
speculation so the parent re-executes the transaction serially at its
exact commit position.

Results travel back as primitives too: receipt fields plus the frame's
read set and op log (addresses flattened to raw bytes).  The parent
rebuilds the :class:`~repro.statedb.state.SpeculationFrame` by
replaying the decoded ops, then validates and commits it in transaction
order exactly like a thread-produced frame.  Transactions whose payload
or result cannot be expressed in primitives simply do not ship — the
parent runs them at commit position, unchanged.
"""

from __future__ import annotations

import pickle
from time import perf_counter
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.chain.tx import (
    BytecodeCallPayload,
    CallPayload,
    DEFAULT_SIGNER,
    Transaction,
    TransferPayload,
)
from repro.crypto.keys import Address
from repro.errors import SpeculationUnsupported
from repro.statedb.state import (
    AccountRecord,
    ContractRecord,
    SpeculationFrame,
    WorldState,
)

_PICKLE = pickle.HIGHEST_PROTOCOL


class _Unshippable(Exception):
    """Internal: this value cannot be expressed in primitives."""


# ----------------------------------------------------------------------
# Value encoding (payload arguments, return values, event fields)
# ----------------------------------------------------------------------


def _encode_value(value: Any):
    """Flatten a contract-level value to tagged primitives."""
    if isinstance(value, Address):
        return ("A", value.raw)
    if value is None or isinstance(value, (bool, int, float, str, bytes)):
        return ("P", value)
    if isinstance(value, tuple):
        return ("T", tuple(_encode_value(v) for v in value))
    if isinstance(value, list):
        return ("L", tuple(_encode_value(v) for v in value))
    if isinstance(value, dict):
        items = []
        for key, val in value.items():
            if not isinstance(key, str):
                raise _Unshippable(f"dict key {type(key).__name__}")
            items.append((key, _encode_value(val)))
        return ("D", tuple(items))
    raise _Unshippable(type(value).__name__)


def _decode_value(encoded) -> Any:
    tag, body = encoded
    if tag == "A":
        return Address(body)
    if tag == "P":
        return body
    if tag == "T":
        return tuple(_decode_value(v) for v in body)
    if tag == "L":
        return [_decode_value(v) for v in body]
    if tag == "D":
        return {key: _decode_value(val) for key, val in body}
    raise ValueError(f"unknown value tag {tag!r}")


# ----------------------------------------------------------------------
# Transaction encoding
# ----------------------------------------------------------------------


def _encode_payload(payload):
    if isinstance(payload, TransferPayload):
        return ("transfer", payload.to.raw, payload.amount)
    if isinstance(payload, CallPayload):
        return (
            "call",
            payload.target.raw,
            payload.method,
            tuple(_encode_value(a) for a in payload.args),
            payload.value,
        )
    if isinstance(payload, BytecodeCallPayload):
        return ("bytecode-call", payload.target.raw, payload.calldata, payload.value)
    # Deploys and Move1/Move2 are barriers and never reach a wave; any
    # other payload kind simply does not ship.
    raise _Unshippable(type(payload).__name__)


def _decode_payload(encoded):
    kind = encoded[0]
    if kind == "transfer":
        return TransferPayload(to=Address(encoded[1]), amount=encoded[2])
    if kind == "call":
        return CallPayload(
            target=Address(encoded[1]),
            method=encoded[2],
            args=tuple(_decode_value(a) for a in encoded[3]),
            value=encoded[4],
        )
    if kind == "bytecode-call":
        return BytecodeCallPayload(
            target=Address(encoded[1]), calldata=encoded[2], value=encoded[3]
        )
    raise ValueError(f"unknown payload kind {kind!r}")


def encode_wave_tx(tx: Transaction, want_verdict: bool) -> Optional[tuple]:
    """One transaction as a primitives-only tuple, or None when it
    cannot ship (the parent then runs it at commit position).

    ``want_verdict=True`` forwards the parent's memoized signature
    verdict (seeded by :class:`~repro.parallel.pools.SignatureVerifierPool`
    or a previous ``tx.verify()``) so the worker's in-line verification
    becomes a cache hit.
    """
    try:
        payload = _encode_payload(tx.payload)
    except _Unshippable:
        return None
    verdict = None
    if want_verdict:
        cached = tx._verify_cache
        if (
            cached is not None
            and cached[0] == tx.signature
            and cached[1] == tx.signing_bytes()
            and cached[2] is DEFAULT_SIGNER
        ):
            verdict = cached[3]
    return (
        tx.sender.raw,
        tx.public_key,
        tx.nonce,
        tx.signature,
        tx.tx_id,
        payload,
        tx.meta.get("gas_category") if tx.meta else None,
        verdict,
    )


def _decode_tx(encoded: tuple) -> Transaction:
    sender_raw, public_key, nonce, signature, tx_id, payload, category, verdict = encoded
    tx = Transaction(
        sender=Address(sender_raw),
        public_key=public_key,
        payload=_decode_payload(payload),
        nonce=nonce,
        signature=signature,
        tx_id=tx_id,
        meta={"gas_category": category} if category else {},
    )
    if verdict is not None:
        # Re-key the memo against *this process's* DEFAULT_SIGNER —
        # the memo compares signers by identity, and the executor's
        # in-line tx.verify() uses exactly that instance.
        tx._verify_cache = (tx.signature, tx.signing_bytes(), DEFAULT_SIGNER, verdict)
    return tx


# ----------------------------------------------------------------------
# Coverage snapshot
# ----------------------------------------------------------------------


def encode_config(executor) -> bytes:
    """The per-chain execution parameters a worker needs (stable for
    the executor's lifetime, so the blob is built once and reused)."""
    state = executor.runtime.state
    return pickle.dumps(
        (
            executor.chain_id,
            state.tree_factory,
            executor.runtime.schedule,
            executor.verify_signatures,
            executor.tx_gas_limit,
            executor.gas_price,
        ),
        protocol=_PICKLE,
    )


def encode_snapshot(state: WorldState, env, footprints: Sequence) -> bytes:
    """Build and pickle the wave's coverage snapshot.

    Coverage is the union of the wave members' footprints: every
    address named by a ``b``/``n``/``c``/``s``/``s*`` key.  A contract
    under an ``("s*", addr)`` wildcard ships its full storage;
    otherwise only the named slots ship, together with the slot-cover
    set so the worker can tell "covered and empty" from "uncovered".
    Footprint entries that are not real addresses (a lying declared
    footprint) are simply not covered — the worker's coverage check
    turns any actual access into :class:`SpeculationUnsupported`.
    """
    covered: set = set()
    slot_sets: Dict[Address, set] = {}
    full_storage: set = set()
    for footprint in footprints:
        if footprint is None:
            continue
        for key in footprint.reads | footprint.writes:
            if len(key) < 2 or not isinstance(key[1], Address):
                continue
            kind, address = key[0], key[1]
            if kind in ("b", "n", "c"):
                covered.add(address)
            elif kind == "s":
                covered.add(address)
                if len(key) > 2 and isinstance(key[2], bytes):
                    slot_sets.setdefault(address, set()).add(key[2])
            elif kind == "s*":
                covered.add(address)
                full_storage.add(address)

    accounts: Dict[bytes, Tuple[int, int]] = {}
    contracts: Dict[bytes, tuple] = {}
    mirrors: List[bytes] = []
    codes: Dict[bytes, bytes] = {}
    registered: List[bytes] = []
    from repro.runtime.registry import knows_code

    for address in covered:
        record = state.contracts.get(address)
        if record is not None:
            if address in full_storage:
                entries = tuple(record.storage.items())
                slots = None
            else:
                named = slot_sets.get(address, ())
                entries = tuple(
                    (key, record.storage[key]) for key in named if key in record.storage
                )
                slots = tuple(named)
            contracts[address.raw] = (
                record.code_hash,
                record.location,
                record.balance,
                record.move_nonce,
                record.moved_at_height,
                entries,
                slots,
            )
            if address in state._mirrors:
                mirrors.append(address.raw)
            code = state.code_store.get(record.code_hash)
            if code is not None:
                codes[record.code_hash] = code
            if knows_code(record.code_hash):
                registered.append(record.code_hash)
        else:
            account = state.accounts.get(address)
            if account is not None:
                accounts[address.raw] = (account.balance, account.nonce)
    return pickle.dumps(
        (
            (env.chain_id, env.height, env.timestamp),
            frozenset(a.raw for a in covered),
            accounts,
            contracts,
            frozenset(mirrors),
            codes,
            frozenset(registered),
        ),
        protocol=_PICKLE,
    )


class _WorkerLightClient:
    """Any light-client use inside a worker aborts speculation — the
    proof store lives in the parent and barriers never ship anyway."""

    def __getattr__(self, name: str):
        raise SpeculationUnsupported(
            f"light-client access ({name}) inside a process speculation worker"
        )


class _WaveState(WorldState):
    """World state populated from a coverage snapshot.

    Reads of covered state return exactly the pre-wave values the
    parent shipped; reads outside the coverage raise
    :class:`SpeculationUnsupported`, so a footprint that
    under-approximated its transaction degrades to serial re-execution
    in the parent instead of producing a divergent result.
    """

    def __init__(self, chain_id: int, tree_factory, snapshot: tuple):
        super().__init__(chain_id, tree_factory)
        _env, covered, accounts, contracts, mirrors, codes, _registered = snapshot
        self._covered = covered
        self._slot_cover: Dict[Address, frozenset] = {}
        for raw, fields in contracts.items():
            code_hash, location, balance, move_nonce, moved_at, entries, slots = fields
            address = Address(raw)
            self.contracts[address] = ContractRecord(
                code_hash=code_hash,
                location=location,
                balance=balance,
                move_nonce=move_nonce,
                storage=dict(entries),
                moved_at_height=moved_at,
            )
            if slots is not None:
                self._slot_cover[address] = frozenset(slots)
        for raw, (balance, nonce) in accounts.items():
            self.accounts[Address(raw)] = AccountRecord(balance=balance, nonce=nonce)
        self._mirrors = {Address(raw) for raw in mirrors}
        self.code_store.update(codes)

    # -- coverage-checked read paths -----------------------------------

    def _shared_balance(self, address: Address) -> int:
        if address.raw not in self._covered:
            raise SpeculationUnsupported(f"uncovered balance read at {address}")
        return super()._shared_balance(address)

    def contract(self, address: Address):
        if address.raw not in self._covered:
            raise SpeculationUnsupported(f"uncovered contract read at {address}")
        return super().contract(address)

    def is_mirror(self, address: Address) -> bool:
        if address.raw not in self._covered:
            raise SpeculationUnsupported(f"uncovered mirror check at {address}")
        return super().is_mirror(address)

    def has_code(self, code_hash: bytes) -> bool:
        # Only deployment paths probe the code store, and deployments
        # are barriers; a nonstandard caller falls back to the parent.
        raise SpeculationUnsupported("code-store probe in a process worker")

    def bump_nonce(self, address: Address) -> int:
        # EOA nonces only move on CREATE-style deployments (barriers).
        raise SpeculationUnsupported("nonce bump in a process worker")

    def storage_get(self, address: Address, key: bytes) -> bytes:
        record = self.require_contract(address)  # covered check above
        frame = self._frame()
        if frame is not None:
            frame.reads.add(("s", address, key))
            buffered = frame.storage_overlay(address, key)
            if buffered is not None:
                return buffered
        cover = self._slot_cover.get(address)
        if cover is not None and key not in cover:
            raise SpeculationUnsupported(f"uncovered storage slot at {address}")
        return record.storage.get(key, b"")


# ----------------------------------------------------------------------
# State-key / op / receipt transport
# ----------------------------------------------------------------------


def _encode_state_key(key: tuple) -> tuple:
    if len(key) >= 2 and isinstance(key[1], Address):
        return (key[0], key[1].raw) + tuple(key[2:])
    return key


def _decode_state_key(key: tuple) -> tuple:
    if key[0] in ("b", "n", "c", "s", "s*"):
        return (key[0], Address(key[1])) + tuple(key[2:])
    return key


def _encode_op(op: tuple) -> tuple:
    # ("add_balance", addr, amt) | ("sub_balance", addr, amt)
    # | ("bump_nonce", addr) | ("storage_set", addr, key, value)
    return (op[0], op[1].raw) + tuple(op[2:])


def _decode_op(op: tuple) -> tuple:
    return (op[0], Address(op[1])) + tuple(op[2:])


def _encode_receipt(receipt) -> tuple:
    logs = tuple(
        (name, tuple((key, _encode_value(val)) for key, val in fields.items()))
        for name, fields in receipt.logs
    )
    return (
        receipt.success,
        receipt.gas_used,
        receipt.error,
        _encode_value(receipt.return_value),
        logs,
        tuple(receipt.gas_by_category.items()),
        receipt.fee_paid,
    )


def _encode_outcome(receipt, frame: SpeculationFrame) -> tuple:
    return (
        _encode_receipt(receipt),
        tuple(_encode_state_key(key) for key in frame.reads),
        tuple(_encode_op(op) for op in frame.ops),
    )


def decode_outcome(element, tx: Transaction):
    """Rebuild ``(receipt, frame, seconds)`` from a worker result.

    The frame is reconstructed by replaying the decoded op log into a
    fresh :class:`SpeculationFrame` — its overlay and write set come
    out exactly as the worker's did — then the read set is restored.
    ``(None, None, seconds)`` means the worker could not speculate the
    transaction (coverage miss, unshippable result): the parent runs
    it at commit position, identical to the thread backend's fallback.
    """
    from repro.statedb.receipts import Receipt

    payload, seconds = element
    if payload is None:
        return None, None, seconds
    receipt_fields, read_keys, ops = payload
    success, gas_used, error, return_value, logs, by_category, fee_paid = receipt_fields
    receipt = Receipt(
        tx_id=tx.tx_id,
        success=success,
        gas_used=gas_used,
        error=error,
        return_value=_decode_value(return_value),
        logs=[
            (name, {key: _decode_value(val) for key, val in fields})
            for name, fields in logs
        ],
        gas_by_category=dict(by_category),
        fee_paid=fee_paid,
    )
    frame = SpeculationFrame()
    for op in ops:
        decoded = _decode_op(op)
        getattr(frame, decoded[0])(*decoded[1:])
    frame.reads = {_decode_state_key(key) for key in read_keys}
    return receipt, frame, seconds


# ----------------------------------------------------------------------
# The worker entry point
# ----------------------------------------------------------------------

#: one-entry worker-side cache: chunks of the same wave share the same
#: snapshot blob, so a worker that receives several chunks rebuilds the
#: wave state once
_WORKER_CACHE: dict = {"key": None, "executor": None, "env": None, "supported": True}


def worker_init() -> None:
    """Process-pool initializer for forked speculation workers.

    A forked worker inherits the parent's whole heap — potentially a
    multi-gigabyte world state.  The worker never touches those objects
    (it executes against its own pickled coverage snapshot), but the
    cyclic garbage collector would still *walk* them, and every visited
    refcount write turns a shared copy-on-write page into a private
    copy.  Freezing the inherited heap into the permanent generation
    keeps the collector off it, so a worker forked next to a
    million-account state stays cheap.
    """
    import gc

    gc.freeze()


def _worker_context(config_blob: bytes, snapshot_blob: bytes):
    cache = _WORKER_CACHE
    key = (config_blob, snapshot_blob)
    if cache["key"] == key:
        return cache["executor"], cache["env"], cache["supported"]
    from repro.chain.executor import TransactionExecutor
    from repro.runtime.registry import knows_code
    from repro.runtime.runtime import Runtime

    chain_id, tree_factory, schedule, verify, gas_limit, gas_price = pickle.loads(
        config_blob
    )
    snapshot = pickle.loads(snapshot_blob)
    env_fields, registered = snapshot[0], snapshot[6]
    state = _WaveState(chain_id, tree_factory, snapshot)
    runtime = Runtime(state, schedule)
    executor = TransactionExecutor(
        runtime,
        _WorkerLightClient(),
        None,  # registry: only Move2 needs it, and Move2 is a barrier
        verify_signatures=verify,
        tx_gas_limit=gas_limit,
        gas_price=gas_price,
        chain_id=chain_id,
    )
    from repro.runtime.context import BlockEnv

    env = BlockEnv(chain_id=env_fields[0], height=env_fields[1], timestamp=env_fields[2])
    # Stale-registry guard: the pool forked before a contract class was
    # registered in the parent (possible when tests define contracts
    # after the first parallel block).  Executing against a stale
    # registry could turn a working call into a CodeNotFound fault, so
    # the whole wave falls back to the parent's serial path instead.
    supported = all(knows_code(code_hash) for code_hash in registered)
    cache.update(key=key, executor=executor, env=env, supported=supported)
    return executor, env, supported


def execute_wave_chunk(
    config_blob: bytes, snapshot_blob: bytes, txs_blob: bytes
) -> List[tuple]:
    """Process-pool entry point: speculate one chunk of a wave.

    Returns one ``(payload | None, seconds)`` element per transaction,
    in order; ``None`` payloads mean "could not speculate" and the
    parent re-executes at commit position.
    """
    executor, env, supported = _worker_context(config_blob, snapshot_blob)
    results: List[tuple] = []
    for encoded in pickle.loads(txs_blob):
        if encoded is None or not supported:
            results.append((None, 0.0))
            continue
        tx = _decode_tx(encoded)
        frame = SpeculationFrame()
        start = perf_counter()
        try:
            receipt = executor.execute_speculative(tx, env, frame)
        except SpeculationUnsupported:
            results.append((None, perf_counter() - start))
            continue
        seconds = perf_counter() - start
        try:
            results.append((_encode_outcome(receipt, frame), seconds))
        except _Unshippable:
            # The execution worked but its result cannot travel as
            # primitives; the parent's serial re-run produces the
            # identical receipt.
            results.append((None, seconds))
    return results
