"""Optimistic parallel block execution with deterministic commit.

:class:`ParallelBlockExecutor` replaces the serial per-transaction
block loop.  Per schedule item (see :mod:`repro.parallel.scheduler`):

* a **serial item** (barrier / footprint-less transaction) runs on the
  ordinary :meth:`~repro.chain.executor.TransactionExecutor.execute`
  path;
* a **wave** speculates all members concurrently on a thread pool —
  every member executes through a private
  :class:`~repro.statedb.state.SpeculationFrame` against shared state
  that is *frozen* for the duration of the wave (no commit overlaps any
  speculation), then frames are **validated and committed
  single-threadedly in original transaction order**.

Validation is read-vs-predecessor-write: a frame is valid iff its
observed reads are disjoint from the union of the *observed* write sets
already committed in the same wave.  (Earlier waves committed before
this wave speculated, so they cannot invalidate anything; write/write
overlap alone is harmless because frames replay in serial order and
balance writes are commutative deltas.)  An invalid frame is discarded
and its transaction re-executed **at its exact commit position** — at
that point every predecessor has committed, so re-execution observes
precisely the serial state and its fresh frame needs no validation.

Determinism argument (the property tests enforce it):

1. speculation never mutates shared structures, so concurrently
   speculating threads cannot observe each other — a frame's content
   is a pure function of (transaction, pre-wave state);
2. validation and commit are single-threaded in transaction order, so
   which frames commit and which re-execute is also a pure function of
   the block — independent of worker count, pool scheduling and timing;
3. a committed frame replays its op log through the normal journaled
   mutation path in transaction order, and a re-executed transaction
   runs at its serial position — either way the receipts, gas, state
   and metrics transitions are byte-identical to the serial loop.

Hence **any** worker count (including 1) produces identical receipts,
state roots, gas accounting and telemetry.
"""

from __future__ import annotations

import multiprocessing
import pickle
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, field
from time import perf_counter
from typing import Iterator, List, Optional, Sequence, Tuple

from repro.chain.executor import TransactionExecutor
from repro.chain.tx import Transaction
from repro.errors import ConfigError, SpeculationUnsupported
from repro.parallel import frames
from repro.parallel.scheduler import BlockSchedule, schedule_block
from repro.runtime.context import BlockEnv
from repro.statedb.receipts import Receipt
from repro.statedb.state import SpeculationFrame
from repro.telemetry import Telemetry

#: speculation backends: ``thread`` shares state directly (cheap, but
#: the GIL serializes CPU-bound speculation), ``process`` ships waves
#: to worker processes as coverage snapshots (real multi-core
#: wall-clock; see :mod:`repro.parallel.frames`)
BACKENDS = ("thread", "process")


@dataclass
class ParallelBlockReport:
    """Execution accounting for one block (or an aggregate of blocks).

    ``wave_costs`` holds the measured speculation seconds of every wave
    member (in transaction order); ``sequential_seconds`` is everything
    that runs single-threadedly — barriers, validation, frame replay
    and re-executions.  :meth:`modeled_seconds` projects the wall-clock
    of an ideal ``W``-lane machine from those measurements: wave members
    are dealt round-robin onto ``W`` lanes (deterministic, in
    transaction order) and each wave costs its longest lane.  On a
    single-core host (GIL) the *measured* wall-clock cannot show the
    concurrency; the model is how the ablation quantifies it honestly —
    see ``docs/PERFORMANCE.md``.
    """

    workers: int
    tx_count: int = 0
    wave_count: int = 0
    barrier_count: int = 0
    max_wave_size: int = 0
    speculated: int = 0
    committed: int = 0
    reexecuted: int = 0
    unsupported: int = 0
    measured_seconds: float = 0.0
    sequential_seconds: float = 0.0
    wave_costs: List[List[float]] = field(default_factory=list)

    def modeled_seconds(self, workers: Optional[int] = None) -> float:
        """Projected wall-clock on ``workers`` ideal lanes (see class
        docstring); defaults to the executing worker count."""
        lanes_count = max(1, workers if workers is not None else self.workers)
        total = self.sequential_seconds
        for costs in self.wave_costs:
            lanes = [0.0] * min(lanes_count, max(1, len(costs)))
            for position, cost in enumerate(costs):
                lanes[position % len(lanes)] += cost
            total += max(lanes, default=0.0)
        return total

    def modeled_serial_seconds(self) -> float:
        """Projected wall-clock on a single lane (the serial baseline)."""
        return self.modeled_seconds(1)

    def modeled_speedup(self, workers: Optional[int] = None) -> float:
        """Single-lane projection divided by the ``workers``-lane one."""
        parallel = self.modeled_seconds(workers)
        if parallel <= 0.0:
            return 1.0
        return self.modeled_serial_seconds() / parallel

    def absorb(self, other: "ParallelBlockReport") -> None:
        """Fold another block's report into this aggregate."""
        self.tx_count += other.tx_count
        self.wave_count += other.wave_count
        self.barrier_count += other.barrier_count
        self.max_wave_size = max(self.max_wave_size, other.max_wave_size)
        self.speculated += other.speculated
        self.committed += other.committed
        self.reexecuted += other.reexecuted
        self.unsupported += other.unsupported
        self.measured_seconds += other.measured_seconds
        self.sequential_seconds += other.sequential_seconds
        self.wave_costs.extend(other.wave_costs)


class ParallelBlockExecutor:
    """Executes whole blocks through the schedule/speculate/commit
    pipeline, deterministically equivalent to the serial loop."""

    def __init__(
        self,
        executor: TransactionExecutor,
        workers: int = 2,
        telemetry: Optional[Telemetry] = None,
        chain_id: int = 0,
        backend: str = "thread",
    ):
        if backend not in BACKENDS:
            raise ConfigError(
                f"executor backend {backend!r} is not one of {BACKENDS}; "
                "use 'thread' for shared-state speculation or 'process' "
                "for multi-core wave shipping"
            )
        self.executor = executor
        self.workers = max(1, workers)
        self.backend = backend
        self._pool: Optional[ThreadPoolExecutor] = None
        self._process_pool: Optional[ProcessPoolExecutor] = None
        self._config_blob: Optional[bytes] = None
        telemetry = telemetry if telemetry is not None else executor.telemetry
        metrics = telemetry.metrics
        self._m_waves = metrics.counter("executor_parallel_waves_total", chain=chain_id)
        self._m_barriers = metrics.counter(
            "executor_parallel_barriers_total", chain=chain_id
        )
        self._m_speculated = metrics.counter(
            "executor_parallel_txs_speculated_total", chain=chain_id
        )
        self._m_reexecuted = metrics.counter(
            "executor_parallel_txs_reexecuted_total", chain=chain_id
        )
        self._m_unsupported = metrics.counter(
            "executor_parallel_txs_unsupported_total", chain=chain_id
        )
        self._m_wave_size = metrics.histogram(
            "executor_parallel_wave_size", chain=chain_id
        )
        # Wall-clock instruments live in the executor_parallel_* family
        # on purpose: the flight recorder's determinism whitelist
        # excludes that family, so real (nondeterministic) timings never
        # leak into replay-compared evidence.  The backend gauge is pure
        # configuration (deterministic); probes may read it freely.
        self._g_backend = metrics.gauge(
            "executor_parallel_backend_process", chain=chain_id
        )
        self._g_backend.set(1.0 if backend == "process" else 0.0)
        self._g_measured_block = metrics.gauge(
            "executor_parallel_measured_block_seconds", chain=chain_id
        )
        self._m_measured_total = metrics.counter(
            "executor_parallel_measured_seconds_total",
            chain=chain_id,
            backend=backend,
        )

    # ------------------------------------------------------------------

    def _ensure_pool(self) -> ThreadPoolExecutor:
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=self.workers, thread_name_prefix="spec"
            )
        return self._pool

    def _ensure_process_pool(self) -> ProcessPoolExecutor:
        if self._process_pool is None:
            try:
                # fork inherits the parent's contract registry, so
                # worker-side dispatch resolves the same classes
                context = multiprocessing.get_context("fork")
            except ValueError:  # pragma: no cover - non-fork platforms
                context = multiprocessing.get_context()
            # Freeze the parent heap into the permanent generation
            # before forking: the children inherit a heap their cyclic
            # collector never walks, so a pool spun up next to a
            # million-account world state does not copy-on-write fault
            # gigabytes of shared pages (see frames.worker_init).
            import gc

            gc.freeze()
            self._process_pool = ProcessPoolExecutor(
                max_workers=self.workers,
                mp_context=context,
                initializer=frames.worker_init,
            )
        return self._process_pool

    def close(self) -> None:
        """Shut the speculation pools down (idempotent; pools are
        recreated lazily, so a closed executor remains usable)."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
        if self._process_pool is not None:
            self._process_pool.shutdown(wait=True)
            self._process_pool = None

    # ------------------------------------------------------------------

    def _speculate_one(
        self, tx: Transaction, env: BlockEnv
    ) -> Tuple[Optional[Receipt], Optional[SpeculationFrame], float]:
        """Worker body: run one transaction into a private frame.

        Returns ``(receipt, frame, seconds)``; receipt/frame are None
        when the transaction hit an operation speculation cannot buffer.
        """
        frame = SpeculationFrame()
        start = perf_counter()
        try:
            receipt = self.executor.execute_speculative(tx, env, frame)
        except SpeculationUnsupported:
            return None, None, perf_counter() - start
        return receipt, frame, perf_counter() - start

    def _run_at_commit_position(self, tx: Transaction, env: BlockEnv):
        """Re-execute ``tx`` with every predecessor committed.

        A fresh frame observes exactly the serial state, so the outcome
        *is* the serial outcome and needs no validation; its observed
        writes feed the remaining wave members' validation.  Falls back
        to the plain serial path (returning ``writes=None``, meaning
        "unknown — force the rest of the wave to re-execute too") when
        the transaction is unspeculatable.
        """
        frame = SpeculationFrame()
        try:
            receipt = self.executor.execute_speculative(tx, env, frame)
        except SpeculationUnsupported:
            return self.executor.execute(tx, env), None
        self.executor.runtime.state.apply_speculation(frame)
        self.executor.record_receipt(receipt)
        return receipt, frame.writes

    def _speculate_wave_process(
        self,
        txs: Sequence[Transaction],
        env: BlockEnv,
        wave: List[int],
        schedule: BlockSchedule,
    ) -> Iterator[Tuple[Optional[Receipt], Optional[SpeculationFrame], float]]:
        """Stage 1 on the process backend: ship the wave, stream results.

        The wave's coverage snapshot (built from the footprint union,
        so it is identical at every worker count) and the pre-encoded
        transaction batch go out in contiguous chunks — one pickle per
        chunk, shared snapshot blob.  The returned iterator yields
        outcomes in wave order as chunks complete, so the parent's
        validate/commit stage overlaps with still-running workers
        without changing commit order.  A crashed or failed chunk
        degrades to "unsupported" outcomes (serial re-execution), never
        to divergent results.
        """
        pool = self._ensure_process_pool()
        if self._config_blob is None:
            self._config_blob = frames.encode_config(self.executor)
        snapshot_blob = frames.encode_snapshot(
            self.executor.runtime.state,
            env,
            [schedule.footprints.get(i) for i in wave],
        )
        want_verdict = self.executor.verify_signatures
        encoded = [frames.encode_wave_tx(txs[i], want_verdict) for i in wave]
        n_chunks = min(self.workers, len(wave))
        base, extra = divmod(len(wave), n_chunks)
        futures = []
        sizes = []
        start = 0
        for chunk_index in range(n_chunks):
            size = base + (1 if chunk_index < extra else 0)
            chunk_blob = pickle.dumps(
                encoded[start : start + size], protocol=pickle.HIGHEST_PROTOCOL
            )
            futures.append(
                pool.submit(
                    frames.execute_wave_chunk,
                    self._config_blob,
                    snapshot_blob,
                    chunk_blob,
                )
            )
            sizes.append(size)
            start += size

        def drain() -> Iterator[tuple]:
            position = 0
            for future, size in zip(futures, sizes):
                try:
                    results = future.result()
                except Exception:  # broken pool / unpicklable surprise
                    results = [(None, 0.0)] * size
                for element in results:
                    yield frames.decode_outcome(element, txs[wave[position]])
                    position += 1

        return drain()

    # ------------------------------------------------------------------

    def execute_block(
        self,
        txs: Sequence[Transaction],
        env: BlockEnv,
        schedule: Optional[BlockSchedule] = None,
    ) -> Tuple[List[Receipt], ParallelBlockReport]:
        """Execute a block; returns receipts in transaction order plus
        the :class:`ParallelBlockReport` for this block."""
        state = self.executor.runtime.state
        block_start = perf_counter()
        if schedule is None:
            schedule = schedule_block(txs, self.executor.gas_price)
        report = ParallelBlockReport(workers=self.workers, tx_count=len(txs))
        receipts: List[Optional[Receipt]] = [None] * len(txs)

        for item in schedule.items:
            if item.serial is not None:
                index = item.serial
                start = perf_counter()
                receipts[index] = self.executor.execute(txs[index], env)
                report.sequential_seconds += perf_counter() - start
                report.barrier_count += 1
                self._m_barriers.inc()
                continue

            wave = item.wave or []
            report.wave_count += 1
            report.max_wave_size = max(report.max_wave_size, len(wave))
            self._m_waves.inc()
            self._m_wave_size.observe(len(wave))
            report.speculated += len(wave)
            self._m_speculated.inc(len(wave))

            # Stage 1: speculate every member concurrently.  Shared
            # state is frozen until the wave commits below — process
            # workers read the pre-wave coverage snapshot, threads read
            # the frozen shared structures directly; either way every
            # frame is a pure function of (transaction, pre-wave state).
            if self.backend == "process" and self.workers > 1 and len(wave) > 1:
                outcomes = self._speculate_wave_process(txs, env, wave, schedule)
            elif self.workers == 1 or len(wave) == 1:
                outcomes = iter([self._speculate_one(txs[i], env) for i in wave])
            else:
                pool = self._ensure_pool()
                outcomes = iter(
                    list(pool.map(lambda i: self._speculate_one(txs[i], env), wave))
                )

            # Stage 2: validate + commit in original transaction order.
            # ``outcomes`` may still be streaming in (process backend);
            # only the per-transaction validate/commit slices count as
            # sequential time, so waiting on a straggler chunk does not
            # masquerade as commit cost in the modeled lanes.
            costs: List[float] = []
            committed_writes: set = set()
            writes_unknown = False
            for index, (receipt, frame, seconds) in zip(wave, outcomes):
                costs.append(seconds)
                slice_start = perf_counter()
                valid = (
                    frame is not None
                    and not writes_unknown
                    and committed_writes.isdisjoint(frame.reads)
                )
                if valid:
                    state.apply_speculation(frame)
                    self.executor.record_receipt(receipt)
                    committed_writes |= frame.writes
                    receipts[index] = receipt
                    report.committed += 1
                    report.sequential_seconds += perf_counter() - slice_start
                    continue
                if frame is not None:
                    # Mis-speculation (or shadowed by an unspeculatable
                    # predecessor): the buffered result may be stale.
                    report.reexecuted += 1
                    self._m_reexecuted.inc()
                receipts[index], observed_writes = self._run_at_commit_position(
                    txs[index], env
                )
                if observed_writes is None:
                    # Fell all the way to the plain serial path: its
                    # write set is unknown, so nothing later in this
                    # wave can be validated against it.
                    report.unsupported += 1
                    self._m_unsupported.inc()
                    writes_unknown = True
                else:
                    if frame is None:
                        # Worker-side speculation failed (process
                        # coverage miss / failed chunk) but the parent
                        # could speculate at commit position: account
                        # it as a re-execution so every wave member is
                        # exactly one of committed/reexecuted/
                        # unsupported.  Thread frames never hit this
                        # arm — a None frame there means the tx itself
                        # is unspeculatable, which re-raises above.
                        report.reexecuted += 1
                        self._m_reexecuted.inc()
                    committed_writes |= observed_writes
                report.sequential_seconds += perf_counter() - slice_start
            report.wave_costs.append(costs)

        report.measured_seconds = perf_counter() - block_start
        self._g_measured_block.set(report.measured_seconds)
        self._m_measured_total.inc(report.measured_seconds)
        return list(receipts), report  # type: ignore[arg-type]
