"""Optimistic parallel block execution.

The serial block loop executes one transaction at a time; this package
replaces it — when a chain is configured with ``executor_workers > 1``
— with a three-stage pipeline that is **bit-for-bit deterministic**:
serial and N-worker runs produce identical receipts, gas accounting,
state roots and protocol telemetry for every block.

1. **Schedule** (:mod:`repro.parallel.scheduler`): each transaction
   declares (``tx.meta["footprint"]``) or is speculated into a
   footprint of touched accounts and storage slots
   (:mod:`repro.parallel.footprint`); a greedy order-preserving graph
   coloring partitions the block into *waves* of speculatively
   conflict-free transactions.  Move1/Move2, deployments and traced
   cross-chain relay transactions are serialization barriers.
2. **Speculate** (:mod:`repro.parallel.executor`): each wave runs on a
   thread pool; every transaction executes against the shared state
   through a private :class:`~repro.statedb.state.SpeculationFrame`
   that buffers all writes and records the observed read/write sets —
   speculating threads cannot interact, so results are independent of
   scheduling, interleaving and worker count.
3. **Validate + commit**: frames are committed in original transaction
   order; a frame whose observed reads overlap a same-wave
   predecessor's writes (mis-speculation) is discarded and the
   transaction re-executed serially at exactly its commit position —
   which is, by construction, the serial outcome.

See ``docs/PERFORMANCE.md`` for the footprint model, the determinism
argument and the worker-count ablation.
"""

from repro.parallel.executor import ParallelBlockExecutor, ParallelBlockReport
from repro.parallel.footprint import Footprint, footprint_of, is_barrier
from repro.parallel.scheduler import BlockSchedule, schedule_block

__all__ = [
    "BlockSchedule",
    "Footprint",
    "ParallelBlockExecutor",
    "ParallelBlockReport",
    "footprint_of",
    "is_barrier",
    "schedule_block",
]
