"""Worker pools for the parallel block executor.

Two pool flavours, matching the two kinds of parallelizable work:

* a **thread pool** for speculative transaction execution — the
  speculating code shares the (read-only during speculation) world
  state, so it must live in the block-producing process;
* an optional **process pool** for signature verification — signature
  checks are pure functions of picklable ``(public_key, message,
  signature)`` triples, so they are the one stage that can escape the
  GIL entirely.  Real Ed25519 verification is pure-Python modular
  arithmetic and dominates CPU when enabled; the simulated signer is a
  single hash and gains nothing from processes, hence the default is
  threads.

:class:`SignatureVerifierPool` *pre-verifies* a batch and seeds each
transaction's memoized verdict (``Transaction._verify_cache``), so the
executor's in-line ``tx.verify()`` becomes a cache hit regardless of
which path (speculative or serial) the transaction takes — results and
their ordering are untouched, only the latency moves off the critical
path.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import List, Optional, Sequence

from repro.chain.tx import DEFAULT_SIGNER, Transaction
from repro.crypto.keys import derive_address
from repro.crypto.signature import Signer


def _verify_triple(task) -> bool:
    """Top-level (picklable) worker: check one signature triple."""
    signer, public_key, message, signature = task
    return signer.verify(public_key, message, signature)


def _verify_chunk(tasks) -> List[bool]:
    """Top-level (picklable) worker: check a whole chunk of triples.

    One IPC round-trip per chunk instead of per triple — with the
    simulated single-hash signer the per-item dispatch overhead would
    otherwise dwarf the verification itself.
    """
    return [signer.verify(pk, msg, sig) for signer, pk, msg, sig in tasks]


class SignatureVerifierPool:
    """Batch signature pre-verification on a worker pool.

    ``use_processes=True`` ships triples to a process pool (worthwhile
    for the pure-Python Ed25519 signer); the default thread pool keeps
    everything in-process.  Either way the pool only *warms caches*:
    verdicts are written back through the same memo ``tx.verify()``
    consults, with the same signer-identity key, so behaviour is
    byte-identical to never having used the pool.
    """

    def __init__(self, workers: int = 2, use_processes: bool = False):
        self.workers = max(1, workers)
        self.use_processes = use_processes
        self._pool = None
        #: in-flight async batches: (txs, messages, signer, futures)
        self._pending: List[tuple] = []

    def _ensure_pool(self):
        if self._pool is None:
            cls = ProcessPoolExecutor if self.use_processes else ThreadPoolExecutor
            self._pool = cls(max_workers=self.workers)
        return self._pool

    def prewarm(
        self, txs: Sequence[Transaction], signer: Signer = DEFAULT_SIGNER
    ) -> List[bool]:
        """Verify every transaction's signature; seed the per-tx memo.

        Returns the verdicts in transaction order (address-binding
        check included, exactly like :meth:`Transaction.verify`).
        """
        if not txs:
            return []
        if self.workers == 1 or len(txs) == 1:
            return [tx.verify(signer) for tx in txs]
        pool = self._ensure_pool()
        messages = [tx.signing_bytes() for tx in txs]
        triples = [
            (signer, tx.public_key, message, tx.signature)
            for tx, message in zip(txs, messages)
        ]
        sig_ok = list(pool.map(_verify_triple, triples))
        verdicts: List[bool] = []
        for tx, message, ok in zip(txs, messages, sig_ok):
            verdict = ok and derive_address(tx.public_key) == tx.sender
            tx._verify_cache = (tx.signature, message, signer, verdict)
            verdicts.append(verdict)
        return verdicts

    def submit_prewarm(
        self, txs: Sequence[Transaction], signer: Signer = DEFAULT_SIGNER
    ) -> int:
        """Start verifying a batch asynchronously; returns its size.

        The batch ships to the pool in contiguous chunks (one pickle
        per chunk) and verification overlaps whatever the caller does
        next — typically the block interval.  :meth:`collect` harvests
        the verdicts into the per-transaction memos; an uncollected
        batch is harmless (``tx.verify()`` simply computes on demand).
        """
        if not txs:
            return 0
        pool = self._ensure_pool()
        messages = [tx.signing_bytes() for tx in txs]
        triples = [
            (signer, tx.public_key, message, tx.signature)
            for tx, message in zip(txs, messages)
        ]
        n_chunks = min(self.workers, len(triples))
        base, extra = divmod(len(triples), n_chunks)
        futures = []
        start = 0
        for chunk_index in range(n_chunks):
            size = base + (1 if chunk_index < extra else 0)
            futures.append(pool.submit(_verify_chunk, triples[start : start + size]))
            start += size
        self._pending.append((list(txs), messages, signer, futures))
        return len(txs)

    def collect(self) -> int:
        """Harvest every in-flight batch into the verify memos.

        Returns the number of transactions seeded.  A failed chunk is
        skipped (its transactions verify in-line later) — the memo is
        an accelerator, never a correctness dependency.
        """
        seeded = 0
        for txs, messages, signer, futures in self._pending:
            verdicts: List[bool] = []
            broken = False
            for future in futures:
                try:
                    verdicts.extend(future.result())
                except Exception:
                    broken = True
                    break
            if broken:
                continue
            for tx, message, ok in zip(txs, messages, verdicts):
                verdict = ok and derive_address(tx.public_key) == tx.sender
                tx._verify_cache = (tx.signature, message, signer, verdict)
                seeded += 1
        self._pending.clear()
        return seeded

    def close(self) -> None:
        """Shut the worker pool down (idempotent; in-flight prewarm
        batches are dropped — verification falls back in-line)."""
        self._pending.clear()
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __enter__(self) -> "SignatureVerifierPool":
        return self

    def __exit__(self, *_exc) -> Optional[bool]:
        self.close()
        return None
