"""Conflict scheduling: partition a block into parallel waves.

Greedy, order-preserving graph coloring over the footprint overlap
graph.  Scanning transactions in block order, each transaction is
placed in the earliest wave *after every speculated-conflicting
predecessor* — so for any pair whose footprints overlap, wave order
equals block order and serial semantics are preserved by construction.
Two non-conflicting transactions may share a wave (and execute in any
interleaving; their results are order-independent).

Barriers (Move1/Move2, deployments, traced relay legs, footprint-less
transactions) flush the schedule: everything before executes first,
the barrier runs alone on the serial path, and scheduling restarts
after it.  This is deliberately conservative — a barrier is also the
correctness backstop for transactions whose state access cannot be
speculated at all.

The coloring is a *performance hint only*: the executor validates the
observed read/write sets of every speculation and re-executes
mis-speculated transactions serially at their original position, so a
bad footprint costs time, never correctness.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.chain.tx import Transaction
from repro.parallel.footprint import Footprint, footprint_of, is_barrier

StateKey = Tuple


@dataclass
class ScheduleItem:
    """One step of a block schedule, executed to completion in order.

    ``wave`` holds the block-order indexes of a speculatively
    conflict-free batch; ``serial`` a single transaction index that
    must run on the serial path.
    """

    wave: Optional[List[int]] = None
    serial: Optional[int] = None


@dataclass
class BlockSchedule:
    """The execution plan for one block's transaction list."""

    items: List[ScheduleItem] = field(default_factory=list)
    #: speculated footprints by tx index (None = barrier / unknown)
    footprints: Dict[int, Footprint] = field(default_factory=dict)

    @property
    def wave_count(self) -> int:
        return sum(1 for item in self.items if item.wave is not None)

    @property
    def barrier_count(self) -> int:
        return sum(1 for item in self.items if item.serial is not None)

    @property
    def max_wave_size(self) -> int:
        return max((len(item.wave) for item in self.items if item.wave), default=0)


def schedule_block(
    txs: Sequence[Transaction], gas_price: int = 0
) -> BlockSchedule:
    """Plan the block: waves of conflict-free transactions + barriers.

    Wave assignment is greedy chain coloring with a **monotonicity**
    constraint: a transaction goes into the earliest wave strictly
    after every conflicting open wave, but never into a wave below its
    immediate block-order predecessor's.  Monotone placement means
    every transaction in wave ``k`` precedes (in block order) every
    transaction in wave ``k+1`` — which is what makes the executor's
    *intra-wave* read/write validation a complete mis-speculation
    check: effects of earlier waves are legitimately visible to later
    ones (they are block-order predecessors), and block-order
    successors can never commit before a transaction speculates.
    Without monotonicity, a wrong footprint could let a late
    transaction's committed writes leak into an early transaction's
    speculation across waves, undetected.
    """
    schedule = BlockSchedule()
    # Open segment state: wave index -> (member indexes, merged footprint)
    open_waves: List[Tuple[List[int], Footprint]] = []
    previous_wave = 0

    def flush() -> None:
        for members, _merged in open_waves:
            schedule.items.append(ScheduleItem(wave=members))
        open_waves.clear()

    for index, tx in enumerate(txs):
        footprint = None if is_barrier(tx) else footprint_of(tx, gas_price)
        if footprint is None:
            flush()
            previous_wave = 0
            schedule.items.append(ScheduleItem(serial=index))
            continue
        schedule.footprints[index] = footprint
        # Earliest wave strictly after every conflicting open wave.  The
        # top-down scan stops at the *highest* conflicting wave, so every
        # wave above ``lowest`` is known conflict-free for this footprint.
        lowest = 0
        for wave_index in range(len(open_waves) - 1, -1, -1):
            if open_waves[wave_index][1].conflicts_with(footprint):
                lowest = wave_index + 1
                break
        target = max(lowest, previous_wave)
        if target == len(open_waves):
            open_waves.append(([index], footprint))
        else:
            members, merged = open_waves[target]
            members.append(index)
            open_waves[target] = (members, merged.union(footprint))
        previous_wave = target
    flush()
    return schedule
