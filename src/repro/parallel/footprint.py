"""Transaction footprints: which state a transaction will touch.

A footprint is two sets of state keys (reads and writes) in the same
key space :class:`~repro.statedb.state.SpeculationFrame` records:

* ``("b", address)`` — native balance of an account or contract;
* ``("n", address)`` — an EOA's transaction nonce;
* ``("s", address, slot)`` — one storage slot of one contract;
* ``("s*", address)`` — *wildcard*: any storage slot of the contract
  (used when the touched slots cannot be predicted);
* ``("c", address)`` — contract-record metadata (existence, code hash,
  ``L_c``, move nonce).

Footprints drive the *scheduler only*: a wrong footprint never
produces a wrong result (the executor validates observed read/write
sets and falls back to serial re-execution), it just costs a
re-execution.  Transactions may declare exact footprints via
``tx.meta["footprint"] = {"reads": [...], "writes": [...]}`` (workload
generators that know their access patterns, e.g. SCoin transfers,
should); otherwise :func:`speculate_footprint` guesses from the
payload.

Balance *writes* are pure deltas (credits/debits commute), so two
footprints overlapping only on balance-write keys do not conflict; the
balance-sufficiency *read* in a debit is what orders it against other
transactions touching the same account.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Iterable, Optional, Tuple

from repro.chain.tx import (
    BytecodeCallPayload,
    CallPayload,
    DeployBytecodePayload,
    DeployPayload,
    Move1Payload,
    Move2Payload,
    Transaction,
    TransferPayload,
)
from repro.crypto.keys import Address

StateKey = Tuple

#: mirrors TransactionExecutor.FEE_POOL without importing the executor
_FEE_POOL = Address(b"\xfe" * 20)


@dataclass(frozen=True)
class Footprint:
    """Speculated or declared state keys one transaction touches."""

    reads: FrozenSet[StateKey]
    writes: FrozenSet[StateKey]

    def conflicts_with(self, other: "Footprint") -> bool:
        """Would executing these two transactions concurrently risk a
        read-after-write hazard in either direction?

        Balance writes are commutative deltas, so write/write overlap
        on ``("b", addr)`` keys alone is *not* a conflict — but any
        read against the other's writes is.  Storage wildcards overlap
        every concrete slot of the same contract.
        """
        return _overlaps(self.reads, other.writes) or _overlaps(other.reads, self.writes)

    def union(self, other: "Footprint") -> "Footprint":
        """Merged footprint (used to accumulate a wave's key sets)."""
        return Footprint(self.reads | other.reads, self.writes | other.writes)


def _expand_wildcards(keys: Iterable[StateKey]) -> FrozenSet[StateKey]:
    """Normalize declared keys (lists from JSON-ish metadata) to tuples."""
    return frozenset(tuple(k) for k in keys)


def _overlaps(reads: FrozenSet[StateKey], writes: FrozenSet[StateKey]) -> bool:
    if not reads or not writes:
        return False
    small, large = (reads, writes) if len(reads) <= len(writes) else (writes, reads)
    if not small.isdisjoint(large):
        return True
    # Wildcard handling: ("s*", addr) in either set matches any
    # ("s", addr, slot) or ("s*", addr) in the other.
    for key in reads:
        if key[0] == "s*":
            addr = key[1]
            for other in writes:
                if (other[0] == "s" or other[0] == "s*") and other[1] == addr:
                    return True
        elif key[0] == "s":
            addr = key[1]
            if ("s*", addr) in writes:
                return True
    return False


def is_barrier(tx: Transaction) -> bool:
    """Must this transaction serialize the block around itself?

    Move1/Move2 rewrite contract metadata and bulk-load storage;
    deployments create records and touch the shared code store; traced
    transactions (cross-chain relay/bridge legs carrying a trace
    context) must execute in order so their telemetry spans are
    byte-identical to serial execution.  ``tx.meta["barrier"]`` lets a
    harness force serialization explicitly.
    """
    payload = tx.payload
    if isinstance(payload, (Move1Payload, Move2Payload, DeployPayload, DeployBytecodePayload)):
        return True
    if not tx.meta:
        return False
    if tx.meta.get("barrier"):
        return True
    # A trace context rides in meta under the tracer's META_KEY; traced
    # transactions are the Move/relay lifecycle legs whose spans must
    # appear in serial order.
    from repro.telemetry.tracer import META_KEY

    return META_KEY in tx.meta


def declared_footprint(tx: Transaction) -> Optional[Footprint]:
    """The footprint declared in ``tx.meta["footprint"]``, if any."""
    declared = tx.meta.get("footprint") if tx.meta else None
    if declared is None:
        return None
    return Footprint(
        reads=_expand_wildcards(declared.get("reads", ())),
        writes=_expand_wildcards(declared.get("writes", ())),
    )


#: speculation memo: footprints depend only on (payload, sender, fee?),
#: and workloads re-submit structurally identical payloads (same SCoin
#: counterparty pair) across blocks — frozen-dataclass payloads hash
#: cheaply, so one dict probe replaces the per-tx set construction
_SPECULATE_MEMO: dict = {}
_SPECULATE_MEMO_LIMIT = 8192


def speculate_footprint(tx: Transaction, gas_price: int = 0) -> Optional[Footprint]:
    """Best-effort footprint guess from the payload alone.

    Transfers are exact.  Calls are approximated per *contract*: the
    target and every address-typed argument get a storage wildcard
    (SCoin's ``transfer_tokens(to, ...)`` debits the target and credits
    ``to``, so address arguments are exactly the counterparties a call
    tends to touch).  Returns None when no useful guess exists — the
    scheduler then treats the transaction as conflicting with
    everything (its own wave).
    """
    try:
        memo_key = (tx.payload.__class__, tx.payload, tx.sender, bool(gas_price))
        cached = _SPECULATE_MEMO.get(memo_key)
    except TypeError:  # unhashable payload contents (list args)
        memo_key = None
        cached = None
    if cached is not None:
        return cached
    footprint = _speculate_footprint_uncached(tx, gas_price)
    if memo_key is not None and footprint is not None:
        if len(_SPECULATE_MEMO) >= _SPECULATE_MEMO_LIMIT:
            _SPECULATE_MEMO.clear()
        _SPECULATE_MEMO[memo_key] = footprint
    return footprint


def _speculate_footprint_uncached(
    tx: Transaction, gas_price: int
) -> Optional[Footprint]:
    payload = tx.payload
    reads: set = set()
    writes: set = set()
    if gas_price:
        # Fee charge: balance read of the sender, delta credits to the
        # fee pool (commutative, write-only).
        reads.add(("b", tx.sender))
        writes.add(("b", tx.sender))
        writes.add(("b", _FEE_POOL))

    if isinstance(payload, TransferPayload):
        reads.add(("b", tx.sender))
        writes.add(("b", tx.sender))
        writes.add(("b", payload.to))
        return Footprint(frozenset(reads), frozenset(writes))

    if isinstance(payload, (CallPayload, BytecodeCallPayload)):
        touched = {payload.target}
        if isinstance(payload, CallPayload):
            touched.update(a for a in payload.args if isinstance(a, Address))
        reads.add(("b", tx.sender))
        writes.add(("b", tx.sender))
        for address in touched:
            reads.add(("c", address))
            reads.add(("b", address))
            reads.add(("s*", address))
            writes.add(("b", address))
            writes.add(("s*", address))
        return Footprint(frozenset(reads), frozenset(writes))

    return None


def footprint_of(tx: Transaction, gas_price: int = 0) -> Optional[Footprint]:
    """Declared footprint if present, else the payload speculation."""
    declared = declared_footprint(tx)
    if declared is not None:
        if not gas_price:
            return declared
        fee = Footprint(
            frozenset({("b", tx.sender)}),
            frozenset({("b", tx.sender), ("b", _FEE_POOL)}),
        )
        return declared.union(fee)
    return speculate_footprint(tx, gas_price)
