"""Unified telemetry: end-to-end Move-lifecycle tracing plus metrics.

The paper's headline numbers are end-to-end latencies and throughputs,
but the dominant cost of a move — the ``p``-block confirmation wait,
proof construction, the relay hop, Move2's SSTORE replay — used to be
invisible inside the reproduction.  This package makes every stage
observable:

* :class:`Tracer` (:mod:`repro.telemetry.tracer`) — simulated-clock
  spans and events, one trace per logical cross-chain transaction,
  propagated between chains through ``tx.meta``;
* :class:`MetricsRegistry` (:mod:`repro.telemetry.metrics`) — labeled
  counters / gauges / histograms shared by every component of a
  deployment;
* exporters (:mod:`repro.telemetry.exporters`) — deterministic JSONL
  span dumps, Chrome ``trace_event`` timelines, Prometheus text;
* phase analysis (:mod:`repro.telemetry.phases`) — the per-phase
  latency breakdown behind ``repro telemetry breakdown``.

Components take a :class:`Telemetry` bundle.  The default —
:meth:`Telemetry.disabled` — traces into a :class:`NullSink` at
near-zero cost (enforced by ``benchmarks/bench_overhead_telemetry.py``)
while metrics stay live; :meth:`Telemetry.enabled` records spans in
memory for export.  See ``docs/OBSERVABILITY.md``.
"""

from repro.telemetry.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.telemetry.tracer import (
    META_KEY,
    NULL_SPAN,
    MemorySink,
    NullSink,
    Span,
    Tracer,
    current_span,
    pop_span,
    push_span,
)
from repro.telemetry.exporters import (
    chrome_trace_json,
    registry_to_prometheus,
    span_to_dict,
    spans_to_chrome_trace,
    spans_to_jsonl,
)
from repro.telemetry.phases import (
    PHASES,
    TracePhases,
    aggregate_phases,
    breakdown_rows,
    slowest_traces,
    trace_phases,
)


class Telemetry:
    """One deployment's tracer + metrics registry, shared by all of its
    chains, relays, consensus engines and fault machinery."""

    def __init__(self, tracer: Tracer = None, metrics: MetricsRegistry = None):
        self.tracer = tracer if tracer is not None else Tracer(sink=NullSink())
        self.metrics = metrics if metrics is not None else MetricsRegistry()

    @classmethod
    def disabled(cls) -> "Telemetry":
        """Metrics on, tracing off (the default for every component)."""
        return cls(tracer=Tracer(sink=NullSink()))

    @classmethod
    def enabled(cls, clock=None, wall_clock: bool = False) -> "Telemetry":
        """Tracing into memory; bind the simulator clock with
        :meth:`bind_clock` (experiments do this on construction)."""
        return cls(tracer=Tracer(clock=clock, sink=MemorySink(), wall_clock=wall_clock))

    def bind_clock(self, clock) -> None:
        """Point the tracer at an experiment's simulated clock."""
        self.tracer.bind_clock(clock)

    @property
    def enabled_tracing(self) -> bool:
        return self.tracer.enabled


__all__ = [
    "Telemetry",
    "Tracer",
    "Span",
    "NullSink",
    "MemorySink",
    "NULL_SPAN",
    "META_KEY",
    "current_span",
    "push_span",
    "pop_span",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "spans_to_jsonl",
    "spans_to_chrome_trace",
    "chrome_trace_json",
    "span_to_dict",
    "registry_to_prometheus",
    "PHASES",
    "TracePhases",
    "trace_phases",
    "aggregate_phases",
    "breakdown_rows",
    "slowest_traces",
]
