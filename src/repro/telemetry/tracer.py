"""Simulated-clock-aware tracing: spans, events and trace propagation.

One **trace** covers one logical transaction — for the Move protocol
that is a *whole cross-chain move*, spanning both chains: mempool
admission at the source, Move1 inclusion, the ``p``-block confirmation
wait, proof construction, the header-relay hop, light-client acceptance
at the target, Move2 verification (``VS`` / ``VP`` / nonce replay check
as individual events), storage replay and ``moveFinish``.

Design constraints, in order:

1. **Determinism.**  Trace and span ids are sequential integers per
   tracer, timestamps come from the simulated clock, and nothing
   derived from process-global state (tx ids, object ids, wall time)
   enters a span by default — two runs with the same seed export
   byte-identical JSONL (the chaos determinism test enforces this).
2. **Near-zero cost when disabled.**  A tracer over a
   :class:`NullSink` returns the shared :data:`NULL_SPAN` from every
   entry point after a single attribute check; all span methods on it
   are no-ops.  The overhead benchmark holds this to within 5 % of an
   untraced baseline.
3. **Cross-chain propagation without plumbing.**  The trace context
   rides in ``tx.meta["telemetry"]`` (unsigned, local bookkeeping), so
   a Move2 submitted on the *target* chain joins the trace the *source*
   chain started.  Within a chain, the executor pushes the transaction
   span onto a module-level stack; deep code (``apply_move2``'s checks)
   emits events via :func:`current_span` with no signature changes.

Headers are not per-trace, so relay delivery and light-client
acceptance are attributed through **watches**: the bridge registers
"this trace is waiting for source header ≥ h at observer chain j", and
the relay/light-client hooks convert the matching delivery into events
on that trace.
"""

from __future__ import annotations

import time as _time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

#: meta key under which the trace context travels inside ``tx.meta``
META_KEY = "telemetry"


@dataclass
class SpanEvent:
    """A point-in-time annotation inside a span."""

    name: str
    time: float
    attrs: Dict[str, Any] = field(default_factory=dict)


class Span:
    """One timed operation within a trace."""

    __slots__ = (
        "tracer",
        "trace_id",
        "span_id",
        "parent_id",
        "name",
        "start",
        "end_time",
        "attrs",
        "events",
        "_wall_start",
    )

    def __init__(
        self,
        tracer: "Tracer",
        trace_id: int,
        span_id: int,
        parent_id: Optional[int],
        name: str,
        start: float,
        attrs: Dict[str, Any],
    ):
        self.tracer = tracer
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.start = start
        self.end_time: Optional[float] = None
        self.attrs = attrs
        self.events: List[SpanEvent] = []
        self._wall_start = _time.perf_counter() if tracer.wall_clock else 0.0

    # -- recording ----------------------------------------------------

    def event(self, name: str, **attrs: Any) -> None:
        """Record a point event at the current simulated time."""
        self.events.append(SpanEvent(name=name, time=self.tracer.now(), attrs=attrs))

    def set_attrs(self, **attrs: Any) -> None:
        """Merge attributes into the span."""
        self.attrs.update(attrs)

    def end(self, **attrs: Any) -> None:
        """Close the span at the current simulated time (idempotent)."""
        if self.end_time is not None:
            return
        if attrs:
            self.attrs.update(attrs)
        if self.tracer.wall_clock:
            self.attrs["wall_ms"] = (_time.perf_counter() - self._wall_start) * 1e3
        self.end_time = self.tracer.now()
        self.tracer._on_span_end(self)

    # -- reading ------------------------------------------------------

    @property
    def ended(self) -> bool:
        return self.end_time is not None

    @property
    def duration(self) -> float:
        """Simulated seconds from start to end (0.0 while open)."""
        if self.end_time is None:
            return 0.0
        return self.end_time - self.start

    def context(self) -> Tuple[int, int]:
        """The ``(trace_id, span_id)`` pair to stash in ``tx.meta``."""
        return (self.trace_id, self.span_id)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = f"..{self.end_time}" if self.end_time is not None else " (open)"
        return f"<Span {self.trace_id}/{self.span_id} {self.name!r} {self.start}{state}>"


class _NullSpan:
    """Shared no-op span returned by disabled tracers."""

    __slots__ = ()

    trace_id = -1
    span_id = -1
    parent_id = None
    name = ""
    start = 0.0
    end_time = 0.0
    attrs: Dict[str, Any] = {}
    events: List[SpanEvent] = []
    ended = True
    duration = 0.0

    def event(self, name: str, **attrs: Any) -> None:
        pass

    def set_attrs(self, **attrs: Any) -> None:
        pass

    def end(self, **attrs: Any) -> None:
        pass

    def context(self) -> None:
        return None

    def __bool__(self) -> bool:
        return False


NULL_SPAN = _NullSpan()

#: module-level active-span stack (the simulator is single-threaded, so
#: a plain list is exact); the executor pushes each transaction's span
#: so deep Move-protocol code can annotate it without plumbing
_ACTIVE: List[Span] = []


def current_span():
    """The innermost active span, or :data:`NULL_SPAN`."""
    return _ACTIVE[-1] if _ACTIVE else NULL_SPAN


def push_span(span: Span) -> None:
    """Make ``span`` the target of :func:`current_span`."""
    _ACTIVE.append(span)


def pop_span() -> None:
    """Undo the matching :func:`push_span`."""
    if _ACTIVE:
        _ACTIVE.pop()


class NullSink:
    """Discards everything; makes a tracer near-zero-cost."""

    enabled = False

    def add(self, span: Span) -> None:  # pragma: no cover - never called
        """Discard the span."""

    def spans(self) -> List[Span]:
        """Always empty."""
        return []


class MemorySink:
    """Keeps every span in memory for export and analysis."""

    enabled = True

    def __init__(self) -> None:
        self._spans: List[Span] = []

    def add(self, span: Span) -> None:
        """Retain a newly created span."""
        self._spans.append(span)

    def spans(self) -> List[Span]:
        """All spans, in creation order (open spans included)."""
        return list(self._spans)


@dataclass
class _HeaderWatch:
    """One trace waiting for a source header to reach an observer."""

    span: Span
    source_chain: int
    height: int
    observer: Optional[int]  # None: any observer
    relayed: bool = False
    accepted: bool = False


class Tracer:
    """Creates spans against a (simulated) clock and a sink."""

    def __init__(
        self,
        clock: Optional[Callable[[], float]] = None,
        sink: Optional[object] = None,
        wall_clock: bool = False,
    ):
        self._clock = clock or (lambda: 0.0)
        self.sink = sink if sink is not None else NullSink()
        self.enabled = bool(getattr(self.sink, "enabled", True))
        self.wall_clock = wall_clock
        self._next_trace = 0
        self._next_span = 0
        self._by_id: Dict[int, Span] = {}
        self._active_roots: Dict[int, Span] = {}  # trace_id -> root span
        self._watches: List[_HeaderWatch] = []

    # -- clock --------------------------------------------------------

    def now(self) -> float:
        """Current (simulated) time."""
        return self._clock()

    def bind_clock(self, clock: Callable[[], float]) -> None:
        """Late-bind the clock (experiments create the simulator after
        the telemetry bundle)."""
        self._clock = clock

    # -- span creation ------------------------------------------------

    def _make_span(
        self, name: str, trace_id: int, parent_id: Optional[int], attrs: Dict[str, Any]
    ) -> Span:
        self._next_span += 1
        span = Span(
            tracer=self,
            trace_id=trace_id,
            span_id=self._next_span,
            parent_id=parent_id,
            name=name,
            start=self.now(),
            attrs=attrs,
        )
        self._by_id[span.span_id] = span
        self.sink.add(span)
        return span

    def start_trace(self, name: str, **attrs: Any):
        """Open a new trace; returns its root span."""
        if not self.enabled:
            return NULL_SPAN
        self._next_trace += 1
        span = self._make_span(name, self._next_trace, None, attrs)
        self._active_roots[span.trace_id] = span
        return span

    def start_span(self, name: str, parent, **attrs: Any):
        """Open a child span under ``parent`` (a :class:`Span`)."""
        if not self.enabled or parent is NULL_SPAN or parent is None:
            return NULL_SPAN
        return self._make_span(name, parent.trace_id, parent.span_id, attrs)

    def span_from_meta(self, name: str, meta: Dict[str, Any], **attrs: Any):
        """Open a span whose parent context rides in ``tx.meta``."""
        if not self.enabled:
            return NULL_SPAN
        context = meta.get(META_KEY)
        if context is None:
            return NULL_SPAN
        trace_id, parent_id = context
        return self._make_span(name, trace_id, parent_id, attrs)

    def meta_event(self, meta: Dict[str, Any], name: str, **attrs: Any) -> None:
        """Record an event on the span a ``tx.meta`` context points at."""
        if not self.enabled:
            return
        context = meta.get(META_KEY)
        if context is None:
            return
        span = self._by_id.get(context[1])
        if span is not None:
            span.event(name, **attrs)

    @staticmethod
    def inject(span, meta: Dict[str, Any]) -> None:
        """Stamp ``span``'s context into a ``tx.meta`` dict (no-op for
        :data:`NULL_SPAN`)."""
        context = span.context()
        if context is not None:
            meta[META_KEY] = context

    def span_by_id(self, span_id: int) -> Optional[Span]:
        """Look a live span up by id (exporters and tests)."""
        return self._by_id.get(span_id)

    def _on_span_end(self, span: Span) -> None:
        if span.parent_id is None:
            self._active_roots.pop(span.trace_id, None)
            self._watches = [w for w in self._watches if w.span.trace_id != span.trace_id]

    # -- header watches (relay / light-client attribution) ------------

    def watch_header(self, span, source_chain: int, height: int,
                     observer: Optional[int] = None) -> None:
        """Attribute the delivery/acceptance of source header ``>=
        height`` at ``observer`` to ``span``'s trace."""
        if not self.enabled or span is NULL_SPAN:
            return
        self._watches.append(
            _HeaderWatch(span=span, source_chain=source_chain,
                         height=height, observer=observer)
        )

    def header_relayed(self, source_chain: int, target_chain: int, height: int) -> None:
        """Relay hook: a header left the relay toward ``target_chain``."""
        if not self._watches:
            return
        for watch in self._watches:
            if (
                not watch.relayed
                and watch.source_chain == source_chain
                and height >= watch.height
                and (watch.observer is None or watch.observer == target_chain)
            ):
                watch.relayed = True
                watch.span.event(
                    "relay.forward",
                    source_chain=source_chain,
                    target_chain=target_chain,
                    height=height,
                )

    def header_accepted(self, observer_chain: int, source_chain: int, height: int) -> None:
        """Light-client hook: an observer ingested a source header."""
        if not self._watches:
            return
        done: List[_HeaderWatch] = []
        for watch in self._watches:
            if (
                not watch.accepted
                and watch.source_chain == source_chain
                and height >= watch.height
                and (watch.observer is None or watch.observer == observer_chain)
            ):
                watch.accepted = True
                watch.span.event(
                    "lightclient.accept",
                    observer_chain=observer_chain,
                    source_chain=source_chain,
                    height=height,
                )
            if watch.accepted and watch.relayed:
                done.append(watch)
        for watch in done:
            self._watches.remove(watch)

    def has_watches(self) -> bool:
        """Are any traces waiting on header deliveries?"""
        return bool(self._watches)

    # -- fault attribution --------------------------------------------

    def fault_event(self, kind: str, chain: int = 0, **attrs: Any) -> None:
        """Tag every affected active trace with an injected fault.

        ``chain`` scopes the fault: traces whose root span touches that
        chain (``chain`` / ``source_chain`` / ``target_chain`` attrs)
        are tagged; ``chain=0`` (network-wide faults) tags every active
        trace.
        """
        if not self.enabled or not self._active_roots:
            return
        for root in list(self._active_roots.values()):
            if chain:
                touches = {
                    root.attrs.get("chain"),
                    root.attrs.get("source_chain"),
                    root.attrs.get("target_chain"),
                }
                if chain not in touches:
                    continue
            root.event("fault.injected", kind=kind, chain=chain, **attrs)

    # -- reading ------------------------------------------------------

    def spans(self) -> List[Span]:
        """Every span the sink retained."""
        return self.sink.spans()

    def finished_spans(self) -> List[Span]:
        """Only the spans that have ended."""
        return [s for s in self.sink.spans() if s.ended]
