"""Labeled counters, gauges and histograms — the metrics half of
:mod:`repro.telemetry`.

A :class:`MetricsRegistry` is the single place a deployment's
components register their instruments: ``registry.counter(name,
**labels)`` returns the *same* :class:`Counter` object for the same
``(name, labels)`` pair, so callers pre-bind instruments once (in
``__init__``) and the hot path is a bare attribute increment — no dict
lookup, no string formatting, no branching on whether telemetry is
enabled.  This is what replaces the ad-hoc integer counters that used
to be scattered across the chain, relay, consensus and fault layers.

Instruments are deliberately simple (this is a simulation, not an
agent): counters and gauges hold one float; histograms keep their raw
samples up to a deterministic bound (:data:`DEFAULT_MAX_SAMPLES`),
which makes exact percentiles — the quantity the paper's figures
report — trivial while keeping a long-running series' memory finite.  :func:`~repro.telemetry.exporters
.registry_to_prometheus` renders the whole registry in Prometheus text
exposition format.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Tuple

LabelKey = Tuple[Tuple[str, str], ...]

#: retained-sample bound per histogram series; beyond it new
#: observations still feed ``count``/``sum``/``mean`` but are not kept
DEFAULT_MAX_SAMPLES = 100_000


def _label_key(labels: Dict[str, object]) -> LabelKey:
    """Canonical (sorted, stringified) identity of a label set."""
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: LabelKey):
        self.name = name
        self.labels = labels
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be non-negative) to the counter."""
        if amount < 0:
            raise ValueError("counters only go up")
        self.value += amount


class Gauge:
    """A value that goes up and down (queue depths, active counts)."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: LabelKey):
        self.name = name
        self.labels = labels
        self.value = 0.0

    def set(self, value: float) -> None:
        """Set the gauge to ``value``."""
        self.value = value

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` to the gauge."""
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        """Subtract ``amount`` from the gauge."""
        self.value -= amount


class Histogram:
    """A distribution of observations with exact percentiles — up to a
    deterministic memory bound.

    The first ``max_samples`` observations are retained raw, so
    percentiles over them are exact (the quantity the paper's figures
    report).  Observations beyond the bound still update ``count``,
    ``sum`` and ``mean`` exactly, but the samples themselves are
    dropped (counted in ``dropped``): percentiles then rank over the
    retained prefix only, by the same nearest-rank rule.  The bound is
    a fixed constant, not a sampling rate, so two identically seeded
    runs always retain the identical prefix.  :meth:`percentile` sorts
    lazily and caches until the next retained observation.
    """

    __slots__ = ("name", "labels", "max_samples", "dropped", "_samples",
                 "_sorted", "_count", "sum")

    def __init__(
        self, name: str, labels: LabelKey, max_samples: int = DEFAULT_MAX_SAMPLES
    ):
        if max_samples <= 0:
            raise ValueError("max_samples must be positive")
        self.name = name
        self.labels = labels
        self.max_samples = max_samples
        self.dropped = 0
        self._samples: List[float] = []
        self._sorted: Optional[List[float]] = None
        self._count = 0
        self.sum = 0.0

    def observe(self, value: float) -> None:
        """Record one observation."""
        self._count += 1
        self.sum += value
        if len(self._samples) < self.max_samples:
            self._samples.append(value)
            self._sorted = None
        else:
            self.dropped += 1

    @property
    def count(self) -> int:
        """Every observation ever made (retained or dropped)."""
        return self._count

    @property
    def mean(self) -> float:
        return self.sum / self._count if self._count else 0.0

    def samples(self) -> Tuple[float, ...]:
        """The retained observations, in observation order."""
        return tuple(self._samples)

    def percentile(self, q: float) -> float:
        """The ``q``-quantile (0..1) by nearest rank over the retained
        samples (exact while nothing has been dropped).

        Raises :class:`ValueError` when the histogram is empty or
        ``q`` falls outside ``[0, 1]``.
        """
        if not self._samples:
            raise ValueError(f"histogram {self.name} has no samples")
        if not 0.0 <= q <= 1.0:
            raise ValueError("q must be within [0, 1]")
        if self._sorted is None:
            self._sorted = sorted(self._samples)
        rank = min(int(q * len(self._sorted)), len(self._sorted) - 1)
        return self._sorted[rank]


class MetricsRegistry:
    """Get-or-create home for every instrument of one deployment.

    One registry is shared by all chains, relays, engines and fault
    machinery of an experiment (see :class:`~repro.telemetry.Telemetry`),
    so a single export shows the whole system.  Within one name, every
    label set is an independent time series, exactly as in Prometheus;
    requesting an existing ``(name, labels)`` pair with a *different*
    instrument kind raises, which catches name collisions early.
    """

    def __init__(self) -> None:
        self._instruments: Dict[Tuple[str, LabelKey], object] = {}

    def _get(self, cls, name: str, labels: Dict[str, object]):
        key = (name, _label_key(labels))
        instrument = self._instruments.get(key)
        if instrument is None:
            instrument = cls(name, key[1])
            self._instruments[key] = instrument
        elif not isinstance(instrument, cls):
            raise TypeError(
                f"{name}{dict(key[1])} is a {type(instrument).__name__}, "
                f"not a {cls.__name__}"
            )
        return instrument

    def counter(self, name: str, **labels: object) -> Counter:
        """The counter for ``(name, labels)`` (created on first use)."""
        return self._get(Counter, name, labels)

    def gauge(self, name: str, **labels: object) -> Gauge:
        """The gauge for ``(name, labels)`` (created on first use)."""
        return self._get(Gauge, name, labels)

    def histogram(self, name: str, **labels: object) -> Histogram:
        """The histogram for ``(name, labels)`` (created on first use)."""
        return self._get(Histogram, name, labels)

    def instruments(self) -> Iterator[object]:
        """Every registered instrument, in deterministic (name, label)
        order."""
        for key in sorted(self._instruments):
            yield self._instruments[key]

    def value(self, name: str, **labels: object) -> float:
        """Convenience read of a counter/gauge value (0.0 if absent)."""
        instrument = self._instruments.get((name, _label_key(labels)))
        if instrument is None:
            return 0.0
        return getattr(instrument, "value", 0.0)

    def total(self, name: str) -> float:
        """Sum of a counter's value across every label set."""
        return sum(
            instrument.value
            for (iname, _), instrument in self._instruments.items()
            if iname == name and isinstance(instrument, Counter)
        )

    def totals(self, names: Iterable[str]) -> Dict[str, float]:
        """Counter totals for several names in one registry pass
        (absent names read 0.0) — what periodic samplers such as the
        flight recorder call instead of N :meth:`total` scans."""
        wanted: Dict[str, float] = {name: 0.0 for name in names}
        for (iname, _), instrument in self._instruments.items():
            if iname in wanted and isinstance(instrument, Counter):
                wanted[iname] += instrument.value
        return wanted
