"""Per-phase latency analysis of Move traces.

Answers the question behind Figs. 7/8 — *where does cross-chain latency
go?* — from exported spans instead of ad-hoc bookkeeping.  A move trace
(root span ``move``) carries one child span per pipeline phase:

========================  =============================================
``move1``                 Move1 submission → inclusion at the source
``confirm.wait``          inclusion → the Move1 root is ``p``-confirmed
``proof.build``           Merkle proof-bundle construction
``move2``                 proof ready → Move2 inclusion at the target
                          (contains the relay hop, light-client
                          acceptance and the VS/VP/nonce/replay events)
``complete``              the application's completion transactions
========================  =============================================

The **confirmation wait** is deliberately its own phase, separate from
proof construction, relaying and Move2 execution: it is the term the
paper's ``p``-block analysis predicts (``p × block interval``) and the
dominant cost in the Ethereum→Burrow direction, and conflating it with
the protocol work would hide what an operator can actually tune.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence

from repro.telemetry.tracer import Span

#: pipeline order of the phase spans under a ``move`` root
PHASES = ("move1", "confirm.wait", "proof.build", "move2", "complete")


@dataclass
class TracePhases:
    """One move trace folded into per-phase durations."""

    trace_id: int
    name: str
    attrs: Dict[str, Any] = field(default_factory=dict)
    phases: Dict[str, float] = field(default_factory=dict)
    start: float = 0.0
    end: float = 0.0
    success: Optional[bool] = None

    @property
    def total(self) -> float:
        return self.end - self.start

    def phase(self, name: str) -> float:
        """Summed duration of one phase (0.0 when absent)."""
        return self.phases.get(name, 0.0)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-friendly view (CLI ``--json`` output)."""
        return {
            "trace": self.trace_id,
            "name": self.name,
            "attrs": dict(self.attrs),
            "phases": {p: self.phases.get(p, 0.0) for p in PHASES},
            "total": self.total,
            "success": self.success,
        }


def trace_phases(spans: Iterable[Span], root_name: str = "move") -> List[TracePhases]:
    """Fold spans into one :class:`TracePhases` per finished root trace.

    A phase appearing more than once in a trace (e.g. ``move2`` retry
    attempts under chaos) contributes the *sum* of its durations.
    """
    roots: Dict[int, TracePhases] = {}
    for span in spans:
        if span.parent_id is None and span.name == root_name and span.ended:
            roots[span.trace_id] = TracePhases(
                trace_id=span.trace_id,
                name=span.name,
                attrs=dict(span.attrs),
                start=span.start,
                end=span.end_time,
                success=span.attrs.get("success"),
            )
    for span in spans:
        record = roots.get(span.trace_id)
        if record is None or span.parent_id is None or not span.ended:
            continue
        if span.name in PHASES:
            record.phases[span.name] = record.phases.get(span.name, 0.0) + span.duration
    return [roots[trace_id] for trace_id in sorted(roots)]


def aggregate_phases(traces: Sequence[TracePhases]) -> Dict[str, float]:
    """Mean seconds per phase over a set of traces."""
    if not traces:
        return {phase: 0.0 for phase in PHASES}
    return {
        phase: sum(t.phase(phase) for t in traces) / len(traces)
        for phase in PHASES
    }


def breakdown_rows(traces: Sequence[TracePhases]) -> List[List[Any]]:
    """``[phase, mean, p50, p99, share]`` rows for the CLI table."""
    from repro.metrics.cdf import percentile

    rows: List[List[Any]] = []
    total_mean = sum(t.total for t in traces) / len(traces) if traces else 0.0
    for phase in PHASES:
        samples = [t.phase(phase) for t in traces]
        mean = sum(samples) / len(samples) if samples else 0.0
        rows.append(
            [
                phase,
                round(mean, 2),
                round(percentile(samples, 0.5), 2) if samples else 0.0,
                round(percentile(samples, 0.99), 2) if samples else 0.0,
                f"{(mean / total_mean * 100) if total_mean else 0.0:.1f}%",
            ]
        )
    rows.append(["total", round(total_mean, 2), "", "", "100.0%" if traces else "0.0%"])
    return rows


def slowest_traces(traces: Sequence[TracePhases], top: int = 10) -> List[TracePhases]:
    """The ``top`` slowest traces, slowest first (ties by trace id)."""
    return sorted(traces, key=lambda t: (-t.total, t.trace_id))[:top]
