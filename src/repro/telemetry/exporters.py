"""Serialize traces and metrics: JSONL, Chrome ``trace_event``,
Prometheus text exposition.

All exporters are deterministic: spans are ordered by ``(trace_id,
start, span_id)``, JSON keys are sorted, and floats serialize via
``repr`` semantics — two identically seeded runs therefore export
byte-identical documents (asserted by the chaos determinism test).
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List

from repro.telemetry.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.telemetry.tracer import Span


def _ordered(spans: Iterable[Span]) -> List[Span]:
    return sorted(spans, key=lambda s: (s.trace_id, s.start, s.span_id))


def span_to_dict(span: Span) -> Dict[str, Any]:
    """One span as a plain JSON-serializable dict."""
    return {
        "trace": span.trace_id,
        "span": span.span_id,
        "parent": span.parent_id,
        "name": span.name,
        "start": span.start,
        "end": span.end_time,
        "attrs": dict(span.attrs),
        "events": [
            {"name": e.name, "time": e.time, "attrs": dict(e.attrs)}
            for e in span.events
        ],
    }


def spans_to_jsonl(spans: Iterable[Span]) -> str:
    """One JSON object per line, one line per span."""
    lines = [
        json.dumps(span_to_dict(span), sort_keys=True, separators=(",", ":"))
        for span in _ordered(spans)
    ]
    return "\n".join(lines) + ("\n" if lines else "")


def spans_to_chrome_trace(spans: Iterable[Span]) -> Dict[str, Any]:
    """The Chrome ``trace_event`` document (load in ``chrome://tracing``
    or Perfetto).

    Mapping: one *process* row per trace, one *thread* row per chain
    (span attr ``chain``; 0 when unset, e.g. client-side phases), so a
    cross-chain move renders as one group whose rows are the two chains
    plus the client.  Simulated seconds become microseconds; durations
    of still-open spans are clamped to 0.  Span events become instant
    events on the same row.
    """
    events: List[Dict[str, Any]] = []
    trace_ids = []
    for span in _ordered(spans):
        if span.trace_id not in trace_ids:
            trace_ids.append(span.trace_id)
            events.append(
                {
                    "ph": "M",
                    "pid": span.trace_id,
                    "name": "process_name",
                    "args": {"name": f"trace {span.trace_id}: {span.name}"},
                }
            )
        tid = int(span.attrs.get("chain", 0) or 0)
        end = span.end_time if span.end_time is not None else span.start
        events.append(
            {
                "ph": "X",
                "pid": span.trace_id,
                "tid": tid,
                "name": span.name,
                "cat": "span",
                "ts": span.start * 1e6,
                "dur": max(0.0, end - span.start) * 1e6,
                "args": dict(span.attrs),
            }
        )
        for ev in span.events:
            events.append(
                {
                    "ph": "i",
                    "pid": span.trace_id,
                    "tid": tid,
                    "name": ev.name,
                    "cat": "event",
                    "ts": ev.time * 1e6,
                    "s": "t",
                    "args": dict(ev.attrs),
                }
            )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def chrome_trace_json(spans: Iterable[Span]) -> str:
    """:func:`spans_to_chrome_trace` as a deterministic JSON string."""
    return json.dumps(spans_to_chrome_trace(spans), sort_keys=True, separators=(",", ":"))


# ----------------------------------------------------------------------
# Prometheus text exposition
# ----------------------------------------------------------------------

_QUANTILES = (0.5, 0.9, 0.99)


def _escape_label_value(value: str) -> str:
    """Escape a label value per the Prometheus text-format spec:
    backslash, double quote and newline must be written as ``\\\\``,
    ``\\"`` and ``\\n`` inside the quoted value."""
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _labels_text(labels, extra: str = "") -> str:
    parts = [f'{k}="{_escape_label_value(v)}"' for k, v in labels]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def _number(value: float) -> str:
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def registry_to_prometheus(registry: MetricsRegistry) -> str:
    """The whole registry in Prometheus text exposition format.

    Counters and gauges render one sample per label set; histograms
    render summary-style ``quantile`` samples plus ``_count`` and
    ``_sum`` (quantiles are exact up to the histogram's retained-sample
    bound; past it a ``_dropped`` sample reports how many observations
    the quantiles no longer cover).
    """
    lines: List[str] = []
    seen_types: Dict[str, str] = {}
    for instrument in registry.instruments():
        name = instrument.name
        if isinstance(instrument, Counter):
            kind = "counter"
        elif isinstance(instrument, Gauge):
            kind = "gauge"
        elif isinstance(instrument, Histogram):
            kind = "summary"
        else:  # pragma: no cover - registry only makes the three kinds
            continue
        if name not in seen_types:
            seen_types[name] = kind
            lines.append(f"# TYPE {name} {kind}")
        if isinstance(instrument, (Counter, Gauge)):
            lines.append(f"{name}{_labels_text(instrument.labels)} {_number(instrument.value)}")
        else:
            for q in _QUANTILES:
                try:
                    value = instrument.percentile(q)
                except ValueError:
                    continue
                extra = 'quantile="%s"' % q
                lines.append(
                    f"{name}{_labels_text(instrument.labels, extra)} {_number(value)}"
                )
            lines.append(
                f"{name}_count{_labels_text(instrument.labels)} {instrument.count}"
            )
            lines.append(
                f"{name}_sum{_labels_text(instrument.labels)} {_number(instrument.sum)}"
            )
            if instrument.dropped:
                lines.append(
                    f"{name}_dropped{_labels_text(instrument.labels)} "
                    f"{instrument.dropped}"
                )
    return "\n".join(lines) + ("\n" if lines else "")
