"""Detection coverage: did the alerts name the faults that caused them?

The chaos harness knows exactly which faults it injected (the
:class:`~repro.faults.plan.FaultPlan` is the ground truth) and the
health plane produces an alert log; this module joins the two.  An
alert is *attributed* to a fault when it fired inside the fault's
window (plus a grace period for after-effects — backlog drain, sync
catch-up) and its target matches one of the target prefixes that fault
kind can plausibly degrade.  The CI detection gate asserts that every
firing alert in a seed-matrix run is attributable (no false alarms)
and that the matrix as a whole detects at least one injected fault
(no vacuous silence).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.faults.plan import MESSAGE_KINDS, FaultEvent

#: attribution grace: how long after a fault window ends its
#: after-effects may still legitimately fire an alert
DEFAULT_GRACE = 60.0


def fault_target_prefixes(event: FaultEvent) -> Tuple[str, ...]:
    """Health-target prefixes fault ``event`` can plausibly degrade.

    ``"*"`` means any target (network-wide message faults touch every
    path).  Prefix matching keeps the map stable as probes add detail
    to their target names (``relay:1->`` matches every observer of
    chain 1, ``replica:1->`` every mirror sourced from it).
    """
    if event.kind in MESSAGE_KINDS:
        return ("*",)
    if event.kind in ("crash", "stall_proposer", "partition"):
        return (
            f"chain:{event.chain}",
            f"mempool:{event.chain}",
            f"relay:{event.chain}->",
            f"replica:{event.chain}->",
        )
    if event.kind in ("withhold_headers", "stale_headers"):
        return (f"relay:{event.chain}->", f"replica:{event.chain}->")
    if event.kind in ("equivocate", "reorg"):
        return (
            f"chain:{event.chain}",
            f"relay:{event.chain}->",
            f"replica:{event.chain}->",
        )
    return ("*",)


@dataclass
class CoverageReport:
    """The join of one fault plan and one alert log."""

    total_faults: int
    total_firing: int
    #: plan-event indices with at least one attributed alert
    covered: Tuple[int, ...] = ()
    #: alert-log index -> plan-event indices it is attributed to
    attributed: Dict[int, Tuple[int, ...]] = field(default_factory=dict)
    #: alert-log indices of firing alerts matching no fault
    unattributed: Tuple[int, ...] = ()

    @property
    def all_alerts_attributed(self) -> bool:
        return not self.unattributed


def detection_coverage(
    events: Sequence[FaultEvent],
    alerts: Sequence[Dict[str, object]],
    grace: float = DEFAULT_GRACE,
) -> CoverageReport:
    """Attribute every *firing* alert to the plan faults that explain
    it (resolved entries close alerts and are never attributed)."""
    covered: set = set()
    attributed: Dict[int, Tuple[int, ...]] = {}
    unattributed: List[int] = []
    firing = [
        (index, alert)
        for index, alert in enumerate(alerts)
        if alert.get("state") == "firing"
    ]
    for alert_index, alert in firing:
        at = float(alert["at"])
        target = str(alert["target"])
        matches: List[int] = []
        for event_index, event in enumerate(events):
            if not event.time <= at <= event.time + event.duration + grace:
                continue
            prefixes = fault_target_prefixes(event)
            if any(p == "*" or target.startswith(p) for p in prefixes):
                matches.append(event_index)
        if matches:
            attributed[alert_index] = tuple(matches)
            covered.update(matches)
        else:
            unattributed.append(alert_index)
    return CoverageReport(
        total_faults=len(events),
        total_firing=len(firing),
        covered=tuple(sorted(covered)),
        attributed=attributed,
        unattributed=tuple(unattributed),
    )
