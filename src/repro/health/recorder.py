"""The flight recorder: a bounded ring of recent events plus periodic
metric snapshots, dumped as a deterministic postmortem bundle.

Modelled on an aircraft flight recorder: the ring always holds the last
``capacity`` noteworthy events (health transitions, alert transitions,
injected faults, invariant violations), and every monitor tick takes a
snapshot of a fixed whitelist of counters.  When something goes wrong —
an alert fires, an :class:`~repro.faults.invariants.InvariantChecker`
assertion trips, or a fault plan injects a fault — :meth:`dump`
assembles everything into one JSON-serializable bundle: what just
happened (the ring), how the system drifted (metric start/current/
delta), what is unhealthy (the health map), and what is firing.

Determinism: the snapshot metric whitelist is fixed and read through
``registry.total`` (absent names read 0.0), and it deliberately
excludes the ``executor_parallel_*`` family, which only exists on
parallel chains — so a bundle from a seeded run is byte-identical at
every executor worker count (the chaos detection gate asserts this).
"""

from __future__ import annotations

import json
from collections import deque
from typing import Deque, Dict, List, Optional, Sequence

#: counters snapshotted every tick — worker-count-independent by design
DEFAULT_SNAPSHOT_METRICS = (
    "faults_injected_total",
    "gateway_admitted_total",
    "gateway_rejected_total",
    "gateway_requests_total",
    "health_alerts_total",
    "rebalance_moves_total",
    "relay_headers_relayed_total",
    "relay_headers_withheld_total",
    "replicate_read_unavailable_total",
    "replicate_rehomes_total",
)


def bundle_json(bundle: Dict[str, object]) -> str:
    """A postmortem bundle as canonical (sorted, compact) JSON."""
    return json.dumps(bundle, sort_keys=True, separators=(",", ":"))


class FlightRecorder:
    """Bounded event ring + metric snapshots + postmortem assembly."""

    def __init__(
        self,
        capacity: int = 256,
        snapshot_metrics: Sequence[str] = DEFAULT_SNAPSHOT_METRICS,
        max_postmortems: int = 32,
    ):
        self.capacity = capacity
        self.events: Deque[Dict[str, object]] = deque(maxlen=capacity)
        self.snapshot_metrics = tuple(snapshot_metrics)
        self.max_postmortems = max_postmortems
        #: retained bundles, oldest first (bounded; see counters below)
        self.postmortems: List[Dict[str, object]] = []
        self.postmortems_written = 0
        self.postmortems_dropped = 0
        self.events_recorded = 0
        self.snapshots_taken = 0
        self._start: Optional[Dict[str, float]] = None
        self._current: Dict[str, float] = {}

    def record(self, at: float, kind: str, **attrs: object) -> None:
        """Append one event to the ring (oldest entries roll off)."""
        self.events_recorded += 1
        self.events.append(
            {
                "at": round(at, 6),
                "kind": kind,
                "attrs": {key: attrs[key] for key in sorted(attrs)},
            }
        )

    def snapshot(self, registry) -> None:
        """Record the whitelisted counter totals (the first call pins
        the ``start`` baseline every later delta is computed against)."""
        current = registry.totals(self.snapshot_metrics)
        if self._start is None:
            self._start = dict(current)
        self._current = current
        self.snapshots_taken += 1

    def dump(
        self,
        reason: str,
        at: float,
        health: Dict[str, str],
        transitions: Sequence[Dict[str, object]],
        alerts: Sequence[Dict[str, object]],
    ) -> Dict[str, object]:
        """Assemble (and retain, up to ``max_postmortems``) one bundle."""
        start = self._start if self._start is not None else {
            name: 0.0 for name in self.snapshot_metrics
        }
        current = self._current if self._current else dict(start)
        bundle = {
            "reason": reason,
            "at": round(at, 6),
            "events": list(self.events),
            "metrics": {
                "start": dict(start),
                "current": dict(current),
                "delta": {
                    name: current[name] - start[name] for name in self.snapshot_metrics
                },
            },
            "health": dict(health),
            "transitions": list(transitions),
            "alerts": list(alerts),
        }
        self.postmortems_written += 1
        if len(self.postmortems) >= self.max_postmortems:
            self.postmortems_dropped += 1
        else:
            self.postmortems.append(bundle)
        return bundle
