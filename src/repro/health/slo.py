"""Rolling-window SLOs with multi-window burn-rate alerting.

An :class:`SloSpec` states an objective — "targets of kind
``relay_lag`` should be healthy at least 75% of the time" — and the
:class:`SloEvaluator` turns the stream of probe samples into a
deterministic alert log using the standard multi-window burn-rate
rule (the Google SRE workbook's alerting recipe, on the simulated
clock):

* *burn rate* over a window is the observed bad fraction divided by
  the error budget (``1 - objective``); burn 1.0 spends the budget
  exactly, burn 2.0 spends it twice as fast as allowed;
* an alert **fires** for a (SLO, target) series when the *fast* window
  burn and the *slow* window burn both exceed their thresholds — the
  fast window makes detection prompt, the slow window suppresses
  one-sample blips;
* a firing alert **resolves** once the fast-window burn drops back
  under its threshold.  Fire and resolve transitions are latched, so
  the alert log records state *changes*, not per-tick noise.

Everything here is pure bookkeeping over (time, healthy) pairs: no
randomness, no wall clock, no dict-ordering dependence (series are
evaluated in sorted key order), so two identically seeded runs — at
any executor worker count — produce byte-identical alert logs.
"""

from __future__ import annotations

import json
from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Sequence, Tuple

from repro.health import probes


@dataclass(frozen=True)
class SloSpec:
    """One rolling-window objective over a probe kind."""

    name: str
    kind: str
    #: target good fraction within a window (error budget is 1 - this)
    objective: float
    fast_window: float = 30.0
    slow_window: float = 60.0
    fast_burn: float = 2.0
    slow_burn: float = 1.0
    severity: str = "page"

    def __post_init__(self):
        if not 0.0 < self.objective < 1.0:
            raise ValueError(f"objective must be in (0, 1), got {self.objective}")
        if self.fast_window <= 0 or self.slow_window < self.fast_window:
            raise ValueError("need 0 < fast_window <= slow_window")

    @property
    def budget(self) -> float:
        return 1.0 - self.objective


def default_slos() -> Tuple[SloSpec, ...]:
    """The stock objectives the chaos harness and ``Node`` monitors use.

    Tuned so that fault-free seed-matrix runs stay silent while
    sustained injected adversity (a withheld relay, a stalled chain, a
    halted replica) fires within roughly one fast window of the breach.
    """
    return (
        SloSpec("chain-liveness", probes.CHAIN_LIVENESS, objective=0.75),
        SloSpec("relay-lag", probes.RELAY_LAG, objective=0.75),
        SloSpec("replica-staleness", probes.REPLICA_STALENESS, objective=0.75),
        SloSpec("gateway-admission", probes.GATEWAY, objective=0.75),
        SloSpec("mempool-backlog", probes.MEMPOOL_DEPTH, objective=0.75),
        SloSpec(
            "executor-conflicts", probes.CONFLICT_RATE, objective=0.5, severity="ticket"
        ),
        SloSpec(
            "rebalancer-inflight", probes.REBALANCER, objective=0.5, severity="ticket"
        ),
    )


class _Series:
    """Rolling samples + latched alert state for one (SLO, target)."""

    __slots__ = ("samples", "firing", "bad")

    def __init__(self) -> None:
        self.samples: Deque[Tuple[float, bool]] = deque()
        self.firing = False
        #: unhealthy samples currently in the window (kept incrementally
        #: so the all-healthy fast path never scans the deque)
        self.bad = 0


class SloEvaluator:
    """Feeds probe samples through every matching SLO and emits the
    deterministic fire/resolve alert log."""

    def __init__(self, specs: Sequence[SloSpec] = ()):
        self.specs: Tuple[SloSpec, ...] = tuple(specs) if specs else default_slos()
        self._by_kind: Dict[str, List[SloSpec]] = {}
        for spec in self.specs:
            self._by_kind.setdefault(spec.kind, []).append(spec)
        self._by_name: Dict[str, SloSpec] = {spec.name: spec for spec in self.specs}
        self._series: Dict[Tuple[str, str], _Series] = {}
        #: every fire/resolve transition, in simulated-time order
        self.alerts: List[Dict[str, object]] = []

    def observe(self, now: float, kind: str, target: str, healthy: bool) -> None:
        """Record one probe sample against every SLO of its kind."""
        for spec in self._by_kind.get(kind, ()):
            key = (spec.name, target)
            series = self._series.get(key)
            if series is None:
                series = self._series[key] = _Series()
            series.samples.append((now, healthy))
            if not healthy:
                series.bad += 1
            horizon = now - spec.slow_window
            while series.samples and series.samples[0][0] < horizon:
                _, was_healthy = series.samples.popleft()
                if not was_healthy:
                    series.bad -= 1

    @staticmethod
    def _burn(
        samples: Deque[Tuple[float, bool]], now: float, window: float, budget: float
    ) -> float:
        low = now - window
        total = bad = 0
        for at, healthy in samples:
            if at >= low:
                total += 1
                if not healthy:
                    bad += 1
        if total == 0:
            return 0.0
        fraction = bad / total
        if budget <= 0.0:
            return float("inf") if fraction else 0.0
        return fraction / budget

    def evaluate(self, now: float) -> List[Dict[str, object]]:
        """Re-judge every series; returns (and logs) new transitions."""
        transitions: List[Dict[str, object]] = []
        for key in sorted(self._series):
            slo_name, target = key
            spec = self._by_name[slo_name]
            series = self._series[key]
            if series.bad == 0:
                if not series.firing:
                    continue  # healthy and quiet: nothing can change
                fast = slow = 0.0
            else:
                fast = self._burn(series.samples, now, spec.fast_window, spec.budget)
                slow = self._burn(series.samples, now, spec.slow_window, spec.budget)
            breached = fast >= spec.fast_burn and slow >= spec.slow_burn
            if breached == series.firing:
                continue
            series.firing = breached
            transitions.append(
                {
                    "at": round(now, 6),
                    "slo": slo_name,
                    "target": target,
                    "state": "firing" if breached else "resolved",
                    "severity": spec.severity,
                    "burn_fast": round(fast, 4),
                    "burn_slow": round(slow, 4),
                }
            )
        self.alerts.extend(transitions)
        return transitions

    def firing(self) -> List[Dict[str, str]]:
        """Currently firing (SLO, target) pairs, sorted."""
        return [
            {"slo": name, "target": target, "severity": self._by_name[name].severity}
            for (name, target) in sorted(self._series)
            if self._series[(name, target)].firing
        ]

    def alert_log_json(self) -> str:
        """The alert log as deterministic JSON lines (one per
        transition) — the byte-exact replay artifact."""
        lines = [
            json.dumps(entry, sort_keys=True, separators=(",", ":"))
            for entry in self.alerts
        ]
        return "\n".join(lines) + ("\n" if lines else "")
