"""The health monitor: probes + SLO evaluation + flight recording on
one periodic, epoch-guarded simulated-clock loop.

A :class:`HealthMonitor` is hosted the way a
:class:`~repro.rebalance.rebalancer.Rebalancer` is — built over a
simulator and a telemetry bundle, attached to a
:class:`~repro.node.node.Node` via ``node.attach_health()`` (or wired
into a chaos run via ``run_chaos(health=True)``) — and every
``interval`` simulated seconds it:

1. samples every attached probe (:mod:`repro.health.probes`), updating
   the per-target health map and recording transitions;
2. feeds the samples to the :class:`~repro.health.slo.SloEvaluator`,
   which appends any fire/resolve transitions to the deterministic
   alert log;
3. snapshots the flight recorder's metric whitelist, and — when a new
   alert fired this tick — dumps a postmortem bundle.

Two push-style entry points complete the flight-recorder triggers:
:meth:`on_fault` (wire it into ``FaultInjector.observers``) and
:meth:`on_violation` (assign it to ``InvariantChecker.on_violation``)
record the event and dump a bundle immediately, so the recording
exists even when the violation aborts the run.

The monitor is strictly read-only over the system it watches: it draws
no randomness and sends no messages, so enabling it cannot change any
workload outcome — only add its own tick events to the simulator.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.errors import ConfigError
from repro.health.recorder import FlightRecorder, bundle_json
from repro.health.slo import SloEvaluator, SloSpec
from repro.telemetry import Telemetry


class HealthMonitor:
    """Periodic health sampling, SLO alerting and flight recording."""

    def __init__(
        self,
        sim,
        telemetry: Optional[Telemetry] = None,
        interval: float = 5.0,
        slos: Sequence[SloSpec] = (),
        recorder: Optional[FlightRecorder] = None,
        transition_tail: int = 32,
    ):
        if interval <= 0:
            raise ConfigError("interval must be positive")
        self.sim = sim
        self.telemetry = telemetry if telemetry is not None else Telemetry.disabled()
        self.interval = interval
        self.probes: List[object] = []
        self.evaluator = SloEvaluator(slos)
        self.recorder = recorder if recorder is not None else FlightRecorder()
        #: latest healthy/unhealthy judgement per target
        self.states: Dict[str, bool] = {}
        #: every health-state change, in simulated-time order
        self.transitions: List[Dict[str, object]] = []
        #: how many transitions a postmortem bundle carries
        self.transition_tail = transition_tail
        self._running = False
        self._epoch = 0
        self._ticks = 0
        metrics = self.telemetry.metrics
        self._m_ticks = metrics.counter("health_ticks_total")
        self._m_postmortems = metrics.counter("health_postmortems_total")
        # per-target health_state gauges, pre-bound off the hot path
        self._state_gauges: Dict[str, object] = {}

    # ------------------------------------------------------------------
    # Assembly
    # ------------------------------------------------------------------

    @classmethod
    def for_node(
        cls,
        node,
        interval: float = 5.0,
        slos: Sequence[SloSpec] = (),
        conflict_probe: bool = True,
    ) -> "HealthMonitor":
        """The stock probe set over a node: chain liveness, relay lag,
        mempool depth, executor conflicts, plus replica staleness and
        rebalancer probes when those components are attached.  Build it
        *after* attaching replication/rebalancing (or add probes
        later); set ``conflict_probe=False`` for deployments whose
        alert logs must replay across executor worker counts."""
        from repro.health import probes as p

        monitor = cls(node.sim, telemetry=node.telemetry, interval=interval, slos=slos)
        monitor.add_probe(p.ChainLivenessProbe(node.chains))
        if node.relays:
            monitor.add_probe(p.RelayLagProbe(node.relays))
        monitor.add_probe(p.MempoolDepthProbe(node.chains))
        if conflict_probe:
            monitor.add_probe(
                p.ConflictRateProbe(node.telemetry.metrics, node.chains)
            )
        if node.replication is not None:
            monitor.add_probe(p.ReplicaStalenessProbe(node.replication))
        if node.rebalancer is not None:
            monitor.add_probe(p.RebalancerProbe(node.rebalancer))
        return monitor

    def add_probe(self, probe) -> None:
        """Attach one probe (sampled every tick, in attachment order)."""
        self.probes.append(probe)

    # ------------------------------------------------------------------
    # Lifecycle (the Rebalancer/Node epoch-guard idiom)
    # ------------------------------------------------------------------

    @property
    def running(self) -> bool:
        return self._running

    @property
    def ticks(self) -> int:
        """Completed sampling rounds since construction."""
        return self._ticks

    def start(self) -> None:
        """Begin periodic sampling (idempotent, restart-safe)."""
        if self._running:
            return
        self._running = True
        self._epoch += 1
        self._schedule(self._epoch)

    def stop(self) -> None:
        """Stop sampling (pending tick timers become no-ops)."""
        self._running = False

    def _schedule(self, epoch: int) -> None:
        self.sim.schedule(self.interval, lambda: self._tick(epoch))

    def _tick(self, epoch: int) -> None:
        if not self._running or epoch != self._epoch:
            return
        self.sample()
        self._schedule(epoch)

    # ------------------------------------------------------------------
    # One sampling round
    # ------------------------------------------------------------------

    def sample(self) -> List[Dict[str, object]]:
        """Sample every probe, evaluate SLOs, snapshot metrics; dump a
        postmortem if an alert newly fired.  Returns this round's alert
        transitions (tests may call this directly, off the timer)."""
        now = self.sim.now
        self._ticks += 1
        self._m_ticks.inc()
        gauges = self._state_gauges
        for probe in self.probes:
            for s in probe.sample(now):
                previous = self.states.get(s.target, True)
                self.states[s.target] = s.healthy
                gauge = gauges.get(s.target)
                if gauge is None:
                    gauge = self.telemetry.metrics.gauge(
                        "health_state", target=s.target
                    )
                    gauges[s.target] = gauge
                gauge.set(1.0 if s.healthy else 0.0)
                if previous != s.healthy:
                    transition = {
                        "at": round(now, 6),
                        "target": s.target,
                        "to": "healthy" if s.healthy else "unhealthy",
                        "value": round(s.value, 6),
                        "detail": s.detail,
                    }
                    self.transitions.append(transition)
                    self.recorder.record(
                        now,
                        "transition",
                        target=s.target,
                        to=transition["to"],
                        detail=s.detail,
                    )
                self.evaluator.observe(now, probe.kind, s.target, s.healthy)
        transitions = self.evaluator.evaluate(now)
        fired = False
        for alert in transitions:
            self.telemetry.metrics.counter(
                "health_alerts_total", slo=alert["slo"], state=alert["state"]
            ).inc()
            self.recorder.record(
                now,
                "alert",
                slo=alert["slo"],
                target=alert["target"],
                state=alert["state"],
                severity=alert["severity"],
            )
            fired = fired or alert["state"] == "firing"
        self.recorder.snapshot(self.telemetry.metrics)
        if fired:
            self.postmortem("alert")
        return transitions

    # ------------------------------------------------------------------
    # Flight-recorder triggers
    # ------------------------------------------------------------------

    def on_fault(self, event) -> None:
        """Record one injected plan fault and dump a bundle (wire this
        into :attr:`~repro.faults.injector.FaultInjector.observers`)."""
        now = self.sim.now
        self.recorder.record(
            now,
            "fault",
            fault=event.kind,
            chain=event.chain,
            target=event.target,
            duration=event.duration,
            magnitude=event.magnitude,
        )
        self.postmortem("fault")

    def on_violation(self, message: str) -> None:
        """Record one invariant violation and dump a bundle (assign to
        :attr:`~repro.faults.invariants.InvariantChecker.on_violation`;
        runs *before* the raise, so the recording survives the abort)."""
        self.recorder.record(self.sim.now, "invariant_violation", message=message)
        self.postmortem("invariant")

    def postmortem(self, reason: str) -> Dict[str, object]:
        """Dump one bundle now (also the on-demand entry the CLI uses)."""
        self._m_postmortems.inc()
        return self.recorder.dump(
            reason,
            self.sim.now,
            self.states_text(),
            self.transitions[-self.transition_tail :],
            self.evaluator.firing(),
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def states_text(self) -> Dict[str, str]:
        """The health map with readable values, sorted by target."""
        return {
            target: ("healthy" if ok else "unhealthy")
            for target, ok in sorted(self.states.items())
        }

    def firing(self) -> List[Dict[str, str]]:
        """Currently firing alerts (sorted ``slo``/``target`` pairs)."""
        return self.evaluator.firing()

    def alert_log(self) -> List[Dict[str, object]]:
        """Every fire/resolve transition so far, in time order."""
        return list(self.evaluator.alerts)

    def alert_log_json(self) -> str:
        """The alert log as deterministic JSON lines."""
        return self.evaluator.alert_log_json()

    def last_postmortem(self) -> Optional[Dict[str, object]]:
        """The most recent retained bundle, if any."""
        return self.recorder.postmortems[-1] if self.recorder.postmortems else None

    def last_postmortem_json(self) -> str:
        """The most recent bundle as canonical JSON ("" when none)."""
        bundle = self.last_postmortem()
        return bundle_json(bundle) if bundle is not None else ""

    def status(self) -> Dict[str, object]:
        """One operator-facing summary dict (the ``obs status`` body)."""
        states = self.states_text()
        return {
            "ticks": self._ticks,
            "probes": len(self.probes),
            "targets": states,
            "unhealthy": sorted(t for t, v in states.items() if v == "unhealthy"),
            "firing": self.evaluator.firing(),
            "alerts_logged": len(self.evaluator.alerts),
            "transitions": len(self.transitions),
            "postmortems": self.recorder.postmortems_written,
        }
