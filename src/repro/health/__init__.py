"""The cluster health plane: probes, SLO burn-rate alerting and
flight-recorder postmortems over :mod:`repro.telemetry`.

PR 3 made the system observable (traces + metrics); this package makes
it *judgeable*: typed per-target health states
(:mod:`repro.health.probes`), rolling-window SLOs with multi-window
burn-rate alerting on the simulated clock (:mod:`repro.health.slo`), a
bounded flight recorder that dumps deterministic JSON postmortem
bundles on alerts, invariant violations and injected faults
(:mod:`repro.health.recorder`), and the periodic
:class:`~repro.health.monitor.HealthMonitor` that ties them together —
hosted by :class:`~repro.node.node.Node` via ``attach_health()`` and
by the chaos harness via ``run_chaos(health=True)``.  The join between
injected faults and raised alerts lives in
:mod:`repro.health.coverage` (the CI detection-coverage gate).

Everything is a pure function of the seed: alert logs and postmortem
bundles replay byte-identically at every executor worker count.  See
``docs/OBSERVABILITY.md`` ("Health, SLOs, and postmortems").
"""

from repro.health.coverage import CoverageReport, detection_coverage, fault_target_prefixes
from repro.health.monitor import HealthMonitor
from repro.health.probes import (
    ChainLivenessProbe,
    ConflictRateProbe,
    GatewayQueueProbe,
    MempoolDepthProbe,
    ProbeSample,
    RebalancerProbe,
    RelayLagProbe,
    ReplicaStalenessProbe,
)
from repro.health.recorder import DEFAULT_SNAPSHOT_METRICS, FlightRecorder, bundle_json
from repro.health.slo import SloEvaluator, SloSpec, default_slos

__all__ = [
    "HealthMonitor",
    "SloSpec",
    "SloEvaluator",
    "default_slos",
    "FlightRecorder",
    "DEFAULT_SNAPSHOT_METRICS",
    "bundle_json",
    "ProbeSample",
    "ChainLivenessProbe",
    "RelayLagProbe",
    "ReplicaStalenessProbe",
    "GatewayQueueProbe",
    "MempoolDepthProbe",
    "ConflictRateProbe",
    "RebalancerProbe",
    "CoverageReport",
    "detection_coverage",
    "fault_target_prefixes",
]
