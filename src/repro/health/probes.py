"""Typed health probes: per-target healthy/unhealthy judgements.

A probe turns raw observable state (chain heights, light-client stores,
mirror sync positions, queue depths, executor counters) into a list of
:class:`ProbeSample` values — one per *target*, a stable string like
``chain:1`` or ``relay:1->2`` that names the thing being judged.  The
:class:`~repro.health.monitor.HealthMonitor` polls every attached probe
on the simulated clock and feeds the samples to the SLO evaluator
(:mod:`repro.health.slo`), so a probe only answers the instantaneous
question "is this target healthy *right now*, and how bad is it?" —
windowing, burn rates and alerting live one layer up.

Determinism contract: every quantity a probe reads must be independent
of the executor worker count (heights, header-store positions, mirror
states and mempool depths all are — the parallel executor is
byte-identical to serial), so the resulting alert log replays exactly
across worker counts.  The one exception, :class:`ConflictRateProbe`,
reads counters that only exist on parallel chains; it is therefore not
part of the chaos harness's default probe set (see
``run_chaos(health=True)``) and belongs on nodes whose worker count is
fixed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List

#: probe kinds (the ``SloSpec.kind`` they feed)
CHAIN_LIVENESS = "chain_liveness"
RELAY_LAG = "relay_lag"
REPLICA_STALENESS = "replica_staleness"
GATEWAY = "gateway"
MEMPOOL_DEPTH = "mempool_depth"
CONFLICT_RATE = "conflict_rate"
REBALANCER = "rebalancer"


@dataclass(frozen=True)
class ProbeSample:
    """One instantaneous health judgement for one target."""

    target: str
    healthy: bool
    value: float
    detail: str = ""


def _contract_text(contract) -> str:
    """Short stable text for a contract address."""
    return contract.raw.hex()[:8]


class ChainLivenessProbe:
    """A chain is live while its height keeps advancing.

    Unhealthy once ``now - last_progress`` exceeds ``stall_factor``
    block intervals — the signature of a crashed quorum, a stalled
    proposer rotation, or a partitioned consensus group.
    """

    kind = CHAIN_LIVENESS

    def __init__(self, chains: Dict[int, object], stall_factor: float = 3.0):
        self.chains = dict(chains)
        self.stall_factor = stall_factor
        self._last_height: Dict[int, int] = {}
        self._last_progress: Dict[int, float] = {}
        # (chain_id, chain, target, stall budget), sorted once
        self._watch = [
            (
                chain_id,
                self.chains[chain_id],
                f"chain:{chain_id}",
                stall_factor * self.chains[chain_id].params.block_interval,
            )
            for chain_id in sorted(self.chains)
        ]

    def sample(self, now: float) -> List[ProbeSample]:
        """One judgement per chain, sorted by chain id."""
        samples = []
        for chain_id, chain, target, budget in self._watch:
            height = chain.height
            if height > self._last_height.get(chain_id, -1):
                self._last_height[chain_id] = height
                self._last_progress[chain_id] = now
            stalled_for = now - self._last_progress.setdefault(chain_id, now)
            samples.append(
                ProbeSample(
                    target=target,
                    healthy=stalled_for <= budget,
                    value=stalled_for,
                    detail=f"height {height}, {stalled_for:.0f}s since progress",
                )
            )
        return samples


class RelayLagProbe:
    """Observers must see a source chain's headers promptly.

    For every (source, observer) pair wired through a
    :class:`~repro.ibc.headers.HeaderRelay`, lag is the source's height
    minus the observer's light-client head for that source; a withheld
    or badly delayed relay shows up here within one block.
    """

    kind = RELAY_LAG

    def __init__(self, relays: Iterable[object], max_lag: int = 3):
        self.relays = sorted(relays, key=lambda r: r.source.chain_id)
        self.max_lag = max_lag
        # (source, observer, target name), the wiring is static
        self._pairs = [
            (
                relay.source,
                observer,
                f"relay:{relay.source.chain_id}->{observer.chain_id}",
            )
            for relay in self.relays
            for observer in sorted(relay.targets, key=lambda c: c.chain_id)
        ]

    def sample(self, now: float) -> List[ProbeSample]:
        """One judgement per wired (source, observer) pair."""
        samples = []
        for source, observer, target in self._pairs:
            store = observer.light_client.store_for(source.chain_id)
            head = store.head_height if store is not None else -1
            lag = max(0, source.height - head)
            samples.append(
                ProbeSample(
                    target=target,
                    healthy=lag <= self.max_lag,
                    value=float(lag),
                    detail=f"observer head {head}, source height {source.height}",
                )
            )
        return samples


class ReplicaStalenessProbe:
    """A serving replica must stay within its staleness bound.

    A mirror is unhealthy when it serves but lags its source by more
    than its configured ``staleness_bound``, or when one syncing/halted
    episode lasts longer than ``sync_grace`` source block intervals —
    enough to cover a fault-free (re-)sync, which inherently waits out
    the source's confirmation depth, while a withheld relay or a
    permanently halted mirror overruns it.  Tombstoned mirrors are
    retired on purpose and report nothing.
    """

    kind = REPLICA_STALENESS

    def __init__(self, manager, sync_grace: float = 6.0):
        self.manager = manager
        self.sync_grace = sync_grace
        #: start of the current non-LIVE episode per target (cleared on
        #: LIVE or tombstone, so every re-sync gets a fresh grace)
        self._sync_since: Dict[str, float] = {}

    def sample(self, now: float) -> List[ProbeSample]:
        """One judgement per non-tombstoned mirror, sorted by
        (source, target, contract)."""
        from repro.replicate.mirror import LIVE, TOMBSTONED

        samples = []
        for (source_id, target_id) in sorted(self.manager._relays):
            relay = self.manager._relays[(source_id, target_id)]
            source = relay.source
            for contract in sorted(relay.mirrors, key=lambda a: a.raw):
                mirror = relay.mirrors[contract]
                target = (
                    f"replica:{source_id}->{target_id}:{_contract_text(contract)}"
                )
                if mirror.status == TOMBSTONED:
                    self._sync_since.pop(target, None)
                    continue
                staleness = mirror.staleness(source.height)
                if mirror.status == LIVE:
                    self._sync_since.pop(target, None)
                    healthy = staleness <= mirror.staleness_bound
                else:
                    # syncing/halted: allow each episode one grace
                    # window to reach LIVE, then count it unhealthy
                    since = self._sync_since.setdefault(target, now)
                    grace = self.sync_grace * source.params.block_interval
                    healthy = now - since <= grace
                samples.append(
                    ProbeSample(
                        target=target,
                        healthy=healthy,
                        value=float(staleness),
                        detail=f"{mirror.status}, staleness {staleness}"
                        f"/{mirror.staleness_bound}",
                    )
                )
        return samples


class GatewayQueueProbe:
    """Admission queue depth and shed rate at the front door.

    Per served chain, the queued+parked depth as a fraction of the
    configured bound; plus one aggregate ``gateway:shed`` target whose
    value is the shed fraction of requests since the previous sample.

    When the gateway exposes per-class depths (the PR 10 classed
    queue), each chain also emits ``gateway:<chain>:<class>`` samples.
    The move class gets a much tighter threshold: moves flush ahead of
    everything else, so a move backlog at even a quarter of the bound
    means the priority plane itself is failing, long before the
    aggregate depth probe would fire.
    """

    kind = GATEWAY

    def __init__(
        self,
        gateway,
        depth_threshold: float = 0.9,
        shed_threshold: float = 0.5,
        move_threshold: float = 0.25,
    ):
        self.gateway = gateway
        self.depth_threshold = depth_threshold
        self.shed_threshold = shed_threshold
        self.move_threshold = move_threshold
        self._prev_requests = 0.0
        self._prev_rejected = 0.0

    def sample(self, now: float) -> List[ProbeSample]:
        """Per-chain depth judgements plus the aggregate shed target."""
        samples = []
        bound = self.gateway.limits.max_queue_depth
        class_depths = getattr(self.gateway, "class_depths", None)
        for chain_id in sorted(self.gateway.node.chains):
            depth = self.gateway.queue_depth(chain_id)
            fraction = depth / bound if bound else 0.0
            samples.append(
                ProbeSample(
                    target=f"gateway:{chain_id}",
                    healthy=fraction < self.depth_threshold,
                    value=fraction,
                    detail=f"{depth}/{bound} queued",
                )
            )
            if class_depths is None:
                continue
            for label, class_depth in class_depths(chain_id).items():
                class_fraction = class_depth / bound if bound else 0.0
                threshold = (
                    self.move_threshold
                    if label == "move"
                    else self.depth_threshold
                )
                samples.append(
                    ProbeSample(
                        target=f"gateway:{chain_id}:{label}",
                        healthy=class_fraction < threshold,
                        value=class_fraction,
                        detail=f"{class_depth}/{bound} queued in {label}",
                    )
                )
        totals = self.gateway.telemetry.metrics.totals(
            ("gateway_requests_total", "gateway_rejected_total")
        )
        requests = totals["gateway_requests_total"]
        rejected = totals["gateway_rejected_total"]
        new_requests = requests - self._prev_requests
        new_rejected = rejected - self._prev_rejected
        self._prev_requests, self._prev_rejected = requests, rejected
        shed_rate = new_rejected / new_requests if new_requests > 0 else 0.0
        samples.append(
            ProbeSample(
                target="gateway:shed",
                healthy=shed_rate <= self.shed_threshold,
                value=shed_rate,
                detail=f"{new_rejected:.0f}/{new_requests:.0f} shed since last sample",
            )
        )
        return samples


class MempoolDepthProbe:
    """A mempool backing up beyond a few blocks' worth of transactions
    means block production is not keeping up with admission."""

    kind = MEMPOOL_DEPTH

    def __init__(self, chains: Dict[int, object], max_blocks: float = 3.0):
        self.chains = dict(chains)
        self.max_blocks = max_blocks
        self._watch = [
            (
                self.chains[chain_id],
                f"mempool:{chain_id}",
                max_blocks * self.chains[chain_id].params.max_block_txs,
            )
            for chain_id in sorted(self.chains)
        ]

    def sample(self, now: float) -> List[ProbeSample]:
        """One judgement per chain, sorted by chain id."""
        samples = []
        for chain, target, bound in self._watch:
            depth = len(chain.mempool)
            samples.append(
                ProbeSample(
                    target=target,
                    healthy=depth <= bound,
                    value=float(depth),
                    detail=f"{depth} pending (bound {bound:.0f})",
                )
            )
        return samples


class ConflictRateProbe:
    """Speculation re-execution rate of the parallel executor.

    Reads the ``executor_parallel_*`` counters per chain; the value is
    ``reexecuted / speculated`` since the previous sample (0.0 when
    nothing speculated).  These counters only exist on chains with
    ``executor_workers > 0`` — keep this probe off deployments whose
    alert logs must replay across worker counts.
    """

    kind = CONFLICT_RATE

    def __init__(self, metrics, chain_ids: Iterable[int], max_rate: float = 0.5):
        self.metrics = metrics
        self.chain_ids = sorted(chain_ids)
        self.max_rate = max_rate
        self._prev: Dict[int, tuple] = {}

    def sample(self, now: float) -> List[ProbeSample]:
        """One judgement per watched chain's executor.

        The detail carries the executor backend (from the
        ``executor_parallel_backend_process`` gauge — pure
        configuration, hence deterministic), so operators reading an
        alert know whether the pressure is thread or process
        speculation.  The measured wall-clock gauges in the same family
        are intentionally *not* read here: probe judgements must replay
        byte-identically, and real time does not.
        """
        samples = []
        for chain_id in self.chain_ids:
            speculated = self.metrics.value(
                "executor_parallel_txs_speculated_total", chain=chain_id
            )
            reexecuted = self.metrics.value(
                "executor_parallel_txs_reexecuted_total", chain=chain_id
            )
            is_process = self.metrics.value(
                "executor_parallel_backend_process", chain=chain_id
            )
            backend = "process" if is_process else "thread"
            prev_s, prev_r = self._prev.get(chain_id, (0.0, 0.0))
            self._prev[chain_id] = (speculated, reexecuted)
            new_s, new_r = speculated - prev_s, reexecuted - prev_r
            rate = new_r / new_s if new_s > 0 else 0.0
            samples.append(
                ProbeSample(
                    target=f"executor:{chain_id}",
                    healthy=rate <= self.max_rate,
                    value=rate,
                    detail=f"{new_r:.0f}/{new_s:.0f} re-executed since last "
                    f"sample ({backend} backend)",
                )
            )
        return samples


class RebalancerProbe:
    """The rebalancing control loop must not wedge moves in flight.

    Unhealthy when the policy's in-flight set sits at (or above) the
    configured bound — the loop can no longer react to new imbalance.
    """

    kind = REBALANCER

    def __init__(self, rebalancer):
        self.rebalancer = rebalancer

    def sample(self, now: float) -> List[ProbeSample]:
        """The single ``rebalancer`` control-loop judgement."""
        policy = self.rebalancer.policy
        inflight = len(policy.inflight)
        return [
            ProbeSample(
                target="rebalancer",
                healthy=inflight < policy.max_inflight,
                value=float(inflight),
                detail=f"{inflight}/{policy.max_inflight} moves in flight",
            )
        ]
