"""A sharded deployment: N Tendermint shards over one simulated WAN.

Mirrors the paper's cluster (Section VII): 10 validators per shard, one
validator per simulated node, nodes randomly assigned to the 14 regions;
one client host maintaining a connection per shard.  All shards share
one :class:`~repro.net.sim.Simulator` so cross-shard timing is globally
consistent, and headers are relayed between all shards so any shard can
verify any other's Move2 proofs.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.chain.chain import Chain
from repro.chain.params import burrow_params
from repro.chain.tx import (
    DeployPayload,
    Move1Payload,
    Move2Payload,
    Transaction,
)
from repro.consensus.tendermint import TendermintEngine
from repro.core.registry import ChainRegistry
from repro.crypto.keys import Address
from repro.ibc.headers import connect_chains
from repro.net.latency import LatencyModel
from repro.net.sim import Simulator
from repro.net.transport import Network
from repro.sharding.partition import shard_of

#: One-way latency between the client host and a shard's entry point;
#: models the paper's "one node hosts all clients" connection per shard.
CLIENT_SUBMIT_LATENCY = 0.75


class ShardedCluster:
    """N Burrow/Tendermint shards driven by one simulator."""

    def __init__(
        self,
        num_shards: int,
        seed: int = 0,
        validators_per_shard: int = 10,
        block_interval: float = 5.0,
        max_block_txs: int = 500,
        verify_signatures: bool = False,
        executor_workers: int = 0,
        executor_backend: str = "thread",
    ):
        self.num_shards = num_shards
        self.sim = Simulator(seed=seed)
        self.network = Network(self.sim)
        self.latency_model = self.network.latency
        self.registry = ChainRegistry()
        self.shards: List[Chain] = []
        self.engines: List[TendermintEngine] = []
        #: contract address -> shard *index* of the active copy, kept
        #: current from the block stream (deploys, Move1 departures,
        #: Move2 arrivals) so lookups never scan every shard.
        self._contract_index: Dict[Address, int] = {}
        for index in range(num_shards):
            params = burrow_params(
                chain_id=index + 1,
                name=f"shard-{index}",
                max_block_txs=max_block_txs,
                validator_count=validators_per_shard,
                block_interval=block_interval,
                executor_workers=executor_workers,
                executor_backend=executor_backend,
            )
            chain = Chain(params, self.registry, verify_signatures=verify_signatures)
            self.shards.append(chain)
            regions = self.latency_model.assign_regions(validators_per_shard, self.sim.rng)
            self.engines.append(TendermintEngine(self.sim, self.network, chain, regions))
            chain.subscribe(
                lambda block, receipts, i=index: self._index_block(i, block, receipts)
            )
        connect_chains(self.shards)

    # ------------------------------------------------------------------

    def start(self) -> None:
        """Start consensus on every shard."""
        for engine in self.engines:
            engine.start()

    def stop(self) -> None:
        """Stop consensus on every shard and release worker pools (the
        pools recreate lazily, so a stopped cluster can restart)."""
        for engine in self.engines:
            engine.stop()
        for shard in self.shards:
            shard.close()

    def close(self) -> None:
        """Alias for :meth:`stop` — idiomatic for one-shot runs."""
        self.stop()

    def run(self, until: float) -> None:
        """Advance the shared simulator to ``until`` seconds."""
        self.sim.run(until=until)

    # ------------------------------------------------------------------

    def shard_index_of(self, address: Address) -> int:
        """Hash-partitioned home shard of a contract address."""
        return shard_of(address, self.num_shards)

    def shard(self, index: int) -> Chain:
        """The chain of the shard at ``index`` (0-based)."""
        return self.shards[index]

    def shard_by_chain_id(self, chain_id: int) -> Chain:
        """The chain whose id is ``chain_id`` (ids start at 1)."""
        return self.shards[chain_id - 1]

    def fund_all(self, allocations: Dict[Address, int]) -> None:
        """Credit balances on every shard (clients pay fees anywhere)."""
        for shard in self.shards:
            shard.fund(allocations)

    def submit(self, shard_index: int, tx: Transaction) -> None:
        """Submit from the client host: one network hop to the shard."""
        shard = self.shards[shard_index]
        self.sim.schedule(CLIENT_SUBMIT_LATENCY, lambda: shard.submit(tx))

    def _index_block(self, shard_index: int, block, receipts) -> None:
        """Keep the contract→shard index current from one block.

        Deploys land the new address here; a successful Move1 removes
        the entry (the contract is in transit, no shard is active); a
        successful Move2 lands it at the receiving shard.
        """
        for tx, receipt in zip(block.transactions, receipts):
            if not receipt.success:
                continue
            payload = tx.payload
            if isinstance(payload, Move1Payload):
                self._contract_index.pop(payload.contract, None)
            elif isinstance(payload, Move2Payload):
                self._contract_index[payload.bundle.contract] = shard_index
            elif isinstance(payload, DeployPayload):
                value = receipt.return_value
                if isinstance(value, Address):
                    self._contract_index[value] = shard_index

    def locate_contract(self, address: Address) -> Optional[int]:
        """Shard *index* holding the active copy of a contract, if any.

        O(1) via the block-stream index.  Contracts born outside the
        indexed events (created by another contract mid-call, or funded
        before the first subscription) fall back to a one-time scan and
        are cached; from then on Move1/Move2 keep the entry current.  A
        contract mid-move (between Move1 and Move2) has no active copy
        and returns None.
        """
        cached = self._contract_index.get(address)
        if cached is not None:
            return cached
        for index, shard in enumerate(self.shards):
            if shard.location_of(address) == shard.chain_id:
                self._contract_index[address] = index
                return index
        return None

    # ------------------------------------------------------------------
    # Rebalancing control plane
    # ------------------------------------------------------------------

    def load_plane(self, weights=None, gateway=None):
        """A :class:`~repro.rebalance.signals.SignalPlane` wired to this
        cluster: block-fill utilization, per-contract hotness and
        executor conflict rates for every shard (plus gateway queue
        pressure when a gateway is given), locating contracts through
        :meth:`locate_contract`."""
        from repro.rebalance.signals import (
            ConflictRateSignal,
            ContractHotnessSignal,
            GatewayQueueSignal,
            SignalPlane,
        )
        from repro.sharding.balancer import ShardLoadMonitor

        plane = SignalPlane(weights=weights, locate=self.locate_contract)
        plane.attach(ShardLoadMonitor(self.shards))
        hotness = ContractHotnessSignal()
        conflict = ConflictRateSignal()
        for index, shard in enumerate(self.shards):
            hotness.watch(index, shard)
            conflict.watch(index, shard)
        plane.attach(hotness)
        plane.attach(conflict)
        if gateway is not None:
            plane.attach(GatewayQueueSignal(gateway))
        return plane

    def auto_rebalancer(
        self,
        actuator=None,
        policy=None,
        interval: float = 20.0,
        move_timeout: float = 120.0,
        weights=None,
        gateway=None,
        telemetry=None,
    ):
        """A ready-to-start :class:`~repro.rebalance.rebalancer
        .Rebalancer` over this cluster's signal plane."""
        from repro.rebalance.rebalancer import Rebalancer

        if telemetry is None and self.shards:
            telemetry = self.shards[0].telemetry
        return Rebalancer(
            self.sim,
            self.load_plane(weights=weights, gateway=gateway),
            policy=policy,
            actuator=actuator,
            interval=interval,
            move_timeout=move_timeout,
            telemetry=telemetry,
        )

    @property
    def total_blocks(self) -> int:
        return sum(shard.height for shard in self.shards)
