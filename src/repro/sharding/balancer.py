"""Decentralized load balancing for sharded deployments.

Section IV-B observes that "as shards get congested and fees increase,
users are tempted to move their contracts to underused shards", and the
conclusion names "decentralized load balancing smart contracts for
sharded blockchains" as future work enabled by the Move primitive.

This module implements the client-side half:

* :class:`ShardLoadMonitor` — computes per-shard utilization purely
  from the public block stream (transactions per block vs. the chain's
  capacity), so *any* client reaches the same view without coordination
  — that is what makes the scheme decentralized;
* :class:`LoadBalancingPolicy` — the decision rule: move off a shard
  when its utilization exceeds ``hot_threshold`` and a shard at least
  ``min_gap`` cooler exists; the target is the coolest shard, with a
  deterministic owner-keyed tiebreak so simultaneous movers spread out
  instead of stampeding onto one target.

The ablation benchmark ``benchmarks/bench_ablation_loadbalance.py``
shows the resulting throughput/latency recovery on a skewed deployment.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional, Sequence

from repro.chain.chain import Chain
from repro.crypto.hashing import keccak
from repro.crypto.keys import Address


class ShardLoadMonitor:
    """Sliding-window utilization per shard, derived from headers/bodies.

    Shards may be handed over at construction or registered late with
    :meth:`register_shard` (a gateway fleet discovers its chains one by
    one).  The monitor is also a
    :class:`~repro.rebalance.signals.LoadSignal` — ``name`` is
    ``"utilization"`` and :meth:`shard_values` reports the windowed
    block-fill fraction per shard index — so it plugs straight into a
    :class:`~repro.rebalance.signals.SignalPlane` without adapters.
    """

    name = "utilization"

    def __init__(self, shards: Sequence[Chain] = (), window_blocks: int = 10):
        self.window_blocks = window_blocks
        self.shards: List[Chain] = []
        self._fills: List[Deque[int]] = []
        for shard in shards:
            self.register_shard(shard)

    def register_shard(self, shard: Chain) -> int:
        """Start monitoring one more chain; returns its shard index.

        The window starts empty, so a late-registered shard reports 0.0
        utilization until its first block lands — never stale data.
        """
        index = len(self.shards)
        self.shards.append(shard)
        fills: Deque[int] = deque(maxlen=self.window_blocks)
        self._fills.append(fills)
        shard.subscribe(
            lambda block, _receipts: fills.append(len(block.transactions))
        )
        return index

    def utilization(self, shard_index: int) -> float:
        """Average block fill over the window, as a fraction of capacity."""
        fills = self._fills[shard_index]
        if not fills:
            return 0.0
        capacity = self.shards[shard_index].params.max_block_txs
        return sum(fills) / (len(fills) * capacity)

    def utilizations(self) -> List[float]:
        """Utilization of every shard, by index."""
        return [self.utilization(i) for i in range(len(self.shards))]

    def coolest(self, exclude: Sequence[int] = ()) -> int:
        """Least-utilized shard index (excluding some)."""
        candidates = [i for i in range(len(self.shards)) if i not in exclude]
        if not candidates:
            raise ValueError("no candidate shards")
        return min(candidates, key=self.utilization)

    # -- LoadSignal protocol -------------------------------------------

    def shard_values(self) -> Dict[int, float]:
        """Windowed utilization per shard index (the signal view)."""
        return {i: self.utilization(i) for i in range(len(self.shards))}

    def contract_values(self) -> Dict[Address, float]:
        """Block fill carries no per-contract attribution."""
        return {}


class LoadBalancingPolicy:
    """Decides whether (and where) a contract should move."""

    def __init__(
        self,
        monitor: ShardLoadMonitor,
        hot_threshold: float = 0.8,
        min_gap: float = 0.3,
    ):
        self.monitor = monitor
        self.hot_threshold = hot_threshold
        self.min_gap = min_gap

    def suggest_move(self, current_shard: int, owner: Address) -> Optional[int]:
        """Target shard for a contract of ``owner``, or None to stay.

        Two deterministic owner-keyed draws prevent the classic
        oscillation of naive balancing: (1) only the *excess* fraction
        of a hot shard's population migrates (stay probability =
        mean utilization / local utilization), so the hot shard is not
        abandoned wholesale; (2) movers fan out across every shard
        cooler by ``min_gap``, not just the single coolest one.  Every
        client computes the same answer from the same public block
        stream — no coordination.
        """
        load = self.monitor.utilization(current_shard)
        if load < self.hot_threshold:
            return None
        utils = self.monitor.utilizations()
        mean_util = sum(utils) / len(utils)
        stay_probability = mean_util / load if load > 0 else 1.0
        digest = keccak(b"balance", owner.raw)
        stay_draw = int.from_bytes(digest[:8], "big") / 2**64
        if stay_draw < stay_probability:
            return None
        cool = [
            index
            for index in range(len(self.monitor.shards))
            if index != current_shard and utils[index] <= load - self.min_gap
        ]
        if not cool:
            return None
        pick = int.from_bytes(digest[8:16], "big") % len(cool)
        return cool[pick]

    def rebalance_plan(
        self, placements: Dict[Address, int]
    ) -> Dict[Address, int]:
        """Suggested moves for a whole set of contracts (owner-keyed)."""
        plan: Dict[Address, int] = {}
        for address, shard in placements.items():
            target = self.suggest_move(shard, address)
            if target is not None:
                plan[address] = target
        return plan
