"""Hash partitioning (Section VII: "the contract's shard is decided by
the hash of the contract's identification").

Hash partitioning balances shards well but — as the paper notes — the
probability that two unrelated contracts land on the same shard is
``1/num_shards``, so cross-shard rates rise with the shard count.
"""

from __future__ import annotations

from repro.crypto.hashing import keccak
from repro.crypto.keys import Address


def shard_of(address: Address, num_shards: int) -> int:
    """0-based shard index for a contract identifier."""
    if num_shards <= 0:
        raise ValueError("num_shards must be positive")
    digest = keccak(b"shard", address.raw)
    return int.from_bytes(digest[:8], "big") % num_shards


def shard_of_int(identifier: int, num_shards: int) -> int:
    """Shard index for a plain integer identifier (kitty ids)."""
    if num_shards <= 0:
        raise ValueError("num_shards must be positive")
    digest = keccak(b"shard-int", identifier.to_bytes(32, "big"))
    return int.from_bytes(digest[:8], "big") % num_shards
