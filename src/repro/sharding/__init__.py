"""Sharding: hash partitioning and multi-shard deployments.

Section IV-B/VII: the blockchain state is divided into shards; each
shard is an independent Burrow/Tendermint chain with its own validator
set, and contracts are assigned to shards by the hash of their
identifier.  The Move protocol is what lets objects change shard —
offloading congested shards or co-locating contracts that must call
each other.
"""

from repro.sharding.cluster import ShardedCluster
from repro.sharding.partition import shard_of

__all__ = ["ShardedCluster", "shard_of"]
