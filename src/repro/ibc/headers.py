"""Header relay between chains.

Peers that interoperate keep a light client per observed chain
(Section IV-A).  The relay subscribes to the source chain's block
stream and forwards each header to the target chains' light clients —
instantly for in-process tests, or after a simulated network delay when
a :class:`~repro.net.sim.Simulator` is supplied.

Delivery guarantees.  Even when per-header delays jitter (or a fault
injector inflates them), the relay delivers headers to each target in
height order: a header is never scheduled before the previous one for
the same target.  Without this guard, a delayed header ``h`` overtaken
by ``h+1`` would hit a fork-aware store as a detached child and crash
the relay mid-simulation — an in-order delivery assumption that was
implicit before the fault harness made it explicit.

The relay can also be **withheld** (paused): a malicious or failed
relayer simply stops forwarding, which freezes the targets' view of the
source head — Move2 proofs against newer roots stall until somebody
relays again (:meth:`HeaderRelay.release`).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

from repro.chain.block import Block, BlockHeader
from repro.chain.chain import Chain
from repro.net.sim import Simulator


class HeaderRelay:
    """Forwards one chain's headers to a set of observers."""

    def __init__(
        self,
        source: Chain,
        targets: Sequence[Chain],
        sim: Optional[Simulator] = None,
        delay: float = 0.0,
        fork_aware: bool = False,
    ):
        self.source = source
        self.targets = list(targets)
        self.sim = sim
        self.delay = delay
        #: additional delay injected by faults ("stale headers"); adds
        #: to ``delay`` for every subsequent forward until reset
        self.extra_delay = 0.0
        self.headers_relayed = 0
        self.headers_withheld = 0
        metrics = source.telemetry.metrics
        self._m_relayed = metrics.counter(
            "relay_headers_relayed_total", chain=source.chain_id
        )
        self._m_withheld = metrics.counter(
            "relay_headers_withheld_total", chain=source.chain_id
        )
        self._withheld: List[BlockHeader] = []
        self._paused = False
        #: per-target simulated time of the last scheduled delivery —
        #: enforces in-order (FIFO) delivery per target under jitter
        self._next_delivery: Dict[int, float] = {}
        for target in self.targets:
            target.observe_chain(source.params, fork_aware=fork_aware)
        # Backfill already-produced headers (e.g. genesis).
        for block in source.blocks:
            self._forward(block.header)
        source.subscribe(lambda block, _receipts: self._forward(block.header))

    def withhold(self) -> None:
        """Stop forwarding: headers queue instead of being delivered."""
        self._paused = True

    def release(self) -> None:
        """Resume forwarding; queued headers go out in height order."""
        self._paused = False
        queued, self._withheld = self._withheld, []
        for header in queued:
            self._deliver(header)

    @property
    def withholding(self) -> bool:
        """Is the relay currently paused?"""
        return self._paused

    def _forward(self, header: BlockHeader) -> None:
        if self._paused:
            self._withheld.append(header)
            self.headers_withheld += 1
            self._m_withheld.inc()
            return
        self._deliver(header)

    def _deliver(self, header: BlockHeader) -> None:
        self.headers_relayed += 1
        self._m_relayed.inc()
        tracer = self.source.telemetry.tracer
        if tracer.enabled and tracer.has_watches():
            for target in self.targets:
                tracer.header_relayed(header.chain_id, target.chain_id, header.height)
        total_delay = self.delay + self.extra_delay
        if self.sim is None or total_delay <= 0:
            for target in self.targets:
                target.ingest_header(header)
            return
        for target in self.targets:
            at = max(
                self.sim.now + total_delay,
                self._next_delivery.get(target.chain_id, 0.0),
            )
            self._next_delivery[target.chain_id] = at
            self.sim.schedule(
                at - self.sim.now, lambda t=target, h=header: t.ingest_header(h)
            )


def connect_chains(
    chains: Iterable[Chain],
    sim: Optional[Simulator] = None,
    delay: float = 0.0,
    fork_aware: bool = False,
) -> List[HeaderRelay]:
    """Fully mesh a set of chains: every chain observes every other.

    ``fork_aware=True`` gives every observer a fork-tracking header
    store (use when any chain in the mesh can reorg).
    """
    chains = list(chains)
    relays: List[HeaderRelay] = []
    for source in chains:
        targets = [c for c in chains if c is not source]
        if targets:
            relays.append(
                HeaderRelay(source, targets, sim=sim, delay=delay, fork_aware=fork_aware)
            )
    return relays
