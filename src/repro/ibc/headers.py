"""Header relay between chains.

Peers that interoperate keep a light client per observed chain
(Section IV-A).  The relay subscribes to the source chain's block
stream and forwards each header to the target chains' light clients —
instantly for in-process tests, or after a simulated network delay when
a :class:`~repro.net.sim.Simulator` is supplied.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

from repro.chain.block import Block
from repro.chain.chain import Chain
from repro.net.sim import Simulator


class HeaderRelay:
    """Forwards one chain's headers to a set of observers."""

    def __init__(
        self,
        source: Chain,
        targets: Sequence[Chain],
        sim: Optional[Simulator] = None,
        delay: float = 0.0,
    ):
        self.source = source
        self.targets = list(targets)
        self.sim = sim
        self.delay = delay
        self.headers_relayed = 0
        for target in self.targets:
            target.observe_chain(source.params)
        # Backfill already-produced headers (e.g. genesis).
        for block in source.blocks:
            self._forward(block)
        source.subscribe(lambda block, _receipts: self._forward(block))

    def _forward(self, block: Block) -> None:
        header = block.header
        self.headers_relayed += 1
        if self.sim is None or self.delay <= 0:
            for target in self.targets:
                target.ingest_header(header)
            return
        for target in self.targets:
            self.sim.schedule(
                self.delay, lambda t=target, h=header: t.ingest_header(h)
            )


def connect_chains(
    chains: Iterable[Chain],
    sim: Optional[Simulator] = None,
    delay: float = 0.0,
) -> List[HeaderRelay]:
    """Fully mesh a set of chains: every chain observes every other."""
    chains = list(chains)
    relays: List[HeaderRelay] = []
    for source in chains:
        targets = [c for c in chains if c is not source]
        if targets:
            relays.append(HeaderRelay(source, targets, sim=sim, delay=delay))
    return relays
