"""Gas → currency conversion used by Fig. 9.

The paper prices gas "considering the current average value of one gas
as two Gwei (2 × 10⁻⁹ Eth) and one Eth as $144 (the price in the middle
of December of 2019)".
"""

from __future__ import annotations

GAS_PRICE_GWEI = 2.0
GWEI_PER_ETH = 1e9
ETH_USD = 144.0

USD_PER_GAS = GAS_PRICE_GWEI / GWEI_PER_ETH * ETH_USD


def gas_to_usd(gas: int) -> float:
    """Dollar cost of ``gas`` at the paper's December-2019 rates."""
    return gas * USD_PER_GAS


def gas_to_mgas(gas: int) -> float:
    """Gas in millions (Fig. 9's left axis)."""
    return gas / 1e6
