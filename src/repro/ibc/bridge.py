"""Client-side choreography of a full cross-chain move.

This is the sequence Section VIII times (Fig. 8) and meters (Fig. 9):

1. **move1** — submit Move1 at the source chain, wait for inclusion;
2. **wait + proof** — wait until the source head is ``p`` blocks past
   the header carrying the Move1 block's state root (plus Burrow's
   one-block root lag), then extract the Merkle proof bundle;
3. **move2** — submit Move2 carrying the bundle at the target chain,
   wait for inclusion;
4. **complete** — any application-level completion transactions at the
   target (SCoin: one transfer; ScalableKitties: breed + giveBirth;
   the Store-N state transfers: none).

The bridge is fully event-driven over the simulator, mirroring a client
that listens to headers of both chains at once (Section III-A).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.chain.chain import Chain
from repro.chain.tx import Move1Payload, Move2Payload, Transaction, sign_transaction
from repro.crypto.keys import Address, KeyPair
from repro.net.sim import Simulator
from repro.statedb.receipts import Receipt
from repro.telemetry import Telemetry

#: builds the i-th completion transaction, given the mover's keypair
CompletionFactory = Callable[[KeyPair], Transaction]


@dataclass
class MovePhases:
    """Timeline and gas breakdown of one cross-chain move."""

    contract: Address
    source_chain: int
    target_chain: int
    started_at: float
    move1_included_at: Optional[float] = None
    proof_ready_at: Optional[float] = None
    move2_included_at: Optional[float] = None
    completed_at: Optional[float] = None
    gas: Dict[str, int] = field(default_factory=dict)
    success: bool = True
    error: Optional[str] = None

    # -- phase durations (Fig. 8's stacked bars) ----------------------

    @property
    def move1_time(self) -> float:
        return (self.move1_included_at or 0.0) - self.started_at

    @property
    def wait_proof_time(self) -> float:
        return (self.proof_ready_at or 0.0) - (self.move1_included_at or 0.0)

    @property
    def move2_time(self) -> float:
        return (self.move2_included_at or 0.0) - (self.proof_ready_at or 0.0)

    @property
    def complete_time(self) -> float:
        if self.completed_at is None or self.move2_included_at is None:
            return 0.0
        return self.completed_at - self.move2_included_at

    @property
    def total_time(self) -> float:
        end = self.completed_at or self.move2_included_at or self.started_at
        return end - self.started_at

    def add_gas(self, breakdown: Dict[str, int], fallback: str) -> None:
        """Merge a receipt's category split; uncategorized charges and
        create/code_deposit roll up the way Fig. 9 stacks them."""
        for category, amount in breakdown.items():
            if category in ("create", "code_deposit"):
                bucket = "create"
            elif category in ("move1", "move2", "complete"):
                bucket = category
            else:
                bucket = fallback
            self.gas[bucket] = self.gas.get(bucket, 0) + amount


class IBCBridge:
    """Drives cross-chain moves between registered chains."""

    def __init__(
        self,
        sim: Simulator,
        chains: Sequence[Chain],
        submit_latency: float = 0.05,
        telemetry: Optional[Telemetry] = None,
    ):
        self.sim = sim
        self.chains: Dict[int, Chain] = {chain.chain_id: chain for chain in chains}
        self.submit_latency = submit_latency
        if telemetry is None:
            # Inherit the chains' bundle so move traces and chain spans
            # land in the same tracer (experiments share one bundle).
            first = next(iter(self.chains.values()), None)
            telemetry = first.telemetry if first is not None else Telemetry.disabled()
        self.telemetry = telemetry
        metrics = telemetry.metrics
        self._m_moves_ok = metrics.counter("bridge_moves_total", status="ok")
        self._m_moves_failed = metrics.counter("bridge_moves_total", status="failed")
        self._m_move_seconds = metrics.histogram("bridge_move_seconds")

    def chain(self, chain_id: int) -> Chain:
        """The registered chain object for an id."""
        return self.chains[chain_id]

    def _submit(self, chain: Chain, tx: Transaction) -> None:
        self.sim.schedule(self.submit_latency, lambda: chain.submit(tx))

    def move_contract(
        self,
        mover: KeyPair,
        contract: Address,
        source_id: int,
        target_id: int,
        completions: Sequence[CompletionFactory] = (),
        on_done: Optional[Callable[[MovePhases], None]] = None,
    ) -> MovePhases:
        """Start a full move; returns the (live) phase record.

        The record fills in as the simulation advances; ``on_done``
        fires when the final completion transaction is included (or on
        the first failure).
        """
        source = self.chains[source_id]
        target = self.chains[target_id]
        phases = MovePhases(
            contract=contract,
            source_chain=source_id,
            target_chain=target_id,
            started_at=self.sim.now,
        )
        tracer = self.telemetry.tracer
        root = tracer.start_trace(
            "move", source_chain=source_id, target_chain=target_id
        )
        # The currently open phase span (mutable cell so the nested
        # callbacks can close whichever phase a failure interrupts).
        live = {"span": tracer.start_span("move1", root, chain=source_id)}

        def finish(success: bool, error: Optional[str] = None) -> None:
            self._m_move_seconds.observe(self.sim.now - phases.started_at)
            (self._m_moves_ok if success else self._m_moves_failed).inc()
            if success:
                root.end(success=True)
            else:
                root.end(success=False, error=error)
            if on_done is not None:
                on_done(phases)

        def fail(receipt: Receipt) -> None:
            phases.success = False
            phases.error = receipt.error
            live["span"].end(success=False)
            finish(False, receipt.error)

        def after_move1(receipt: Receipt) -> None:
            if not receipt.success:
                fail(receipt)
                return
            phases.move1_included_at = self.sim.now
            phases.add_gas(receipt.gas_by_category, "move1")
            inclusion = receipt.block_height
            ready_at = source.proof_ready_height(inclusion)
            live["span"].end(success=True)
            live["span"] = tracer.start_span(
                "confirm.wait", root, chain=source_id, ready_height=ready_at
            )
            # Attribute the header hop that unblocks VS at the target.
            tracer.watch_header(root, source_id, ready_at, observer=target_id)
            self._when_height(source, ready_at, lambda: send_move2(inclusion))

        def send_move2(inclusion_height: int) -> None:
            phases.proof_ready_at = self.sim.now
            live["span"].end(success=True)
            live["span"] = tracer.start_span("proof.build", root, chain=source_id)
            bundle = source.prove_contract_at(contract, inclusion_height)
            live["span"].end(success=True, proof_bytes=bundle.size_bytes())
            live["span"] = tracer.start_span("move2", root, chain=target_id)
            move2 = sign_transaction(mover, Move2Payload(bundle=bundle))
            tracer.inject(live["span"], move2.meta)
            target.wait_for(move2.tx_id, after_move2)
            self._submit(target, move2)

        def after_move2(receipt: Receipt) -> None:
            if not receipt.success:
                fail(receipt)
                return
            phases.move2_included_at = self.sim.now
            phases.add_gas(receipt.gas_by_category, "move2")
            live["span"].end(success=True)
            live["span"] = tracer.start_span("complete", root, chain=target_id)
            run_completion(0)

        def run_completion(index: int) -> None:
            if index >= len(completions):
                phases.completed_at = self.sim.now
                live["span"].end(success=True, txs=len(completions))
                finish(True)
                return
            tx = completions[index](mover)
            tx.meta.setdefault("gas_category", "complete")
            tracer.inject(live["span"], tx.meta)

            def after(receipt: Receipt) -> None:
                if not receipt.success:
                    fail(receipt)
                    return
                phases.add_gas(receipt.gas_by_category, "complete")
                run_completion(index + 1)

            target.wait_for(tx.tx_id, after)
            self._submit(target, tx)

        move1 = sign_transaction(mover, Move1Payload(contract=contract, target_chain=target_id))
        tracer.inject(live["span"], move1.meta)
        source.wait_for(move1.tx_id, after_move1)
        self._submit(source, move1)
        return phases

    def _when_height(self, chain: Chain, height: int, action: Callable[[], None]) -> None:
        """Run ``action`` as soon as ``chain`` reaches ``height``."""
        if chain.height >= height:
            action()
            return

        def listener(block, _receipts) -> None:
            if block.height >= height:
                chain.unsubscribe(listener)
                action()

        chain.subscribe(listener)
