"""Inter-blockchain communication harness.

Wires pairs (or sets) of chains together the way Section IV-A
prescribes: every chain's validators maintain light clients of the peer
chains, fed by a header relay; the :class:`~repro.ibc.bridge.IBCBridge`
then provides the client-side choreography for a full cross-chain move
(Move1 → wait p blocks → extract proof → Move2 → completion calls),
which Section VIII measures.
"""

from repro.ibc.headers import HeaderRelay, connect_chains
from repro.ibc.bridge import IBCBridge, MovePhases

__all__ = ["HeaderRelay", "connect_chains", "IBCBridge", "MovePhases"]
