"""The five IBC applications of Section VIII, as a reusable harness.

Each scenario prepares contracts on a Burrow-flavoured and an
Ethereum-flavoured chain (both driven by their real consensus engines
over the simulated WAN), then performs one measured cross-chain
operation:

* **SCoin** — move a token account, then transfer one token to an
  account resident on the target chain (one completion transaction);
* **ScalableKitties** — move a cat, breed it with a resident cat, give
  birth (two completion transactions);
* **Store 1 / 10 / 100** — move a contract holding N 32-byte variables
  (no completion transactions).

The returned :class:`~repro.ibc.bridge.MovePhases` carries both the
Fig. 8 latency phases and the Fig. 9 gas breakdown.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Tuple

from repro.apps.kitties import KittyRegistry
from repro.apps.scoin import SCoin
from repro.apps.store import StateStore
from repro.chain.chain import Chain
from repro.chain.params import burrow_params, ethereum_params
from repro.chain.tx import CallPayload, DeployPayload, sign_transaction
from repro.consensus.pow import PowEngine
from repro.consensus.tendermint import TendermintEngine
from repro.core.registry import ChainRegistry
from repro.crypto.keys import Address, KeyPair
from repro.errors import SimulationError
from repro.ibc.bridge import IBCBridge, MovePhases
from repro.ibc.headers import connect_chains
from repro.net.latency import LatencyModel
from repro.net.sim import Simulator
from repro.net.transport import Network
from repro.telemetry import Telemetry

BURROW_ID = 1
ETHEREUM_ID = 2

APPS = ("scoin", "kitties", "store1", "store10", "store100")
APP_LABELS = {
    "scoin": "SCoin",
    "kitties": "ScalableKitties",
    "store1": "Store 1",
    "store10": "Store 10",
    "store100": "Store 100",
}


class IBCExperiment:
    """One Burrow + one Ethereum chain under live consensus."""

    def __init__(
        self,
        seed: int = 0,
        validators: int = 10,
        burrow_overrides: Optional[dict] = None,
        ethereum_overrides: Optional[dict] = None,
        telemetry: Optional[Telemetry] = None,
    ):
        self.telemetry = telemetry if telemetry is not None else Telemetry.disabled()
        self.sim = Simulator(seed=seed)
        self.telemetry.bind_clock(lambda: self.sim.now)
        self.network = Network(self.sim)
        registry = ChainRegistry()
        self.burrow = Chain(
            burrow_params(BURROW_ID, **(burrow_overrides or {})),
            registry,
            verify_signatures=False,
            telemetry=self.telemetry,
        )
        self.ethereum = Chain(
            ethereum_params(ETHEREUM_ID, **(ethereum_overrides or {})),
            registry,
            verify_signatures=False,
            telemetry=self.telemetry,
        )
        connect_chains([self.burrow, self.ethereum])
        model = LatencyModel()
        self.tendermint = TendermintEngine(
            self.sim, self.network, self.burrow,
            model.assign_regions(validators, self.sim.rng),
        )
        self.pow = PowEngine(
            self.sim, self.network, self.ethereum,
            model.assign_regions(validators, self.sim.rng),
        )
        self.bridge = IBCBridge(
            self.sim, [self.burrow, self.ethereum], telemetry=self.telemetry
        )
        self.user = KeyPair.from_name("ibc-user")
        self.peer = KeyPair.from_name("ibc-peer")
        self.tendermint.start()
        self.pow.start()

    def chain(self, chain_id: int) -> Chain:
        """The Burrow or Ethereum chain by id."""
        return self.burrow if chain_id == BURROW_ID else self.ethereum

    # ------------------------------------------------------------------
    # Synchronous driving helpers (setup phases, not measured)
    # ------------------------------------------------------------------

    def sync_tx(self, chain: Chain, keypair: KeyPair, payload, timeout: float = 2_000.0):
        """Submit and drive the simulator until the receipt lands."""
        tx = sign_transaction(keypair, payload)
        done: List = []
        chain.wait_for(tx.tx_id, done.append)
        self.sim.schedule(0.05, lambda: chain.submit(tx))
        deadline = self.sim.now + timeout
        while not done and self.sim.now < deadline:
            self.sim.run(until=self.sim.now + 5.0)
        if not done:
            raise SimulationError(f"transaction not included within {timeout}s")
        receipt = done[0]
        if not receipt.success:
            raise SimulationError(f"setup transaction failed: {receipt.error}")
        return receipt

    def sync_move(
        self,
        mover: KeyPair,
        contract: Address,
        source_id: int,
        target_id: int,
        completions: Sequence = (),
        timeout: float = 5_000.0,
    ) -> MovePhases:
        """Run a full move to completion, driving the simulator."""
        done: List[MovePhases] = []
        self.bridge.move_contract(
            mover, contract, source_id, target_id,
            completions=completions, on_done=done.append,
        )
        deadline = self.sim.now + timeout
        while not done and self.sim.now < deadline:
            self.sim.run(until=self.sim.now + 5.0)
        if not done:
            raise SimulationError(f"move did not complete within {timeout}s")
        phases = done[0]
        if not phases.success:
            raise SimulationError(f"move failed: {phases.error}")
        return phases

    # ------------------------------------------------------------------
    # Scenarios
    # ------------------------------------------------------------------

    def run_app(self, app: str, source_id: int, target_id: int) -> MovePhases:
        """Prepare and execute one measured cross-chain operation."""
        if app == "scoin":
            return self._run_scoin(source_id, target_id)
        if app == "kitties":
            return self._run_kitties(source_id, target_id)
        if app.startswith("store"):
            return self._run_store(int(app[len("store"):]), source_id, target_id)
        raise ValueError(f"unknown IBC app {app!r}")

    def _run_scoin(self, source_id: int, target_id: int) -> MovePhases:
        source = self.chain(source_id)
        token = self.sync_tx(
            source, self.user, DeployPayload(code_hash=SCoin.CODE_HASH)
        ).return_value
        acc_a, _ = self.sync_tx(
            source, self.user, CallPayload(token, "new_account")
        ).return_value
        acc_b, _ = self.sync_tx(
            source, self.peer, CallPayload(token, "new_account")
        ).return_value
        self.sync_tx(source, self.user, CallPayload(token, "mint_to", (acc_a, 10)))
        # Setup (unmeasured): the destination account already lives on
        # the target chain.
        self.sync_move(self.peer, acc_b, source_id, target_id)

        def transfer(mover: KeyPair):
            return sign_transaction(
                mover, CallPayload(acc_a, "transfer_tokens", (acc_b, 1))
            )

        return self.sync_move(
            self.user, acc_a, source_id, target_id, completions=(transfer,)
        )

    def _run_kitties(self, source_id: int, target_id: int) -> MovePhases:
        source = self.chain(source_id)
        target = self.chain(target_id)
        registry_src = self.sync_tx(
            source, self.user, DeployPayload(code_hash=KittyRegistry.CODE_HASH)
        ).return_value
        registry_dst = self.sync_tx(
            target, self.user, DeployPayload(code_hash=KittyRegistry.CODE_HASH)
        ).return_value
        travelling = self.sync_tx(
            source, self.user,
            CallPayload(registry_src, "create_promo_kitty", (self.user.address,)),
        ).return_value
        resident = self.sync_tx(
            target, self.user,
            CallPayload(registry_dst, "create_promo_kitty", (self.user.address,)),
        ).return_value

        def breed(mover: KeyPair):
            return sign_transaction(
                mover, CallPayload(resident, "breed_with", (travelling,))
            )

        def give_birth(mover: KeyPair):
            return sign_transaction(mover, CallPayload(resident, "give_birth"))

        return self.sync_move(
            self.user, travelling, source_id, target_id,
            completions=(breed, give_birth),
        )

    def _run_store(self, slots: int, source_id: int, target_id: int) -> MovePhases:
        source = self.chain(source_id)
        store = self.sync_tx(
            source, self.user,
            DeployPayload(code_hash=StateStore.CODE_HASH, args=(slots,)),
        ).return_value
        return self.sync_move(self.user, store, source_id, target_id)


def run_all_ibc_scenarios(seed: int = 0) -> List[Tuple[str, str, MovePhases]]:
    """Run the 5 apps in both directions; returns (app, direction, phases).

    A fresh chain pair per scenario keeps measurements independent, as
    in the paper's per-application runs.
    """
    out: List[Tuple[str, str, MovePhases]] = []
    for app in APPS:
        for direction, (src, dst) in (
            ("burrow->ethereum", (BURROW_ID, ETHEREUM_ID)),
            ("ethereum->burrow", (ETHEREUM_ID, BURROW_ID)),
        ):
            experiment = IBCExperiment(seed=seed)
            phases = experiment.run_app(app, src, dst)
            out.append((app, direction, phases))
    return out
