"""The stable public facade of the reproduction.

Applications, examples and the CLI import from here — never from the
deep module paths, which stay free to refactor.  The surface is the
explicit ``__all__`` below, guarded by a golden test
(``tests/unit/test_api_surface.py``): adding a name is a reviewed
decision, removing or renaming one is a breaking change.

The facade covers four layers:

* **serving** — :class:`Node` (a long-running runtime owning chains,
  relays and block production), :class:`Gateway` (bounded admission,
  micro-batching, backpressure, rate limiting), :class:`Client` (the
  SDK: sign, submit, await), the transports, and the request/move
  futures;
* **chains** — :class:`Chain`, :class:`ChainParams` and the paper's two
  presets, registries, relays, sharded clusters, the simulator;
* **transactions and contracts** — payload kinds, signing, keypairs,
  and the Solidity-like contract-authoring layer
  (:class:`MovableContract`, slots, decorators, ``require``);
* **observation and adversity** — :class:`Telemetry`, fault plans, the
  health plane (:class:`HealthMonitor`, :class:`SloSpec`,
  :class:`FlightRecorder`), and the full typed error taxonomy rooted at
  :class:`ReproError`.

Quick start::

    from repro import api

    node = api.Node([api.burrow_params(1), api.ethereum_params(2)])
    gateway = api.Gateway(node, api.GatewayLimits(max_queue_depth=512))
    client = api.Client(api.InProcessTransport(gateway), name="alice")
    gateway.start()

    handle = client.deploy(MyContract, chain=1)
    receipt = client.wait(handle)
    moved = client.wait(client.move(receipt.return_value,
                                    source_chain=1, target_chain=2))
"""

from __future__ import annotations

# -- serving ----------------------------------------------------------
from repro.node import Node
from repro.gateway import (
    Client,
    Gateway,
    GatewayLimits,
    InProcessTransport,
    MoveHandle,
    RequestHandle,
    SimNetTransport,
)

# -- chains -----------------------------------------------------------
from repro.chain.chain import Chain
from repro.chain.params import ChainParams, burrow_params, ethereum_params
from repro.core.registry import ChainRegistry
from repro.ibc.bridge import IBCBridge, MovePhases
from repro.ibc.headers import HeaderRelay, connect_chains
from repro.net.sim import Simulator
from repro.sharding.cluster import ShardedCluster

# -- transactions and identity ----------------------------------------
from repro.chain.tx import (
    CallPayload,
    DeployPayload,
    Move1Payload,
    Move2Payload,
    Transaction,
    TransferPayload,
    sign_transaction,
)
from repro.crypto.keys import Address, KeyPair

# -- contract authoring -----------------------------------------------
from repro.lang import AccountI, MovableContract, STokenI, require
from repro.runtime import MapSlot, Slot, external, payable, register_contract, view

# -- rebalancing control plane ----------------------------------------
from repro.rebalance import (
    RebalancePolicy,
    Rebalancer,
    ShardLoadView,
    SignalPlane,
)

# -- replication (read-only cross-chain mirrors) ----------------------
from repro.replicate import (
    Mirror,
    ReplicationManager,
    ReplicationRelay,
)

# -- observation and adversity ----------------------------------------
from repro.faults.plan import FaultPlan
from repro.health import (
    FlightRecorder,
    HealthMonitor,
    SloSpec,
    default_slos,
)
from repro.telemetry import Telemetry

# -- errors -----------------------------------------------------------
from repro.errors import (
    ConfigError,
    ContractLocked,
    GatewayError,
    InvalidRequest,
    InvariantViolation,
    MoveError,
    OutOfGas,
    Overloaded,
    ProofError,
    QueueFull,
    RateLimited,
    ReadOnlyReplicaError,
    ReplayError,
    ReplicaUnavailable,
    ReproError,
    RequestTimeout,
    Revert,
    TransactionAborted,
    UnknownChainError,
)

__all__ = [
    # serving
    "Node",
    "Gateway",
    "GatewayLimits",
    "Client",
    "InProcessTransport",
    "SimNetTransport",
    "RequestHandle",
    "MoveHandle",
    # chains
    "Chain",
    "ChainParams",
    "burrow_params",
    "ethereum_params",
    "ChainRegistry",
    "HeaderRelay",
    "connect_chains",
    "IBCBridge",
    "MovePhases",
    "Simulator",
    "ShardedCluster",
    # transactions and identity
    "Transaction",
    "sign_transaction",
    "TransferPayload",
    "DeployPayload",
    "CallPayload",
    "Move1Payload",
    "Move2Payload",
    "KeyPair",
    "Address",
    # contract authoring
    "MovableContract",
    "AccountI",
    "STokenI",
    "register_contract",
    "external",
    "payable",
    "view",
    "Slot",
    "MapSlot",
    "require",
    # rebalancing control plane
    "SignalPlane",
    "ShardLoadView",
    "RebalancePolicy",
    "Rebalancer",
    # replication (read-only cross-chain mirrors)
    "ReplicationManager",
    "ReplicationRelay",
    "Mirror",
    # observation and adversity
    "Telemetry",
    "FaultPlan",
    "HealthMonitor",
    "SloSpec",
    "FlightRecorder",
    "default_slos",
    # errors
    "ReproError",
    "ConfigError",
    "TransactionAborted",
    "Revert",
    "OutOfGas",
    "ContractLocked",
    "MoveError",
    "ReplayError",
    "ProofError",
    "InvariantViolation",
    "GatewayError",
    "Overloaded",
    "QueueFull",
    "RateLimited",
    "RequestTimeout",
    "UnknownChainError",
    "InvalidRequest",
    "ReadOnlyReplicaError",
    "ReplicaUnavailable",
]
