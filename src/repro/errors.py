"""Exception hierarchy for the Move-protocol reproduction.

Every error raised by the library derives from :class:`ReproError` so
applications can catch library failures with a single ``except`` clause.
Errors that abort a transaction inside the execution environment derive
from :class:`TransactionAborted`; the chain converts them into failed
receipts rather than letting them escape the block-execution loop.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all library errors."""


class TransactionAborted(ReproError):
    """Base class for errors that abort the executing transaction."""


class Revert(TransactionAborted):
    """Raised by ``require(...)`` or explicit reverts inside contracts."""


class OutOfGas(TransactionAborted):
    """The transaction's gas allowance was exhausted."""


class ContractLocked(TransactionAborted):
    """A transaction tried to mutate a contract whose ``L_c`` points
    to another blockchain (it was moved away via Move1)."""


class MoveError(TransactionAborted):
    """A Move1/Move2 transaction violated the Move protocol rules."""


class ReplayError(MoveError):
    """A Move2 carried a stale move-nonce (replay attack, paper Fig. 2)."""


class ProofError(TransactionAborted):
    """A Merkle proof failed to verify (``VP`` returned false).

    Aborts the carrying Move2 transaction when raised during execution;
    client-side proof construction raises it too (callers catch it
    directly there)."""


class UnknownRootError(ProofError):
    """``VS(B, m)`` failed: the Merkle root is not known to be a valid,
    sufficiently-confirmed root of the source blockchain."""


class VMError(TransactionAborted):
    """Base class for low-level virtual-machine faults."""


class StackUnderflow(VMError):
    """A VM instruction popped more items than the stack holds."""


class StackOverflow(VMError):
    """The VM stack exceeded its maximum depth."""


class InvalidOpcode(VMError):
    """The VM met an undefined opcode byte."""


class InvalidJump(VMError):
    """A JUMP/JUMPI landed on a non-JUMPDEST position."""


class CodeNotFound(ReproError):
    """A contract referenced a code hash absent from the code registry."""


class StateError(ReproError):
    """Inconsistent or missing world-state entries."""


class SpeculationUnsupported(ReproError):
    """An optimistically executed transaction hit a state operation the
    speculative overlay cannot virtualize (contract creation, Move-state
    writes, bulk storage replacement).

    Deliberately *not* a :class:`TransactionAborted`: the parallel block
    executor catches it, discards the speculation and re-runs the
    transaction on the serial path at its original position — the
    transaction itself is perfectly valid."""


class SimulationError(ReproError):
    """Misuse of the discrete-event simulator."""


class SignatureError(ReproError):
    """Signature verification failed or a key was malformed."""


class InvariantViolation(ReproError):
    """A cross-chain protocol invariant failed during simulation.

    Raised by :class:`~repro.faults.invariants.InvariantChecker` the
    instant a simulated block leaves the system in a state the paper's
    safety argument forbids (dual mutability, a move-nonce regression,
    pegged-supply inflation, or a commitment-root mismatch)."""


class FaultPlanError(ReproError):
    """A fault schedule is malformed or targets an unknown component."""


class AssemblerError(ReproError):
    """The VM assembler met an unknown mnemonic or malformed operand."""
