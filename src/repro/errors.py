"""Exception hierarchy for the Move-protocol reproduction.

Every error raised by the library derives from :class:`ReproError` so
applications can catch library failures with a single ``except`` clause.
Errors that abort a transaction inside the execution environment derive
from :class:`TransactionAborted`; the chain converts them into failed
receipts rather than letting them escape the block-execution loop.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all library errors."""


class TransactionAborted(ReproError):
    """Base class for errors that abort the executing transaction."""


class Revert(TransactionAborted):
    """Raised by ``require(...)`` or explicit reverts inside contracts."""


class OutOfGas(TransactionAborted):
    """The transaction's gas allowance was exhausted."""


class ContractLocked(TransactionAborted):
    """A transaction tried to mutate a contract whose ``L_c`` points
    to another blockchain (it was moved away via Move1)."""


class MoveError(TransactionAborted):
    """A Move1/Move2 transaction violated the Move protocol rules."""


class ReplayError(MoveError):
    """A Move2 carried a stale move-nonce (replay attack, paper Fig. 2)."""


class ProofError(TransactionAborted):
    """A Merkle proof failed to verify (``VP`` returned false).

    Aborts the carrying Move2 transaction when raised during execution;
    client-side proof construction raises it too (callers catch it
    directly there)."""


class UnknownRootError(ProofError):
    """``VS(B, m)`` failed: the Merkle root is not known to be a valid,
    sufficiently-confirmed root of the source blockchain."""


class VMError(TransactionAborted):
    """Base class for low-level virtual-machine faults."""


class StackUnderflow(VMError):
    """A VM instruction popped more items than the stack holds."""


class StackOverflow(VMError):
    """The VM stack exceeded its maximum depth."""


class InvalidOpcode(VMError):
    """The VM met an undefined opcode byte."""


class InvalidJump(VMError):
    """A JUMP/JUMPI landed on a non-JUMPDEST position."""


class CodeNotFound(ReproError):
    """A contract referenced a code hash absent from the code registry."""


class StateError(ReproError):
    """Inconsistent or missing world-state entries."""


class SpeculationUnsupported(ReproError):
    """An optimistically executed transaction hit a state operation the
    speculative overlay cannot virtualize (contract creation, Move-state
    writes, bulk storage replacement).

    Deliberately *not* a :class:`TransactionAborted`: the parallel block
    executor catches it, discards the speculation and re-runs the
    transaction on the serial path at its original position — the
    transaction itself is perfectly valid."""


class SimulationError(ReproError):
    """Misuse of the discrete-event simulator."""


class SignatureError(ReproError):
    """Signature verification failed or a key was malformed."""


class InvariantViolation(ReproError):
    """A cross-chain protocol invariant failed during simulation.

    Raised by :class:`~repro.faults.invariants.InvariantChecker` the
    instant a simulated block leaves the system in a state the paper's
    safety argument forbids (dual mutability, a move-nonce regression,
    pegged-supply inflation, or a commitment-root mismatch)."""


class FaultPlanError(ReproError):
    """A fault schedule is malformed or targets an unknown component."""


class AssemblerError(ReproError):
    """The VM assembler met an unknown mnemonic or malformed operand."""


class ConfigError(ReproError):
    """Invalid static configuration (:class:`~repro.chain.params.ChainParams`
    fields, gateway limits) — raised at construction time with an
    actionable message instead of failing deep inside block production."""


class GatewayError(ReproError):
    """Base class for request-gateway failures.

    Every gateway rejection carries a machine-readable ``code`` so
    programmatic clients can branch on the reason without parsing the
    message (the string message stays human-oriented).
    """

    #: machine-readable reason code; subclasses override it and the
    #: constructor can specialize it per instance
    code = "gateway_error"

    def __init__(self, message: str = "", *, code: str = None):
        super().__init__(message)
        if code is not None:
            self.code = code

    def to_dict(self) -> dict:
        """The wire shape of a rejection: ``{"code", "message"}``."""
        return {"code": self.code, "message": str(self)}


class Overloaded(GatewayError):
    """The gateway shed the request under load (backpressure).

    The base of the shed taxonomy: admission queues at their bound
    (:class:`QueueFull`) and rate limiting (:class:`RateLimited`) both
    derive from it, so ``except Overloaded`` catches every shed."""

    code = "overloaded"


class ShedByClass(Overloaded):
    """The bounded admission queue shed work, attributed to the
    priority class and client that actually lost their slot.

    With classed admission (docs/SERVING.md) a full queue does not
    simply refuse the newcomer: a higher-class arrival evicts the most
    recent entry of the lowest backlogged class instead, so the victim
    of a shed is not necessarily the enqueuer.  ``shed_class`` /
    ``shed_client`` name the entry that was actually dropped and
    ``chain_id`` the queue it was dropped from — accounting follows the
    victim, never the trigger.  The wire code stays ``"queue_full"``
    so existing clients keep branching correctly.

    ``QueueFull`` is the pre-fleet name for this rejection and remains
    an alias (deprecated at the :mod:`repro.api` facade).
    """

    code = "queue_full"

    def __init__(
        self,
        message: str = "",
        *,
        code: str = None,
        shed_class: str = None,
        shed_client: str = None,
        chain_id: int = None,
    ):
        super().__init__(message, code=code)
        #: label of the priority class that lost the slot ("move" /
        #: "view" / "bulk"), or None for un-classed queues
        self.shed_class = shed_class
        #: client whose entry was dropped (may differ from the caller)
        self.shed_client = shed_client
        self.chain_id = chain_id

    def to_dict(self) -> dict:
        """Wire shape; carries the victim attribution when known."""
        payload = super().to_dict()
        if self.shed_class is not None:
            payload["shed_class"] = self.shed_class
        return payload


#: Deprecated alias (PR 5 name); importable plainly here for internal
#: raisers, with a DeprecationWarning at the repro.api facade.
QueueFull = ShedByClass


class RateLimited(Overloaded):
    """The client exceeded its token-bucket submission rate."""

    code = "rate_limited"


class RequestTimeout(GatewayError):
    """A gateway request missed its deadline (the transaction may still
    execute later — retry with the same idempotency key to reattach)."""

    code = "timeout"


class UnknownChainError(GatewayError):
    """A request targeted a chain id the node does not serve."""

    code = "unknown_chain"


class InvalidRequest(GatewayError):
    """A malformed request rejected at the gateway boundary (raw
    ``KeyError``/``ValueError``/``TypeError`` escapes are mapped here so
    clients only ever see :class:`ReproError` subclasses)."""

    code = "invalid_request"


class ReadOnlyReplicaError(ContractLocked, GatewayError):
    """A write targeted a read-only replica (mirror) of a contract.

    Mirrors extend the paper's single-mutability invariant I1: a mirror
    is *never* the active copy, so any mutating call against one is a
    protocol violation rather than a transient condition.  Derives from
    :class:`ContractLocked` (inside a block it aborts the transaction
    like any write against a non-active copy) and from
    :class:`GatewayError` (at the serving boundary it is a typed
    rejection carrying a machine-readable code)."""

    code = "read_only_replica"


class ReplicaUnavailable(GatewayError):
    """A read targeted a replica that cannot currently serve.

    Raised when a mirror is halted (its last verified update sits on a
    branch the local light client no longer considers canonical),
    tombstoned (the source contract is mid-move or moved away), or has
    not completed its initial sync.  Replicas fail *unavailable*, never
    stale: a reader that cannot be given state within the staleness
    bound gets this typed error instead of orphaned or torn data."""

    code = "replica_unavailable"
