"""Reproduction of "Smart Contracts on the Move" (Fynn, Bessani,
Pedone — DSN 2020).

The **Move protocol** lets smart contracts and accounts migrate
consistently between blockchains: ``Move1`` locks a contract at its
source chain (the new ``OP_MOVE`` opcode assigns the location field
``L_c``), and ``Move2`` recreates it at the target chain from a Merkle
proof of the locked state, guarded against replays by a per-contract
move nonce.  One primitive serves both blockchain interoperability and
shard rebalancing.

Package map — see DESIGN.md for the full inventory:

==================  ====================================================
``repro.api``       the stable public facade — import from here
``repro.node``      long-running node runtime: chains, relays, drivers
``repro.gateway``   bounded admission, batching, backpressure, futures
``repro.core``      the protocol: Move1/Move2, proofs, relay, swap, GC
``repro.vm``        EVM-flavoured VM, gas schedule, OP_MOVE, assembler
``repro.runtime``   Solidity-like contract layer (slots, require, msg)
``repro.merkle``    binary Merkle tree, IAVL, Patricia trie, proofs
``repro.statedb``   journaled world state with per-block commitments
``repro.chain``     blocks, mempool, executor, light clients
``repro.consensus`` Tendermint-style BFT and Nakamoto PoW engines
``repro.net``       discrete-event simulator + 14-region WAN model
``repro.lang``      MovableContract, STokenI/AccountI interfaces
``repro.apps``      SCoin, ScalableKitties, Store-N
``repro.sharding``  hash partitioning, clusters, load balancer
``repro.traces``    synthetic CryptoKitties traces + DAG replay
``repro.ibc``       header relays, cross-chain bridge, Fig. 8/9 harness
``repro.workload``  closed-loop SCoin clients (Fig. 6/7 harness)
``repro.metrics``   throughput/latency collectors and reporting
==================  ====================================================

Quick start: ``python -m repro move-demo`` or see ``examples/``.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
