"""Experiment workloads.

:mod:`repro.workload.clients` implements the SCoin closed-loop client
population of Section VII-B (Figs. 6 and 7): per-shard client pools
issuing token transfers, a controllable cross-shard transaction rate,
an oracle mode that never conflicts (the paper's main experiments) and
a retry mode with randomized backoff (Section VII-B.1).
"""

from repro.workload.clients import ScoinWorkload, WorkloadReport
from repro.workload.fleet import FleetWorkload, FleetWorkloadReport
from repro.workload.generators import OpenLoopReport, OpenLoopTransferWorkload

__all__ = [
    "ScoinWorkload",
    "WorkloadReport",
    "OpenLoopTransferWorkload",
    "OpenLoopReport",
    "FleetWorkload",
    "FleetWorkloadReport",
]
